(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as report sections), then times the computational
   kernels behind each experiment with Bechamel. *)

open Bechamel
open Toolkit
open Testgen

let section id body =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" id;
  Printf.printf "==============================================================\n";
  print_string body;
  print_newline ()

let progress ~done_ ~total ~fault_id =
  Printf.eprintf "  generation [%2d/%2d] %s\n%!" done_ total fault_id

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                           *)
(* ------------------------------------------------------------------ *)

(* Calls per second over a wall-clock window, after one warm-up call
   (plan compilation, caches). *)
let rate ~seconds f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (f ());
    incr n
  done;
  float_of_int !n /. (Unix.gettimeofday () -. t0)

let minor_words_per ?(reps = 100) f =
  ignore (f ());
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

let bitwise_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
       a b

(* Every BENCH_*.json report carries the same provenance object —
   resolved once per process (Report.Provenance memoizes the git SHA,
   stamp and core count), so artifacts from one run are byte-identical
   in their provenance. *)
let provenance_json () = Report.Provenance.json ()

(* ------------------------------------------------------------------ *)
(* Reproduction reports                                                 *)
(* ------------------------------------------------------------------ *)

let run_reports ctx =
  (* the paper's tables and figures *)
  section "FIG1" (Experiments.Runs.fig1 ());
  section "TAB1" (Experiments.Runs.tab1 ());
  section "FIG234" (Experiments.Runs.fig234 ctx);
  section "FIG5" (Experiments.Runs.fig5 ctx);
  section "FIG6" (Experiments.Runs.fig6 ctx);
  section "FIG7" (Experiments.Runs.fig7 ());
  let run = Experiments.Runs.engine_run ~progress ctx in
  section "TAB2" (Experiments.Runs.tab2 ctx run);
  section "FIG8" (Experiments.Runs.fig8 ctx run);
  section "TAB3" (Experiments.Runs.tab3 ctx run);
  let compaction = Experiments.Runs.compact_run ~delta:0.1 ctx run in
  section "TAB4" (Experiments.Runs.render_tab4 ~delta:0.1 compaction);
  section "XBASE" (Experiments.Runs.xbase ctx run);
  (* extensions beyond the paper *)
  prerr_endline "running extension experiments...";
  section "XAC" (Experiments.Extensions.xac_report ());
  section "XIFA" (Experiments.Extensions.xifa_report ctx run compaction);
  section "XEQ" (Experiments.Extensions.xeq_report ctx run);
  section "XQ" (Experiments.Extensions.xq_report ctx compaction);
  section "XIMD" (Experiments.Extensions.ximd_report ctx)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the kernel behind each experiment                   *)
(* ------------------------------------------------------------------ *)

let make_tests ctx =
  let nl = Macros.Macro.nominal_netlist ctx.Experiments.Setup.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  let ev1 = Experiments.Setup.evaluator ctx 1 in
  let ev3 = Experiments.Setup.evaluator ctx 3 in
  let ev4 = Experiments.Setup.evaluator ctx 4 in
  let bridge = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let seeds c = Test_config.param_values_of_seed (Evaluator.config c) in
  let assemble () =
    Circuit.Mna.assemble sys ~x:op ~time:`Dc ~gmin:1e-12 ()
  in
  let a0, z0 = assemble () in
  let rng = Numerics.Rng.create 17L in
  let cluster_items =
    List.init 45 (fun i ->
        {
          Cluster.item_id = Printf.sprintf "f%d" i;
          location =
            [|
              Numerics.Rng.uniform rng ~lo:(-50e-6) ~hi:50e-6;
              Numerics.Rng.uniform rng ~lo:5e-6 ~hi:50e-6;
            |];
        })
  in
  let cluster_params =
    (Evaluator.config (Experiments.Setup.evaluator ctx 2)).Test_config.params
  in
  [
    (* substrate kernels *)
    Test.make ~name:"substrate:lu-factor-solve(26x26)"
      (Staged.stage (fun () -> Numerics.Mat.solve a0 z0));
    Test.make ~name:"substrate:mna-assemble"
      (Staged.stage (fun () -> assemble ()));
    Test.make ~name:"substrate:dc-operating-point"
      (Staged.stage (fun () -> Circuit.Dc.operating_point sys ~time:`Dc));
    (* TAB1/FIG1: configuration bookkeeping *)
    Test.make ~name:"tab1:describe-configurations"
      (Staged.stage (fun () ->
           List.map Test_config.describe Experiments.Iv_configs.all));
    (* FIG2-4: one THD evaluation = one tps-graph pixel *)
    Test.make ~name:"fig234:thd-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev3 bridge (seeds ev3)));
    (* FIG5: box interpolation *)
    Test.make ~name:"fig5:box-interpolation"
      (Staged.stage (fun () -> Evaluator.box ev1 (seeds ev1)));
    (* FIG6/TAB2: the impact-convergence kernel: one dc-config sensitivity *)
    Test.make ~name:"tab2:dc-sensitivity-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev1 bridge (seeds ev1)));
    (* TAB3/FIG8: step-response metric evaluation *)
    Test.make ~name:"tab3:step-response-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev4 bridge (seeds ev4)));
    (* TAB4: clustering of the optimized tests *)
    Test.make ~name:"tab4:cluster-45-tests"
      (Staged.stage (fun () ->
           Cluster.group ~params:cluster_params cluster_items));
    (* XBASE: seed-test detection check *)
    Test.make ~name:"xbase:seed-detection-check"
      (Staged.stage (fun () ->
           Sensitivity.detects (Evaluator.sensitivity ev1 bridge (seeds ev1))));
  ]

let run_benchmarks ctx =
  let tests = make_tests ctx in
  let grouped = Test.make_grouped ~name:"atpg" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Printf.printf "==============================================================\n";
  Printf.printf "BECHAMEL microbenchmarks (monotonic clock, ns/run)\n";
  Printf.printf "==============================================================\n";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      rows := (name, estimate) :: !rows)
    clock;
  List.iter
    (fun (name, ns) ->
      if ns < 1e3 then Printf.printf "  %-42s %10.1f ns\n" name ns
      else if ns < 1e6 then Printf.printf "  %-42s %10.2f us\n" name (ns /. 1e3)
      else Printf.printf "  %-42s %10.2f ms\n" name (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the full generation run at several job counts      *)
(* ------------------------------------------------------------------ *)

(* Times the whole-dictionary generation run sequentially and on worker
   pools of increasing size, verifies every parallel run record against
   the sequential one (the determinism contract, checked on real work,
   not just unit fixtures), and writes the measurements to
   BENCH_parallel.json.  No JSON library is baked into the image, so the
   report is emitted by hand — the schema is flat. *)
let run_parallel_bench ctx =
  let host = Parallel.default_jobs () in
  let job_counts = List.sort_uniq Int.compare [ 1; 2; 4; host ] in
  let faults =
    List.length (Faults.Dictionary.entries ctx.Experiments.Setup.dictionary)
  in
  let timed jobs =
    let executor =
      if jobs = 1 then Engine.sequential else Parallel.executor ~jobs
    in
    Printf.eprintf "parallel bench: generation run at --jobs %d...\n%!" jobs;
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ~executor ctx in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.eprintf "parallel bench: --jobs %d done in %.2f s\n%!" jobs dt;
    (jobs, run, dt)
  in
  let runs = List.map timed job_counts in
  let _, seq_run, seq_dt =
    List.find (fun (jobs, _, _) -> jobs = 1) runs
  in
  let fingerprint (run : Engine.run) =
    (Session.to_string run.Engine.results, run.Engine.rung_stats,
     run.Engine.recovered_count, List.length run.Engine.failed_faults)
  in
  let seq_fp = fingerprint seq_run in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" host);
  Buffer.add_string buf (Printf.sprintf "  \"dictionary_faults\": %d,\n" faults);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (jobs, run, dt) ->
      let identical = fingerprint run = seq_fp in
      if not identical then
        Printf.eprintf
          "parallel bench: WARNING --jobs %d diverged from sequential!\n%!"
          jobs;
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"wall_seconds\": %.6f, \"speedup\": %.3f, \
            \"fault_simulations\": %d, \"identical_to_sequential\": %b}%s\n"
           jobs dt (seq_dt /. Float.max 1e-9 dt)
           run.Engine.total_fault_simulations identical
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ]\n}\n";
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "parallel bench: wrote %s\n%!" path;
  (* One traced repeat of the parallel run: its Obs aggregate (span
     totals, solver/cache counters, per-fault evaluation counts) lands
     in BENCH_obs.json next to the timing report. *)
  Printf.eprintf "parallel bench: traced run at --jobs %d for %s...\n%!" host
    "BENCH_obs.json";
  Obs.enable ();
  let obs_json =
    Fun.protect ~finally:Obs.shutdown (fun () ->
        let run =
          Experiments.Runs.engine_run ~executor:(Parallel.executor ~jobs:host)
            ctx
        in
        if fingerprint run <> seq_fp then
          Printf.eprintf
            "parallel bench: WARNING traced run diverged from sequential!\n%!";
        Obs.aggregate_json ())
  in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc "{\"provenance\": %s,\n \"aggregate\": %s}\n"
    (provenance_json ()) (String.trim obs_json);
  close_out oc;
  Printf.eprintf "parallel bench: wrote BENCH_obs.json\n%!";
  if List.exists (fun (_, run, _) -> fingerprint run <> seq_fp) runs then
    exit 1

(* ------------------------------------------------------------------ *)
(* Hot path: compiled restamp vs legacy build-per-probe                 *)
(* ------------------------------------------------------------------ *)

(* Measures the compile-once/restamp-many execution path against the
   legacy rebuild-everything path at three levels — the raw DC Newton
   solve, a whole DC observable probe, and the end-to-end generation
   run — plus allocation pressure per solve, and writes the figures to
   BENCH_hotpath.json.  [--smoke] shrinks the measurement windows and
   the end-to-end dictionary so CI can run it on every push. *)
let run_hotpath_bench ~fast ~smoke =
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  let window = if smoke then 0.2 else 1.0 in
  let target =
    Experiments.Setup.target_of_macro Macros.Iv_converter.macro
      Macros.Process.nominal
  in
  (* level 1: the bare Newton solve on the nominal MNA system *)
  let sys = Circuit.Mna.build target.Execute.netlist in
  let ws = Circuit.Mna.workspace sys in
  let solve_alloc () = Circuit.Dc.solve sys ~time:`Dc in
  let solve_ws () = Circuit.Dc.solve ~workspace:ws sys ~time:`Dc in
  prerr_endline "hotpath bench: DC Newton kernel...";
  let kernel_legacy = rate ~seconds:window solve_alloc in
  let kernel_compiled = rate ~seconds:window solve_ws in
  let kernel_legacy_words = minor_words_per solve_alloc in
  let kernel_compiled_words = minor_words_per solve_ws in
  (* level 2: the restamp-many DC Newton microbenchmark — a
     guess-chained stimulus sweep, the kernel inside Sweep.dc_transfer
     and every optimizer probe.  The legacy path rewrites the netlist,
     re-indexes it and reallocates the solver at every level; the
     compiled path restamps one prebuilt plan into one workspace. *)
  let source = target.Execute.stimulus_source in
  let n_levels = 128 in
  (* the DC-level configuration's parameter range: -50..50 uA *)
  let levels =
    Array.init n_levels (fun i ->
        -50e-6 +. (100e-6 *. float_of_int i /. float_of_int (n_levels - 1)))
  in
  let sweep_legacy () =
    let guess = ref None in
    Array.iter
      (fun v ->
        let nl =
          Execute.with_stimulus target.Execute.netlist ~source
            (Circuit.Waveform.Dc v)
        in
        let sys = Circuit.Mna.build nl in
        let report = Circuit.Dc.solve ?guess:!guess sys ~time:`Dc in
        guess := Some report.Circuit.Dc.solution)
      levels;
    !guess
  in
  let sweep_sys =
    Circuit.Mna.build
      (Execute.with_stimulus target.Execute.netlist ~source
         (Circuit.Waveform.Dc levels.(0)))
  in
  let sweep_ws = Circuit.Mna.workspace sweep_sys in
  let sweep_compiled () =
    let guess = ref None in
    Array.iter
      (fun v ->
        let restamp =
          {
            Circuit.Mna.stimulus = Some (source, Circuit.Waveform.Dc v);
            impact = None;
          }
        in
        let report =
          Circuit.Dc.solve ?guess:!guess ~workspace:sweep_ws ~restamp
            sweep_sys ~time:`Dc
        in
        guess := Some report.Circuit.Dc.solution)
      levels;
    !guess
  in
  let sweep_identical =
    match (sweep_legacy (), sweep_compiled ()) with
    | Some a, Some b -> bitwise_equal a b
    | _ -> false
  in
  if not sweep_identical then
    prerr_endline "hotpath bench: WARNING restamp sweep diverged from legacy!";
  prerr_endline "hotpath bench: DC Newton sweep kernel...";
  let per_solve x = x *. float_of_int n_levels in
  let dc_legacy = per_solve (rate ~seconds:window sweep_legacy) in
  let dc_compiled = per_solve (rate ~seconds:window sweep_compiled) in
  let dc_legacy_words =
    minor_words_per sweep_legacy /. float_of_int n_levels
  in
  let dc_compiled_words =
    minor_words_per sweep_compiled /. float_of_int n_levels
  in
  (* informational: one whole optimizer probe of the DC-levels
     configuration, cold solves included *)
  let config = Experiments.Iv_configs.config1 in
  let values = Test_param.seeds_of config.Test_config.params in
  let probe_legacy () = Execute.observables ~profile config target values in
  let plan = Execute.compile config target in
  let probe_compiled () =
    Execute.compiled_observables ~profile plan values
  in
  prerr_endline "hotpath bench: DC observable probe...";
  let probe_legacy_rate = rate ~seconds:window probe_legacy in
  let probe_compiled_rate = rate ~seconds:window probe_compiled in
  (* level 3: the generation run, legacy vs compiled evaluators *)
  let end_to_end mode =
    let ctx = Experiments.Setup.iv ~profile ~mode () in
    let ctx = if smoke then Experiments.Setup.reduced ctx ~n_faults:4 else ctx in
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ctx in
    (Unix.gettimeofday () -. t0, run)
  in
  prerr_endline "hotpath bench: end-to-end generation (legacy)...";
  let legacy_dt, legacy_run = end_to_end `Legacy in
  prerr_endline "hotpath bench: end-to-end generation (compiled)...";
  let compiled_dt, compiled_run = end_to_end `Compiled in
  let identical =
    Session.to_string legacy_run.Engine.results
    = Session.to_string compiled_run.Engine.results
  in
  if not identical then
    prerr_endline "hotpath bench: WARNING compiled run diverged from legacy!";
  let dc_speedup = dc_compiled /. Float.max 1e-9 dc_legacy in
  let probe_speedup =
    probe_compiled_rate /. Float.max 1e-9 probe_legacy_rate
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (if fast then "fast" else "default"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"newton_kernel\": {\"legacy_solves_per_sec\": %.1f, \
        \"compiled_solves_per_sec\": %.1f, \"speedup\": %.3f, \
        \"legacy_minor_words_per_solve\": %.1f, \
        \"compiled_minor_words_per_solve\": %.1f},\n"
       kernel_legacy kernel_compiled
       (kernel_compiled /. Float.max 1e-9 kernel_legacy)
       kernel_legacy_words kernel_compiled_words);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"dc_sweep\": {\"levels\": %d, \"legacy_solves_per_sec\": %.1f, \
        \"compiled_solves_per_sec\": %.1f, \"speedup\": %.3f, \
        \"legacy_minor_words_per_solve\": %.1f, \
        \"compiled_minor_words_per_solve\": %.1f, \
        \"identical_solutions\": %b},\n"
       n_levels dc_legacy dc_compiled dc_speedup dc_legacy_words
       dc_compiled_words sweep_identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"dc_probe\": {\"legacy_probes_per_sec\": %.1f, \
        \"compiled_probes_per_sec\": %.1f, \"speedup\": %.3f},\n"
       probe_legacy_rate probe_compiled_rate probe_speedup);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"end_to_end\": {\"faults\": %d, \"legacy_wall_seconds\": %.3f, \
        \"compiled_wall_seconds\": %.3f, \"speedup\": %.3f, \
        \"identical_results\": %b}\n"
       (List.length compiled_run.Engine.results)
       legacy_dt compiled_dt
       (legacy_dt /. Float.max 1e-9 compiled_dt)
       identical);
  Buffer.add_string buf "}\n";
  let path = "BENCH_hotpath.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "hotpath bench: wrote %s\n%!" path;
  Printf.eprintf
    "hotpath bench: DC sweep %.0f -> %.0f solves/s (%.2fx), probe %.2fx, \
     end-to-end %.2fs -> %.2fs (%.2fx)\n%!"
    dc_legacy dc_compiled dc_speedup probe_speedup legacy_dt compiled_dt
    (legacy_dt /. Float.max 1e-9 compiled_dt);
  if not (identical && sweep_identical) then exit 1;
  (* the acceptance bar for the full (non-smoke) benchmark *)
  if (not smoke) && dc_speedup < 3. then begin
    Printf.eprintf
      "hotpath bench: FAIL DC sweep speedup %.2fx below the 3x bar\n%!"
      dc_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Impact ladder: rank-1 warm-start continuation vs compiled restamp    *)
(* ------------------------------------------------------------------ *)

(* Measures the fault-impact ladder kernel — the sequence of sensitivity
   probes Generate's impact walk performs at one fault site — under the
   three evaluator modes: legacy rebuild-per-probe, compiled restamp
   (the default), and compiled restamp with warm-start continuation
   (Newton seeded from the previous impact level, rank-1 first steps on
   the held factorization).  Writes BENCH_impact.json.  The outcome
   contract is checked at two levels: the ladder sensitivities (legacy
   vs compiled must be bitwise identical; continuation must reach the
   same detect verdicts with a small relative deviation) and an
   end-to-end generation run (the continuation run must name the same
   surviving configuration per fault and agree on the critical impact
   within the log-bisection tolerance). *)
let run_impact_bench ~fast ~smoke =
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  let window = if smoke then 0.2 else 1.0 in
  let macro = Macros.Iv_converter.macro in
  let nominal =
    Experiments.Setup.target_of_macro macro Macros.Process.nominal
  in
  let corners =
    List.map (Experiments.Setup.target_of_macro macro)
      (Macros.Process.corners ())
  in
  let config = Experiments.Iv_configs.config1 in
  prerr_endline "impact bench: calibrating tolerance box...";
  let box_model = Tolerance.calibrate ~profile config ~nominal ~corners () in
  let evaluator ?continuation mode =
    Evaluator.create ~profile ~mode ?continuation config ~nominal ~box_model
  in
  let ev_legacy = evaluator `Legacy in
  let ev_compiled = evaluator `Compiled in
  let ev_cont = evaluator ~continuation:true `Compiled in
  let bridge = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let r_dict = Faults.Fault.impact_resistance bridge in
  let n_levels = 16 in
  (* the impact walk's geometric ladder around the dictionary impact *)
  let ladder =
    Array.init n_levels (fun i -> r_dict *. (2. ** float_of_int (i - 3)))
  in
  let values = Test_param.seeds_of config.Test_config.params in
  let probe ev r =
    Evaluator.sensitivity ~continue:true ev
      (Faults.Fault.with_impact bridge r)
      values
  in
  (* outcome parity on the ladder itself *)
  let s_legacy = Array.map (probe ev_legacy) ladder in
  let s_compiled = Array.map (probe ev_compiled) ladder in
  let s_cont = Array.map (probe ev_cont) ladder in
  let ladder_bit_identical = bitwise_equal s_legacy s_compiled in
  if not ladder_bit_identical then
    prerr_endline "impact bench: WARNING compiled ladder diverged from legacy!";
  let verdicts_agree =
    Array.for_all2
      (fun a b -> Sensitivity.detects a = Sensitivity.detects b)
      s_cont s_compiled
  in
  if not verdicts_agree then
    prerr_endline
      "impact bench: WARNING continuation detect verdicts diverged!";
  let max_rel_dev =
    Array.map2
      (fun a b -> Float.abs (a -. b) /. Float.max 1e-9 (Float.abs b))
      s_cont s_compiled
    |> Array.fold_left Float.max 0.
  in
  (* throughput and allocation pressure per ladder probe *)
  let ladder_pass ev () = Array.iter (fun r -> ignore (probe ev r)) ladder in
  let per_probe x = x *. float_of_int n_levels in
  let words_reps = if smoke then 10 else 100 in
  prerr_endline "impact bench: ladder kernel (legacy)...";
  let legacy_rate = per_probe (rate ~seconds:window (ladder_pass ev_legacy)) in
  let legacy_words =
    minor_words_per ~reps:words_reps (ladder_pass ev_legacy)
    /. float_of_int n_levels
  in
  prerr_endline "impact bench: ladder kernel (compiled)...";
  let compiled_rate =
    per_probe (rate ~seconds:window (ladder_pass ev_compiled))
  in
  let compiled_words =
    minor_words_per ~reps:words_reps (ladder_pass ev_compiled)
    /. float_of_int n_levels
  in
  prerr_endline "impact bench: ladder kernel (continuation)...";
  let cont_rate = per_probe (rate ~seconds:window (ladder_pass ev_cont)) in
  let cont_words =
    minor_words_per ~reps:words_reps (ladder_pass ev_cont)
    /. float_of_int n_levels
  in
  (* end-to-end generation: the continuation contract on real outcomes *)
  let end_to_end ?continuation mode =
    let ctx = Experiments.Setup.iv ~profile ~mode ?continuation () in
    let ctx =
      if smoke then Experiments.Setup.reduced ctx ~n_faults:4 else ctx
    in
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ctx in
    (Unix.gettimeofday () -. t0, run)
  in
  prerr_endline "impact bench: end-to-end generation (legacy)...";
  let legacy_dt, legacy_run = end_to_end `Legacy in
  prerr_endline "impact bench: end-to-end generation (compiled)...";
  let compiled_dt, compiled_run = end_to_end `Compiled in
  prerr_endline "impact bench: end-to-end generation (continuation)...";
  let cont_dt, cont_run = end_to_end ~continuation:true `Compiled in
  let bytes_identical =
    Session.to_string legacy_run.Engine.results
    = Session.to_string compiled_run.Engine.results
  in
  if not bytes_identical then
    prerr_endline
      "impact bench: WARNING compiled session diverged from legacy!";
  let mismatch (a : Generate.result) (b : Generate.result) =
    if a.Generate.fault_id <> b.Generate.fault_id then
      Some
        (Printf.sprintf "fault order: %s vs %s" a.Generate.fault_id
           b.Generate.fault_id)
    else if Generate.best_config_id a <> Generate.best_config_id b then
      Some
        (Printf.sprintf "%s: config #%d vs #%d" a.Generate.fault_id
           (Generate.best_config_id a)
           (Generate.best_config_id b))
    else
      match (a.Generate.outcome, b.Generate.outcome) with
      | ( Generate.Unique { critical_impact = ca; _ },
          Generate.Unique { critical_impact = cb; _ } ) ->
          (* refine_critical bisects until hi/lo <= 1.1; two
             tolerance-identical runs can land one bisection bracket
             apart *)
          let ratio = if ca > cb then ca /. cb else cb /. ca in
          if ratio <= 1.25 then None
          else
            Some
              (Printf.sprintf "%s: critical impact %.1f vs %.1f"
                 a.Generate.fault_id ca cb)
      | Generate.Undetectable _, Generate.Undetectable _ -> None
      | Generate.Unique _, Generate.Undetectable _ ->
          Some (a.Generate.fault_id ^ ": unique vs undetectable")
      | Generate.Undetectable _, Generate.Unique _ ->
          Some (a.Generate.fault_id ^ ": undetectable vs unique")
  in
  let outcome_compatible =
    List.length compiled_run.Engine.results
    = List.length cont_run.Engine.results
    &&
    let mismatches =
      List.filter_map Fun.id
        (List.map2 mismatch compiled_run.Engine.results
           cont_run.Engine.results)
    in
    List.iter
      (fun m -> Printf.eprintf "impact bench: outcome mismatch: %s\n%!" m)
      mismatches;
    mismatches = []
  in
  if not outcome_compatible then
    prerr_endline
      "impact bench: WARNING continuation outcomes diverged from compiled!";
  let identical_outcomes =
    ladder_bit_identical && verdicts_agree && bytes_identical
    && outcome_compatible
  in
  let cont_speedup = cont_rate /. Float.max 1e-9 compiled_rate in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (if fast then "fast" else "default"));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"ladder\": {\"levels\": %d, \"r_dict\": %.1f, \
        \"legacy_probes_per_sec\": %.1f, \"compiled_probes_per_sec\": %.1f, \
        \"continuation_probes_per_sec\": %.1f, \"speedup_vs_compiled\": %.3f, \
        \"speedup_vs_legacy\": %.3f, \"legacy_minor_words_per_probe\": %.1f, \
        \"compiled_minor_words_per_probe\": %.1f, \
        \"continuation_minor_words_per_probe\": %.1f, \
        \"max_rel_deviation\": %.3e},\n"
       n_levels r_dict legacy_rate compiled_rate cont_rate cont_speedup
       (cont_rate /. Float.max 1e-9 legacy_rate)
       legacy_words compiled_words cont_words max_rel_dev);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"end_to_end\": {\"faults\": %d, \"legacy_wall_seconds\": %.3f, \
        \"compiled_wall_seconds\": %.3f, \"continuation_wall_seconds\": %.3f, \
        \"speedup_vs_compiled\": %.3f, \"identical_session_bytes\": %b, \
        \"outcome_compatible\": %b},\n"
       (List.length cont_run.Engine.results)
       legacy_dt compiled_dt cont_dt
       (compiled_dt /. Float.max 1e-9 cont_dt)
       bytes_identical outcome_compatible);
  Buffer.add_string buf
    (Printf.sprintf "  \"identical_outcomes\": %b\n" identical_outcomes);
  Buffer.add_string buf "}\n";
  let path = "BENCH_impact.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "impact bench: wrote %s\n%!" path;
  Printf.eprintf
    "impact bench: ladder %.0f -> %.0f -> %.0f probes/s (continuation %.2fx \
     vs compiled), end-to-end %.2fs -> %.2fs -> %.2fs\n%!"
    legacy_rate compiled_rate cont_rate cont_speedup legacy_dt compiled_dt
    cont_dt;
  if not identical_outcomes then exit 1;
  (* the acceptance bar for the full (non-smoke) benchmark *)
  if (not smoke) && cont_speedup < 2. then begin
    Printf.eprintf
      "impact bench: FAIL continuation speedup %.2fx below the 2x bar\n%!"
      cont_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fuzz campaign benchmark: chaos-harness throughput and health.       *)
(* ------------------------------------------------------------------ *)

(* [bench --fuzz [--smoke]]: run a pinned-seed campaign batch and write
   BENCH_fuzz.json with throughput, per-invariant tallies, a
   double-run byte-determinism check and a planted-violation self-test.
   Exits nonzero on any violation, nondeterminism or self-test miss, so
   CI can gate on the chaos harness staying healthy. *)
let run_fuzz_bench ~smoke =
  let campaigns = if smoke then 6 else 40 in
  let options =
    { Fuzz.Campaign.default_options with Fuzz.Campaign.campaigns; seed = 2026L }
  in
  let run_exn options =
    match Fuzz.Campaign.run options with
    | Ok r -> r
    | Error m ->
        Printf.eprintf "fuzz bench: %s\n%!" m;
        exit 1
  in
  prerr_endline "fuzz bench: campaign batch...";
  let t0 = Unix.gettimeofday () in
  let report = run_exn options in
  let elapsed = Unix.gettimeofday () -. t0 in
  let scenarios_per_sec = float_of_int report.Fuzz.Campaign.r_scenarios /. elapsed in
  (* byte-determinism: an identical second batch must render to the same
     JSON (report_json excludes jobs and timing by construction) *)
  prerr_endline "fuzz bench: determinism re-run...";
  let deterministic =
    String.equal
      (Fuzz.Campaign.report_json report)
      (Fuzz.Campaign.report_json (run_exn options))
  in
  (* planted-violation self-test: the harness must find the deliberate
     violation and shrink it to the exact minimal counterexample *)
  prerr_endline "fuzz bench: planted self-test...";
  let st_report =
    run_exn
      {
        options with
        Fuzz.Campaign.campaigns = (if smoke then 8 else 12);
        seed = 3L;
        checks = Some [ "session-roundtrip" ];
        self_test = true;
      }
  in
  let expected_shrunk =
    { Fuzz.Scenario.minimal with Fuzz.Scenario.fault_count = 2 }
  in
  let planted =
    List.filter
      (fun v -> String.equal v.Fuzz.Campaign.v_invariant "self-test")
      st_report.Fuzz.Campaign.r_violations
  in
  let self_test_ok =
    planted <> []
    && List.for_all
         (fun v -> v.Fuzz.Campaign.v_shrunk = expected_shrunk)
         planted
  in
  let shrink_steps =
    List.fold_left
      (fun acc v -> Int.max acc v.Fuzz.Campaign.v_shrink_steps)
      0 planted
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"campaigns\": %d, \"seed\": %Ld, \"smoke\": %b},\n"
       campaigns options.Fuzz.Campaign.seed smoke);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scenarios\": %d,\n  \"build_failures\": %d,\n  \
        \"elapsed_sec\": %.3f,\n  \"scenarios_per_sec\": %.2f,\n"
       report.Fuzz.Campaign.r_scenarios report.Fuzz.Campaign.r_build_failures
       elapsed scenarios_per_sec);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"checks\": {\"run\": %d, \"passed\": %d, \"skipped\": %d, \
        \"violations\": %d},\n"
       report.Fuzz.Campaign.r_checks_run report.Fuzz.Campaign.r_checks_passed
       report.Fuzz.Campaign.r_checks_skipped
       (List.length report.Fuzz.Campaign.r_violations));
  Buffer.add_string buf "  \"invariants\": {\n";
  let n_tallies = List.length report.Fuzz.Campaign.r_tallies in
  List.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf
           "    \"%s\": {\"pass\": %d, \"skip\": %d, \"fail\": %d}%s\n"
           t.Fuzz.Campaign.t_name t.Fuzz.Campaign.t_pass
           t.Fuzz.Campaign.t_skip t.Fuzz.Campaign.t_fail
           (if i = n_tallies - 1 then "" else ",")))
    report.Fuzz.Campaign.r_tallies;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"deterministic_rerun\": %b,\n" deterministic);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"self_test\": {\"found_and_shrunk\": %b, \"shrink_steps\": %d}\n"
       self_test_ok shrink_steps);
  Buffer.add_string buf "}\n";
  let path = "BENCH_fuzz.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.eprintf
    "fuzz bench: %d scenario(s) in %.1fs (%.1f/s), %d violation(s); wrote %s\n%!"
    report.Fuzz.Campaign.r_scenarios elapsed scenarios_per_sec
    (List.length report.Fuzz.Campaign.r_violations)
    path;
  let fail msg =
    Printf.eprintf "fuzz bench: FAIL %s\n%!" msg;
    exit 1
  in
  if not (Fuzz.Campaign.clean report) then fail "campaign violations or build failures";
  if not deterministic then fail "re-run was not byte-identical";
  if not self_test_ok then fail "planted violation not found and shrunk"

(* ------------------------------------------------------------------ *)
(* Adjoint benchmark: gradient-mode generation vs the FD-free oracle.   *)
(* ------------------------------------------------------------------ *)

(* [bench --adjoint [--smoke]]: run the whole-dictionary generation
   twice on the DC-levels configurations (#1 Brent, #2 Powell — the two
   with an analytic adjoint gradient), once with the bracketing oracle
   and once in gradient mode, and write BENCH_adjoint.json with probe
   counts, wall-clock and the per-fault verdict-compat ratio.  The
   non-smoke acceptance bars are a >= 5x reduction in optimizer probes
   and verdict-compat 1.0; a compat miss exits nonzero even in smoke. *)
let run_adjoint_bench ~fast ~smoke =
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  prerr_endline "adjoint bench: calibrating tolerance boxes...";
  let ctx =
    Experiments.Setup.create ~profile ~macro:Macros.Iv_converter.macro
      ~configs:
        [ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]
      ()
  in
  let ctx = if smoke then Experiments.Setup.reduced ctx ~n_faults:8 else ctx in
  let faults =
    List.length (Faults.Dictionary.entries ctx.Experiments.Setup.dictionary)
  in
  let timed_run label options =
    Printf.eprintf "adjoint bench: generation run (%s)...\n%!" label;
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ~options ctx in
    (run, Unix.gettimeofday () -. t0)
  in
  let oracle_run, oracle_dt = timed_run "oracle" Generate.default_options in
  let grad_run, grad_dt =
    timed_run "gradient"
      { Generate.default_options with Generate.use_gradient = true }
  in
  (* optimizer probes: every evaluator solve spent inside candidate
     optimization, summed over faults and configurations (the impact
     convergence downstream of it is shared by both modes) *)
  let probes (run : Engine.run) =
    List.fold_left
      (fun acc (r : Generate.result) ->
        List.fold_left
          (fun acc (c : Generate.candidate) ->
            acc + c.Generate.optimizer_evaluations)
          acc r.Generate.candidates)
      0 run.Engine.results
  in
  let oracle_probes = probes oracle_run in
  let grad_probes = probes grad_run in
  let reduction =
    float_of_int oracle_probes /. Float.max 1. (float_of_int grad_probes)
  in
  (* verdict compat: the detect verdict (unique vs undetectable) per
     fault must be identical.  The winning configuration may legitimately
     flip between near-tied candidates whose optima sit at slightly
     different points, so config agreement is reported separately and
     not gated. *)
  let flavour (r : Generate.result) =
    match r.Generate.outcome with
    | Generate.Unique _ -> "unique"
    | Generate.Undetectable _ -> "undetectable"
  in
  let mismatches =
    List.filter_map Fun.id
      (List.map2
         (fun (a : Generate.result) (b : Generate.result) ->
           if a.Generate.fault_id <> b.Generate.fault_id then
             Some
               (Printf.sprintf "fault order: %s vs %s" a.Generate.fault_id
                  b.Generate.fault_id)
           else if flavour a <> flavour b then
             Some
               (Printf.sprintf "%s: %s vs %s" a.Generate.fault_id (flavour a)
                  (flavour b))
           else None)
         oracle_run.Engine.results grad_run.Engine.results)
  in
  let compat =
    float_of_int (faults - List.length mismatches) /. float_of_int faults
  in
  let config_matches =
    List.fold_left2
      (fun acc (a : Generate.result) (b : Generate.result) ->
        if Generate.best_config_id a = Generate.best_config_id b then acc + 1
        else acc)
      0 oracle_run.Engine.results grad_run.Engine.results
  in
  List.iter
    (fun m -> Printf.eprintf "adjoint bench: verdict mismatch: %s\n%!" m)
    mismatches;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (if fast then "fast" else "default"));
  Buffer.add_string buf
    (Printf.sprintf "  \"faults\": %d,\n  \"configs\": [1, 2],\n" faults);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"oracle\": {\"optimizer_probes\": %d, \"wall_seconds\": %.3f},\n"
       oracle_probes oracle_dt);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"gradient\": {\"optimizer_probes\": %d, \"wall_seconds\": %.3f},\n"
       grad_probes grad_dt);
  Buffer.add_string buf
    (Printf.sprintf "  \"probe_reduction\": %.3f,\n" reduction);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_speedup\": %.3f,\n"
       (oracle_dt /. Float.max 1e-9 grad_dt));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdict_compat\": %.4f,\n" compat);
  Buffer.add_string buf
    (Printf.sprintf "  \"winning_config_match\": %.4f,\n"
       (float_of_int config_matches /. float_of_int faults));
  Buffer.add_string buf "  \"mismatches\": [";
  List.iteri
    (fun i m ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\"" (if i = 0 then "" else ", ") m))
    mismatches;
  Buffer.add_string buf "]\n}\n";
  let path = "BENCH_adjoint.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.eprintf
    "adjoint bench: %d faults, probes %d -> %d (%.2fx), wall %.2fs -> %.2fs, \
     compat %.4f; wrote %s\n%!"
    faults oracle_probes grad_probes reduction oracle_dt grad_dt compat path;
  if List.length mismatches > 0 then begin
    Printf.eprintf "adjoint bench: FAIL verdict compat %.4f below 1.0\n%!"
      compat;
    exit 1
  end;
  (* the acceptance bar for the probe contract *)
  if (not smoke) && reduction < 5. then begin
    Printf.eprintf
      "adjoint bench: FAIL probe reduction %.2fx below the 5x bar\n%!"
      reduction;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sparse-backend benchmark: dense vs sparse MNA engines.               *)
(* ------------------------------------------------------------------ *)

(* [bench --sparse [--smoke]]: three measurements against the dense
   baseline, written to BENCH_sparse.json.
   1. A fault-impact restamp sweep (assemble + factor + solve) on
      filter-chain macros of ~16, ~64 and ~128 unknowns; the non-smoke
      acceptance bar is a >= 5x sparse speedup at the largest size.
   2. A batched multi-fault DC-levels solve (one pattern-reuse
      refactorization per fault, blocked RHS sweep) against the
      sequential per-fault path, with a tolerance agreement check.
   3. The end-to-end generation run on the paper's 55-fault dictionary
      on both backends: detect verdicts and session bytes must be
      identical — gated even in smoke mode. *)
(* ---------------------------------------------------------------------- *)
(* serve bench: daemon throughput/latency plus the correctness gates      *)
(* that make concurrency trustworthy — verdict compatibility with the    *)
(* one-shot path, injected-session isolation and trace integrity.        *)
(* ---------------------------------------------------------------------- *)

let run_serve_bench ~smoke =
  let pid = Unix.getpid () in
  let socket = Printf.sprintf "/tmp/atpg-sb-%d.sock" pid in
  let spool = Printf.sprintf "/tmp/atpg-sb-%d.spool" pid in
  let trace = Printf.sprintf "/tmp/atpg-sb-%d.trace" pid in
  let budget = 3 in
  Obs.enable ~trace ();
  let server =
    match Serve.Server.start { Serve.Server.socket; budget; spool } with
    | Ok s -> s
    | Error m ->
        Printf.eprintf "serve bench: %s\n%!" m;
        exit 1
  in
  (* the workload: generate requests over several macros and both
     backends, every one at the fast profile with jobs=1 so the
     reference runs below pose bit-identical problems *)
  let base_specs =
    if smoke then
      [ ("iv", "dense", 4); ("rc10", "dense", 4); ("rc10", "sparse", 4) ]
    else
      [
        ("iv", "dense", 8);
        ("iv", "sparse", 8);
        ("rc10", "dense", 6);
        ("rc10", "sparse", 6);
        ("skc8", "dense", 6);
        ("skc8", "sparse", 6);
      ]
  in
  let repeats = if smoke then 2 else 2 in
  let specs =
    List.concat_map (fun s -> List.init repeats (fun _ -> s)) base_specs
  in
  let request_json ?(inject = []) ?(seed = 0L) (macro, backend, take) =
    Serve.Jsonl.Obj
      ([
         ("op", Serve.Jsonl.Str "generate");
         ("macro", Serve.Jsonl.Str macro);
         ("backend", Serve.Jsonl.Str backend);
         ("fast", Serve.Jsonl.Bool true);
         ("take", Serve.Jsonl.Num (float_of_int take));
         ("jobs", Serve.Jsonl.Num 1.);
       ]
      @
      match inject with
      | [] -> []
      | sp ->
          [
            ("inject",
             Serve.Jsonl.List (List.map (fun s -> Serve.Jsonl.Str s) sp));
            ("inject_seed", Serve.Jsonl.Num (Int64.to_float seed));
          ])
  in
  let queue = Queue.create () in
  List.iteri (fun i s -> Queue.add (i, s) queue) specs;
  let qmutex = Mutex.create () in
  let results =
    Array.make (List.length specs) (("", "", 0), None, 0.0, "w?")
  in
  let worker () =
    let rec go () =
      Mutex.lock qmutex;
      let job = Queue.take_opt queue in
      Mutex.unlock qmutex;
      match job with
      | None -> ()
      | Some (i, spec) ->
          let req = Printf.sprintf "w%d" i in
          let t0 = Unix.gettimeofday () in
          let reply =
            match Serve.Client.roundtrip ~socket ~req (request_json spec) with
            | Ok r -> Some r
            | Error m ->
                Printf.eprintf "serve bench: w%d: %s\n%!" i m;
                None
          in
          results.(i) <- (spec, reply, Unix.gettimeofday () -. t0, req);
          go ()
    in
    go ()
  in
  prerr_endline "serve bench: workload...";
  let wall0 = Unix.gettimeofday () in
  let threads = List.init budget (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. wall0 in
  (* isolation pair: one injected and one clean request running
     concurrently on the same problem — the clean verdicts must be
     unperturbed (this is the de-globalized failpoint seam under real
     concurrency) *)
  prerr_endline "serve bench: injected-isolation pair...";
  let iso_spec = ("rc10", "dense", 4) in
  let iso_clean = ref None and iso_inj = ref None in
  let iso_threads =
    [
      Thread.create
        (fun () ->
          iso_inj :=
            Result.to_option
              (Serve.Client.roundtrip ~socket ~req:"iso-inj"
                 (request_json
                    ~inject:[ "dc.no_convergence=0.5@3" ]
                    ~seed:7L iso_spec)))
        ();
      Thread.create
        (fun () ->
          iso_clean :=
            Result.to_option
              (Serve.Client.roundtrip ~socket ~req:"iso-cln"
                 (request_json iso_spec)))
        ();
    ]
  in
  List.iter Thread.join iso_threads;
  Serve.Server.stop server;
  Obs.shutdown ();
  (* reference verdicts: the same construction the CLI one-shot path
     uses, run in-process *)
  prerr_endline "serve bench: one-shot reference runs...";
  let reference = Hashtbl.create 8 in
  let reference_verdicts ((macro_name, backend_str, take) as key) =
    match Hashtbl.find_opt reference key with
    | Some v -> v
    | None ->
        let backend =
          if String.equal backend_str "sparse" then Circuit.Mna.Sparse
          else Circuit.Mna.Dense
        in
        let ctx, options =
          if String.equal macro_name "iv" then
            (Experiments.Setup.iv ~profile:Execute.fast_profile ~backend (), None)
          else
            let macro =
              match Macros.Registry.find macro_name with
              | Ok m -> m
              | Error e ->
                  Printf.eprintf "serve bench: %s\n%!" e;
                  exit 1
            in
            ( Experiments.Setup.probe ~profile:Execute.fast_profile ~backend
                ~macro (),
              Some Experiments.Setup.probe_options )
        in
        let ctx = Experiments.Setup.reduced ctx ~n_faults:take in
        let run =
          Experiments.Runs.engine_run ?options ~executor:Engine.sequential ctx
        in
        let v = Serve.Jsonl.to_string (Serve.Protocol.verdicts_of_run run) in
        Hashtbl.replace reference key v;
        v
  in
  let verdicts_of_reply reply =
    Option.bind (Serve.Client.result_event reply) (fun r ->
        Option.map Serve.Jsonl.to_string (Serve.Jsonl.member "verdicts" r))
  in
  let total = Array.length results in
  let completed = ref 0 and matched = ref 0 and dropped = ref 0 in
  let latencies = ref [] in
  Array.iter
    (fun (spec, reply, dt, req) ->
      match reply with
      | None -> incr dropped
      | Some reply -> (
          let accepted =
            List.exists
              (fun e -> Serve.Jsonl.str_member "ev" e = Some "accepted")
              reply.Serve.Client.events
          in
          let has_done =
            List.exists
              (fun e -> Serve.Jsonl.str_member "ev" e = Some "done")
              reply.Serve.Client.events
          in
          if accepted && not has_done then incr dropped
          else begin
            incr completed;
            latencies := dt :: !latencies;
            match verdicts_of_reply reply with
            | None ->
                Printf.eprintf "serve bench: %s: no verdicts in result\n%!" req
            | Some v ->
                if String.equal v (reference_verdicts spec) then incr matched
                else
                  Printf.eprintf "serve bench: %s: verdicts diverge\n%!" req
          end))
    results;
  let verdict_compat =
    if !completed = 0 then 0.0
    else float_of_int !matched /. float_of_int !completed
  in
  let iso_ok =
    match (!iso_clean, !iso_inj) with
    | Some clean, Some inj ->
        (match verdicts_of_reply clean with
        | Some v -> String.equal v (reference_verdicts iso_spec)
        | None -> false)
        && (inj.Serve.Client.status = 0 || inj.Serve.Client.status = 3)
    | _ -> false
  in
  (* trace integrity: every request-tagged span in the daemon's trace
     names a request we actually sent, and the concurrent phases left
     spans from more than one request *)
  let expected_reqs =
    "iso-inj" :: "iso-cln"
    :: List.init total (fun i -> Printf.sprintf "w%d" i)
  in
  let tagged = Hashtbl.create 16 in
  let foreign = ref 0 in
  (try
     let ic = open_in trace in
     (try
        while true do
          let line = input_line ic in
          match Serve.Jsonl.of_string line with
          | Ok json -> (
              match Serve.Jsonl.str_member "req" json with
              | Some r ->
                  if List.mem r expected_reqs then
                    Hashtbl.replace tagged r ()
                  else incr foreign
              | None -> ())
          | Error _ -> ()
        done
      with End_of_file -> ());
     close_in ic
   with Sys_error _ -> ());
  let trace_integrity = !foreign = 0 && Hashtbl.length tagged >= 2 in
  let percentile q =
    match List.sort Float.compare !latencies with
    | [] -> Float.nan
    | sorted ->
        let arr = Array.of_list sorted in
        let n = Array.length arr in
        arr.(Int.min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))
  in
  let p50 = percentile 0.50 *. 1000. in
  let p95 = percentile 0.95 *. 1000. in
  let p99 = percentile 0.99 *. 1000. in
  let throughput = float_of_int !completed /. Float.max 1e-9 wall in
  let stats = Serve.Server.stats server in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"smoke\": %b, \"budget\": %d, \"requests\": %d, \
        \"schema\": \"%s\"},\n"
       smoke budget total Serve.Protocol.schema);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"requests\": %d,\n  \"completed\": %d,\n  \
        \"dropped_but_accepted\": %d,\n  \"accepted\": %d,\n  \
        \"rejected\": %d,\n"
       total !completed !dropped stats.Serve.Server.st_accepted
       stats.Serve.Server.st_rejected);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"wall_seconds\": %.3f,\n  \"throughput_rps\": %.3f,\n"
       wall throughput);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n"
       p50 p95 p99);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"verdict_compat\": %.4f,\n  \"verdict_pairs\": %d,\n"
       verdict_compat !completed);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"injected_isolation\": %b,\n  \"trace_integrity\": %b\n}\n"
       iso_ok trace_integrity);
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ trace ];
  Printf.eprintf
    "serve bench: %d/%d completed, p50 %.1f ms, p99 %.1f ms, %.2f req/s, \
     verdict compat %.4f; wrote %s\n%!"
    !completed total p50 p99 throughput verdict_compat path;
  let fail msg =
    Printf.eprintf "serve bench: FAIL %s\n%!" msg;
    exit 1
  in
  if !dropped > 0 then
    fail (Printf.sprintf "%d accepted request(s) dropped" !dropped);
  if verdict_compat < 1.0 then
    fail (Printf.sprintf "verdict compat %.4f below 1.0" verdict_compat);
  if not iso_ok then fail "injected session perturbed a concurrent clean one";
  if not trace_integrity then fail "trace integrity violated";
  if not (Float.is_finite p99) then fail "p99 latency missing"

let run_sparse_bench ~fast ~smoke =
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  let window = if smoke then 0.2 else 1.0 in
  let gmin = Circuit.Dc.default_options.Circuit.Dc.gmin in
  (* 1: restamp sweep over an impact ladder on one stage resistor *)
  let impact_ladder =
    [| 10e3; 5e3; 2e3; 1e3; 500.; 8e3; 20e3; 100. |]
  in
  let restamp_row stages =
    let macro = Macros.Filter_chain.sk_chain ~stages in
    let nl = macro.Macros.Macro.build Macros.Process.nominal in
    let sweep backend =
      let sys = Circuit.Mna.build ~backend nl in
      let ws = Circuit.Mna.workspace sys in
      let x0 = Numerics.Vec.create (Circuit.Mna.size sys) 0. in
      let k = ref 0 in
      let cycle () =
        let r = impact_ladder.(!k mod Array.length impact_ladder) in
        incr k;
        Circuit.Mna.assemble_into sys ws ~x:x0 ~time:`Dc
          ~restamp:
            { Circuit.Mna.stimulus = None; impact = Some ("r1a", r) }
          ~gmin ();
        ignore (Circuit.Mna.ws_factor ws : bool);
        Circuit.Mna.ws_solve_into ws ws.Circuit.Mna.w_z ws.Circuit.Mna.w_x_new
      in
      (sys, ws, rate ~seconds:window cycle)
    in
    Printf.eprintf "sparse bench: restamp sweep (%d stages, dense)...\n%!"
      stages;
    let dsys, _, dense_rate = sweep Circuit.Mna.Dense in
    Printf.eprintf "sparse bench: restamp sweep (%d stages, sparse)...\n%!"
      stages;
    let _, sws, sparse_rate = sweep Circuit.Mna.Sparse in
    let stats =
      match Circuit.Mna.ws_sparse_stats sws with
      | Some s -> s
      | None -> assert false
    in
    let speedup = sparse_rate /. Float.max 1e-9 dense_rate in
    Printf.eprintf
      "sparse bench: %d unknowns: dense %.1f/s, sparse %.1f/s (%.2fx), \
       reuses %d/%d\n\
       %!"
      (Circuit.Mna.size dsys) dense_rate sparse_rate speedup
      stats.Numerics.Smat.pattern_reuses
      (stats.Numerics.Smat.pattern_reuses
      + stats.Numerics.Smat.full_factorizations);
    ( macro.Macros.Macro.macro_name,
      Circuit.Mna.size dsys,
      dense_rate,
      sparse_rate,
      speedup,
      stats )
  in
  let rows = List.map restamp_row [ 4; 16; 32 ] in
  let _, _, _, _, top_speedup, _ = List.nth rows (List.length rows - 1) in
  (* 2: batched multi-fault DC levels vs the sequential path *)
  let batch_stages = 16 in
  let batch_macro = Macros.Filter_chain.sk_chain ~stages:batch_stages in
  let n_levels = 4 in
  let batch_config =
    Test_config.create ~id:950 ~name:"Sparse bench DC sweep"
      ~macro_type:batch_macro.Macros.Macro.macro_type ~control_node:"in"
      ~params:
        [
          Test_param.create ~name:"v" ~units:"V" ~lower:1.0 ~upper:4.0
            ~seed:2.5;
        ]
      ~analysis:
        (Test_config.Dc_levels
           (fun v ->
             List.init n_levels (fun k ->
                 Circuit.Waveform.Dc (v.(0) +. (0.25 *. float_of_int k)))))
      ~returns:Test_config.Per_component
      ~return_names:(List.init n_levels (Printf.sprintf "V(out)@%d"))
      ~accuracy_floor:(List.init n_levels (fun _ -> 1e-3))
      ~summary:"dc levels for the batched-solve benchmark"
  in
  let batch_ev =
    Evaluator.create ~profile ~backend:Circuit.Mna.Sparse batch_config
      ~nominal:
        (Experiments.Setup.target_of_macro batch_macro
           Macros.Process.nominal)
      ~box_model:(Tolerance.floor_only batch_config)
  in
  let base_fault = Faults.Fault.bridge "in" "s4o" ~resistance:10e3 in
  let batch_faults =
    List.map (Faults.Fault.with_impact base_fault) (Array.to_list impact_ladder)
  in
  let values = Test_param.seeds_of batch_config.Test_config.params in
  Printf.eprintf "sparse bench: batched multi-fault solve...\n%!";
  let t0 = Unix.gettimeofday () in
  let batched =
    match Evaluator.batched_sensitivities batch_ev ~faults:batch_faults values with
    | Some rows -> rows
    | None ->
        Printf.eprintf "sparse bench: FAIL batched path refused the plan\n%!";
        exit 1
  in
  let batched_dt = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let sequential =
    List.map
      (fun f -> Evaluator.sensitivity_and_deviation batch_ev f values)
      batch_faults
  in
  let sequential_dt = Unix.gettimeofday () -. t0 in
  let max_diff =
    List.fold_left2
      (fun acc (sb, _) (ss, _) -> Float.max acc (Float.abs (sb -. ss)))
      0.
      (Array.to_list batched |> List.map (fun (s, d) -> (s, d)))
      sequential
  in
  let batch_tol = 1e-6 in
  Printf.eprintf
    "sparse bench: batch %d faults x %d levels: %.4fs vs %.4fs sequential, \
     max |dS| %.2e\n\
     %!"
    (List.length batch_faults) n_levels batched_dt sequential_dt max_diff;
  (* 3: end-to-end generation, dense vs sparse *)
  let end_to_end backend =
    let ctx = Experiments.Setup.iv ~profile ~backend () in
    let ctx =
      if smoke then Experiments.Setup.reduced ctx ~n_faults:4 else ctx
    in
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ctx in
    (Unix.gettimeofday () -. t0, run)
  in
  prerr_endline "sparse bench: end-to-end generation (dense)...";
  let dense_dt, dense_run = end_to_end Circuit.Mna.Dense in
  prerr_endline "sparse bench: end-to-end generation (sparse)...";
  let sparse_dt, sparse_run = end_to_end Circuit.Mna.Sparse in
  let n_faults = List.length dense_run.Engine.results in
  let flavour (r : Generate.result) =
    match r.Generate.outcome with
    | Generate.Unique _ -> "unique"
    | Generate.Undetectable _ -> "undetectable"
  in
  let verdict_matches =
    List.fold_left2
      (fun acc (a : Generate.result) (b : Generate.result) ->
        if
          a.Generate.fault_id = b.Generate.fault_id
          && flavour a = flavour b
        then acc + 1
        else acc)
      0 dense_run.Engine.results sparse_run.Engine.results
  in
  let verdict_compat = float_of_int verdict_matches /. float_of_int n_faults in
  let bytes_identical =
    Session.to_string dense_run.Engine.results
    = Session.to_string sparse_run.Engine.results
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (if fast then "fast" else "default"));
  Buffer.add_string buf "  \"restamp_sweep\": [\n";
  List.iteri
    (fun i (name, unknowns, dense_rate, sparse_rate, speedup, stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"macro\": \"%s\", \"unknowns\": %d, \"dense_per_sec\": \
            %.1f, \"sparse_per_sec\": %.1f, \"speedup\": %.3f, \
            \"sparse_full_factorizations\": %d, \"sparse_pattern_reuses\": \
            %d, \"factor_nnz\": %d}%s\n"
           name unknowns dense_rate sparse_rate speedup
           stats.Numerics.Smat.full_factorizations
           stats.Numerics.Smat.pattern_reuses stats.Numerics.Smat.factor_nnz
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"factorization_speedup_largest\": %.3f,\n" top_speedup);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"batched\": {\"macro\": \"%s\", \"faults\": %d, \"levels\": %d, \
        \"sequential_seconds\": %.4f, \"batched_seconds\": %.4f, \
        \"speedup\": %.3f, \"max_abs_diff\": %.3e, \"agrees\": %b},\n"
       batch_macro.Macros.Macro.macro_name (List.length batch_faults)
       n_levels sequential_dt batched_dt
       (sequential_dt /. Float.max 1e-9 batched_dt)
       max_diff
       (max_diff <= batch_tol));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"generation\": {\"faults\": %d, \"dense_seconds\": %.3f, \
        \"sparse_seconds\": %.3f, \"verdict_compat\": %.4f, \
        \"identical_session_bytes\": %b}\n"
       n_faults dense_dt sparse_dt verdict_compat bytes_identical);
  Buffer.add_string buf "}\n";
  let path = "BENCH_sparse.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.eprintf
    "sparse bench: largest-size speedup %.2fx, verdict compat %.4f, \
     session bytes identical %b; wrote %s\n%!"
    top_speedup verdict_compat bytes_identical path;
  let fail msg =
    Printf.eprintf "sparse bench: FAIL %s\n%!" msg;
    exit 1
  in
  if not bytes_identical then fail "session bytes differ across backends";
  if verdict_compat < 1.0 then
    fail (Printf.sprintf "verdict compat %.4f below 1.0" verdict_compat);
  if max_diff > batch_tol then
    fail
      (Printf.sprintf "batched sensitivities diverged (max |dS| %.2e)"
         max_diff);
  if (not smoke) && top_speedup < 5. then
    fail
      (Printf.sprintf "factorization speedup %.2fx below the 5x bar"
         top_speedup)

(* Config-major batched fault evaluation vs the sequential reference
   path (ISSUE 10).  Same macro, same dictionary, same tests — the only
   difference is [~batching] on the evaluators, so any divergence in
   verdicts or session bytes is a batching bug, not a workload one. *)
let run_batch_bench ~fast ~smoke =
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  let macro =
    match Macros.Registry.find "skc8" with
    | Ok m -> m
    | Error e ->
        Printf.eprintf "batch bench: FAIL %s\n%!" e;
        exit 1
  in
  let context ~batching backend =
    let ctx =
      Experiments.Setup.probe ~profile ~batching ~backend ~levels:4 ~macro ()
    in
    if smoke then Experiments.Setup.reduced ctx ~n_faults:8 else ctx
  in
  (* A coverage workload denser than the seed set: [grid] points per
     configuration spread across each parameter window, so every
     config-major batch carries several right-hand-side columns. *)
  let grid = if smoke then 2 else 4 in
  let tests_of configs =
    List.concat_map
      (fun (c : Test_config.t) ->
        List.init grid (fun g ->
            let frac = float_of_int (g + 1) /. float_of_int (grid + 1) in
            let params =
              Array.of_list
                (List.map
                   (fun (p : Test_param.t) ->
                     p.Test_param.lower
                     +. (frac *. (p.Test_param.upper -. p.Test_param.lower)))
                   c.Test_config.params)
            in
            {
              Coverage.test_label =
                Printf.sprintf "tc%d-g%d" c.Test_config.config_id g;
              test_config_id = c.Test_config.config_id;
              test_params = params;
            }))
      configs
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let reports_identical (a : Coverage.report) (b : Coverage.report) =
    List.length a.Coverage.detections = List.length b.Coverage.detections
    && List.for_all2
         (fun (da : Coverage.detection) (db : Coverage.detection) ->
           da.Coverage.det_fault_id = db.Coverage.det_fault_id
           && da.Coverage.detected_by = db.Coverage.detected_by
           && Int64.equal
                (Int64.bits_of_float da.Coverage.best_sensitivity)
                (Int64.bits_of_float db.Coverage.best_sensitivity))
         a.Coverage.detections b.Coverage.detections
  in
  let flavour (r : Generate.result) =
    match r.Generate.outcome with
    | Generate.Unique _ -> "unique"
    | Generate.Undetectable _ -> "undetectable"
  in
  let backend_row backend =
    let backend_name =
      match backend with
      | Circuit.Mna.Dense -> "dense"
      | Circuit.Mna.Sparse -> "sparse"
    in
    let seq = context ~batching:false backend in
    let bat = context ~batching:true backend in
    let tests = tests_of seq.Experiments.Setup.configs in
    let n_tests = List.length tests in
    let n_faults = Faults.Dictionary.size seq.Experiments.Setup.dictionary in
    let coverage ctx =
      Coverage.evaluate ~evaluators:ctx.Experiments.Setup.evaluators
        ctx.Experiments.Setup.dictionary tests
    in
    (* warm both contexts once so plan compilation is off the clock *)
    Printf.eprintf
      "batch bench: %s coverage sweep (%d faults x %d tests)...\n%!"
      backend_name n_faults n_tests;
    ignore (coverage seq : Coverage.report);
    ignore (coverage bat : Coverage.report);
    let stats0 = Evaluator.batch_stats () in
    let seq_cov_dt, seq_report = time (fun () -> coverage seq) in
    let bat_cov_dt, bat_report = time (fun () -> coverage bat) in
    let cov_identical = reports_identical seq_report bat_report in
    let cov_speedup = seq_cov_dt /. Float.max 1e-9 bat_cov_dt in
    Printf.eprintf
      "batch bench: %s coverage %.3fs sequential vs %.3fs batched (%.2fx), \
       identical %b\n\
       %!"
      backend_name seq_cov_dt bat_cov_dt cov_speedup cov_identical;
    Printf.eprintf "batch bench: %s end-to-end generation...\n%!" backend_name;
    let engine ctx =
      Experiments.Runs.engine_run ~options:Experiments.Setup.probe_options ctx
    in
    let seq_run_dt, seq_run = time (fun () -> engine seq) in
    let bat_run_dt, bat_run = time (fun () -> engine bat) in
    let n_results = List.length seq_run.Engine.results in
    let verdict_matches =
      List.fold_left2
        (fun acc (a : Generate.result) (b : Generate.result) ->
          if a.Generate.fault_id = b.Generate.fault_id && flavour a = flavour b
          then acc + 1
          else acc)
        0 seq_run.Engine.results bat_run.Engine.results
    in
    let verdict_compat =
      float_of_int verdict_matches /. float_of_int (max 1 n_results)
    in
    let bytes_identical =
      Session.to_string seq_run.Engine.results
      = Session.to_string bat_run.Engine.results
    in
    Printf.eprintf "batch bench: %s compaction...\n%!" backend_name;
    let compact ctx run =
      Compactor.compact ~evaluators:ctx.Experiments.Setup.evaluators
        ctx.Experiments.Setup.dictionary run
    in
    let seq_cmp_dt, seq_cmp = time (fun () -> compact seq seq_run) in
    let bat_cmp_dt, bat_cmp = time (fun () -> compact bat bat_run) in
    let compact_identical =
      List.length seq_cmp.Compactor.compact_tests
      = List.length bat_cmp.Compactor.compact_tests
      && List.for_all2
           (fun (a : Compactor.compact_test) (b : Compactor.compact_test) ->
             a.Compactor.ct_label = b.Compactor.ct_label
             && a.Compactor.ct_fault_ids = b.Compactor.ct_fault_ids
             && bitwise_equal a.Compactor.ct_params b.Compactor.ct_params)
           seq_cmp.Compactor.compact_tests bat_cmp.Compactor.compact_tests
      && seq_cmp.Compactor.coverage.Coverage.covered
         = bat_cmp.Compactor.coverage.Coverage.covered
    in
    let stats1 = Evaluator.batch_stats () in
    Printf.eprintf
      "batch bench: %s generation %.3fs vs %.3fs, compaction %.3fs vs \
       %.3fs, verdicts %.4f, bytes %b\n\
       %!"
      backend_name seq_run_dt bat_run_dt seq_cmp_dt bat_cmp_dt verdict_compat
      bytes_identical;
    ( backend_name,
      n_faults,
      n_tests,
      (seq_cov_dt, bat_cov_dt, cov_speedup, cov_identical),
      (seq_run_dt, bat_run_dt, verdict_compat, bytes_identical),
      (seq_cmp_dt, bat_cmp_dt, compact_identical),
      ( stats1.Evaluator.faults_batched - stats0.Evaluator.faults_batched,
        stats1.Evaluator.fallback_seq - stats0.Evaluator.fallback_seq,
        stats1.Evaluator.panels - stats0.Evaluator.panels ) )
  in
  let rows = List.map backend_row [ Circuit.Mna.Dense; Circuit.Mna.Sparse ] in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"provenance\": %s,\n" (provenance_json ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (if fast then "fast" else "default"));
  Buffer.add_string buf
    (Printf.sprintf "  \"macro\": \"%s\",\n" macro.Macros.Macro.macro_name);
  Buffer.add_string buf "  \"backends\": [\n";
  List.iteri
    (fun i
         ( name,
           n_faults,
           n_tests,
           (seq_cov, bat_cov, cov_speedup, cov_identical),
           (seq_run, bat_run, verdict_compat, bytes_identical),
           (seq_cmp, bat_cmp, compact_identical),
           (faults_batched, fallback_seq, panels) ) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"backend\": \"%s\", \"faults\": %d, \"tests\": %d,\n\
           \     \"coverage\": {\"sequential_seconds\": %.4f, \
            \"batched_seconds\": %.4f, \"speedup\": %.3f, \
            \"identical_reports\": %b},\n\
           \     \"generation\": {\"sequential_seconds\": %.4f, \
            \"batched_seconds\": %.4f, \"speedup\": %.3f, \
            \"verdict_compat\": %.4f, \"identical_session_bytes\": %b},\n\
           \     \"compaction\": {\"sequential_seconds\": %.4f, \
            \"batched_seconds\": %.4f, \"speedup\": %.3f, \
            \"identical_compact_sets\": %b},\n\
           \     \"batch_counters\": {\"faults_batched\": %d, \
            \"fallback_seq\": %d, \"panels\": %d}}%s\n"
           name n_faults n_tests seq_cov bat_cov cov_speedup cov_identical
           seq_run bat_run
           (seq_run /. Float.max 1e-9 bat_run)
           verdict_compat bytes_identical seq_cmp bat_cmp
           (seq_cmp /. Float.max 1e-9 bat_cmp)
           compact_identical faults_batched fallback_seq panels
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  let cov_speedup_min =
    List.fold_left
      (fun acc (_, _, _, (_, _, s, _), _, _, _) -> Float.min acc s)
      infinity rows
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"coverage_speedup_min\": %.3f\n" cov_speedup_min);
  Buffer.add_string buf "}\n";
  let path = "BENCH_batch.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.eprintf
    "batch bench: coverage speedup min %.2fx across backends; wrote %s\n%!"
    cov_speedup_min path;
  let fail msg =
    Printf.eprintf "batch bench: FAIL %s\n%!" msg;
    exit 1
  in
  List.iter
    (fun ( name,
           _,
           _,
           (_, _, _, cov_identical),
           (_, _, verdict_compat, bytes_identical),
           (_, _, compact_identical),
           (faults_batched, _, panels) ) ->
      if not cov_identical then
        fail (Printf.sprintf "%s: coverage reports differ" name);
      if verdict_compat < 1.0 then
        fail
          (Printf.sprintf "%s: verdict compat %.4f below 1.0" name
             verdict_compat);
      if not bytes_identical then
        fail (Printf.sprintf "%s: session bytes differ" name);
      if not compact_identical then
        fail (Printf.sprintf "%s: compact test sets differ" name);
      if faults_batched = 0 then
        fail (Printf.sprintf "%s: batched path never engaged" name);
      if panels = 0 then
        fail (Printf.sprintf "%s: no factorization panels recorded" name))
    rows;
  if (not smoke) && cov_speedup_min < 3. then
    fail
      (Printf.sprintf "coverage speedup %.2fx below the 3x bar"
         cov_speedup_min)

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  let reports_only = Array.exists (String.equal "--reports-only") Sys.argv in
  let bench_only = Array.exists (String.equal "--bench-only") Sys.argv in
  let parallel = Array.exists (String.equal "--parallel") Sys.argv in
  let hotpath = Array.exists (String.equal "--hotpath") Sys.argv in
  let impact = Array.exists (String.equal "--impact") Sys.argv in
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let fuzz = Array.exists (String.equal "--fuzz") Sys.argv in
  let adjoint = Array.exists (String.equal "--adjoint") Sys.argv in
  let sparse = Array.exists (String.equal "--sparse") Sys.argv in
  let serve = Array.exists (String.equal "--serve") Sys.argv in
  let batch = Array.exists (String.equal "--batch") Sys.argv in
  if serve then run_serve_bench ~smoke
  else if batch then run_batch_bench ~fast ~smoke
  else if sparse then run_sparse_bench ~fast ~smoke
  else if adjoint then run_adjoint_bench ~fast ~smoke
  else if fuzz then run_fuzz_bench ~smoke
  else if impact then run_impact_bench ~fast ~smoke
  else if hotpath then run_hotpath_bench ~fast ~smoke
  else begin
    let profile =
      if fast then Execute.fast_profile else Execute.default_profile
    in
    prerr_endline "calibrating tolerance boxes...";
    let ctx = Experiments.Setup.iv ~profile () in
    if parallel then run_parallel_bench ctx
    else begin
      if not bench_only then run_reports ctx;
      if not reports_only then run_benchmarks ctx
    end
  end
