(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (printed as report sections), then times the computational
   kernels behind each experiment with Bechamel. *)

open Bechamel
open Toolkit
open Testgen

let section id body =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" id;
  Printf.printf "==============================================================\n";
  print_string body;
  print_newline ()

let progress ~done_ ~total ~fault_id =
  Printf.eprintf "  generation [%2d/%2d] %s\n%!" done_ total fault_id

(* ------------------------------------------------------------------ *)
(* Reproduction reports                                                 *)
(* ------------------------------------------------------------------ *)

let run_reports ctx =
  (* the paper's tables and figures *)
  section "FIG1" (Experiments.Runs.fig1 ());
  section "TAB1" (Experiments.Runs.tab1 ());
  section "FIG234" (Experiments.Runs.fig234 ctx);
  section "FIG5" (Experiments.Runs.fig5 ctx);
  section "FIG6" (Experiments.Runs.fig6 ctx);
  section "FIG7" (Experiments.Runs.fig7 ());
  let run = Experiments.Runs.engine_run ~progress ctx in
  section "TAB2" (Experiments.Runs.tab2 ctx run);
  section "FIG8" (Experiments.Runs.fig8 ctx run);
  section "TAB3" (Experiments.Runs.tab3 ctx run);
  let compaction = Experiments.Runs.compact_run ~delta:0.1 ctx run in
  section "TAB4" (Experiments.Runs.render_tab4 ~delta:0.1 compaction);
  section "XBASE" (Experiments.Runs.xbase ctx run);
  (* extensions beyond the paper *)
  prerr_endline "running extension experiments...";
  section "XAC" (Experiments.Extensions.xac_report ());
  section "XIFA" (Experiments.Extensions.xifa_report ctx run compaction);
  section "XEQ" (Experiments.Extensions.xeq_report ctx run);
  section "XQ" (Experiments.Extensions.xq_report ctx compaction);
  section "XIMD" (Experiments.Extensions.ximd_report ctx)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the kernel behind each experiment                   *)
(* ------------------------------------------------------------------ *)

let make_tests ctx =
  let nl = Macros.Macro.nominal_netlist ctx.Experiments.Setup.macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  let ev1 = Experiments.Setup.evaluator ctx 1 in
  let ev3 = Experiments.Setup.evaluator ctx 3 in
  let ev4 = Experiments.Setup.evaluator ctx 4 in
  let bridge = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let seeds c = Test_config.param_values_of_seed (Evaluator.config c) in
  let assemble () =
    Circuit.Mna.assemble sys ~x:op ~time:`Dc ~gmin:1e-12 ()
  in
  let a0, z0 = assemble () in
  let rng = Numerics.Rng.create 17L in
  let cluster_items =
    List.init 45 (fun i ->
        {
          Cluster.item_id = Printf.sprintf "f%d" i;
          location =
            [|
              Numerics.Rng.uniform rng ~lo:(-50e-6) ~hi:50e-6;
              Numerics.Rng.uniform rng ~lo:5e-6 ~hi:50e-6;
            |];
        })
  in
  let cluster_params =
    (Evaluator.config (Experiments.Setup.evaluator ctx 2)).Test_config.params
  in
  [
    (* substrate kernels *)
    Test.make ~name:"substrate:lu-factor-solve(26x26)"
      (Staged.stage (fun () -> Numerics.Mat.solve a0 z0));
    Test.make ~name:"substrate:mna-assemble"
      (Staged.stage (fun () -> assemble ()));
    Test.make ~name:"substrate:dc-operating-point"
      (Staged.stage (fun () -> Circuit.Dc.operating_point sys ~time:`Dc));
    (* TAB1/FIG1: configuration bookkeeping *)
    Test.make ~name:"tab1:describe-configurations"
      (Staged.stage (fun () ->
           List.map Test_config.describe Experiments.Iv_configs.all));
    (* FIG2-4: one THD evaluation = one tps-graph pixel *)
    Test.make ~name:"fig234:thd-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev3 bridge (seeds ev3)));
    (* FIG5: box interpolation *)
    Test.make ~name:"fig5:box-interpolation"
      (Staged.stage (fun () -> Evaluator.box ev1 (seeds ev1)));
    (* FIG6/TAB2: the impact-convergence kernel: one dc-config sensitivity *)
    Test.make ~name:"tab2:dc-sensitivity-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev1 bridge (seeds ev1)));
    (* TAB3/FIG8: step-response metric evaluation *)
    Test.make ~name:"tab3:step-response-evaluation"
      (Staged.stage (fun () ->
           Evaluator.sensitivity ev4 bridge (seeds ev4)));
    (* TAB4: clustering of the optimized tests *)
    Test.make ~name:"tab4:cluster-45-tests"
      (Staged.stage (fun () ->
           Cluster.group ~params:cluster_params cluster_items));
    (* XBASE: seed-test detection check *)
    Test.make ~name:"xbase:seed-detection-check"
      (Staged.stage (fun () ->
           Sensitivity.detects (Evaluator.sensitivity ev1 bridge (seeds ev1))));
  ]

let run_benchmarks ctx =
  let tests = make_tests ctx in
  let grouped = Test.make_grouped ~name:"atpg" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Printf.printf "==============================================================\n";
  Printf.printf "BECHAMEL microbenchmarks (monotonic clock, ns/run)\n";
  Printf.printf "==============================================================\n";
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      rows := (name, estimate) :: !rows)
    clock;
  List.iter
    (fun (name, ns) ->
      if ns < 1e3 then Printf.printf "  %-42s %10.1f ns\n" name ns
      else if ns < 1e6 then Printf.printf "  %-42s %10.2f us\n" name (ns /. 1e3)
      else Printf.printf "  %-42s %10.2f ms\n" name (ns /. 1e6))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the full generation run at several job counts      *)
(* ------------------------------------------------------------------ *)

(* Times the whole-dictionary generation run sequentially and on worker
   pools of increasing size, verifies every parallel run record against
   the sequential one (the determinism contract, checked on real work,
   not just unit fixtures), and writes the measurements to
   BENCH_parallel.json.  No JSON library is baked into the image, so the
   report is emitted by hand — the schema is flat. *)
let run_parallel_bench ctx =
  let host = Parallel.default_jobs () in
  let job_counts = List.sort_uniq Int.compare [ 1; 2; 4; host ] in
  let faults =
    List.length (Faults.Dictionary.entries ctx.Experiments.Setup.dictionary)
  in
  let timed jobs =
    let executor =
      if jobs = 1 then Engine.sequential else Parallel.executor ~jobs
    in
    Printf.eprintf "parallel bench: generation run at --jobs %d...\n%!" jobs;
    let t0 = Unix.gettimeofday () in
    let run = Experiments.Runs.engine_run ~executor ctx in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.eprintf "parallel bench: --jobs %d done in %.2f s\n%!" jobs dt;
    (jobs, run, dt)
  in
  let runs = List.map timed job_counts in
  let _, seq_run, seq_dt =
    List.find (fun (jobs, _, _) -> jobs = 1) runs
  in
  let fingerprint (run : Engine.run) =
    (Session.to_string run.Engine.results, run.Engine.rung_stats,
     run.Engine.recovered_count, List.length run.Engine.failed_faults)
  in
  let seq_fp = fingerprint seq_run in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n" host);
  Buffer.add_string buf (Printf.sprintf "  \"dictionary_faults\": %d,\n" faults);
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i (jobs, run, dt) ->
      let identical = fingerprint run = seq_fp in
      if not identical then
        Printf.eprintf
          "parallel bench: WARNING --jobs %d diverged from sequential!\n%!"
          jobs;
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"wall_seconds\": %.6f, \"speedup\": %.3f, \
            \"fault_simulations\": %d, \"identical_to_sequential\": %b}%s\n"
           jobs dt (seq_dt /. Float.max 1e-9 dt)
           run.Engine.total_fault_simulations identical
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ]\n}\n";
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.eprintf "parallel bench: wrote %s\n%!" path;
  if List.exists (fun (_, run, _) -> fingerprint run <> seq_fp) runs then
    exit 1

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  let reports_only = Array.exists (String.equal "--reports-only") Sys.argv in
  let bench_only = Array.exists (String.equal "--bench-only") Sys.argv in
  let parallel = Array.exists (String.equal "--parallel") Sys.argv in
  let profile =
    if fast then Execute.fast_profile else Execute.default_profile
  in
  prerr_endline "calibrating tolerance boxes...";
  let ctx = Experiments.Setup.iv ~profile () in
  if parallel then run_parallel_bench ctx
  else begin
    if not bench_only then run_reports ctx;
    if not reports_only then run_benchmarks ctx
  end
