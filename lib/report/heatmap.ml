type bucket = { upper : float; glyph : char; legend : string }

let tps_buckets =
  [
    { upper = -1000.; glyph = '#'; legend = "S < -1000" };
    { upper = -100.; glyph = '@'; legend = "-1000 .. -100" };
    { upper = -10.; glyph = '%'; legend = "-100 .. -10" };
    { upper = -2.; glyph = '*'; legend = "-10 .. -2" };
    { upper = -1.; glyph = '+'; legend = "-2 .. -1" };
    { upper = -0.5; glyph = '='; legend = "-1 .. -0.5" };
    { upper = 0.; glyph = '-'; legend = "-0.5 .. 0 (detected)" };
    { upper = 0.5; glyph = ':'; legend = "0 .. 0.5 (undetected)" };
    { upper = infinity; glyph = '.'; legend = "> 0.5" };
  ]

let glyph_of buckets v =
  let rec pick = function
    | [] -> '?'
    | b :: rest -> if v <= b.upper then b.glyph else pick rest
  in
  (* buckets are ordered by ascending upper bound *)
  pick buckets

let render ?(buckets = tps_buckets) ~x_axis ~y_axis ~values () =
  let x_name, xs = x_axis and y_name, ys = y_axis in
  let nx = Array.length xs and ny = Array.length ys in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%s (vertical, top=%.4g) vs %s (horizontal)\n" y_name
       ys.(ny - 1) x_name);
  for yi = ny - 1 downto 0 do
    Buffer.add_string b (Printf.sprintf "%10.4g |" ys.(yi));
    for xi = 0 to nx - 1 do
      Buffer.add_char b (glyph_of buckets (values xi yi));
      Buffer.add_char b ' '
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b (String.make 11 ' ');
  Buffer.add_string b "+";
  Buffer.add_string b (String.make (2 * nx) '-');
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "%s%s: %.4g .. %.4g\n" (String.make 12 ' ') x_name xs.(0)
       xs.(nx - 1));
  Buffer.add_string b "legend: ";
  List.iter
    (fun bk -> Buffer.add_string b (Printf.sprintf "[%c] %s  " bk.glyph bk.legend))
    buckets;
  Buffer.add_char b '\n';
  Buffer.contents b

let render_1d ~x_axis ~values ~height =
  let x_name, xs = x_axis in
  let n = Array.length values in
  if Array.length xs <> n then invalid_arg "Heatmap.render_1d: length mismatch";
  if height < 2 then invalid_arg "Heatmap.render_1d: height < 2";
  if n = 0 then invalid_arg "Heatmap.render_1d: empty values";
  let lo, hi = Numerics.Stats.min_max values in
  (* Degenerate ranges: an all-equal grid gives [hi -. lo = 0.] and a NaN
     sample poisons both bounds.  Clamp to a unit span anchored at a finite
     origin so the scale column stays numeric, and pin every level into
     [0, height-1] (a NaN sample renders at the floor instead of
     propagating through [int_of_float nan]). *)
  let lo = if Float.is_finite lo then lo else 0. in
  let span =
    let s = hi -. lo in
    if Float.is_finite s && s > 0. then s else 1.
  in
  let level v =
    let raw = (v -. lo) /. span *. float_of_int (height - 1) in
    if not (Float.is_finite raw) then 0
    else max 0 (min (height - 1) (int_of_float (Float.round raw)))
  in
  let b = Buffer.create 512 in
  for row = height - 1 downto 0 do
    let threshold = lo +. (span *. float_of_int row /. float_of_int (height - 1)) in
    Buffer.add_string b (Printf.sprintf "%10.3g |" threshold);
    for i = 0 to n - 1 do
      Buffer.add_char b (if level values.(i) >= row then '*' else ' ')
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b (String.make 11 ' ');
  Buffer.add_string b "+";
  Buffer.add_string b (String.make n '-');
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "%s%s: %.4g .. %.4g\n" (String.make 12 ' ') x_name xs.(0)
       xs.(n - 1));
  Buffer.contents b
