type series = { series_glyph : char; points : (float * float) list }

let render ?(width = 56) ?(height = 18) ~x_label ~y_label ~x_range ~y_range
    series_list =
  let x_lo, x_hi = x_range and y_lo, y_hi = y_range in
  if x_lo > x_hi || y_lo > y_hi then
    invalid_arg "Scatter.render: inverted range";
  if width < 8 || height < 4 then invalid_arg "Scatter.render: grid too small";
  (* A collapsed axis (lo = hi) is legal — every in-range point sits at
     index 0 on that axis instead of dividing by a zero span. *)
  let x_span = if x_hi -. x_lo > 0. then x_hi -. x_lo else 1. in
  let y_span = if y_hi -. y_lo > 0. then y_hi -. y_lo else 1. in
  let grid = Array.make_matrix height width ' ' in
  let place glyph (x, y) =
    if x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi then begin
      let xi =
        int_of_float
          (Float.round ((x -. x_lo) /. x_span *. float_of_int (width - 1)))
      in
      let yi =
        int_of_float
          (Float.round ((y -. y_lo) /. y_span *. float_of_int (height - 1)))
      in
      grid.(height - 1 - yi).(xi) <- glyph
    end
  in
  List.iter (fun s -> List.iter (place s.series_glyph) s.points) series_list;
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "%s (vertical: %.4g .. %.4g)\n" y_label y_lo y_hi);
  Array.iter
    (fun row ->
      Buffer.add_string b "  |";
      Array.iter (Buffer.add_char b) row;
      Buffer.add_char b '\n')
    grid;
  Buffer.add_string b "  +";
  Buffer.add_string b (String.make width '-');
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "   %s: %.4g .. %.4g\n" x_label x_lo x_hi);
  Buffer.contents b

let render_1d ?(width = 56) ~label ~range points =
  let lo, hi = range in
  if lo > hi then invalid_arg "Scatter.render_1d: inverted range";
  let span = if hi -. lo > 0. then hi -. lo else 1. in
  let counts = Array.make width 0 in
  List.iter
    (fun x ->
      if x >= lo && x <= hi then begin
        let xi =
          int_of_float
            (Float.round ((x -. lo) /. span *. float_of_int (width - 1)))
        in
        counts.(xi) <- counts.(xi) + 1
      end)
    points;
  let b = Buffer.create 256 in
  Buffer.add_string b "  |";
  Array.iter
    (fun c ->
      Buffer.add_char b
        (if c = 0 then ' ' else if c < 10 then Char.chr (Char.code '0' + c) else '#'))
    counts;
  Buffer.add_char b '\n';
  Buffer.add_string b "  +";
  Buffer.add_string b (String.make width '-');
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "   %s: %.4g .. %.4g\n" label lo hi);
  Buffer.contents b
