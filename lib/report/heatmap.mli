(** ASCII heatmaps in the style of the paper's tps-graph figures.

    The figures bucket sensitivity values into ranges rendered with
    different fill patterns and a legend; here each bucket maps to one
    character. *)

type bucket = { upper : float; glyph : char; legend : string }
(** A value [v] falls into the first bucket with [v <= upper]. *)

val tps_buckets : bucket list
(** Default buckets mirroring Figs. 2–4's legend scale: strongly negative
    (deep detection) through positive (undetectable). *)

val render :
  ?buckets:bucket list ->
  x_axis:string * float array ->
  y_axis:string * float array ->
  values:(int -> int -> float) ->
  unit ->
  string
(** Render a 2-D field: [values xi yi] with [xi] indexing the x axis and
    [yi] the y axis.  The y axis is printed top-down from its last grid
    value (like the paper's plots), with axis labels and the bucket
    legend below. *)

val render_1d :
  x_axis:string * float array -> values:float array -> height:int -> string
(** Vertical-bar plot of a one-parameter sweep.  Degenerate inputs are
    clamped rather than propagated: an all-equal sweep renders with a
    unit span, and non-finite samples draw at the floor level instead of
    producing NaN scale rows.
    @raise Invalid_argument on length mismatch or [height < 2]. *)
