(* Provenance block for benchmark artifacts.  The git lookup shells out
   once per process: every BENCH_*.json written by one run must carry
   the same block, and re-resolving the SHA per sub-bench both wasted a
   process spawn and let a mid-run commit (or a midnight rollover of
   the clock) split the artifacts' provenance. *)

let git_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let block =
  lazy
    (let tm = Unix.gmtime (Unix.gettimeofday ()) in
     let stamp =
       Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
         (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
         tm.Unix.tm_sec
     in
     Printf.sprintf
       "{\"git_sha\": \"%s\", \"generated_utc\": \"%s\", \"host_cores\": %d}"
       (git_sha ()) stamp
       (Domain.recommended_domain_count ()))

let json () = Lazy.force block
