(** ASCII scatter plots (Fig. 8: optimized parameter values in the
    parameter planes of the test configurations). *)

type series = { series_glyph : char; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  x_range:float * float ->
  y_range:float * float ->
  series list ->
  string
(** Plot point sets on a [width] x [height] character grid (defaults
    56 x 18).  Overlapping points from different series show the glyph of
    the later series.  A collapsed axis ([lo = hi]) is legal: in-range
    points land at index 0 on that axis.
    @raise Invalid_argument on strictly inverted ranges ([lo > hi]) or
    tiny grids. *)

val render_1d :
  ?width:int -> label:string -> range:float * float -> float list -> string
(** Strip plot for one-parameter configurations: tick marks on one axis
    with point counts.  A collapsed range ([lo = hi]) piles every in-range
    point at index 0.
    @raise Invalid_argument on a strictly inverted range ([lo > hi]). *)
