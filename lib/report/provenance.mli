(** Shared provenance block for benchmark artifacts.

    Every BENCH_*.json report carries the same provenance object — the
    commit the numbers were measured at, when, and on how many cores —
    so archived artifacts stay comparable across CI runs. *)

val json : unit -> string
(** The provenance JSON object.  Resolved once per process (the git
    SHA lookup, the UTC stamp and the core count are all memoized), so
    every artifact written by one benchmark run carries byte-identical
    provenance. *)

val git_sha : unit -> string
(** The current commit's SHA via [git rev-parse HEAD], or ["unknown"]
    outside a repository.  Unmemoized primitive behind {!json},
    exposed for tests. *)
