open Numerics

(* A device with its matrix indices resolved at build time (-1 encodes
   ground).  Assembly over this "stamp plan" performs the same float
   operations in the same order as stamping straight off the device
   list, but without any per-iteration name hashing — the compile phase
   of the compile-once/restamp-many hot path. *)
type rstamp =
  | R_resistor of { name : string; i : int; j : int; ohms : float }
  | R_capacitor of { name : string; i : int; j : int }
  | R_inductor of { name : string; i : int; j : int; br : int }
  | R_vsource of { name : string; i : int; j : int; br : int; wave : Waveform.t }
  | R_isource of { name : string; i : int; j : int; wave : Waveform.t }
  | R_vcvs of { i : int; j : int; cp : int; cn : int; br : int; gain : float }
  | R_vccs of { i : int; j : int; cp : int; cn : int; gm : float }
  | R_mosfet of {
      di : int;
      gi : int;
      si : int;
      model : Mos_model.t;
      w : float;
      l : float;
    }

(* Linear-algebra backend of a compiled topology.  Both factorize with
   the same pivot rule and per-entry update sequence ({!Smat} skips only
   structurally-zero work), so detect verdicts and session bytes are
   bit-identical across backends — the backend is a pure time/space
   trade, invisible to results. *)
type backend = Dense | Sparse

type t = {
  netlist : Netlist.t;
  node_tbl : (string, int) Hashtbl.t;  (* non-ground nodes -> 0..n-1 *)
  branch_tbl : (string, int) Hashtbl.t;  (* device name -> absolute index *)
  n_nodes : int;
  size : int;
  device_array : Device.t array;
  stamp_plan : rstamp array;
  backend : backend;
  sparse_pattern : (int * int) list;  (* [] on the dense backend *)
}

(* Every (row, col) slot the plan's stamps can touch, resolved once at
   compile time — the symbolic half of the sparse backend.  Mirrors
   [assemble_core] stamp for stamp (ground terminals dropped), plus the
   full diagonal: gmin lands there for nodes, and branch rows need their
   structurally-zero diagonal present so sparse elimination visits the
   same slots dense partial pivoting can reach. *)
let plan_pattern ~size ~stamp_plan =
  let acc = ref [] in
  let p i j = if i >= 0 && j >= 0 then acc := (i, j) :: !acc in
  let conductance i j =
    p i i;
    p j j;
    p i j;
    p j i
  in
  for i = 0 to size - 1 do
    p i i
  done;
  Array.iter
    (fun r ->
      match r with
      | R_resistor { i; j; _ } | R_capacitor { i; j; _ } -> conductance i j
      | R_inductor { i; j; br; _ } ->
          p i br;
          p j br;
          p br i;
          p br j;
          p br br
      | R_vsource { i; j; br; _ } ->
          p i br;
          p j br;
          p br i;
          p br j
      | R_isource _ -> ()  (* right-hand side only *)
      | R_vcvs { i; j; cp; cn; br; _ } ->
          p i br;
          p j br;
          p br i;
          p br j;
          p br cp;
          p br cn
      | R_vccs { i; j; cp; cn; _ } ->
          p i cp;
          p i cn;
          p j cp;
          p j cn
      | R_mosfet { di; gi; si; _ } ->
          p di gi;
          p di di;
          p di si;
          p si gi;
          p si di;
          p si si)
    stamp_plan;
  !acc

(* Above this node count a dense factorization is paying O(n^3) per
   Newton step for a matrix that is almost all structural zeros. *)
let dense_guard_nodes = 48

let dense_guard_note ?(backend = Dense) nl =
  match backend with
  | Sparse -> None
  | Dense ->
      let nodes = List.length (Netlist.nodes nl) in
      if nodes > dense_guard_nodes then
        Some
          (Printf.sprintf
             "netlist has %d nodes (> %d) on the dense backend; dense LU is \
              O(n^3) per factorization — consider --backend sparse \
              (bit-identical results)"
             nodes dense_guard_nodes)
      else None

let build ?(backend = Dense) nl =
  (match Netlist.connectivity_check nl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mna.build: " ^ e));
  let node_tbl = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace node_tbl n i) (Netlist.nodes nl);
  let n_nodes = Hashtbl.length node_tbl in
  let branch_tbl = Hashtbl.create 8 in
  let next = ref n_nodes in
  List.iter
    (fun d ->
      if Device.has_branch_current d then begin
        Hashtbl.replace branch_tbl (Device.name d) !next;
        incr next
      end)
    (Netlist.devices nl);
  let node n =
    if Device.is_ground n then -1
    else
      match Hashtbl.find_opt node_tbl n with
      | Some i -> i
      | None -> raise Not_found
  in
  let resolve d =
    match d with
    | Device.Resistor { name; a; b; ohms } ->
        R_resistor { name; i = node a; j = node b; ohms }
    | Device.Capacitor { name; a; b; _ } ->
        R_capacitor { name; i = node a; j = node b }
    | Device.Inductor { name; a; b; _ } ->
        R_inductor { name; i = node a; j = node b; br = Hashtbl.find branch_tbl name }
    | Device.Vsource { name; plus; minus; wave } ->
        R_vsource
          { name; i = node plus; j = node minus;
            br = Hashtbl.find branch_tbl name; wave }
    | Device.Isource { name; from_node; to_node; wave } ->
        R_isource { name; i = node from_node; j = node to_node; wave }
    | Device.Vcvs { name; plus; minus; ctrl_plus; ctrl_minus; gain } ->
        R_vcvs
          { i = node plus; j = node minus; cp = node ctrl_plus;
            cn = node ctrl_minus; br = Hashtbl.find branch_tbl name; gain }
    | Device.Vccs { plus; minus; ctrl_plus; ctrl_minus; gm; _ } ->
        R_vccs
          { i = node plus; j = node minus; cp = node ctrl_plus;
            cn = node ctrl_minus; gm }
    | Device.Mosfet { drain; gate; source; model; w; l; _ } ->
        R_mosfet { di = node drain; gi = node gate; si = node source; model; w; l }
  in
  let device_array = Array.of_list (Netlist.devices nl) in
  let stamp_plan = Array.map resolve device_array in
  let sparse_pattern =
    match backend with
    | Dense -> []
    | Sparse -> plan_pattern ~size:!next ~stamp_plan
  in
  {
    netlist = nl;
    node_tbl;
    branch_tbl;
    n_nodes;
    size = !next;
    device_array;
    stamp_plan;
    backend;
    sparse_pattern;
  }

let netlist t = t.netlist
let backend t = t.backend
let n_nodes t = t.n_nodes
let size t = t.size

let node_index t n =
  if Device.is_ground n then None
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> Some i
    | None -> raise Not_found

let voltage t x n =
  match node_index t n with None -> 0. | Some i -> x.(i)

let branch_current t x name =
  match Hashtbl.find_opt t.branch_tbl name with
  | Some i -> x.(i)
  | None -> raise Not_found

type companion =
  | Cap_companion of { geq : float; ieq : float }
  | Ind_companion of { req : float; veq : float }

type source_time = [ `Dc | `Time of float ]

(* Value-phase overrides: a compiled topology is assembled with the
   probe's stimulus wave and fault-impact resistance substituted at stamp
   time, instead of rewriting the netlist and re-indexing it.  The stamp
   sequence is unchanged, so the assembled system is bit-identical to
   one built from a netlist that carries the overridden values. *)
type restamp = {
  stimulus : (string * Waveform.t) option;
  impact : (string * float) option;
}

let no_restamp = { stimulus = None; impact = None }

let restamp_wave restamp name wave =
  match restamp with
  | Some { stimulus = Some (s, w); _ } when String.equal s name -> w
  | Some _ | None -> wave

let restamp_ohms restamp name ohms =
  match restamp with
  | Some { impact = Some (d, r); _ } when String.equal d name -> r
  | Some _ | None -> ohms

let wave_value time w =
  match time with
  | `Dc -> Waveform.dc_value w
  | `Time t -> Waveform.value w t

(* index helpers: -1 encodes ground *)
let idx t n =
  if Device.is_ground n then -1
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> i
    | None -> raise Not_found

let inject z i v = if i >= 0 then z.(i) <- z.(i) +. v
let volt x i = if i < 0 then 0. else x.(i)

(* Stamping walks the resolved plan in device order — the same float
   operations, in the same order, as stamping straight off the device
   records, so the assembled system is bit-identical whichever value
   overrides are active.  [add] is the backend's accumulate-into-slot
   primitive ({!Mat.add_to} or {!Smat.add_to}); generalising over it is
   what keeps both backends on one stamp sequence. *)
let assemble_core t ~add ~z ~x ~time ~companions ~source_scale ~restamp ~gmin =
  let stamp i j v = if i >= 0 && j >= 0 then add i j v in
  let stamp_conductance i j g =
    stamp i i g;
    stamp j j g;
    stamp i j (-.g);
    stamp j i (-.g)
  in
  for i = 0 to t.n_nodes - 1 do
    add i i gmin
  done;
  let companion_of name =
    match companions with
    | None -> None
    | Some tbl -> Hashtbl.find_opt tbl name
  in
  Array.iter
    (fun r ->
      match r with
      | R_resistor { name; i; j; ohms } ->
          let ohms = restamp_ohms restamp name ohms in
          stamp_conductance i j (1. /. ohms)
      | R_capacitor { name; i; j } -> begin
          match companion_of name with
          | Some (Cap_companion { geq; ieq }) ->
              stamp_conductance i j geq;
              inject z i ieq;
              inject z j (-.ieq)
          | Some (Ind_companion _) ->
              invalid_arg "Mna.assemble: inductor companion on a capacitor"
          | None -> ()  (* open in DC *)
        end
      | R_inductor { name; i; j; br } -> begin
          (* branch current contribution to KCL *)
          stamp i br 1.;
          stamp j br (-1.);
          (* branch equation: va - vb - req*i = veq (req = 0 in DC) *)
          stamp br i 1.;
          stamp br j (-1.);
          match companion_of name with
          | Some (Ind_companion { req; veq }) ->
              add br br (-.req);
              z.(br) <- z.(br) +. veq
          | Some (Cap_companion _) ->
              invalid_arg "Mna.assemble: capacitor companion on an inductor"
          | None -> ()
        end
      | R_vsource { name; i; j; br; wave } ->
          let wave = restamp_wave restamp name wave in
          stamp i br 1.;
          stamp j br (-1.);
          stamp br i 1.;
          stamp br j (-1.);
          z.(br) <- z.(br) +. (source_scale *. wave_value time wave)
      | R_isource { name; i; j; wave } ->
          let wave = restamp_wave restamp name wave in
          let value = source_scale *. wave_value time wave in
          inject z i (-.value);
          inject z j value
      | R_vcvs { i; j; cp; cn; br; gain } ->
          stamp i br 1.;
          stamp j br (-1.);
          stamp br i 1.;
          stamp br j (-1.);
          stamp br cp (-.gain);
          stamp br cn gain
      | R_vccs { i; j; cp; cn; gm } ->
          stamp i cp gm;
          stamp i cn (-.gm);
          stamp j cp (-.gm);
          stamp j cn gm
      | R_mosfet { di; gi; si; model; w; l } ->
          let vd = volt x di and vg = volt x gi and vs = volt x si in
          let op = Mos_model.eval model ~w ~l ~vg ~vd ~vs in
          (* Newton companion: ids ~ i0 + dG*vg + dD*vd + dS*vs *)
          let i0 =
            op.ids -. (op.d_gate *. vg) -. (op.d_drain *. vd)
            -. (op.d_source *. vs)
          in
          stamp di gi op.d_gate;
          stamp di di op.d_drain;
          stamp di si op.d_source;
          stamp si gi (-.op.d_gate);
          stamp si di (-.op.d_drain);
          stamp si si (-.op.d_source);
          inject z di (-.i0);
          inject z si i0)
    t.stamp_plan

(* The fault-impact restamp knob targets exactly one resistor, so the
   difference between two impact resistances r0 -> r1 is the symmetric
   rank-1 conductance stamp dg * (e_i - e_j)(e_i - e_j)^T with
   dg = 1/r1 - 1/r0 and the ground terminal (-1) dropped — the view the
   Sherman-Morrison solve and the complex-matrix update both consume. *)
type rank1_impact = { r1_i : int; r1_j : int; r1_dg : float }

let impact_site t device =
  let found = ref None in
  Array.iter
    (fun r ->
      match r with
      | R_resistor { name; i; j; _ }
        when !found = None && String.equal name device ->
          found := Some (i, j)
      | _ -> ())
    t.stamp_plan;
  !found

let impact_rank1 t ~device ~r_from ~r_to =
  match impact_site t device with
  | None -> None
  | Some (i, j) ->
      Some { r1_i = i; r1_j = j; r1_dg = (1. /. r_to) -. (1. /. r_from) }

let rank1_direction t { r1_i; r1_j; _ } u =
  if Vec.dim u <> t.size then invalid_arg "Mna.rank1_direction: bad size";
  Array.fill u 0 t.size 0.;
  if r1_i >= 0 then u.(r1_i) <- 1.;
  if r1_j >= 0 then u.(r1_j) <- -1.

(* Partial-derivative stamp views for the adjoint sensitivity layer.
   The right-hand side z depends on an independent source's DC level
   linearly through its stamp — z += level * e_br for a voltage source,
   z += level * (e_j - e_i) for a current source — so dz/dlevel is a
   fixed sparse direction resolved once from the plan.  Likewise the
   only parameter entering the system matrix A is a resistor's value:
   dA/dr = -(1/r^2) (e_i - e_j)(e_i - e_j)^T.  Both views collapse to
   one or two lambda/x reads when contracted with the adjoint vector. *)
type stimulus_site =
  | S_vsource of int  (** branch-equation row of the source *)
  | S_isource of int * int  (** from/to node indices, -1 for ground *)

let stimulus_site t device =
  let found = ref None in
  Array.iter
    (fun r ->
      match r with
      | R_vsource { name; br; _ } when !found = None && String.equal name device
        ->
          found := Some (S_vsource br)
      | R_isource { name; i; j; _ }
        when !found = None && String.equal name device ->
          found := Some (S_isource (i, j))
      | _ -> ())
    t.stamp_plan;
  !found

(* lambda^T (dz/dlevel): the whole right-hand-side derivative contracted
   with the adjoint vector.  A voltage source stamps [z.(br) += level],
   so the dot is lambda.(br); a current source stamps
   [z.(i) -= level; z.(j) += level] (ground dropped), so the dot is
   [lambda.(j) - lambda.(i)]. *)
let stimulus_adjoint_dot site lambda =
  match site with
  | S_vsource br -> lambda.(br)
  | S_isource (i, j) -> volt lambda j -. volt lambda i

(* -lambda^T (dA/dr) x for the named impact resistor at resistance
   [ohms]: with dA/dr = -(1/r^2) u u^T and u = e_i - e_j this is
   [(lambda_i - lambda_j) (x_i - x_j) / r^2].  [None] when the plan has
   no resistor of that name. *)
let impact_adjoint_dot t ~device ~ohms ~lambda ~x =
  match impact_site t device with
  | None -> None
  | Some (i, j) ->
      let dl = volt lambda i -. volt lambda j
      and dx = volt x i -. volt x j in
      Some (dl *. dx /. (ohms *. ohms))

(* The backend's system-matrix and factorization state, paired so a
   mismatch cannot be constructed through {!workspace}. *)
type engine =
  | E_dense of { ea : Mat.t; elu : Mat.lu }
  | E_sparse of { es : Smat.t; eslu : Smat.lu }

(* Preallocated per-analysis solve state: system matrix, right-hand
   side, LU workspace, and the two Newton iterate buffers.  One
   workspace is owned by exactly one running analysis at a time — under
   parallel execution each domain compiles (or forks) its own. *)
type workspace = {
  w_size : int;
  w_eng : engine;
  w_z : Vec.t;
  mutable w_x : Vec.t;
  mutable w_x_new : Vec.t;
}

let workspace t =
  let w_eng =
    match t.backend with
    | Dense ->
        E_dense { ea = Mat.create t.size t.size; elu = Mat.lu_workspace t.size }
    | Sparse ->
        E_sparse
          {
            es = Smat.create t.size t.sparse_pattern;
            eslu = Smat.lu_workspace t.size;
          }
  in
  {
    w_size = t.size;
    w_eng;
    w_z = Vec.create t.size 0.;
    w_x = Vec.create t.size 0.;
    w_x_new = Vec.create t.size 0.;
  }

let ws_factor ws =
  match ws.w_eng with
  | E_dense { ea; elu } ->
      Mat.factor_in_place ea elu;
      false
  | E_sparse { es; eslu } ->
      (* numeric replay on the held pattern when the pivot guard admits
         it; the fallback is the full symbolic pass.  Both produce the
         same factorization bit for bit, so which one ran is observable
         only through the stats. *)
      if Smat.refactor es eslu then true
      else begin
        Smat.factor_in_place es eslu;
        false
      end

let ws_solve_into ws b x =
  match ws.w_eng with
  | E_dense { elu; _ } -> Mat.solve_into elu b x
  | E_sparse { eslu; _ } -> Smat.solve_into eslu b x

let ws_solve_transpose_into ws b x =
  match ws.w_eng with
  | E_dense { elu; _ } -> Mat.solve_transpose_into elu b x
  | E_sparse { eslu; _ } -> Smat.solve_transpose_into eslu b x

let ws_sparse_stats ws =
  match ws.w_eng with
  | E_dense _ -> None
  | E_sparse { eslu; _ } -> Some (Smat.stats eslu)

let ws_sparse_lu ws =
  match ws.w_eng with
  | E_dense _ -> None
  | E_sparse { eslu; _ } -> Some eslu

(* A retained factorization plus the scratch its rank-1 solve needs —
   the backend-agnostic face of the continuation's held state. *)
type held =
  | H_dense of { hlu : Mat.lu; hr1 : Mat.rank1; mutable hd_ok : bool }
  | H_sparse of {
      hslu : Smat.lu;
      hy : Vec.t;
      hw : Vec.t;
      mutable hs_ok : bool;
    }

let held t =
  match t.backend with
  | Dense ->
      H_dense
        {
          hlu = Mat.lu_workspace t.size;
          hr1 = Mat.rank1_workspace t.size;
          hd_ok = false;
        }
  | Sparse ->
      H_sparse
        {
          hslu = Smat.lu_workspace t.size;
          hy = Vec.create t.size 0.;
          hw = Vec.create t.size 0.;
          hs_ok = false;
        }

let held_factored = function
  | H_dense { hd_ok; _ } -> hd_ok
  | H_sparse { hs_ok; _ } -> hs_ok

let hold ws hd =
  match (ws.w_eng, hd) with
  | E_dense { elu; _ }, H_dense h ->
      Mat.lu_blit ~src:elu ~dst:h.hlu;
      h.hd_ok <- true
  | E_sparse { eslu; _ }, H_sparse h ->
      Smat.lu_blit ~src:eslu ~dst:h.hslu;
      h.hs_ok <- true
  | E_dense _, H_sparse _ | E_sparse _, H_dense _ ->
      invalid_arg "Mna.hold: workspace/held backend mismatch"

(* Sherman-Morrison against the held factorization.  The sparse arm
   replays {!Mat.rank1_solve}'s float sequence operation for operation
   (two solves, two dots, the same cancellation guard, the same update
   loop), so continuation solves stay bit-identical across backends. *)
let held_rank1_solve hd ~u ~v ~dg ~b ~x =
  match hd with
  | H_dense { hlu; hr1; hd_ok } ->
      if not hd_ok then invalid_arg "Mna.held_rank1_solve: nothing held";
      Mat.rank1_solve hlu hr1 ~u ~v ~dg ~b ~x
  | H_sparse { hslu; hy; hw; hs_ok } ->
      if not hs_ok then invalid_arg "Mna.held_rank1_solve: nothing held";
      if b == x then invalid_arg "Mna.held_rank1_solve: aliased input/output";
      Smat.solve_into hslu b hy;
      Smat.solve_into hslu u hw;
      let vty = Vec.dot v hy in
      let vtw = Vec.dot v hw in
      let denom = 1. +. (dg *. vtw) in
      if
        (not (Float.is_finite denom))
        || Float.abs denom <= 1e-10 *. (1. +. Float.abs (dg *. vtw))
      then false
      else begin
        let coef = dg *. vty /. denom in
        for i = 0 to Vec.dim x - 1 do
          x.(i) <- hy.(i) -. (coef *. hw.(i))
        done;
        true
      end

let assemble t ~x ~time ?companions ?(source_scale = 1.) ?restamp ~gmin () =
  if Vec.dim x <> t.size then invalid_arg "Mna.assemble: bad iterate size";
  let a = Mat.create t.size t.size in
  let z = Vec.create t.size 0. in
  assemble_core t ~add:(Mat.add_to a) ~z ~x ~time ~companions ~source_scale
    ~restamp ~gmin;
  (a, z)

let assemble_into t ws ~x ~time ?companions ?(source_scale = 1.) ?restamp ~gmin
    () =
  if Vec.dim x <> t.size then invalid_arg "Mna.assemble_into: bad iterate size";
  if ws.w_size <> t.size then invalid_arg "Mna.assemble_into: workspace size";
  let add =
    match ws.w_eng with
    | E_dense { ea; _ } ->
        Mat.fill ea 0.;
        Mat.add_to ea
    | E_sparse { es; _ } ->
        Smat.clear es;
        Smat.add_to es
  in
  Array.fill ws.w_z 0 (Vec.dim ws.w_z) 0.;
  assemble_core t ~add ~z:ws.w_z ~x ~time ~companions ~source_scale ~restamp
    ~gmin

let mosfet_operating_points t ~x =
  Array.to_list t.device_array
  |> List.filter_map (fun d ->
         match d with
         | Device.Mosfet { name; drain; gate; source; model; w; l } ->
             let vd = volt x (idx t drain)
             and vg = volt x (idx t gate)
             and vs = volt x (idx t source) in
             Some (name, Mos_model.eval model ~w ~l ~vg ~vd ~vs)
         | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
         | Device.Vsource _ | Device.Isource _ | Device.Vcvs _
         | Device.Vccs _ -> None)
