open Numerics

(* A device with its matrix indices resolved at build time (-1 encodes
   ground).  Assembly over this "stamp plan" performs the same float
   operations in the same order as stamping straight off the device
   list, but without any per-iteration name hashing — the compile phase
   of the compile-once/restamp-many hot path. *)
type rstamp =
  | R_resistor of { name : string; i : int; j : int; ohms : float }
  | R_capacitor of { name : string; i : int; j : int }
  | R_inductor of { name : string; i : int; j : int; br : int }
  | R_vsource of { name : string; i : int; j : int; br : int; wave : Waveform.t }
  | R_isource of { name : string; i : int; j : int; wave : Waveform.t }
  | R_vcvs of { i : int; j : int; cp : int; cn : int; br : int; gain : float }
  | R_vccs of { i : int; j : int; cp : int; cn : int; gm : float }
  | R_mosfet of {
      di : int;
      gi : int;
      si : int;
      model : Mos_model.t;
      w : float;
      l : float;
    }

type t = {
  netlist : Netlist.t;
  node_tbl : (string, int) Hashtbl.t;  (* non-ground nodes -> 0..n-1 *)
  branch_tbl : (string, int) Hashtbl.t;  (* device name -> absolute index *)
  n_nodes : int;
  size : int;
  device_array : Device.t array;
  stamp_plan : rstamp array;
}

let build nl =
  (match Netlist.connectivity_check nl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mna.build: " ^ e));
  let node_tbl = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace node_tbl n i) (Netlist.nodes nl);
  let n_nodes = Hashtbl.length node_tbl in
  let branch_tbl = Hashtbl.create 8 in
  let next = ref n_nodes in
  List.iter
    (fun d ->
      if Device.has_branch_current d then begin
        Hashtbl.replace branch_tbl (Device.name d) !next;
        incr next
      end)
    (Netlist.devices nl);
  let node n =
    if Device.is_ground n then -1
    else
      match Hashtbl.find_opt node_tbl n with
      | Some i -> i
      | None -> raise Not_found
  in
  let resolve d =
    match d with
    | Device.Resistor { name; a; b; ohms } ->
        R_resistor { name; i = node a; j = node b; ohms }
    | Device.Capacitor { name; a; b; _ } ->
        R_capacitor { name; i = node a; j = node b }
    | Device.Inductor { name; a; b; _ } ->
        R_inductor { name; i = node a; j = node b; br = Hashtbl.find branch_tbl name }
    | Device.Vsource { name; plus; minus; wave } ->
        R_vsource
          { name; i = node plus; j = node minus;
            br = Hashtbl.find branch_tbl name; wave }
    | Device.Isource { name; from_node; to_node; wave } ->
        R_isource { name; i = node from_node; j = node to_node; wave }
    | Device.Vcvs { name; plus; minus; ctrl_plus; ctrl_minus; gain } ->
        R_vcvs
          { i = node plus; j = node minus; cp = node ctrl_plus;
            cn = node ctrl_minus; br = Hashtbl.find branch_tbl name; gain }
    | Device.Vccs { plus; minus; ctrl_plus; ctrl_minus; gm; _ } ->
        R_vccs
          { i = node plus; j = node minus; cp = node ctrl_plus;
            cn = node ctrl_minus; gm }
    | Device.Mosfet { drain; gate; source; model; w; l; _ } ->
        R_mosfet { di = node drain; gi = node gate; si = node source; model; w; l }
  in
  let device_array = Array.of_list (Netlist.devices nl) in
  {
    netlist = nl;
    node_tbl;
    branch_tbl;
    n_nodes;
    size = !next;
    device_array;
    stamp_plan = Array.map resolve device_array;
  }

let netlist t = t.netlist
let n_nodes t = t.n_nodes
let size t = t.size

let node_index t n =
  if Device.is_ground n then None
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> Some i
    | None -> raise Not_found

let voltage t x n =
  match node_index t n with None -> 0. | Some i -> x.(i)

let branch_current t x name =
  match Hashtbl.find_opt t.branch_tbl name with
  | Some i -> x.(i)
  | None -> raise Not_found

type companion =
  | Cap_companion of { geq : float; ieq : float }
  | Ind_companion of { req : float; veq : float }

type source_time = [ `Dc | `Time of float ]

(* Value-phase overrides: a compiled topology is assembled with the
   probe's stimulus wave and fault-impact resistance substituted at stamp
   time, instead of rewriting the netlist and re-indexing it.  The stamp
   sequence is unchanged, so the assembled system is bit-identical to
   one built from a netlist that carries the overridden values. *)
type restamp = {
  stimulus : (string * Waveform.t) option;
  impact : (string * float) option;
}

let no_restamp = { stimulus = None; impact = None }

let restamp_wave restamp name wave =
  match restamp with
  | Some { stimulus = Some (s, w); _ } when String.equal s name -> w
  | Some _ | None -> wave

let restamp_ohms restamp name ohms =
  match restamp with
  | Some { impact = Some (d, r); _ } when String.equal d name -> r
  | Some _ | None -> ohms

let wave_value time w =
  match time with
  | `Dc -> Waveform.dc_value w
  | `Time t -> Waveform.value w t

(* index helpers: -1 encodes ground *)
let idx t n =
  if Device.is_ground n then -1
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> i
    | None -> raise Not_found

let stamp a i j v = if i >= 0 && j >= 0 then Mat.add_to a i j v
let inject z i v = if i >= 0 then z.(i) <- z.(i) +. v

let stamp_conductance a i j g =
  stamp a i i g;
  stamp a j j g;
  stamp a i j (-.g);
  stamp a j i (-.g)

let volt x i = if i < 0 then 0. else x.(i)

(* Stamping walks the resolved plan in device order — the same float
   operations, in the same order, as stamping straight off the device
   records, so the assembled system is bit-identical whichever value
   overrides are active. *)
let assemble_core t ~a ~z ~x ~time ~companions ~source_scale ~restamp ~gmin =
  for i = 0 to t.n_nodes - 1 do
    Mat.add_to a i i gmin
  done;
  let companion_of name =
    match companions with
    | None -> None
    | Some tbl -> Hashtbl.find_opt tbl name
  in
  Array.iter
    (fun r ->
      match r with
      | R_resistor { name; i; j; ohms } ->
          let ohms = restamp_ohms restamp name ohms in
          stamp_conductance a i j (1. /. ohms)
      | R_capacitor { name; i; j } -> begin
          match companion_of name with
          | Some (Cap_companion { geq; ieq }) ->
              stamp_conductance a i j geq;
              inject z i ieq;
              inject z j (-.ieq)
          | Some (Ind_companion _) ->
              invalid_arg "Mna.assemble: inductor companion on a capacitor"
          | None -> ()  (* open in DC *)
        end
      | R_inductor { name; i; j; br } -> begin
          (* branch current contribution to KCL *)
          stamp a i br 1.;
          stamp a j br (-1.);
          (* branch equation: va - vb - req*i = veq (req = 0 in DC) *)
          stamp a br i 1.;
          stamp a br j (-1.);
          match companion_of name with
          | Some (Ind_companion { req; veq }) ->
              Mat.add_to a br br (-.req);
              z.(br) <- z.(br) +. veq
          | Some (Cap_companion _) ->
              invalid_arg "Mna.assemble: capacitor companion on an inductor"
          | None -> ()
        end
      | R_vsource { name; i; j; br; wave } ->
          let wave = restamp_wave restamp name wave in
          stamp a i br 1.;
          stamp a j br (-1.);
          stamp a br i 1.;
          stamp a br j (-1.);
          z.(br) <- z.(br) +. (source_scale *. wave_value time wave)
      | R_isource { name; i; j; wave } ->
          let wave = restamp_wave restamp name wave in
          let value = source_scale *. wave_value time wave in
          inject z i (-.value);
          inject z j value
      | R_vcvs { i; j; cp; cn; br; gain } ->
          stamp a i br 1.;
          stamp a j br (-1.);
          stamp a br i 1.;
          stamp a br j (-1.);
          stamp a br cp (-.gain);
          stamp a br cn gain
      | R_vccs { i; j; cp; cn; gm } ->
          stamp a i cp gm;
          stamp a i cn (-.gm);
          stamp a j cp (-.gm);
          stamp a j cn gm
      | R_mosfet { di; gi; si; model; w; l } ->
          let vd = volt x di and vg = volt x gi and vs = volt x si in
          let op = Mos_model.eval model ~w ~l ~vg ~vd ~vs in
          (* Newton companion: ids ~ i0 + dG*vg + dD*vd + dS*vs *)
          let i0 =
            op.ids -. (op.d_gate *. vg) -. (op.d_drain *. vd)
            -. (op.d_source *. vs)
          in
          stamp a di gi op.d_gate;
          stamp a di di op.d_drain;
          stamp a di si op.d_source;
          stamp a si gi (-.op.d_gate);
          stamp a si di (-.op.d_drain);
          stamp a si si (-.op.d_source);
          inject z di (-.i0);
          inject z si i0)
    t.stamp_plan

(* The fault-impact restamp knob targets exactly one resistor, so the
   difference between two impact resistances r0 -> r1 is the symmetric
   rank-1 conductance stamp dg * (e_i - e_j)(e_i - e_j)^T with
   dg = 1/r1 - 1/r0 and the ground terminal (-1) dropped — the view the
   Sherman-Morrison solve and the complex-matrix update both consume. *)
type rank1_impact = { r1_i : int; r1_j : int; r1_dg : float }

let impact_site t device =
  let found = ref None in
  Array.iter
    (fun r ->
      match r with
      | R_resistor { name; i; j; _ }
        when !found = None && String.equal name device ->
          found := Some (i, j)
      | _ -> ())
    t.stamp_plan;
  !found

let impact_rank1 t ~device ~r_from ~r_to =
  match impact_site t device with
  | None -> None
  | Some (i, j) ->
      Some { r1_i = i; r1_j = j; r1_dg = (1. /. r_to) -. (1. /. r_from) }

let rank1_direction t { r1_i; r1_j; _ } u =
  if Vec.dim u <> t.size then invalid_arg "Mna.rank1_direction: bad size";
  Array.fill u 0 t.size 0.;
  if r1_i >= 0 then u.(r1_i) <- 1.;
  if r1_j >= 0 then u.(r1_j) <- -1.

(* Partial-derivative stamp views for the adjoint sensitivity layer.
   The right-hand side z depends on an independent source's DC level
   linearly through its stamp — z += level * e_br for a voltage source,
   z += level * (e_j - e_i) for a current source — so dz/dlevel is a
   fixed sparse direction resolved once from the plan.  Likewise the
   only parameter entering the system matrix A is a resistor's value:
   dA/dr = -(1/r^2) (e_i - e_j)(e_i - e_j)^T.  Both views collapse to
   one or two lambda/x reads when contracted with the adjoint vector. *)
type stimulus_site =
  | S_vsource of int  (** branch-equation row of the source *)
  | S_isource of int * int  (** from/to node indices, -1 for ground *)

let stimulus_site t device =
  let found = ref None in
  Array.iter
    (fun r ->
      match r with
      | R_vsource { name; br; _ } when !found = None && String.equal name device
        ->
          found := Some (S_vsource br)
      | R_isource { name; i; j; _ }
        when !found = None && String.equal name device ->
          found := Some (S_isource (i, j))
      | _ -> ())
    t.stamp_plan;
  !found

(* lambda^T (dz/dlevel): the whole right-hand-side derivative contracted
   with the adjoint vector.  A voltage source stamps [z.(br) += level],
   so the dot is lambda.(br); a current source stamps
   [z.(i) -= level; z.(j) += level] (ground dropped), so the dot is
   [lambda.(j) - lambda.(i)]. *)
let stimulus_adjoint_dot site lambda =
  match site with
  | S_vsource br -> lambda.(br)
  | S_isource (i, j) -> volt lambda j -. volt lambda i

(* -lambda^T (dA/dr) x for the named impact resistor at resistance
   [ohms]: with dA/dr = -(1/r^2) u u^T and u = e_i - e_j this is
   [(lambda_i - lambda_j) (x_i - x_j) / r^2].  [None] when the plan has
   no resistor of that name. *)
let impact_adjoint_dot t ~device ~ohms ~lambda ~x =
  match impact_site t device with
  | None -> None
  | Some (i, j) ->
      let dl = volt lambda i -. volt lambda j
      and dx = volt x i -. volt x j in
      Some (dl *. dx /. (ohms *. ohms))

(* Preallocated per-analysis solve state: system matrix, right-hand
   side, LU workspace, and the two Newton iterate buffers.  One
   workspace is owned by exactly one running analysis at a time — under
   parallel execution each domain compiles (or forks) its own. *)
type workspace = {
  w_size : int;
  w_a : Mat.t;
  w_z : Vec.t;
  w_lu : Mat.lu;
  mutable w_x : Vec.t;
  mutable w_x_new : Vec.t;
}

let workspace t =
  {
    w_size = t.size;
    w_a = Mat.create t.size t.size;
    w_z = Vec.create t.size 0.;
    w_lu = Mat.lu_workspace t.size;
    w_x = Vec.create t.size 0.;
    w_x_new = Vec.create t.size 0.;
  }

let assemble t ~x ~time ?companions ?(source_scale = 1.) ?restamp ~gmin () =
  if Vec.dim x <> t.size then invalid_arg "Mna.assemble: bad iterate size";
  let a = Mat.create t.size t.size in
  let z = Vec.create t.size 0. in
  assemble_core t ~a ~z ~x ~time ~companions ~source_scale ~restamp ~gmin;
  (a, z)

let assemble_into t ws ~x ~time ?companions ?(source_scale = 1.) ?restamp ~gmin
    () =
  if Vec.dim x <> t.size then invalid_arg "Mna.assemble_into: bad iterate size";
  if ws.w_size <> t.size then invalid_arg "Mna.assemble_into: workspace size";
  Mat.fill ws.w_a 0.;
  Array.fill ws.w_z 0 (Vec.dim ws.w_z) 0.;
  assemble_core t ~a:ws.w_a ~z:ws.w_z ~x ~time ~companions ~source_scale
    ~restamp ~gmin

let mosfet_operating_points t ~x =
  Array.to_list t.device_array
  |> List.filter_map (fun d ->
         match d with
         | Device.Mosfet { name; drain; gate; source; model; w; l } ->
             let vd = volt x (idx t drain)
             and vg = volt x (idx t gate)
             and vs = volt x (idx t source) in
             Some (name, Mos_model.eval model ~w ~l ~vg ~vd ~vs)
         | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
         | Device.Vsource _ | Device.Isource _ | Device.Vcvs _
         | Device.Vccs _ -> None)
