(** Small-signal AC analysis.

    Linearizes every MOSFET at a previously computed DC operating point,
    replaces capacitors by [jwC] admittances and inductors by [jwL]
    branch impedances, applies a unit AC excitation to one chosen
    independent source (all other independent sources are nulled:
    voltage sources become shorts, current sources opens), and solves the
    complex MNA system per frequency. *)

type point = {
  freq_hz : float;
  value : Complex.t;  (** observed node phasor for a unit excitation *)
}

val gain_db : Complex.t -> float
(** [20 log10 |h|]. *)

val phase_deg : Complex.t -> float

type workspace
(** Per-analysis small-signal state: branch indexing computed once per
    compiled topology, plus a system matrix and excitation vector that
    are restamped per frequency instead of reallocated.  Owned by one
    running analysis at a time. *)

val workspace : Mna.t -> workspace

val system_matrix :
  ?gmin:float -> ?workspace:workspace -> ?restamp:Mna.restamp ->
  Mna.t -> op:Numerics.Vec.t -> freq_hz:float ->
  Numerics.Cmat.t
(** The small-signal complex MNA matrix at one frequency with every
    independent source nulled — the left-hand side shared by {!sweep}
    and the adjoint noise analysis ({!Noise}).  With [workspace] the
    returned matrix is the workspace's own (zeroed and restamped, not
    reallocated); [restamp] substitutes a fault-impact resistance at
    stamp time. *)

val sweep :
  ?gmin:float ->
  ?workspace:workspace ->
  ?restamp:Mna.restamp ->
  Mna.t ->
  op:Numerics.Vec.t ->
  source:string ->
  freqs:float array ->
  observe:string ->
  point list
(** Transfer from the named V or I source to the observed node voltage.
    @raise Not_found if [source] names no independent source or [observe]
    is not a node of the circuit. *)

val log_space : lo:float -> hi:float -> points:int -> float array
(** Logarithmically spaced frequency grid, inclusive of both endpoints.
    @raise Invalid_argument unless [0 < lo < hi] and [points >= 2]. *)
