type method_ = Backward_euler | Trapezoidal

type probe = { node : string; values : float array }

type result = { times : float array; probes : probe list }

let probe_values r node =
  match List.find_opt (fun p -> String.equal p.node node) r.probes with
  | Some p -> p.values
  | None -> raise Not_found

exception Step_failure of { time : float; reason : string }

type reactive =
  | Cap of { name : string; a : string; b : string; c : float }
  | Ind of { name : string; a : string; b : string; l : float }

let reactives sys =
  Netlist.devices (Mna.netlist sys)
  |> List.filter_map (fun d ->
         match d with
         | Device.Capacitor { name; a; b; farads } ->
             Some (Cap { name; a; b; c = farads })
         | Device.Inductor { name; a; b; henries } ->
             Some (Ind { name; a; b; l = henries })
         | Device.Resistor _ | Device.Vsource _ | Device.Isource _
         | Device.Vcvs _ | Device.Vccs _ | Device.Mosfet _ -> None)

(* Voltage across (a, b) in a solution. *)
let vab sys x a b = Mna.voltage sys x a -. Mna.voltage sys x b

(* With [into], the companion table is refilled in place — every key is
   overwritten on every call (the reactive list is fixed), so reuse is
   indistinguishable from a fresh table. *)
let build_companions ?into sys ~method_ ~h ~x_prev ~cap_currents reactive_list
    =
  let tbl = match into with Some t -> t | None -> Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r with
      | Cap { name; a; b; c } ->
          let v_prev = vab sys x_prev a b in
          let geq, ieq =
            match method_ with
            | Backward_euler ->
                let geq = c /. h in
                (geq, geq *. v_prev)
            | Trapezoidal ->
                let geq = 2. *. c /. h in
                let i_prev =
                  Option.value ~default:0. (Hashtbl.find_opt cap_currents name)
                in
                (geq, (geq *. v_prev) +. i_prev)
          in
          Hashtbl.replace tbl name (Mna.Cap_companion { geq; ieq })
      | Ind { name; a; b; l } ->
          let i_prev = Mna.branch_current sys x_prev name in
          let req, veq =
            match method_ with
            | Backward_euler ->
                let req = l /. h in
                (req, -.req *. i_prev)
            | Trapezoidal ->
                let req = 2. *. l /. h in
                let v_prev = vab sys x_prev a b in
                (req, (-.req *. i_prev) -. v_prev)
          in
          Hashtbl.replace tbl name (Mna.Ind_companion { req; veq }))
    reactive_list;
  tbl

let update_cap_currents sys ~cap_currents ~companions ~x reactive_list =
  List.iter
    (fun r ->
      match r with
      | Cap { name; a; b; _ } -> begin
          match Hashtbl.find_opt companions name with
          | Some (Mna.Cap_companion { geq; ieq }) ->
              let i_now = (geq *. vab sys x a b) -. ieq in
              Hashtbl.replace cap_currents name i_now
          | Some (Mna.Ind_companion _) | None -> ()
        end
      | Ind _ -> ())
    reactive_list

(* Bumped once per simulation (accepted top-level steps; local refinement
   shows up through the DC solver counters instead). *)
let c_simulations = Obs.Counter.create "solver.tran.simulations"
let c_steps = Obs.Counter.create "solver.tran.steps"

let simulate ?(options = Dc.default_options) ?(method_ = Backward_euler)
    ?workspace ?restamp ?continuation sys ~tstop ~dt ~observe =
  if tstop <= 0. then invalid_arg "Tran.simulate: tstop must be > 0";
  if dt <= 0. then invalid_arg "Tran.simulate: dt must be > 0";
  let reactive_list = reactives sys in
  let n_steps = int_of_float (Float.round (tstop /. dt)) in
  let n_steps = Int.max n_steps 1 in
  let observe_idx = List.map (fun n -> n) observe in
  let records = List.map (fun n -> (n, Array.make (n_steps + 1) 0.)) observe_idx in
  let cap_currents = Hashtbl.create 8 in
  (* on the compiled path one companion table is refilled per step
     instead of allocated per step *)
  let companion_tbl =
    match workspace with Some _ -> Some (Hashtbl.create 8) | None -> None
  in
  (* Only the initial operating point takes the continuation: per-step
     solves already warm-start from the previous step, and their
     companion-laden systems would poison the held factorization for the
     next probe's t=0 solve. *)
  let x0 =
    (Dc.solve ~options ?workspace ?restamp ?continuation sys
       ~time:(`Time 0.))
      .Dc.solution
  in
  List.iter (fun (n, arr) -> arr.(0) <- Mna.voltage sys x0 n) records;
  let x = ref x0 in
  (* advance from t_prev to t_next; on Newton failure, refine locally *)
  let rec advance ~depth ~t_prev ~t_next x_prev =
    let h = t_next -. t_prev in
    let companions =
      build_companions ?into:companion_tbl sys ~method_ ~h ~x_prev
        ~cap_currents reactive_list
    in
    match
      Dc.solve ~options ~guess:x_prev ~companions ?workspace ?restamp sys
        ~time:(`Time t_next)
    with
    | report ->
        update_cap_currents sys ~cap_currents ~companions
          ~x:report.Dc.solution reactive_list;
        report.Dc.solution
    | exception Dc.No_convergence reason ->
        if depth >= 4 then raise (Step_failure { time = t_next; reason })
        else begin
          let t_mid = 0.5 *. (t_prev +. t_next) in
          let x_mid = advance ~depth:(depth + 1) ~t_prev ~t_next:t_mid x_prev in
          advance ~depth:(depth + 1) ~t_prev:t_mid ~t_next x_mid
        end
  in
  let times = Array.make (n_steps + 1) 0. in
  for k = 1 to n_steps do
    let t_prev = dt *. float_of_int (k - 1) in
    let t_next = dt *. float_of_int k in
    times.(k) <- t_next;
    if Numerics.Failpoint.should_fail "tran.step_failure" then
      raise
        (Step_failure
           { time = t_next; reason = "injected failure at tran.step_failure" });
    x := advance ~depth:0 ~t_prev ~t_next !x;
    List.iter (fun (n, arr) -> arr.(k) <- Mna.voltage sys !x n) records
  done;
  if Obs.active () then begin
    Obs.Counter.add c_simulations 1;
    Obs.Counter.add c_steps n_steps
  end;
  {
    times;
    probes = List.map (fun (n, arr) -> { node = n; values = arr }) records;
  }
