open Numerics

exception No_convergence of string

type options = {
  abstol : float;
  reltol : float;
  max_newton : int;
  gmin : float;
  vlimit : float;
}

let default_options =
  { abstol = 1e-9; reltol = 1e-6; max_newton = 150; gmin = 1e-12; vlimit = 0.6 }

type report = {
  solution : Vec.t;
  newton_iterations : int;
  factorizations : int;
  pattern_reuses : int;
  gmin_steps : int;
  source_steps : int;
}

(* A solution containing NaN or infinite node voltages must never count
   as converged: NaN compares false against every bound, so an unguarded
   check would either spin the full Newton budget or accept the garbage
   iterate silently. *)
let finite_solution x ~n_nodes =
  let ok = ref true in
  for i = 0 to n_nodes - 1 do
    if not (Float.is_finite x.(i)) then ok := false
  done;
  !ok

exception Diverged

(* Solver counters, bumped once per [solve] from the finished report —
   never inside the Newton loop — so the hot path stays allocation-free
   and branch-light with tracing off.  One LU factorization happens per
   Newton iteration (both the allocating and the in-place path), so the
   factorization counter mirrors the iteration counter of the attempts
   that produced the report. *)
let c_solves = Obs.Counter.create "solver.dc.solves"
let c_newton = Obs.Counter.create "solver.dc.newton_iterations"
let c_lu = Obs.Counter.create "solver.dc.lu_factorizations"
let c_gmin = Obs.Counter.create "solver.dc.gmin_steps"
let c_src = Obs.Counter.create "solver.dc.source_steps"
let c_fail = Obs.Counter.create "solver.dc.failures"

let h_newton =
  Obs.Histogram.create "solver.dc.newton_per_solve"
    ~bounds:[| 2; 4; 8; 16; 32; 64 |]

(* Continuation counters: bumped (active-guarded) once per solve from the
   continuation bookkeeping, never inside the Newton loop. *)
let c_rank1 = Obs.Counter.create "solver.dc.rank1_solves"
let c_reuse = Obs.Counter.create "solver.dc.pattern_reuses"
let c_rank1_fb = Obs.Counter.create "solver.dc.rank1_fallbacks"
let c_warm_saved = Obs.Counter.create "solver.dc.warm_start_iters_saved"

(* Caller-owned continuation state for homotopy along the impact ladder:
   the previous converged solution (the Newton warm start), a held copy
   of the last factorization produced by a full solve, and the impact
   override under which that factorization was assembled.  When the next
   solve differs from the held one only in the impact resistance, the
   first Newton step solves against the held factorization through
   {!Mat.rank1_solve} (the fault stamp is rank-1) instead of paying a
   fresh O(n^3) factorization; later iterations — and the guard-fallback
   path — factor normally, so the converged fixed point is the same one
   the cold solver finds, within solver tolerance. *)
type continuation = {
  ct_size : int;
  mutable ct_have_x : bool;
  ct_x : Vec.t;
  ct_held : Mna.held;
  mutable ct_impact : (string * float) option;
  ct_u : Vec.t;
  mutable ct_cold_iters : int;
}

let continuation sys =
  let n = Mna.size sys in
  {
    ct_size = n;
    ct_have_x = false;
    ct_x = Vec.create n 0.;
    ct_held = Mna.held sys;
    ct_impact = None;
    ct_u = Vec.create n 0.;
    ct_cold_iters = 0;
  }

(* Per-solve rank-1 context handed to the workspace Newton loop for its
   first iteration only. *)
type rank1_ctx = {
  rk_held : Mna.held;
  rk_u : Vec.t;
  rk_dg : float;
  mutable rk_used : int;
  mutable rk_fallback : int;
}

(* One Newton attempt at fixed gmin and source scale, allocating a fresh
   system per iteration — the legacy build-per-solve arithmetic, kept as
   the reference implementation for the compiled hot path.  Returns the
   solution and iteration count, or None on failure. *)
let newton_alloc ~options ~companions ~source_scale ~restamp ~gmin sys ~time
    ~start =
  let n_nodes = Mna.n_nodes sys in
  let x = ref (Vec.copy start) in
  let converged = ref false in
  let iters = ref 0 in
  (try
     while (not !converged) && !iters < options.max_newton do
       incr iters;
       if Failpoint.should_fail "dc.singular" then raise (Mat.Singular 0);
       let a, z =
         Mna.assemble sys ~x:!x ~time ?companions ~source_scale ?restamp ~gmin
           ()
       in
       let x_new = Mat.solve a z in
       let x_new =
         if Failpoint.should_fail "dc.nan_solution" then
           Vec.create (Vec.dim x_new) Float.nan
         else x_new
       in
       if not (finite_solution x_new ~n_nodes) then raise Diverged;
       (* damping: bound the node-voltage update *)
       let dv_max = ref 0. in
       for i = 0 to n_nodes - 1 do
         dv_max := Float.max !dv_max (Float.abs (x_new.(i) -. !x.(i)))
       done;
       let alpha =
         if !dv_max > options.vlimit then options.vlimit /. !dv_max else 1.
       in
       let x_next =
         Vec.init (Vec.dim x_new) (fun i ->
             !x.(i) +. (alpha *. (x_new.(i) -. !x.(i))))
       in
       if alpha = 1. then begin
         (* convergence is judged on node voltages of a full step *)
         let ok = ref true in
         for i = 0 to n_nodes - 1 do
           let dx = Float.abs (x_next.(i) -. !x.(i)) in
           if dx > options.abstol +. (options.reltol *. Float.abs x_next.(i))
           then ok := false
         done;
         converged := !ok
       end;
       x := x_next
     done
   with Mat.Singular _ | Diverged -> converged := false);
  if !converged then Some (!x, !iters) else None

(* The same Newton iteration restamping a caller-owned workspace: the
   system is assembled into the preallocated matrix, factored in place,
   solved into the swap buffer, and the damped update overwrites it — no
   per-iteration allocation.  Every arithmetic expression matches
   [newton_alloc] term for term (the [x +. alpha *. (x_new -. x)] form is
   kept even at [alpha = 1.], where it is not a bitwise no-op), so both
   paths converge along identical trajectories. *)
let newton_ws ~options ~companions ~source_scale ~restamp ~gmin ?rank1 sys ws
    ~time ~start =
  let n_nodes = Mna.n_nodes sys in
  let size = Vec.dim start in
  Array.blit start 0 ws.Mna.w_x 0 size;
  let converged = ref false in
  let iters = ref 0 in
  let factors = ref 0 in
  let reuses = ref 0 in
  (try
     while (not !converged) && !iters < options.max_newton do
       incr iters;
       if Failpoint.should_fail "dc.singular" then raise (Mat.Singular 0);
       Mna.assemble_into sys ws ~x:ws.Mna.w_x ~time ?companions ~source_scale
         ?restamp ~gmin ();
       (* The first iteration of a continuation solve goes through the
          held factorization by Sherman-Morrison when the conditioning
          guard admits it; everything else is the ordinary
          factor-and-solve, bit-identical to the non-continuation path. *)
       let solved_rank1 =
         match rank1 with
         | Some rk when !iters = 1 ->
             if
               Mna.held_rank1_solve rk.rk_held ~u:rk.rk_u ~v:rk.rk_u
                 ~dg:rk.rk_dg ~b:ws.Mna.w_z ~x:ws.Mna.w_x_new
             then begin
               rk.rk_used <- rk.rk_used + 1;
               true
             end
             else begin
               rk.rk_fallback <- rk.rk_fallback + 1;
               false
             end
         | Some _ | None -> false
       in
       if not solved_rank1 then begin
         if Mna.ws_factor ws then incr reuses;
         incr factors;
         Mna.ws_solve_into ws ws.Mna.w_z ws.Mna.w_x_new
       end;
       let x = ws.Mna.w_x and x_new = ws.Mna.w_x_new in
       if Failpoint.should_fail "dc.nan_solution" then
         Array.fill x_new 0 size Float.nan;
       if not (finite_solution x_new ~n_nodes) then raise Diverged;
       let dv_max = ref 0. in
       for i = 0 to n_nodes - 1 do
         dv_max := Float.max !dv_max (Float.abs (x_new.(i) -. x.(i)))
       done;
       let alpha =
         if !dv_max > options.vlimit then options.vlimit /. !dv_max else 1.
       in
       for i = 0 to size - 1 do
         x_new.(i) <- x.(i) +. (alpha *. (x_new.(i) -. x.(i)))
       done;
       if alpha = 1. then begin
         let ok = ref true in
         for i = 0 to n_nodes - 1 do
           let dx = Float.abs (x_new.(i) -. x.(i)) in
           if dx > options.abstol +. (options.reltol *. Float.abs x_new.(i))
           then ok := false
         done;
         converged := !ok
       end;
       ws.Mna.w_x <- x_new;
       ws.Mna.w_x_new <- x
     done
   with Mat.Singular _ | Diverged -> converged := false);
  if !converged then Some (Vec.copy ws.Mna.w_x, !iters, !factors, !reuses)
  else None

let solve_u ?(options = default_options) ?guess ?companions
    ?(source_scale = 1.) ?workspace ?restamp ?continuation sys ~time =
  if Failpoint.should_fail "dc.no_convergence" then
    raise
      (No_convergence
         (Printf.sprintf "injected failure at dc.no_convergence (%S)"
            (Netlist.title (Mna.netlist sys))));
  (match continuation with
  | Some ct when ct.ct_size <> Mna.size sys ->
      invalid_arg "Dc.solve: continuation size mismatch"
  | Some _ | None -> ());
  (* The continuation's stored iterate takes precedence over the caller's
     guess: the ladder's previous converged solution is the homotopy
     start point. *)
  let warm =
    match continuation with Some ct -> ct.ct_have_x | None -> false
  in
  let cold_start =
    match guess with
    | Some g ->
        if Vec.dim g <> Mna.size sys then
          invalid_arg "Dc.solve: guess has wrong dimension";
        g
    | None -> Vec.create (Mna.size sys) 0.
  in
  let start = if warm then (Option.get continuation).ct_x else cold_start in
  (match workspace with
  | Some ws when ws.Mna.w_size <> Mna.size sys ->
      invalid_arg "Dc.solve: workspace size mismatch"
  | Some _ | None -> ());
  (* The rank-1 first-step context applies only to the direct attempt
     (nominal gmin, full source scale) and only when the held
     factorization differs from the requested system purely in the
     impact resistance of one named resistor. *)
  let rank1_ctx =
    match (continuation, workspace, restamp) with
    | Some ct, Some _, Some { Mna.impact = Some (dev, r_new); _ }
      when Mna.held_factored ct.ct_held -> begin
        match ct.ct_impact with
        | Some (dev0, r_old) when String.equal dev dev0 && r_new <> r_old
          -> begin
            match Mna.impact_rank1 sys ~device:dev ~r_from:r_old ~r_to:r_new
            with
            | Some r1 ->
                Mna.rank1_direction sys r1 ct.ct_u;
                Some
                  {
                    rk_held = ct.ct_held;
                    rk_u = ct.ct_u;
                    rk_dg = r1.Mna.r1_dg;
                    rk_used = 0;
                    rk_fallback = 0;
                  }
            | None -> None
          end
        | Some _ | None -> None
      end
    | _ -> None
  in
  let attempt ?rank1 ~gmin ~scale ~start () =
    let source_scale = scale *. source_scale in
    match workspace with
    | Some ws ->
        newton_ws ~options ~companions ~source_scale ~restamp ~gmin ?rank1 sys
          ws ~time ~start
    | None -> (
        (* the allocating reference path factors once per iteration *)
        match
          newton_alloc ~options ~companions ~source_scale ~restamp ~gmin sys
            ~time ~start
        with
        | Some (x, it) -> Some (x, it, it, 0)
        | None -> None)
  in
  (* Continuation bookkeeping for a converged solve: retain the solution
     as the next warm start; retain the workspace factorization (and the
     impact it was assembled under) whenever this solve actually
     factored — a solve that converged purely through the rank-1 path
     leaves the previously held factorization in place, which stays
     consistent because the next delta is always computed against the
     held impact. *)
  let finish ~x ~it ~factors ~reuses ~gmin_steps ~source_steps =
    (match continuation with
    | Some ct ->
        Array.blit x 0 ct.ct_x 0 ct.ct_size;
        ct.ct_have_x <- true;
        (match workspace with
        | Some ws when factors > 0 ->
            Mna.hold ws ct.ct_held;
            ct.ct_impact <-
              (match restamp with Some r -> r.Mna.impact | None -> None)
        | Some _ | None -> ());
        (match rank1_ctx with
        | Some rk ->
            Obs.Counter.bump c_rank1 rk.rk_used;
            Obs.Counter.bump c_rank1_fb rk.rk_fallback
        | None -> ());
        if warm then begin
          if ct.ct_cold_iters > 0 then
            Obs.Counter.bump c_warm_saved (max 0 (ct.ct_cold_iters - it))
        end
        else ct.ct_cold_iters <- it
    | None -> ());
    {
      solution = x;
      newton_iterations = it;
      factorizations = factors;
      pattern_reuses = reuses;
      gmin_steps;
      source_steps;
    }
  in
  let direct =
    match attempt ?rank1:rank1_ctx ~gmin:options.gmin ~scale:1. ~start () with
    | Some _ as converged -> converged
    | None when warm ->
        (* A poisoned warm start must never cost convergence: near a
           discontinuity of the solution branch (a fault railing the
           circuit at one impact, releasing it at the next) the previous
           iterate can sit in a basin Newton cannot leave.  Replay the
           cold path exactly — same start, no rank-1 — before escalating
           to the stepping ladders. *)
        attempt ~gmin:options.gmin ~scale:1. ~start:cold_start ()
    | None -> None
  in
  match direct with
  | Some (x, it, factors, reuses) ->
      finish ~x ~it ~factors ~reuses ~gmin_steps:0 ~source_steps:0
  | None -> begin
      (* gmin stepping: relax then tighten — seeded from the cold start,
         like the cold path, never from a failed warm iterate *)
      let start = cold_start in
      let gmins = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; options.gmin ] in
      let rec gmin_walk x_opt steps = function
        | [] -> (x_opt, steps)
        | g :: rest -> begin
            let start =
              match x_opt with Some (x, _, _, _) -> x | None -> start
            in
            match attempt ~gmin:g ~scale:1. ~start () with
            | Some r -> gmin_walk (Some r) (steps + 1) rest
            | None -> (None, steps)  (* chain broken: give up on this path *)
          end
      in
      match gmin_walk None 0 gmins with
      | Some (x, it, factors, reuses), steps ->
          finish ~x ~it ~factors ~reuses ~gmin_steps:steps ~source_steps:0
      | None, _ -> begin
          (* source stepping at final gmin *)
          let scales = [ 0.; 0.1; 0.2; 0.35; 0.5; 0.65; 0.8; 0.9; 1. ] in
          let rec src_walk x_opt steps = function
            | [] -> (x_opt, steps)
            | s :: rest -> begin
                let start =
                  match x_opt with Some (x, _, _, _) -> x | None -> start
                in
                match attempt ~gmin:options.gmin ~scale:s ~start () with
                | Some r -> src_walk (Some r) (steps + 1) rest
                | None -> (None, steps)
              end
          in
          match src_walk None 0 scales with
          | Some (x, it, factors, reuses), steps ->
              finish ~x ~it ~factors ~reuses ~gmin_steps:(List.length gmins)
                ~source_steps:steps
          | None, _ ->
              raise
                (No_convergence
                   (Printf.sprintf
                      "DC analysis of %S failed (newton, gmin stepping and \
                       source stepping all diverged)"
                      (Netlist.title (Mna.netlist sys))))
        end
    end

let solve ?options ?guess ?companions ?source_scale ?workspace ?restamp
    ?continuation sys ~time =
  if not (Obs.active ()) then
    solve_u ?options ?guess ?companions ?source_scale ?workspace ?restamp
      ?continuation sys ~time
  else
    match
      solve_u ?options ?guess ?companions ?source_scale ?workspace ?restamp
        ?continuation sys ~time
    with
    | report ->
        Obs.Counter.add c_solves 1;
        Obs.Counter.add c_newton report.newton_iterations;
        Obs.Counter.add c_lu report.factorizations;
        Obs.Counter.add c_reuse report.pattern_reuses;
        Obs.Counter.add c_gmin report.gmin_steps;
        Obs.Counter.add c_src report.source_steps;
        Obs.Histogram.observe h_newton report.newton_iterations;
        report
    | exception (No_convergence _ as e) ->
        Obs.Counter.add c_fail 1;
        raise e

let operating_point ?options ?guess sys ~time =
  (solve ?options ?guess sys ~time).solution

let c_adjoint = Obs.Counter.create "solver.dc.adjoint_solves"

(* Adjoint solve at a converged operating point: reassemble the system
   at the solution and transpose-solve the observable's unit vector.
   At a converged Newton fixed point the assembled matrix IS the exact
   residual Jacobian (the MOSFET companion stamps are its partial
   derivatives), but the factorization the Newton loop left behind
   belongs to the second-to-last iterate — reusing it would cost the
   last digits of the gradient, so one fresh assembly + factorization
   is paid here.  Everything downstream is a pair of triangular sweeps
   per observable: the entire gradient over all parameters costs one
   extra factorization per operating point, versus one full nonlinear
   solve per parameter for finite differences. *)
let solve_adjoint ?(options = default_options) ?companions ?restamp ?workspace
    ?(time = `Dc) sys ~x ~obs_row =
  let n = Mna.size sys in
  if Vec.dim x <> n then invalid_arg "Dc.solve_adjoint: bad solution size";
  if obs_row < 0 || obs_row >= n then
    invalid_arg "Dc.solve_adjoint: observable row out of range";
  let lambda = Vec.create n 0. in
  let e = Vec.create n 0. in
  e.(obs_row) <- 1.;
  (match workspace with
  | Some ws ->
      if ws.Mna.w_size <> n then
        invalid_arg "Dc.solve_adjoint: workspace size mismatch";
      Mna.assemble_into sys ws ~x ~time ?companions ?restamp ~gmin:options.gmin
        ();
      ignore (Mna.ws_factor ws : bool);
      Mna.ws_solve_transpose_into ws e lambda
  | None ->
      let a, _ =
        Mna.assemble sys ~x ~time ?companions ?restamp ~gmin:options.gmin ()
      in
      let lu = Mat.lu_workspace n in
      Mat.factor_in_place a lu;
      Mat.solve_transpose_into lu e lambda);
  Obs.Counter.bump c_adjoint 1;
  lambda
