open Numerics

exception No_convergence of string

type options = {
  abstol : float;
  reltol : float;
  max_newton : int;
  gmin : float;
  vlimit : float;
}

let default_options =
  { abstol = 1e-9; reltol = 1e-6; max_newton = 150; gmin = 1e-12; vlimit = 0.6 }

type report = {
  solution : Vec.t;
  newton_iterations : int;
  gmin_steps : int;
  source_steps : int;
}

(* A solution containing NaN or infinite node voltages must never count
   as converged: NaN compares false against every bound, so an unguarded
   check would either spin the full Newton budget or accept the garbage
   iterate silently. *)
let finite_solution x ~n_nodes =
  let ok = ref true in
  for i = 0 to n_nodes - 1 do
    if not (Float.is_finite x.(i)) then ok := false
  done;
  !ok

exception Diverged

(* Solver counters, bumped once per [solve] from the finished report —
   never inside the Newton loop — so the hot path stays allocation-free
   and branch-light with tracing off.  One LU factorization happens per
   Newton iteration (both the allocating and the in-place path), so the
   factorization counter mirrors the iteration counter of the attempts
   that produced the report. *)
let c_solves = Obs.Counter.create "solver.dc.solves"
let c_newton = Obs.Counter.create "solver.dc.newton_iterations"
let c_lu = Obs.Counter.create "solver.dc.lu_factorizations"
let c_gmin = Obs.Counter.create "solver.dc.gmin_steps"
let c_src = Obs.Counter.create "solver.dc.source_steps"
let c_fail = Obs.Counter.create "solver.dc.failures"

let h_newton =
  Obs.Histogram.create "solver.dc.newton_per_solve"
    ~bounds:[| 2; 4; 8; 16; 32; 64 |]

(* One Newton attempt at fixed gmin and source scale, allocating a fresh
   system per iteration — the legacy build-per-solve arithmetic, kept as
   the reference implementation for the compiled hot path.  Returns the
   solution and iteration count, or None on failure. *)
let newton_alloc ~options ~companions ~source_scale ~restamp ~gmin sys ~time
    ~start =
  let n_nodes = Mna.n_nodes sys in
  let x = ref (Vec.copy start) in
  let converged = ref false in
  let iters = ref 0 in
  (try
     while (not !converged) && !iters < options.max_newton do
       incr iters;
       if Failpoint.should_fail "dc.singular" then raise (Mat.Singular 0);
       let a, z =
         Mna.assemble sys ~x:!x ~time ?companions ~source_scale ?restamp ~gmin
           ()
       in
       let x_new = Mat.solve a z in
       let x_new =
         if Failpoint.should_fail "dc.nan_solution" then
           Vec.create (Vec.dim x_new) Float.nan
         else x_new
       in
       if not (finite_solution x_new ~n_nodes) then raise Diverged;
       (* damping: bound the node-voltage update *)
       let dv_max = ref 0. in
       for i = 0 to n_nodes - 1 do
         dv_max := Float.max !dv_max (Float.abs (x_new.(i) -. !x.(i)))
       done;
       let alpha =
         if !dv_max > options.vlimit then options.vlimit /. !dv_max else 1.
       in
       let x_next =
         Vec.init (Vec.dim x_new) (fun i ->
             !x.(i) +. (alpha *. (x_new.(i) -. !x.(i))))
       in
       if alpha = 1. then begin
         (* convergence is judged on node voltages of a full step *)
         let ok = ref true in
         for i = 0 to n_nodes - 1 do
           let dx = Float.abs (x_next.(i) -. !x.(i)) in
           if dx > options.abstol +. (options.reltol *. Float.abs x_next.(i))
           then ok := false
         done;
         converged := !ok
       end;
       x := x_next
     done
   with Mat.Singular _ | Diverged -> converged := false);
  if !converged then Some (!x, !iters) else None

(* The same Newton iteration restamping a caller-owned workspace: the
   system is assembled into the preallocated matrix, factored in place,
   solved into the swap buffer, and the damped update overwrites it — no
   per-iteration allocation.  Every arithmetic expression matches
   [newton_alloc] term for term (the [x +. alpha *. (x_new -. x)] form is
   kept even at [alpha = 1.], where it is not a bitwise no-op), so both
   paths converge along identical trajectories. *)
let newton_ws ~options ~companions ~source_scale ~restamp ~gmin sys ws ~time
    ~start =
  let n_nodes = Mna.n_nodes sys in
  let size = Vec.dim start in
  Array.blit start 0 ws.Mna.w_x 0 size;
  let converged = ref false in
  let iters = ref 0 in
  (try
     while (not !converged) && !iters < options.max_newton do
       incr iters;
       if Failpoint.should_fail "dc.singular" then raise (Mat.Singular 0);
       Mna.assemble_into sys ws ~x:ws.Mna.w_x ~time ?companions ~source_scale
         ?restamp ~gmin ();
       Mat.factor_in_place ws.Mna.w_a ws.Mna.w_lu;
       Mat.solve_into ws.Mna.w_lu ws.Mna.w_z ws.Mna.w_x_new;
       let x = ws.Mna.w_x and x_new = ws.Mna.w_x_new in
       if Failpoint.should_fail "dc.nan_solution" then
         Array.fill x_new 0 size Float.nan;
       if not (finite_solution x_new ~n_nodes) then raise Diverged;
       let dv_max = ref 0. in
       for i = 0 to n_nodes - 1 do
         dv_max := Float.max !dv_max (Float.abs (x_new.(i) -. x.(i)))
       done;
       let alpha =
         if !dv_max > options.vlimit then options.vlimit /. !dv_max else 1.
       in
       for i = 0 to size - 1 do
         x_new.(i) <- x.(i) +. (alpha *. (x_new.(i) -. x.(i)))
       done;
       if alpha = 1. then begin
         let ok = ref true in
         for i = 0 to n_nodes - 1 do
           let dx = Float.abs (x_new.(i) -. x.(i)) in
           if dx > options.abstol +. (options.reltol *. Float.abs x_new.(i))
           then ok := false
         done;
         converged := !ok
       end;
       ws.Mna.w_x <- x_new;
       ws.Mna.w_x_new <- x
     done
   with Mat.Singular _ | Diverged -> converged := false);
  if !converged then Some (Vec.copy ws.Mna.w_x, !iters) else None

let solve_u ?(options = default_options) ?guess ?companions
    ?(source_scale = 1.) ?workspace ?restamp sys ~time =
  if Failpoint.should_fail "dc.no_convergence" then
    raise
      (No_convergence
         (Printf.sprintf "injected failure at dc.no_convergence (%S)"
            (Netlist.title (Mna.netlist sys))));
  let start =
    match guess with
    | Some g ->
        if Vec.dim g <> Mna.size sys then
          invalid_arg "Dc.solve: guess has wrong dimension";
        g
    | None -> Vec.create (Mna.size sys) 0.
  in
  (match workspace with
  | Some ws when ws.Mna.w_size <> Mna.size sys ->
      invalid_arg "Dc.solve: workspace size mismatch"
  | Some _ | None -> ());
  let attempt ~gmin ~scale ~start =
    let source_scale = scale *. source_scale in
    match workspace with
    | Some ws ->
        newton_ws ~options ~companions ~source_scale ~restamp ~gmin sys ws
          ~time ~start
    | None ->
        newton_alloc ~options ~companions ~source_scale ~restamp ~gmin sys
          ~time ~start
  in
  match attempt ~gmin:options.gmin ~scale:1. ~start with
  | Some (x, it) ->
      { solution = x; newton_iterations = it; gmin_steps = 0; source_steps = 0 }
  | None -> begin
      (* gmin stepping: relax then tighten *)
      let gmins = [ 1e-2; 1e-3; 1e-4; 1e-5; 1e-6; 1e-8; 1e-10; options.gmin ] in
      let rec gmin_walk x_opt steps = function
        | [] -> (x_opt, steps)
        | g :: rest -> begin
            let start =
              match x_opt with Some (x, _) -> x | None -> start
            in
            match attempt ~gmin:g ~scale:1. ~start with
            | Some (x, it) -> gmin_walk (Some (x, it)) (steps + 1) rest
            | None -> (None, steps)  (* chain broken: give up on this path *)
          end
      in
      match gmin_walk None 0 gmins with
      | Some (x, it), steps ->
          {
            solution = x;
            newton_iterations = it;
            gmin_steps = steps;
            source_steps = 0;
          }
      | None, _ -> begin
          (* source stepping at final gmin *)
          let scales = [ 0.; 0.1; 0.2; 0.35; 0.5; 0.65; 0.8; 0.9; 1. ] in
          let rec src_walk x_opt steps = function
            | [] -> (x_opt, steps)
            | s :: rest -> begin
                let start =
                  match x_opt with Some (x, _) -> x | None -> start
                in
                match attempt ~gmin:options.gmin ~scale:s ~start with
                | Some (x, it) -> src_walk (Some (x, it)) (steps + 1) rest
                | None -> (None, steps)
              end
          in
          match src_walk None 0 scales with
          | Some (x, it), steps ->
              {
                solution = x;
                newton_iterations = it;
                gmin_steps = List.length gmins;
                source_steps = steps;
              }
          | None, _ ->
              raise
                (No_convergence
                   (Printf.sprintf
                      "DC analysis of %S failed (newton, gmin stepping and \
                       source stepping all diverged)"
                      (Netlist.title (Mna.netlist sys))))
        end
    end

let solve ?options ?guess ?companions ?source_scale ?workspace ?restamp sys
    ~time =
  if not (Obs.active ()) then
    solve_u ?options ?guess ?companions ?source_scale ?workspace ?restamp sys
      ~time
  else
    match
      solve_u ?options ?guess ?companions ?source_scale ?workspace ?restamp sys
        ~time
    with
    | report ->
        Obs.Counter.add c_solves 1;
        Obs.Counter.add c_newton report.newton_iterations;
        Obs.Counter.add c_lu report.newton_iterations;
        Obs.Counter.add c_gmin report.gmin_steps;
        Obs.Counter.add c_src report.source_steps;
        Obs.Histogram.observe h_newton report.newton_iterations;
        report
    | exception (No_convergence _ as e) ->
        Obs.Counter.add c_fail 1;
        raise e

let operating_point ?options ?guess sys ~time =
  (solve ?options ?guess sys ~time).solution
