(** Modified nodal analysis: unknown ordering and system assembly.

    The unknown vector [x] is the non-ground node voltages followed by one
    branch current per voltage source, VCVS and inductor.  {!assemble}
    produces the linearized system [A x = z] at a given iterate — for
    linear elements this is the exact system; for MOSFETs it is the
    Newton companion linearization, so a fixed point of
    [x = solve (assemble x)] is an exact operating point. *)

type t

type backend = Dense | Sparse
(** Linear-algebra backend of a compiled topology.  [Dense] factors
    through {!Numerics.Mat}; [Sparse] compiles the stamp plan's slot
    pattern once and factors through {!Numerics.Smat}.  Both perform the
    same pivot choices and the same per-entry update sequence, so detect
    verdicts and session bytes are bit-identical across backends — the
    backend is a pure time/space trade, invisible to results. *)

val build : ?backend:backend -> Netlist.t -> t
(** Index the netlist ([backend] defaults to [Dense]).
    @raise Invalid_argument if the netlist fails
    {!Netlist.connectivity_check}. *)

val dense_guard_nodes : int
(** Node count above which dense LU is a measurably poor fit (48). *)

val dense_guard_note : ?backend:backend -> Netlist.t -> string option
(** [Some note] when [backend] is [Dense] and the netlist exceeds
    {!dense_guard_nodes} nodes — the advisory every entry path accepting
    a backend choice (CLI subcommands, fuzz campaigns, the serve
    daemon) must surface, so no route silently runs a 100+-node macro
    on dense LU.  [None] on [Sparse] or small netlists.  Advisory only:
    results are bit-identical across backends either way. *)

val backend : t -> backend
val netlist : t -> Netlist.t
val n_nodes : t -> int
val size : t -> int
(** Total unknown count (nodes + branches). *)

val node_index : t -> string -> int option
(** [None] for ground.  @raise Not_found for an unknown node name. *)

val voltage : t -> Numerics.Vec.t -> string -> float
(** Voltage of a node in a solution vector; [0.] for ground.
    @raise Not_found for an unknown node name. *)

val branch_current : t -> Numerics.Vec.t -> string -> float
(** Branch current of a voltage source / VCVS / inductor by device name.
    @raise Not_found if the device has no branch unknown. *)

type companion =
  | Cap_companion of { geq : float; ieq : float }
      (** capacitor replaced by [geq] in parallel with a current source:
          device current (a to b) equals [geq*(va - vb) - ieq] *)
  | Ind_companion of { req : float; veq : float }
      (** inductor branch equation becomes [va - vb - req*i = veq] *)

type source_time = [ `Dc | `Time of float ]
(** [`Dc] evaluates waveforms with {!Waveform.dc_value}; [`Time t] with
    {!Waveform.value}. *)

type restamp = {
  stimulus : (string * Waveform.t) option;
      (** substitute this wave for the named independent source *)
  impact : (string * float) option;
      (** substitute this resistance for the named resistor (the
          fault-impact knob of the convergence loop) *)
}
(** Value-phase overrides for a compiled topology: assembly substitutes
    the probe's stimulus wave and fault-impact resistance at stamp time
    instead of rewriting the netlist and re-indexing it.  The stamp
    sequence is unchanged, so the assembled system is bit-identical to
    one built from a netlist carrying the overridden values. *)

val no_restamp : restamp

val restamp_wave : restamp option -> string -> Waveform.t -> Waveform.t
(** The wave a named source stamps under an override set (identity
    without a matching override). *)

val restamp_ohms : restamp option -> string -> float -> float
(** The resistance a named resistor stamps under an override set —
    shared with the small-signal and noise stampers so every analysis
    sees the same fault impact. *)

type rank1_impact = {
  r1_i : int;  (** first terminal's unknown index, [-1] for ground *)
  r1_j : int;  (** second terminal's unknown index, [-1] for ground *)
  r1_dg : float;  (** conductance delta [1/r_to - 1/r_from] *)
}
(** The fault-impact stamp as an explicit rank-1 view: changing a single
    resistor from [r_from] to [r_to] perturbs the assembled system by
    [r1_dg * u * u^T] where [u = e_i - e_j] (ground rows dropped).  The
    DC/Tran solvers consume it through {!Numerics.Mat.rank1_solve}; the
    AC complex matrix through {!Numerics.Cmat.rank1_update}. *)

val impact_site : t -> string -> (int * int) option
(** Unknown indices of a named resistor's terminals, or [None] if the
    plan has no resistor of that name (e.g. the fault device is absent
    from this configuration's topology). *)

val impact_rank1 :
  t -> device:string -> r_from:float -> r_to:float -> rank1_impact option
(** The rank-1 view of moving the named resistor's value [r_from] →
    [r_to]; [None] if the device is not a resistor in this plan. *)

val rank1_direction : t -> rank1_impact -> Numerics.Vec.t -> unit
(** [rank1_direction t r1 u] overwrites [u] with the stamp direction
    [e_i - e_j] (ground terminals contribute nothing).
    @raise Invalid_argument if [u] is not system-sized. *)

type stimulus_site =
  | S_vsource of int  (** branch-equation row of the source *)
  | S_isource of int * int  (** from/to node indices, [-1] for ground *)
      (** Where an independent source's DC level enters the right-hand
          side: the derivative stamp view [dz/dlevel] resolved once from
          the compiled plan. *)

val stimulus_site : t -> string -> stimulus_site option
(** The derivative stamp view of a named independent source, or [None]
    if the plan has no source of that name. *)

val stimulus_adjoint_dot : stimulus_site -> Numerics.Vec.t -> float
(** [stimulus_adjoint_dot site lambda] is [lambda^T (dz/dlevel)] — the
    right-hand-side derivative contracted with an adjoint vector:
    [lambda.(br)] for a voltage source, [lambda_j - lambda_i] for a
    current source (ground terminals contribute nothing). *)

val impact_adjoint_dot :
  t ->
  device:string ->
  ohms:float ->
  lambda:Numerics.Vec.t ->
  x:Numerics.Vec.t ->
  float option
(** [-lambda^T (dA/dr) x] for the named fault-impact resistor at
    resistance [ohms]: the sensitivity of an adjoint observable to the
    impact resistance, [(lambda_i - lambda_j)(x_i - x_j) / r^2].
    [None] if the plan has no resistor of that name. *)

type engine
(** A backend's paired system matrix and factorization state. *)

type workspace = {
  w_size : int;
  w_eng : engine;  (** system matrix + factorization, backend-matched *)
  w_z : Numerics.Vec.t;  (** right-hand side *)
  mutable w_x : Numerics.Vec.t;  (** Newton iterate *)
  mutable w_x_new : Numerics.Vec.t;  (** Newton solve output / next iterate *)
}
(** Preallocated solve state sized for one compiled topology.  The two
    iterate buffers are swapped (never reallocated) by the Newton loop.
    A workspace is owned by exactly one running analysis at a time;
    under parallel execution each domain creates its own.  The system
    matrix and factorization live behind {!engine} so the Newton loop is
    backend-agnostic through {!ws_factor} / {!ws_solve_into}. *)

val workspace : t -> workspace
(** A workspace on the topology's backend. *)

val ws_factor : workspace -> bool
(** Factor the workspace's assembled system in place.  Returns [true]
    when the sparse backend replayed a held pattern ({!Numerics.Smat.refactor})
    instead of paying the full symbolic pass — a pure optimization,
    bit-identical either way; always [false] on the dense backend.
    @raise Numerics.Mat.Singular if the system is numerically singular
    (same payload on both backends). *)

val ws_solve_into : workspace -> Numerics.Vec.t -> Numerics.Vec.t -> unit
(** Solve against the last {!ws_factor} — {!Numerics.Mat.solve_into} or
    its bit-identical sparse counterpart. *)

val ws_solve_transpose_into :
  workspace -> Numerics.Vec.t -> Numerics.Vec.t -> unit
(** Transpose (adjoint) solve against the last {!ws_factor}. *)

val ws_sparse_stats : workspace -> Numerics.Smat.stats option
(** Factor/reuse counters of the sparse engine; [None] on dense. *)

val ws_sparse_lu : workspace -> Numerics.Smat.lu option
(** The sparse factorization workspace, for blocked multi-RHS solves
    ({!Numerics.Smat.solve_block}); [None] on dense. *)

type held
(** A retained factorization plus rank-1 solve scratch — the
    backend-agnostic face of the continuation's held state. *)

val held : t -> held
(** An (empty) held slot on the topology's backend. *)

val held_factored : held -> bool

val hold : workspace -> held -> unit
(** Copy the workspace's current factorization into the held slot.
    @raise Invalid_argument on a backend mismatch or if the workspace
    was never factored. *)

val held_rank1_solve :
  held ->
  u:Numerics.Vec.t ->
  v:Numerics.Vec.t ->
  dg:float ->
  b:Numerics.Vec.t ->
  x:Numerics.Vec.t ->
  bool
(** Sherman-Morrison solve of [(A + dg u v^T) x = b] against the held
    factorization of [A] — {!Numerics.Mat.rank1_solve} semantics on
    either backend, bit-identical across them (same solves, same dots,
    same cancellation guard).  [false] means the conditioning guard
    declined and the caller must factor fresh.
    @raise Invalid_argument if nothing is held or [b == x]. *)

val assemble :
  t ->
  x:Numerics.Vec.t ->
  time:source_time ->
  ?companions:(string, companion) Hashtbl.t ->
  ?source_scale:float ->
  ?restamp:restamp ->
  gmin:float ->
  unit ->
  Numerics.Mat.t * Numerics.Vec.t
(** Build the linearized MNA system at iterate [x].  [gmin] is added from
    every node to ground.  [source_scale] (default 1) multiplies all
    independent source values — the knob used by source stepping.
    Without [companions], capacitors are open and inductors are shorts
    (DC treatment). *)

val assemble_into :
  t ->
  workspace ->
  x:Numerics.Vec.t ->
  time:source_time ->
  ?companions:(string, companion) Hashtbl.t ->
  ?source_scale:float ->
  ?restamp:restamp ->
  gmin:float ->
  unit ->
  unit
(** {!assemble} into the workspace's preallocated system — the zero
    allocation restamp path.  The workspace matrix and right-hand side
    are zeroed first, so the result is bit-identical to {!assemble}.
    @raise Invalid_argument on a size mismatch. *)

val mosfet_operating_points :
  t -> x:Numerics.Vec.t -> (string * Mos_model.operating_point) list
(** Per-MOSFET bias details at a solution — used by AC analysis and by
    diagnostics. *)
