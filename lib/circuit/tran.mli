(** Transient analysis.

    Fixed-step implicit integration (backward Euler by default,
    trapezoidal optionally) with a full Newton solve per step.  The test
    configurations sample the output at a prescribed rate (100 MHz for the
    step-response configurations, a period-locked rate for THD), so a
    fixed step aligned to the sample clock is the natural choice. *)

type method_ = Backward_euler | Trapezoidal

type probe = { node : string; values : float array }

type result = {
  times : float array;  (** [t_0 = 0], then every [dt] up to [tstop] *)
  probes : probe list;  (** in the order of [observe] *)
}

val probe_values : result -> string -> float array
(** @raise Not_found if the node was not observed. *)

exception Step_failure of { time : float; reason : string }

val simulate :
  ?options:Dc.options ->
  ?method_:method_ ->
  ?workspace:Mna.workspace ->
  ?restamp:Mna.restamp ->
  ?continuation:Dc.continuation ->
  Mna.t ->
  tstop:float ->
  dt:float ->
  observe:string list ->
  result
(** Initial condition is the operating point with sources at [t = 0].
    A non-converging step is retried with up to 16x local step refinement
    before {!Step_failure} is raised.  The failure-injection point
    ["tran.step_failure"] (see {!Numerics.Failpoint}) raises
    {!Step_failure} at the start of a step.

    With [workspace], every Newton solve of every step restamps the
    caller's preallocated system in place and one companion table is
    refilled per step — the compiled hot path, bit-identical to the
    allocating default (see {!Dc.solve}).  [restamp] substitutes
    stimulus/fault-impact values at stamp time.  [continuation] applies
    to the initial operating point only (per-step solves already
    warm-start from the previous step) — see {!Dc.solve}.
    @raise Invalid_argument on non-positive [tstop] or [dt]. *)
