(** DC operating-point computation.

    Damped Newton–Raphson on the MNA system, with gmin stepping and
    source stepping as homotopy fallbacks — the standard SPICE recipe,
    which is robust enough to absorb the worst fault-injected circuits
    (e.g. a low-ohmic bridge across the supply).  Iterates with NaN or
    infinite node voltages abort the attempt immediately (they can never
    legitimately converge).

    Failure-injection points (see {!Numerics.Failpoint}):
    ["dc.no_convergence"] raises {!No_convergence} at [solve] entry,
    ["dc.singular"] fails one Newton attempt as a singular matrix, and
    ["dc.nan_solution"] corrupts one Newton iterate to NaN (exercising
    the finiteness guard). *)

exception No_convergence of string

type options = {
  abstol : float;  (** absolute node-voltage tolerance (V), default 1e-9 *)
  reltol : float;  (** relative tolerance, default 1e-6 *)
  max_newton : int;  (** iterations per Newton attempt, default 150 *)
  gmin : float;  (** final diagonal conductance, default 1e-12 *)
  vlimit : float;  (** max node-voltage update per damped step, default 0.6 V *)
}

val default_options : options

type report = {
  solution : Numerics.Vec.t;
  newton_iterations : int;  (** iterations of the successful attempt *)
  factorizations : int;
      (** full LU factorizations of the successful attempt — equal to
          [newton_iterations] except when a continuation's rank-1 first
          step replaced one *)
  pattern_reuses : int;
      (** of those factorizations, how many the sparse backend served by
          numeric replay on a held pattern ({!Numerics.Smat.refactor});
          always 0 on the dense backend *)
  gmin_steps : int;  (** gmin-stepping stages used (0 = direct success) *)
  source_steps : int;  (** source-stepping stages used *)
}

type continuation
(** Caller-owned homotopy state for a ladder of related solves (the
    impact-convergence loop): the previous converged solution used as the
    Newton warm start, plus a held factorization that serves the first
    Newton step of the next solve through {!Numerics.Mat.rank1_solve}
    when the two systems differ only in one fault-impact resistance.
    One continuation belongs to one solve site (same topology, same
    analysis) and must not be shared across domains. *)

val continuation : Mna.t -> continuation
(** Fresh (cold) continuation state sized for the system. *)

val solve :
  ?options:options ->
  ?guess:Numerics.Vec.t ->
  ?companions:(string, Mna.companion) Hashtbl.t ->
  ?source_scale:float ->
  ?workspace:Mna.workspace ->
  ?restamp:Mna.restamp ->
  ?continuation:continuation ->
  Mna.t ->
  time:Mna.source_time ->
  report
(** Compute the operating point with sources evaluated at [time].
    [companions] and [source_scale] are threaded through to
    {!Mna.assemble} so the transient integrator can reuse this solver for
    its per-step nonlinear systems.

    With [workspace], every Newton iteration restamps and refactors the
    caller's preallocated system in place instead of allocating — the
    compiled hot path.  Without it, each iteration builds a fresh system
    (the legacy build-per-solve path).  Both produce bit-identical
    reports: same arithmetic, same pivot order, same iteration counts.
    [restamp] substitutes stimulus/fault-impact values at stamp time on
    either path.

    With [continuation], the solver warm-starts Newton from the state's
    stored solution (overriding [guess]) and — when a workspace is
    present and the held factorization differs from the requested system
    only in the restamped impact resistance — solves the first Newton
    step against the held factorization by Sherman–Morrison.  A
    conditioning-guard failure falls back to the ordinary
    refactorization, bit-exact with the non-continuation step.  The
    contract is tolerance-identical, not bit-identical: the converged
    solution satisfies the same [abstol]/[reltol] criterion but may
    differ in low-order bits because the Newton trajectory differs.
    After a convergent solve the state is updated in place; a failed
    solve leaves it untouched.
    @raise No_convergence when Newton, gmin stepping and source stepping
    all fail.
    @raise Invalid_argument if the workspace or continuation size does
    not match the system. *)

val operating_point :
  ?options:options -> ?guess:Numerics.Vec.t -> Mna.t ->
  time:Mna.source_time -> Numerics.Vec.t
(** Convenience wrapper returning only the solution vector. *)

val solve_adjoint :
  ?options:options ->
  ?companions:(string, Mna.companion) Hashtbl.t ->
  ?restamp:Mna.restamp ->
  ?workspace:Mna.workspace ->
  ?time:Mna.source_time ->
  Mna.t ->
  x:Numerics.Vec.t ->
  obs_row:int ->
  Numerics.Vec.t
(** [solve_adjoint sys ~x ~obs_row] solves the adjoint system
    [A^T lambda = e_obs] at the converged operating point [x], where [A]
    is the MNA system reassembled at [x] under the same [companions],
    [restamp] and [gmin] the forward solve used.  At a Newton fixed
    point the assembled matrix is the exact residual Jacobian (the
    MOSFET companion stamps are its partial derivatives), so [lambda]
    contracts any parameter's derivative stamp to the exact observable
    sensitivity: [dV_obs/dp = lambda^T (dz/dp - (dA/dp) x)].  One fresh
    factorization is paid per call — the factorization left behind by
    the Newton loop belongs to the second-to-last iterate, not the
    solution.  With [workspace] the assembly and factorization reuse the
    caller's preallocated buffers (overwriting the held factorization).
    Bumps the [solver.dc.adjoint_solves] counter when tracing is active.
    @raise Invalid_argument on size mismatch or an out-of-range
    observable row.
    @raise Numerics.Mat.Singular if the Jacobian is singular at [x]. *)
