open Numerics

let boltzmann = 1.380649e-23

type contribution = { noise_source : string; psd : float }

type point = {
  noise_freq_hz : float;
  total_psd : float;
  contributions : contribution list;
}

let c_solves = Obs.Counter.create "solver.noise.solves"

let output_noise ?(gmin = 1e-12) ?(temperature = 300.) ?workspace ?restamp sys
    ~op ~observe ~freqs =
  let obs =
    match Mna.node_index sys observe with
    | Some i -> i
    | None -> raise Not_found  (* ground: zero noise by definition *)
  in
  let nl = Mna.netlist sys in
  let mos_params = Mna.mosfet_operating_points sys ~x:op in
  let four_kt = 4. *. boltzmann *. temperature in
  (* per-device current-noise PSD and injection nodes *)
  let sources =
    List.filter_map
      (fun d ->
        match d with
        | Device.Resistor { name; a; b; ohms } ->
            (* the fault-impact override must reach the thermal-noise PSD,
               not only the system matrix *)
            let ohms = Mna.restamp_ohms restamp name ohms in
            Some (name, a, b, four_kt /. ohms)
        | Device.Mosfet { name; drain; source; _ } ->
            let p = List.assoc name mos_params in
            let gm = Float.abs p.Mos_model.d_gate in
            if gm <= 0. then None
            else Some (name, drain, source, four_kt *. (2. /. 3.) *. gm)
        | Device.Capacitor _ | Device.Inductor _ | Device.Vsource _
        | Device.Isource _ | Device.Vcvs _ | Device.Vccs _ -> None)
      (Netlist.devices nl)
  in
  let node_idx n =
    if Device.is_ground n then -1 else Option.get (Mna.node_index sys n)
  in
  let at_freq freq =
    let a = Ac.system_matrix ~gmin ?workspace ?restamp sys ~op ~freq_hz:freq in
    let at = Cmat.transpose a in
    let e = Array.make (Mna.size sys) Complex.zero in
    e.(obs) <- Complex.one;
    let y = Cmat.solve at e in
    Obs.Counter.bump c_solves 1;
    let transfer n =
      let i = node_idx n in
      if i < 0 then Complex.zero else y.(i)
    in
    let contributions =
      List.map
        (fun (name, na, nb, s_current) ->
          let z = Complex.sub (transfer na) (transfer nb) in
          (* Complex.norm2 is |z|^2 *)
          { noise_source = name; psd = Complex.norm2 z *. s_current })
        sources
      |> List.stable_sort (fun x y -> Float.compare y.psd x.psd)
    in
    {
      noise_freq_hz = freq;
      total_psd = List.fold_left (fun acc c -> acc +. c.psd) 0. contributions;
      contributions;
    }
  in
  Array.to_list freqs |> List.map at_freq

let integrated_rms points =
  match points with
  | [] | [ _ ] -> invalid_arg "Noise.integrated_rms: need >= 2 points"
  | first :: _ ->
      let rec trapz acc prev = function
        | [] -> acc
        | p :: rest ->
            let df = p.noise_freq_hz -. prev.noise_freq_hz in
            if df < 0. then
              invalid_arg "Noise.integrated_rms: unsorted frequencies";
            trapz (acc +. (0.5 *. (p.total_psd +. prev.total_psd) *. df)) p rest
      in
      sqrt (trapz 0. first (List.tl points))
