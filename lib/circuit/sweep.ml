type result = {
  sweep_values : float array;
  traces : (string * float array) list;
}

let trace r node =
  match List.assoc_opt node r.traces with
  | Some t -> t
  | None -> raise Not_found

let with_dc_value nl ~source v =
  match Netlist.find nl source with
  | Some (Device.Isource i) ->
      Netlist.replace nl source
        [ Device.Isource { i with wave = Waveform.Dc v } ]
  | Some (Device.Vsource s) ->
      Netlist.replace nl source
        [ Device.Vsource { s with wave = Waveform.Dc v } ]
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Sweep: %S is not an independent source" source)
  | None -> invalid_arg (Printf.sprintf "Sweep: no device %S" source)

let dc_transfer ?options nl ~source ~sweep_values ~observe =
  if Array.length sweep_values = 0 then
    invalid_arg "Sweep.dc_transfer: empty sweep";
  let traces = List.map (fun n -> (n, Array.make (Array.length sweep_values) 0.)) observe in
  (* compile once: every sweep point shares one topology (the source
     replacement is order-stable), so the per-point work is a restamp of
     the compiled workspace with the point's DC level, not a netlist
     rewrite plus re-indexing *)
  let sys = Mna.build (with_dc_value nl ~source sweep_values.(0)) in
  let workspace = Mna.workspace sys in
  let guess = ref None in
  Array.iteri
    (fun i v ->
      let restamp =
        { Mna.stimulus = Some (source, Waveform.Dc v); impact = None }
      in
      let report =
        Dc.solve ?options ?guess:!guess ~workspace ~restamp sys ~time:`Dc
      in
      guess := Some report.Dc.solution;
      List.iter
        (fun (n, arr) -> arr.(i) <- Mna.voltage sys report.Dc.solution n)
        traces)
    sweep_values;
  { sweep_values; traces }

let linspace ~lo ~hi ~points =
  if points < 2 then invalid_arg "Sweep.linspace: points < 2";
  Array.init points (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)))

let slope_at r ~node ~at =
  let v = trace r node in
  let n = Array.length r.sweep_values in
  if n < 3 then invalid_arg "Sweep.slope_at: need >= 3 points";
  (* nearest grid index, clamped away from the edges *)
  let best = ref 1 in
  for i = 1 to n - 2 do
    if
      Float.abs (r.sweep_values.(i) -. at)
      < Float.abs (r.sweep_values.(!best) -. at)
    then best := i
  done;
  let i = !best in
  (v.(i + 1) -. v.(i - 1)) /. (r.sweep_values.(i + 1) -. r.sweep_values.(i - 1))
