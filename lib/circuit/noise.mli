(** Small-signal noise analysis.

    Output-referred noise power spectral density by the adjoint method:
    one transposed-system solve per frequency gives the transfer
    impedance from {e every} internal noise current source to the
    observed node at once.  Modelled sources:

    - resistor thermal noise, [4 k T / R] (current PSD across the
      resistor);
    - MOSFET channel thermal noise, [4 k T (2/3) gm] between drain and
      source (long-channel gamma).

    Capacitors, inductors and ideal sources are noiseless. *)

val boltzmann : float

type contribution = {
  noise_source : string;  (** device name *)
  psd : float;  (** its share of the output PSD, V^2/Hz *)
}

type point = {
  noise_freq_hz : float;
  total_psd : float;  (** output noise PSD, V^2/Hz *)
  contributions : contribution list;  (** sorted, largest first *)
}

val output_noise :
  ?gmin:float ->
  ?temperature:float ->
  ?workspace:Ac.workspace ->
  ?restamp:Mna.restamp ->
  Mna.t ->
  op:Numerics.Vec.t ->
  observe:string ->
  freqs:float array ->
  point list
(** Output noise at the observed node over the frequency grid
    ([temperature] defaults to 300 K).  [workspace] reuses a compiled
    small-signal system across frequencies; [restamp] applies the
    fault-impact resistance both to the system matrix and to the
    overridden resistor's thermal-noise PSD.
    @raise Not_found if the node is unknown (or is ground, where the
    noise is zero by definition — also rejected). *)

val integrated_rms : point list -> float
(** RMS noise voltage over the analysed band: trapezoidal integral of
    the total PSD over frequency, square-rooted.  Points must be in
    ascending frequency order.
    @raise Invalid_argument with fewer than two points. *)
