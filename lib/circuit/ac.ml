open Numerics

type point = { freq_hz : float; value : Complex.t }

let gain_db h = 20. *. (log10 (Float.max 1e-300 (Complex.norm h)))

let phase_deg h = Complex.arg h *. 180. /. Float.pi

let log_space ~lo ~hi ~points =
  if lo <= 0. || hi <= lo then invalid_arg "Ac.log_space: need 0 < lo < hi";
  if points < 2 then invalid_arg "Ac.log_space: points < 2";
  let llo = log10 lo and lhi = log10 hi in
  Array.init points (fun i ->
      let f = float_of_int i /. float_of_int (points - 1) in
      10. ** (llo +. (f *. (lhi -. llo))))

let re x = { Complex.re = x; im = 0. }

(* branch-current indexes mirror Mna's assignment *)
let branch_table sys =
  let tbl = Hashtbl.create 8 in
  let next = ref (Mna.n_nodes sys) in
  List.iter
    (fun d ->
      if Device.has_branch_current d then begin
        Hashtbl.replace tbl (Device.name d) !next;
        incr next
      end)
    (Netlist.devices (Mna.netlist sys));
  tbl

let node_idx sys n =
  if Device.is_ground n then -1 else Option.get (Mna.node_index sys n)

(* the small-signal system matrix at one frequency, sources nulled;
   stamps into caller-provided [a] (zeroed here, so a reused workspace
   matrix assembles bit-identically to a fresh one) *)
let assemble_into a ?(gmin = 1e-12) ?restamp sys ~op ~freq_hz ~branch_tbl =
  let w = 2. *. Float.pi *. freq_hz in
  Cmat.fill a Complex.zero;
  for i = 0 to Mna.n_nodes sys - 1 do
    Cmat.add_to a i i (re gmin)
  done;
  let mos_params = Mna.mosfet_operating_points sys ~x:op in
  let idx = node_idx sys in
  let stamp i j v = if i >= 0 && j >= 0 then Cmat.add_to a i j v in
  let stamp_adm i j y =
    stamp i i y;
    stamp j j y;
    stamp i j (Complex.neg y);
    stamp j i (Complex.neg y)
  in
  List.iter
    (fun d ->
      match d with
      | Device.Resistor { name; a = na; b = nb; ohms } ->
          let ohms = Mna.restamp_ohms restamp name ohms in
          stamp_adm (idx na) (idx nb) (re (1. /. ohms))
      | Device.Capacitor { a = na; b = nb; farads; _ } ->
          stamp_adm (idx na) (idx nb) { Complex.re = 0.; im = w *. farads }
      | Device.Inductor { name; a = na; b = nb; henries } ->
          let i = idx na and j = idx nb in
          let br = Hashtbl.find branch_tbl name in
          stamp i br Complex.one;
          stamp j br (Complex.neg Complex.one);
          stamp br i Complex.one;
          stamp br j (Complex.neg Complex.one);
          Cmat.add_to a br br
            (Complex.neg { Complex.re = 0.; im = w *. henries })
      | Device.Vsource { name; plus; minus; _ } ->
          let i = idx plus and j = idx minus in
          let br = Hashtbl.find branch_tbl name in
          stamp i br Complex.one;
          stamp j br (Complex.neg Complex.one);
          stamp br i Complex.one;
          stamp br j (Complex.neg Complex.one)
      | Device.Isource _ -> ()
      | Device.Vcvs { name; plus; minus; ctrl_plus; ctrl_minus; gain } ->
          let i = idx plus and j = idx minus in
          let cp = idx ctrl_plus and cn = idx ctrl_minus in
          let br = Hashtbl.find branch_tbl name in
          stamp i br Complex.one;
          stamp j br (Complex.neg Complex.one);
          stamp br i Complex.one;
          stamp br j (Complex.neg Complex.one);
          stamp br cp (re (-.gain));
          stamp br cn (re gain)
      | Device.Vccs { plus; minus; ctrl_plus; ctrl_minus; gm; _ } ->
          let i = idx plus and j = idx minus in
          let cp = idx ctrl_plus and cn = idx ctrl_minus in
          stamp i cp (re gm);
          stamp i cn (re (-.gm));
          stamp j cp (re (-.gm));
          stamp j cn (re gm)
      | Device.Mosfet { name; drain; gate; source = src; _ } ->
          let mos = List.assoc name mos_params in
          let di = idx drain and gi = idx gate and si = idx src in
          stamp di gi (re mos.Mos_model.d_gate);
          stamp di di (re mos.Mos_model.d_drain);
          stamp di si (re mos.Mos_model.d_source);
          stamp si gi (re (-.mos.Mos_model.d_gate));
          stamp si di (re (-.mos.Mos_model.d_drain));
          stamp si si (re (-.mos.Mos_model.d_source)))
    (Netlist.devices (Mna.netlist sys));
  a

(* Per-analysis small-signal workspace: branch indexing is computed once
   per compiled topology and the system matrix / excitation vector are
   restamped per frequency instead of reallocated. *)
type workspace = {
  ws_size : int;
  ws_a : Cmat.t;
  ws_z : Complex.t array;
  ws_branch : (string, int) Hashtbl.t;
}

let workspace sys =
  {
    ws_size = Mna.size sys;
    ws_a = Cmat.create (Mna.size sys) (Mna.size sys);
    ws_z = Array.make (Mna.size sys) Complex.zero;
    ws_branch = branch_table sys;
  }

let check_workspace sys = function
  | None -> ()
  | Some ws ->
      if ws.ws_size <> Mna.size sys then
        invalid_arg "Ac: workspace size mismatch"

let assemble ?gmin ?restamp sys ~op ~freq_hz ~branch_tbl =
  assemble_into (Cmat.create (Mna.size sys) (Mna.size sys)) ?gmin ?restamp sys
    ~op ~freq_hz ~branch_tbl

let system_matrix ?gmin ?workspace:ws ?restamp sys ~op ~freq_hz =
  check_workspace sys ws;
  match ws with
  | Some w -> assemble_into w.ws_a ?gmin ?restamp sys ~op ~freq_hz ~branch_tbl:w.ws_branch
  | None -> assemble ?gmin ?restamp sys ~op ~freq_hz ~branch_tbl:(branch_table sys)

let c_solves = Obs.Counter.create "solver.ac.solves"

let sweep ?(gmin = 1e-12) ?workspace:ws ?restamp sys ~op ~source ~freqs
    ~observe =
  check_workspace sys ws;
  let nl = Mna.netlist sys in
  if not (Netlist.mem nl source) then raise Not_found;
  let obs_index = Mna.node_index sys observe in
  let branch_tbl =
    match ws with Some w -> w.ws_branch | None -> branch_table sys
  in
  let solve_at freq =
    let a =
      match ws with
      | Some w ->
          assemble_into w.ws_a ~gmin ?restamp sys ~op ~freq_hz:freq ~branch_tbl
      | None -> assemble ~gmin ?restamp sys ~op ~freq_hz:freq ~branch_tbl
    in
    let z =
      match ws with
      | Some w ->
          Array.fill w.ws_z 0 (Array.length w.ws_z) Complex.zero;
          w.ws_z
      | None -> Array.make (Mna.size sys) Complex.zero
    in
    (match Netlist.find nl source with
    | Some (Device.Vsource { name; _ }) ->
        let br = Hashtbl.find branch_tbl name in
        z.(br) <- Complex.one
    | Some (Device.Isource { from_node; to_node; _ }) ->
        let inject n v =
          let i = node_idx sys n in
          if i >= 0 then z.(i) <- Complex.add z.(i) v
        in
        inject from_node (re (-1.));
        inject to_node Complex.one
    | Some _ | None -> raise Not_found);
    let x = Cmat.solve a z in
    Obs.Counter.bump c_solves 1;
    match obs_index with None -> Complex.zero | Some i -> x.(i)
  in
  Array.to_list freqs
  |> List.map (fun f -> { freq_hz = f; value = solve_at f })
