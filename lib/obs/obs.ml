(* Process-global tracing/metrics sink.  See obs.mli for the contract:
   disabled path = one Atomic.get; counters are atomic cells (commutative
   under any interleaving); span events inside Task.collect buffer in
   domain-local state so the engine can flush them in task order. *)

type value = Int of int | Float of float | Str of string

let enabled : bool Atomic.t = Atomic.make false
let active () = Atomic.get enabled

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; cell : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32
  let registry_mutex = Mutex.create ()

  let unregistered name = { cname = name; cell = Atomic.make 0 }

  let create name =
    Mutex.lock registry_mutex;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = unregistered name in
          Hashtbl.add registry name c;
          c
    in
    Mutex.unlock registry_mutex;
    c

  let name c = c.cname
  let incr c = ignore (Atomic.fetch_and_add c.cell 1)
  let add c n = ignore (Atomic.fetch_and_add c.cell n)
  let bump c n = if active () then add c n
  let value c = Atomic.get c.cell
  let reset c = Atomic.set c.cell 0
  let fork c = unregistered c.cname

  let absorb ~into c =
    if into != c then ignore (Atomic.fetch_and_add into.cell (Atomic.get c.cell))

  let registered () =
    Mutex.lock registry_mutex;
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) registry [] in
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.cname b.cname) all
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  type t = { hname : string; bounds : int array; buckets : int Atomic.t array }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 8
  let registry_mutex = Mutex.create ()

  let create name ~bounds =
    Mutex.lock registry_mutex;
    let h =
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              bounds = Array.copy bounds;
              buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add registry name h;
          h
    in
    Mutex.unlock registry_mutex;
    h

  let bucket_of h v =
    let n = Array.length h.bounds in
    let rec find i = if i >= n then n else if v <= h.bounds.(i) then i else find (i + 1) in
    find 0

  let observe h v =
    if active () then ignore (Atomic.fetch_and_add h.buckets.(bucket_of h v) 1)

  let label h i =
    if i < Array.length h.bounds then Printf.sprintf "<=%d" h.bounds.(i)
    else Printf.sprintf ">%d" h.bounds.(Array.length h.bounds - 1)

  let counts h =
    Array.to_list (Array.mapi (fun i b -> (label h i, Atomic.get b)) h.buckets)

  let reset h = Array.iter (fun b -> Atomic.set b 0) h.buckets

  let registered () =
    Mutex.lock registry_mutex;
    let all = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
    Mutex.unlock registry_mutex;
    List.sort (fun a b -> compare a.hname b.hname) all
end

(* ------------------------------------------------------------------ *)
(* Sink: trace file + in-memory span aggregate                         *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_key : string option;
  ev_depth : int;
  ev_elapsed : float; (* seconds *)
  ev_err : bool;
  ev_req : string option; (* owning request, stamped at record time *)
  ev_attrs : (string * value) list;
}

type span_stat = { span_name : string; span_count : int; span_seconds : float }

type agg_stat = { mutable a_count : int; mutable a_seconds : float }

let sink_mutex = Mutex.create ()
let trace_chan : out_channel option ref = ref None
let span_tbl : (string, agg_stat) Hashtbl.t = Hashtbl.create 16
let fault_tbl : (string, int) Hashtbl.t = Hashtbl.create 64

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_value = function
  | Int n -> string_of_int n
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let event_line ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ev\":\"span\",\"name\":\"%s\"" (json_escape ev.ev_name));
  (match ev.ev_key with
  | Some k -> Buffer.add_string buf (Printf.sprintf ",\"key\":\"%s\"" (json_escape k))
  | None -> ());
  (match ev.ev_req with
  | Some r -> Buffer.add_string buf (Printf.sprintf ",\"req\":\"%s\"" (json_escape r))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ",\"depth\":%d,\"elapsed_ms\":%.3f,\"err\":%b" ev.ev_depth
       (ev.ev_elapsed *. 1000.) ev.ev_err);
  (match ev.ev_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
        attrs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Caller holds [sink_mutex]. *)
let sink_event_locked ev =
  (let stat =
     match Hashtbl.find_opt span_tbl ev.ev_name with
     | Some s -> s
     | None ->
         let s = { a_count = 0; a_seconds = 0. } in
         Hashtbl.add span_tbl ev.ev_name s;
         s
   in
   stat.a_count <- stat.a_count + 1;
   stat.a_seconds <- stat.a_seconds +. ev.ev_elapsed);
  (if ev.ev_name = "engine.fault" then
     match ev.ev_key with
     | Some fid ->
         let evals =
           match List.assoc_opt "evals" ev.ev_attrs with
           | Some (Int n) -> n
           | _ -> 0
         in
         Hashtbl.replace fault_tbl fid evals
     | None -> ());
  match !trace_chan with
  | Some oc ->
      output_string oc (event_line ev);
      output_char oc '\n'
  | None -> ()

let sink_events evs =
  match evs with
  | [] -> ()
  | _ ->
      Mutex.lock sink_mutex;
      List.iter sink_event_locked evs;
      (match !trace_chan with Some oc -> flush oc | None -> ());
      Mutex.unlock sink_mutex

(* ------------------------------------------------------------------ *)
(* Per-domain span state                                               *)
(* ------------------------------------------------------------------ *)

type domain_state = {
  mutable depth : int;
  mutable buffering : bool;
  mutable buf : event list; (* reversed *)
  mutable req : string option; (* request this domain is working for *)
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { depth = 0; buffering = false; buf = []; req = None })

let record st ev =
  if st.buffering then st.buf <- ev :: st.buf else sink_events [ ev ]

(* Request correlation: a server handling concurrent requests brackets
   each one in [with_request], and every span its domain (and, via the
   parallel executor's propagation, its worker domains) records carries
   the request id.  Spans are attributed at record time from the
   recording domain's slot, so interleaved requests cannot steal each
   other's events; the trace file stays one JSONL stream, with the [req]
   field as the demultiplexer. *)
let current_request () = (Domain.DLS.get dls).req

let with_request req f =
  let st = Domain.DLS.get dls in
  let saved = st.req in
  st.req <- Some req;
  Fun.protect ~finally:(fun () -> st.req <- saved) f

module Span = struct
  let timed ?key ?attrs name f =
    if not (active ()) then f ()
    else
      let st = Domain.DLS.get dls in
      let d = st.depth in
      st.depth <- d + 1;
      let t0 = Unix.gettimeofday () in
      match f () with
      | v ->
          let dt = Unix.gettimeofday () -. t0 in
          st.depth <- d;
          let ev_attrs =
            match attrs with None -> [] | Some g -> ( try g () with _ -> [])
          in
          record st
            {
              ev_name = name;
              ev_key = key;
              ev_depth = d;
              ev_elapsed = dt;
              ev_err = false;
              ev_req = st.req;
              ev_attrs;
            };
          v
      | exception e ->
          let dt = Unix.gettimeofday () -. t0 in
          st.depth <- d;
          record st
            {
              ev_name = name;
              ev_key = key;
              ev_depth = d;
              ev_elapsed = dt;
              ev_err = true;
              ev_req = st.req;
              ev_attrs = [];
            };
          raise e
end

module Task = struct
  type events = event list (* emission order *)

  let none = []

  let collect f =
    if not (active ()) then (f (), none)
    else
      let st = Domain.DLS.get dls in
      let saved_buffering = st.buffering
      and saved_buf = st.buf
      and saved_depth = st.depth in
      st.buffering <- true;
      st.buf <- [];
      (* Depth restarts at 0 inside a task so a task records the same
         depth fields whether it runs on the main domain (sequential
         executor, inside the engine.run span) or on a worker domain
         with a fresh depth counter — a requirement for traces being
         identical across job counts. *)
      st.depth <- 0;
      match f () with
      | v ->
          let evs = List.rev st.buf in
          st.buffering <- saved_buffering;
          st.buf <- saved_buf;
          st.depth <- saved_depth;
          (v, evs)
      | exception e ->
          st.buffering <- saved_buffering;
          st.buf <- saved_buf;
          st.depth <- saved_depth;
          raise e

  let flush evs = sink_events evs
end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  List.iter Counter.reset (Counter.registered ());
  List.iter Histogram.reset (Histogram.registered ());
  Mutex.lock sink_mutex;
  Hashtbl.reset span_tbl;
  Hashtbl.reset fault_tbl;
  Mutex.unlock sink_mutex

let close_trace_locked () =
  match !trace_chan with
  | Some oc ->
      (try close_out oc with Sys_error _ -> ());
      trace_chan := None
  | None -> ()

let enable ?trace () =
  reset ();
  Mutex.lock sink_mutex;
  close_trace_locked ();
  (match trace with
  | Some path ->
      let oc = open_out path in
      output_string oc "{\"ev\":\"meta\",\"schema\":\"atpg-trace/1\"}\n";
      flush oc;
      trace_chan := Some oc
  | None -> ());
  Mutex.unlock sink_mutex;
  Atomic.set enabled true

let summary_lines () =
  let counter_lines =
    List.map
      (fun c ->
        Printf.sprintf "{\"ev\":\"counter\",\"name\":\"%s\",\"value\":%d}"
          (json_escape (Counter.name c))
          (Counter.value c))
      (Counter.registered ())
  in
  let histogram_lines =
    List.map
      (fun h ->
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf "{\"ev\":\"histogram\",\"name\":\"%s\",\"buckets\":{"
             (json_escape h.Histogram.hname));
        List.iteri
          (fun i (label, n) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":%d" (json_escape label) n))
          (Histogram.counts h);
        Buffer.add_string buf "}}";
        Buffer.contents buf)
      (Histogram.registered ())
  in
  counter_lines @ histogram_lines

let shutdown () =
  if active () then begin
    Atomic.set enabled false;
    let lines = summary_lines () in
    Mutex.lock sink_mutex;
    (match !trace_chan with
    | Some oc ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        flush oc
    | None -> ());
    close_trace_locked ();
    Mutex.unlock sink_mutex
  end

(* ------------------------------------------------------------------ *)
(* Aggregate accessors                                                 *)
(* ------------------------------------------------------------------ *)

let counters () =
  List.map (fun c -> (Counter.name c, Counter.value c)) (Counter.registered ())

let histograms () =
  List.map
    (fun h -> (h.Histogram.hname, Histogram.counts h))
    (Histogram.registered ())

let span_stats () =
  Mutex.lock sink_mutex;
  let all =
    Hashtbl.fold
      (fun name s acc ->
        { span_name = name; span_count = s.a_count; span_seconds = s.a_seconds }
        :: acc)
      span_tbl []
  in
  Mutex.unlock sink_mutex;
  List.sort (fun a b -> compare a.span_name b.span_name) all

let fault_evals () =
  Mutex.lock sink_mutex;
  let all = Hashtbl.fold (fun fid n acc -> (fid, n) :: acc) fault_tbl [] in
  Mutex.unlock sink_mutex;
  List.sort
    (fun (fa, na) (fb, nb) -> if na <> nb then compare nb na else compare fa fb)
    all

let aggregate_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"atpg-obs/1\",\n  \"spans\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"name\": \"%s\", \"count\": %d, \"seconds\": %.6f}"
           (json_escape s.span_name) s.span_count s.span_seconds))
    (span_stats ());
  Buffer.add_string buf "\n  ],\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
    (counters ());
  Buffer.add_string buf "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, rows) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": {" (json_escape name));
      List.iteri
        (fun j (label, n) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\": %d" (json_escape label) n))
        rows;
      Buffer.add_char buf '}')
    (histograms ());
  Buffer.add_string buf "\n  },\n  \"fault_evals\": [";
  List.iteri
    (fun i (fid, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"fault\": \"%s\", \"evals\": %d}"
           (json_escape fid) n))
    (fault_evals ());
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
