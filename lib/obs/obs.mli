(** Zero-dependency tracing and metrics substrate.

    The generation loop is an opaque nest of per-fault, per-configuration
    optimizer runs over Newton solves; this module makes it observable
    without perturbing it.  Everything is {e off by default}: the
    disabled path is one atomic load and a branch per instrumentation
    site — no allocation, no float arithmetic, no effect on results —
    so the engine's bit-identity contract holds with tracing off.

    With tracing on, spans and counters record into a process-global
    sink: an in-memory aggregator, plus (optionally) a JSONL trace file.
    The sink is shared by every request a long-lived server handles;
    span events are attributed to their owning request at record time
    (see {!with_request}) so concurrent sessions interleave in the trace
    without cross-attribution, while counter/histogram aggregates remain
    server-wide totals.
    Aggregate {e counter} and {e histogram} values are deterministic
    under any `--jobs N`: every increment is tied to one unit of
    per-fault work, the engine isolates each fault on fresh evaluator
    forks while tracing (cache state becomes a pure function of the
    fault), and integer addition commutes.  Span {e durations} are wall
    clock and therefore not deterministic; trace files are identical
    across job counts modulo the [elapsed_ms] timestamp fields.

    Domain-ownership rules: counters and histograms use atomic cells and
    may be bumped from any domain.  Span events recorded inside
    {!Task.collect} buffer in domain-local state and must be flushed
    from a single thread (the engine's in-order emit funnel); events
    recorded outside any task scope write directly under the sink lock. *)

type value = Int of int | Float of float | Str of string
(** Attribute values attached to span events. *)

val enable : ?trace:string -> unit -> unit
(** Switch tracing on, resetting all registered counters, histograms and
    the in-memory aggregate.  [trace] opens (truncating) a JSONL trace
    file; without it only the in-memory aggregator records. *)

val shutdown : unit -> unit
(** Append the counter/histogram summary to the trace file (if any),
    close it, and switch tracing off.  No-op when tracing is off. *)

val reset : unit -> unit
(** Zero all registered counters and histograms and clear the in-memory
    aggregate without touching the enabled flag or the trace file. *)

val active : unit -> bool
(** One atomic load: the guard every instrumentation site checks first. *)

val with_request : string -> (unit -> 'a) -> 'a
(** [with_request id f] runs [f] with every span event recorded by the
    calling domain stamped with request id [id] (a ["req"] field on the
    JSONL span lines).  The stamp is taken at record time from the
    recording domain, so two requests running concurrently on different
    domains each tag exactly their own spans.  Nestable (innermost id
    wins); restored on exit.  Worker domains spawned inside the bracket
    inherit the id through {!Testgen.Parallel}'s fan-out propagation. *)

val current_request : unit -> string option
(** The calling domain's active request id, if inside {!with_request}. *)

module Counter : sig
  type t
  (** A named monotonic integer counter backed by an atomic cell. *)

  val create : string -> t
  (** A {e registered} global counter: one cell per name for the whole
      process (calling [create] twice with the same name returns the
      same counter), included in {!counters} and the trace summary. *)

  val unregistered : string -> t
  (** A private counter owned by a data structure (e.g. one evaluator):
      same cell semantics, but not in the global registry.  Several
      instances may share a name. *)

  val name : t -> string

  val incr : t -> unit
  (** Unconditional increment (used for counters that must count even
      with tracing off, e.g. the evaluator budget counter). *)

  val add : t -> int -> unit

  val bump : t -> int -> unit
  (** [add] guarded by {!active}: the standard instrumentation call. *)

  val value : t -> int
  val reset : t -> unit

  val fork : t -> t
  (** A zeroed private counter with the same name — a worker domain's
      view.  Forking never touches the parent. *)

  val absorb : into:t -> t -> unit
  (** [absorb ~into:parent child] adds the child's count into the
      parent.  Addition commutes and associates, so absorbing any
      permutation of forks yields the same total — the deterministic
      merge {!Parallel} relies on.  No-op when [parent == child]. *)
end

module Histogram : sig
  type t
  (** Fixed-bound integer histogram (atomic bucket cells). *)

  val create : string -> bounds:int array -> t
  (** Registered histogram with inclusive upper bounds per bucket
      (ascending) plus an implicit overflow bucket.  Idempotent per
      name, like {!Counter.create}. *)

  val observe : t -> int -> unit
  (** Count a sample into its bucket when tracing is {!active}
      (no-op otherwise). *)

  val counts : t -> (string * int) list
  (** [(bucket label, count)] rows, e.g. [("<=8", 12); (">64", 1)]. *)

  val reset : t -> unit
end

module Span : sig
  val timed :
    ?key:string ->
    ?attrs:(unit -> (string * value) list) ->
    string ->
    (unit -> 'a) ->
    'a
  (** [timed name f] runs [f], recording a span event (name, optional
      key, nesting depth, elapsed wall time) when tracing is active —
      when it is not, this is exactly [f ()].  [attrs] is a thunk,
      evaluated only on a traced, successful return, so attribute
      construction costs nothing when disabled.  If [f] raises, the
      event is recorded with [err=true] (and no attrs) and the
      exception is re-raised. *)
end

module Task : sig
  type events
  (** An opaque batch of span events buffered by one task. *)

  val none : events

  val collect : (unit -> 'a) -> 'a * events
  (** Run a task with span events buffered in domain-local state
      instead of written to the sink, and return them.  The engine
      buffers each fault's events this way and flushes them through its
      in-order emit funnel, which makes the trace-file event order
      deterministic under any worker count.  With tracing off this is
      [f ()] plus {!none}. *)

  val flush : events -> unit
  (** Write a buffered batch to the sink (trace file + aggregator).
      Call from a single thread, in task order, for a deterministic
      trace. *)
end

(** {2 In-memory aggregate} *)

type span_stat = { span_name : string; span_count : int; span_seconds : float }

val counters : unit -> (string * int) list
(** Registered counter values, sorted by name.  Deterministic under
    [--jobs N] (see the module preamble). *)

val histograms : unit -> (string * (string * int) list) list
(** Registered histogram bucket counts, sorted by name. *)

val span_stats : unit -> span_stat list
(** Per-span-name totals of flushed events, sorted by name.  Counts are
    deterministic; seconds are wall clock. *)

val fault_evals : unit -> (string * int) list
(** [(fault id, evaluations)] from flushed [engine.fault] spans, sorted
    by descending evaluation count (fault id breaks ties). *)

val aggregate_json : unit -> string
(** The whole aggregate as one JSON object (hand-rolled; no JSON library
    is baked into the image) — what bench runs write next to their
    BENCH_*.json reports. *)
