(** Minimal single-line JSON for the serve protocol.

    The daemon frames its wire protocol as JSONL: one JSON value per
    line.  No JSON library is baked into the image, so this module is
    the shared implementation for the server, the client and the bench
    load generator.  {!to_string} never emits a newline; {!of_string}
    accepts what {!to_string} produces plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering; integers within 2^53 print without a decimal
    point, non-finite floats as [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (the whole string).  [Error] carries a
    position-annotated diagnostic. *)

(** {2 Accessors} — shallow, [None] on type or key mismatch. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
val str_member : string -> t -> string option
val num_member : string -> t -> float option
val int_member : string -> t -> int option
val bool_member : string -> t -> bool option
val list_member : string -> t -> t list option
