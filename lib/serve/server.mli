(** The ATPG daemon: concurrent test-generation sessions over a Unix
    domain socket.

    One {!start}ed server owns a listener thread plus one thread per
    connection; every admitted work request executes in its own domain,
    so per-request failpoint injection ({!Numerics.Failpoint.with_config})
    and Obs request attribution ({!Obs.with_request}) are scoped to that
    request and the worker domains its engine spawns — never shared
    process-globally.  Compiled-plan and nominal caches are shared
    across requests through the evaluator fork/absorb seam.

    Admission is a bounded in-flight budget: requests beyond it are
    rejected immediately (429), requests during drain with 503;
    ping/stats/profile answer inline and are never rejected.

    {!drain} (also installed as the SIGTERM/SIGINT handler by
    {!install_sigterm}) stops accepting and interrupts checkpointed
    sessions at their next checkpoint append; the checkpoint is closed
    cleanly, the client told how many faults completed, and a resend
    with the same session name resumes — the finished session file is
    byte-identical to an uninterrupted run's. *)

type options = {
  socket : string;  (** Unix domain socket path (sun_path-limited) *)
  budget : int;  (** max concurrently admitted work requests *)
  spool : string;  (** directory for session checkpoint files *)
}

val default_options : options

type t

val start : options -> (t, string) result
(** Bind the socket (unlinking any stale file), start the accept loop,
    ignore SIGPIPE.  The server is serving when this returns. *)

val socket : t -> string

type stats = {
  st_in_flight : int;
  st_budget : int;
  st_draining : bool;
  st_accepted : int;
  st_rejected : int;
  st_completed : int;
}

val stats : t -> stats

val drain : t -> unit
(** Stop accepting connections and interrupt checkpointed sessions at
    their next completed fault.  Non-session runs finish normally.
    Idempotent; safe from a signal handler. *)

val wait : t -> unit
(** Join the accept loop and every connection thread, then unlink the
    socket.  Returns once every in-flight request has been answered. *)

val stop : t -> unit
(** [drain] then [wait]. *)

val install_sigterm : t -> unit
(** Route SIGTERM and SIGINT to {!drain} (the daemon then exits when
    {!wait} returns). *)

val session_path : t -> string -> string
(** Spool path of a named session's checkpoint file. *)
