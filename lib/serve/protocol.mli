(** Wire protocol of the ATPG serve daemon ([atpg-serve/1]).

    Framing: newline-delimited JSON in both directions over a Unix
    domain socket.  On connect the server sends one [hello] line
    carrying the schema name.  Each client line is one request object;
    the server streams zero or more event lines for it — every one
    tagged with the request's ["req"] id — and always terminates the
    request with a ["done"] or ["rejected"] line, in request order per
    connection.  Concurrency comes from multiple connections, bounded
    by the server's admission budget.

    Request object fields: ["req"] (client-chosen correlation id),
    ["op"] (one of [ping], [stats], [profile], [op], [generate],
    [compact], [baseline]), and for the work ops ["macro"],
    ["backend"], ["fast"], ["take"], ["jobs"], ["delta"], ["inject"]
    (array of failpoint specs), ["inject_seed"], ["session"]
    (checkpoint name for drain/resume).

    Event lines: ["accepted"], ["rejected"] (with [code] 429 = budget
    full, 503 = draining), ["note"] (advisories, e.g. the dense-backend
    size guard), ["result"], ["drained"] (run interrupted by graceful
    drain after [completed] checkpointed faults — resend with the same
    [session] to resume), ["error"], ["done"] (with the request's
    [status], mirroring CLI exit codes). *)

open Testgen

val schema : string

val exit_rejected : int
(** Client exit code 6: the daemon rejected the request (429/503). *)

val exit_drained : int
(** Client exit code 7: the run was interrupted by a graceful drain;
    the session checkpoint holds the completed prefix. *)

type work = {
  w_macro : string;
  w_backend : Circuit.Mna.backend;
  w_fast : bool;
  w_take : int option;
  w_jobs : int;
  w_delta : float;  (** compaction sensitivity-loss budget *)
  w_inject : Numerics.Failpoint.spec list;
  w_inject_seed : int64;
  w_session : string option;
}

val default_work : work

type op =
  | Ping of { linger_ms : int }
      (** liveness probe; [linger_ms > 0] holds an admission slot for
          that long — the deterministic way to fill the budget in
          tests *)
  | Stats  (** admission counters and server state *)
  | Profile  (** Obs span/counter aggregate of the server process *)
  | Op of { macro : string; backend : Circuit.Mna.backend }
      (** DC operating point *)
  | Generate of work
  | Compact of work
  | Baseline of work

type request = { rq_id : string; rq_op : op }

val valid_session_name : string -> bool

val backend_of_string : string -> (Circuit.Mna.backend, string) result
val backend_to_string : Circuit.Mna.backend -> string

val request_of_json :
  fallback_id:string -> Jsonl.t -> (request, string) result
(** Decode a request line.  [fallback_id] names the request when the
    client did not send a ["req"] field. *)

(** {2 Response lines} *)

val hello : Jsonl.t
val accepted : req:string -> Jsonl.t
val rejected : req:string -> code:int -> reason:string -> Jsonl.t
val note : req:string -> string -> Jsonl.t
val error : req:string -> string -> Jsonl.t
val result : req:string -> (string * Jsonl.t) list -> Jsonl.t
val drained : req:string -> session:string -> completed:int -> Jsonl.t
val done_ : req:string -> status:int -> Jsonl.t

val verdicts_of_run : Engine.run -> Jsonl.t
(** Canonical per-fault verdict array, in dictionary order — the unit
    of the serve-vs-CLI verdict-compatibility comparison.  A pure
    function of the run record: result-identical runs produce
    byte-identical verdicts. *)
