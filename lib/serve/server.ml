open Testgen

(* The daemon: a Unix-domain-socket listener speaking Protocol's JSONL
   framing.  Concurrency model:

   - the accept loop runs on one systhread; each connection gets its own
     systhread that reads requests serially;
   - every admitted work request executes in a freshly spawned Domain.
     Domain-local state is the isolation boundary for the process-global
     bugs this server had to fix: the request's --inject configuration
     installs as a Failpoint domain-local override (never the global
     slot), and its Obs request id stamps every span the domain — and,
     via Parallel.fan_out propagation, its worker domains — records;
   - admission is a bounded in-flight budget checked before the spawn:
     over-budget requests get an immediate 429-style rejection, requests
     arriving during drain a 503.  Ping/stats/profile answer inline so
     introspection works while the budget is full;
   - compiled-plan and nominal caches are shared across requests through
     the Evaluator fork/absorb seam: each request forks private
     evaluators off a cached per-(macro, backend, profile) context and
     absorbs them back when done, so later requests warm-start from
     earlier requests' nominal work;
   - graceful drain stops accepting, then interrupts checkpointed
     sessions at their next checkpoint append (the engine's in-order
     emit funnel), closes the checkpoint cleanly and tells the client
     how far it got — a resend with the same session resumes and the
     final session bytes are identical to an uninterrupted run. *)

exception Drained

type options = {
  socket : string;
  budget : int;
  spool : string;
}

let default_options =
  { socket = "/tmp/atpg.sock"; budget = 2; spool = "/tmp/atpg-spool" }

type stats = {
  st_in_flight : int;
  st_budget : int;
  st_draining : bool;
  st_accepted : int;
  st_rejected : int;
  st_completed : int;
}

type ctx_key = { ck_macro : string; ck_backend : Circuit.Mna.backend; ck_fast : bool }

type t = {
  opts : options;
  listen_fd : Unix.file_descr;
  started : float;
  draining : bool Atomic.t;
  listener_open : bool Atomic.t;
  in_flight : int ref;
  adm_mutex : Mutex.t;
  accepted_n : int Atomic.t;
  rejected_n : int Atomic.t;
  completed_n : int Atomic.t;
  ctx_mutex : Mutex.t;
  ctx_cache : (ctx_key, Experiments.Setup.t * Generate.options option) Hashtbl.t;
  conn_mutex : Mutex.t;
  mutable conns : Thread.t list;
  mutable accept_thread : Thread.t option;
}

(* -- admission --------------------------------------------------------- *)

let admit t =
  Mutex.lock t.adm_mutex;
  let verdict =
    if Atomic.get t.draining then `Draining
    else if !(t.in_flight) >= t.opts.budget then `Busy
    else begin
      incr t.in_flight;
      `Admitted
    end
  in
  Mutex.unlock t.adm_mutex;
  verdict

let release t =
  Mutex.lock t.adm_mutex;
  decr t.in_flight;
  Mutex.unlock t.adm_mutex

let stats t =
  Mutex.lock t.adm_mutex;
  let in_flight = !(t.in_flight) in
  Mutex.unlock t.adm_mutex;
  {
    st_in_flight = in_flight;
    st_budget = t.opts.budget;
    st_draining = Atomic.get t.draining;
    st_accepted = Atomic.get t.accepted_n;
    st_rejected = Atomic.get t.rejected_n;
    st_completed = Atomic.get t.completed_n;
  }

(* -- shared contexts --------------------------------------------------- *)

(* Expensive to build (the IV context calibrates tolerance boxes over
   process corners), cheap to share: contexts are immutable apart from
   their evaluators' caches, which requests access only through private
   forks.  Built outside the lock; a concurrent duplicate build loses
   the insert race and is dropped. *)
let context t (work : Protocol.work) =
  match Macros.Registry.find work.Protocol.w_macro with
  | Error e -> Error e
  | Ok macro ->
      let key =
        {
          ck_macro = work.Protocol.w_macro;
          ck_backend = work.Protocol.w_backend;
          ck_fast = work.Protocol.w_fast;
        }
      in
      Mutex.lock t.ctx_mutex;
      let cached = Hashtbl.find_opt t.ctx_cache key in
      Mutex.unlock t.ctx_mutex;
      let entry =
        match cached with
        | Some entry -> entry
        | None ->
            let profile =
              if work.Protocol.w_fast then Execute.fast_profile
              else Execute.default_profile
            in
            let built =
              if String.equal work.Protocol.w_macro "iv" then
                ( Experiments.Setup.iv ~profile
                    ~backend:work.Protocol.w_backend (),
                  None )
              else
                ( Experiments.Setup.probe ~profile
                    ~backend:work.Protocol.w_backend ~macro (),
                  Some Experiments.Setup.probe_options )
            in
            Mutex.lock t.ctx_mutex;
            let entry =
              match Hashtbl.find_opt t.ctx_cache key with
              | Some racing -> racing
              | None ->
                  Hashtbl.replace t.ctx_cache key built;
                  built
            in
            Mutex.unlock t.ctx_mutex;
            entry
      in
      Ok (macro, entry)

(* Fork private evaluators off the shared context and absorb them back
   (commutative merge) whatever the outcome, so cache warmth and
   counters survive across requests. *)
let with_forked_evaluators t (setup : Experiments.Setup.t) f =
  Mutex.lock t.ctx_mutex;
  let forks = List.map Evaluator.fork setup.Experiments.Setup.evaluators in
  Mutex.unlock t.ctx_mutex;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.ctx_mutex;
      List.iter2
        (fun parent fork -> Evaluator.absorb ~into:parent fork)
        setup.Experiments.Setup.evaluators forks;
      Mutex.unlock t.ctx_mutex)
    (fun () -> f { setup with Experiments.Setup.evaluators = forks })

(* -- request execution ------------------------------------------------- *)

let executor_of jobs =
  if jobs <= 0 then Parallel.executor ~jobs:(Parallel.default_jobs ())
  else if jobs = 1 then Engine.sequential
  else Parallel.executor ~jobs

let session_path t name = Filename.concat t.opts.spool (name ^ ".ck")

type run_result =
  | Completed of Engine.run
  | Interrupted of { session : string; completed : int }

(* Run the engine for one work request: session checkpointing when asked
   for, drain interruption at checkpoint granularity.  Runs inside the
   request's domain. *)
let engine_run t ~options setup (work : Protocol.work) =
  let executor = executor_of work.Protocol.w_jobs in
  let setup =
    match work.Protocol.w_take with
    | Some n -> Experiments.Setup.reduced setup ~n_faults:n
    | None -> setup
  in
  match work.Protocol.w_session with
  | None ->
      (* no checkpoint to resume from, so the run is not interruptible:
         a drain waits for it *)
      Completed (Experiments.Runs.engine_run ?options ~executor setup)
  | Some name -> (
      let path = session_path t name in
      (* resume salvages a prior drain's prefix; a missing file behaves
         like create *)
      match Session.checkpoint_resume ~path with
      | Error m -> failwith m
      | Ok (ck, prior) ->
          let appended = ref 0 in
          let checkpoint r =
            Session.checkpoint_append ck r;
            incr appended;
            if Atomic.get t.draining then raise Drained
          in
          let close () = Session.checkpoint_close ck in
          (match
             Experiments.Runs.engine_run ?options ~executor ~resume:prior
               ~checkpoint setup
           with
          | run ->
              close ();
              Completed run
          | exception Drained ->
              close ();
              Interrupted
                { session = name; completed = List.length prior + !appended }
          | exception e ->
              close ();
              raise e))

let with_injection (work : Protocol.work) f =
  match work.Protocol.w_inject with
  | [] -> f ()
  | specs ->
      Numerics.Failpoint.with_config ~seed:work.Protocol.w_inject_seed specs f

(* Each work request runs in its own domain so Failpoint overrides and
   the Obs request id are scoped to it (and to the worker domains its
   engine spawns), never to the connection thread or other requests. *)
let in_request_domain ~req f =
  let dom =
    Domain.spawn (fun () ->
        Obs.with_request req (fun () ->
            match f () with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())))
  in
  match Domain.join dom with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let guard_note ~send ~req backend macro =
  match
    Circuit.Mna.dense_guard_note ~backend (Macros.Macro.nominal_netlist macro)
  with
  | Some n -> send (Protocol.note ~req n)
  | None -> ()

let float_fields fields = List.map (fun (k, v) -> (k, Jsonl.Num v)) fields

let run_work t ~send ~req (work : Protocol.work) kind =
  match context t work with
  | Error e ->
      send (Protocol.error ~req e);
      1
  | Ok (macro, (setup, options)) ->
      guard_note ~send ~req work.Protocol.w_backend macro;
      let outcome =
        in_request_domain ~req (fun () ->
            with_injection work (fun () ->
                with_forked_evaluators t setup (fun setup ->
                    let t0 = Unix.gettimeofday () in
                    let r = engine_run t ~options setup work in
                    (r, Unix.gettimeofday () -. t0))))
      in
      let base_fields (run : Engine.run) =
        [
          ("macro", Jsonl.Str work.Protocol.w_macro);
          ("backend",
           Jsonl.Str (Protocol.backend_to_string work.Protocol.w_backend));
          ("faults", Jsonl.Num (float_of_int (List.length run.Engine.reports)));
          ("quarantined",
           Jsonl.Num (float_of_int (List.length run.Engine.failed_faults)));
          ("verdicts", Protocol.verdicts_of_run run);
        ]
      in
      (match outcome with
      | Interrupted { session; completed }, _ ->
          send (Protocol.drained ~req ~session ~completed);
          Protocol.exit_drained
      | Completed run, wall ->
          let extra =
            match kind with
            | `Generate -> []
            | `Baseline ->
                (* the same run scored against fixed-seed selection *)
                [ ("table", Jsonl.Str (Experiments.Runs.xbase setup run)) ]
            | `Compact ->
                let c =
                  Experiments.Runs.compact_run ~delta:work.Protocol.w_delta
                    setup run
                in
                [
                  ("compact",
                   Jsonl.Obj
                     [
                       ("tests",
                        Jsonl.Num
                          (float_of_int
                             (List.length c.Compactor.compact_tests)));
                       ("original",
                        Jsonl.Num
                          (float_of_int c.Compactor.original_test_count));
                       ("labels",
                        Jsonl.List
                          (List.map
                             (fun ct -> Jsonl.Str ct.Compactor.ct_label)
                             c.Compactor.compact_tests));
                     ]);
                ]
          in
          send
            (Protocol.result ~req
               (base_fields run @ extra
               @ [ ("wall_ms", Jsonl.Num (wall *. 1000.)) ]));
          Engine.exit_status run)

let run_op ~send ~req ~macro_name ~backend =
  match Macros.Registry.find macro_name with
  | Error e ->
      send (Protocol.error ~req e);
      1
  | Ok macro ->
      guard_note ~send ~req backend macro;
      in_request_domain ~req (fun () ->
          let nl = Macros.Macro.nominal_netlist macro in
          let sys = Circuit.Mna.build ~backend nl in
          let report = Circuit.Dc.solve sys ~time:`Dc in
          let x = report.Circuit.Dc.solution in
          let voltages =
            List.map
              (fun n -> (n, Jsonl.Num (Circuit.Mna.voltage sys x n)))
              (Circuit.Netlist.nodes nl)
          in
          send
            (Protocol.result ~req
               [
                 ("macro", Jsonl.Str macro_name);
                 ("backend", Jsonl.Str (Protocol.backend_to_string backend));
                 ("newton_iterations",
                  Jsonl.Num (float_of_int report.Circuit.Dc.newton_iterations));
                 ("voltages", Jsonl.Obj voltages);
               ]);
          0)

let stats_fields t =
  let s = stats t in
  let b = Evaluator.batch_stats () in
  [
    ("in_flight", Jsonl.Num (float_of_int s.st_in_flight));
    ("budget", Jsonl.Num (float_of_int s.st_budget));
    ("draining", Jsonl.Bool s.st_draining);
    ("accepted", Jsonl.Num (float_of_int s.st_accepted));
    ("rejected", Jsonl.Num (float_of_int s.st_rejected));
    ("completed", Jsonl.Num (float_of_int s.st_completed));
    ("uptime_s", Jsonl.Num (Unix.gettimeofday () -. t.started));
    (* config-major batching across all served requests: maintained
       unconditionally, so stats see them without tracing enabled *)
    ( "batch_faults_batched",
      Jsonl.Num (float_of_int b.Evaluator.faults_batched) );
    ("batch_fallback_seq", Jsonl.Num (float_of_int b.Evaluator.fallback_seq));
    ("batch_panels", Jsonl.Num (float_of_int b.Evaluator.panels));
  ]

let profile_fields () =
  let spans =
    List.map
      (fun s ->
        Jsonl.Obj
          [
            ("name", Jsonl.Str s.Obs.span_name);
            ("count", Jsonl.Num (float_of_int s.Obs.span_count));
            ("seconds", Jsonl.Num s.Obs.span_seconds);
          ])
      (Obs.span_stats ())
  in
  let counters =
    List.map
      (fun (name, v) -> (name, Jsonl.Num (float_of_int v)))
      (Obs.counters ())
  in
  [ ("spans", Jsonl.List spans); ("counters", Jsonl.Obj counters) ]

(* -- the per-request state machine ------------------------------------- *)

let handle_request t ~send (rq : Protocol.request) =
  let req = rq.Protocol.rq_id in
  match rq.Protocol.rq_op with
  (* introspection answers inline — it must work while the budget is
     full and during drain *)
  | Protocol.Ping { linger_ms = 0 } ->
      send (Protocol.result ~req [ ("pong", Jsonl.Bool true) ]);
      send (Protocol.done_ ~req ~status:0)
  | Protocol.Stats ->
      send (Protocol.result ~req (stats_fields t));
      send (Protocol.done_ ~req ~status:0)
  | Protocol.Profile ->
      send (Protocol.result ~req (profile_fields ()));
      send (Protocol.done_ ~req ~status:0)
  | Protocol.Ping _ | Protocol.Op _ | Protocol.Generate _ | Protocol.Compact _
  | Protocol.Baseline _ -> (
      match admit t with
      | `Draining ->
          Atomic.incr t.rejected_n;
          send
            (Protocol.rejected ~req ~code:503 ~reason:"server is draining")
      | `Busy ->
          Atomic.incr t.rejected_n;
          send
            (Protocol.rejected ~req ~code:429
               ~reason:
                 (Printf.sprintf "budget full (%d in flight)" t.opts.budget))
      | `Admitted ->
          Atomic.incr t.accepted_n;
          send (Protocol.accepted ~req);
          let status =
            Fun.protect
              ~finally:(fun () -> release t)
              (fun () ->
                try
                  match rq.Protocol.rq_op with
                  | Protocol.Ping { linger_ms } ->
                      Thread.delay (float_of_int linger_ms /. 1000.);
                      send
                        (Protocol.result ~req
                           (("pong", Jsonl.Bool true)
                           :: float_fields
                                [ ("linger_ms", float_of_int linger_ms) ]));
                      0
                  | Protocol.Op { macro; backend } ->
                      run_op ~send ~req ~macro_name:macro ~backend
                  | Protocol.Generate w -> run_work t ~send ~req w `Generate
                  | Protocol.Compact w -> run_work t ~send ~req w `Compact
                  | Protocol.Baseline w -> run_work t ~send ~req w `Baseline
                  | Protocol.Stats | Protocol.Profile -> assert false
                with e ->
                  send
                    (Protocol.error ~req
                       (Printf.sprintf "request failed: %s"
                          (Printexc.to_string e)));
                  1)
          in
          Atomic.incr t.completed_n;
          send (Protocol.done_ ~req ~status))

(* -- connection & accept loops ----------------------------------------- *)

(* Blocking reads don't wake when another thread sets the drain flag, so
   both loops poll with short selects.  A draining connection stays
   readable for a grace window — long enough for a client that was about
   to send to receive its 503 — then closes. *)
let poll_interval = 0.05
let drain_grace = 0.5

(* Incremental line reader over the raw fd: select / read / split.
   Returns [`Line], [`Eof] (also on reset) or [`Drained] once the drain
   grace expires with no pending input. *)
let make_line_reader t fd =
  let pending = Queue.create () in
  let partial = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let drain_deadline = ref None in
  let rec next () =
    match Queue.take_opt pending with
    | Some line -> `Line line
    | None -> (
        let expired () =
          match !drain_deadline with
          | Some dl -> Unix.gettimeofday () > dl
          | None ->
              if Atomic.get t.draining then begin
                drain_deadline :=
                  Some (Unix.gettimeofday () +. drain_grace);
                false
              end
              else false
        in
        if expired () then `Drained
        else
          match Unix.select [ fd ] [] [] poll_interval with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
          | [], _, _ -> next ()
          | _ -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
              | exception Unix.Unix_error _ -> `Eof
              | 0 -> `Eof
              | n ->
                  Buffer.add_subbytes partial chunk 0 n;
                  let s = Buffer.contents partial in
                  Buffer.clear partial;
                  let rec split from =
                    match String.index_from_opt s from '\n' with
                    | Some nl ->
                        Queue.add (String.sub s from (nl - from)) pending;
                        split (nl + 1)
                    | None ->
                        Buffer.add_substring partial s from
                          (String.length s - from)
                  in
                  split 0;
                  next ()))
  in
  next

let connection_loop t fd =
  let oc = Unix.out_channel_of_descr fd in
  let out_mutex = Mutex.create () in
  let send v =
    Mutex.lock out_mutex;
    (try
       output_string oc (Jsonl.to_string v);
       output_char oc '\n';
       flush oc
     with Sys_error _ | Unix.Unix_error _ ->
       (* client went away; keep running so the request's evaluator
          absorb and admission release still happen *)
       ());
    Mutex.unlock out_mutex
  in
  send Protocol.hello;
  let next_line = make_line_reader t fd in
  let counter = ref 0 in
  let rec loop () =
    match next_line () with
    | `Eof | `Drained -> ()
    | `Line line ->
        incr counter;
        let fallback_id = Printf.sprintf "r%d" !counter in
        (if String.trim line <> "" then
           match Jsonl.of_string line with
           | Error m ->
               send (Protocol.error ~req:fallback_id ("bad json: " ^ m));
               send (Protocol.done_ ~req:fallback_id ~status:1)
           | Ok json -> (
               match Protocol.request_of_json ~fallback_id json with
               | Error m ->
                   let req =
                     Option.value ~default:fallback_id
                       (Jsonl.str_member "req" json)
                   in
                   send (Protocol.error ~req m);
                   send (Protocol.done_ ~req ~status:1)
               | Ok rq -> handle_request t ~send rq));
        loop ()
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd ] [] [] poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ -> loop ()
          | fd, _ ->
              let th = Thread.create (fun () -> connection_loop t fd) () in
              Mutex.lock t.conn_mutex;
              t.conns <- th :: t.conns;
              Mutex.unlock t.conn_mutex;
              loop ())
  in
  loop ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let start (opts : options) =
  if opts.budget < 1 then Error "serve: budget must be >= 1"
  else if String.length opts.socket > 100 then
    Error
      (Printf.sprintf "serve: socket path %S too long for sun_path"
         opts.socket)
  else begin
    mkdir_p opts.spool;
    (* a dead server's socket file would make bind fail forever *)
    (try Unix.unlink opts.socket with Unix.Unix_error _ -> ());
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX opts.socket) with
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "serve: cannot bind %s: %s" opts.socket
             (Unix.error_message e))
    | () ->
        Unix.listen fd 16;
        let t =
          {
            opts;
            listen_fd = fd;
            started = Unix.gettimeofday ();
            draining = Atomic.make false;
            listener_open = Atomic.make true;
            in_flight = ref 0;
            adm_mutex = Mutex.create ();
            accepted_n = Atomic.make 0;
            rejected_n = Atomic.make 0;
            completed_n = Atomic.make 0;
            ctx_mutex = Mutex.create ();
            ctx_cache = Hashtbl.create 8;
            conn_mutex = Mutex.create ();
            conns = [];
            accept_thread = None;
          }
        in
        t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
        Ok t
  end

let socket t = t.opts.socket

(* Only flips the flag — both loops poll it — so it is safe from a
   signal handler. *)
let drain t = Atomic.set t.draining true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  if Atomic.compare_and_set t.listener_open true false then
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* connection threads outlive the listener only until their clients
     hang up or their last request finishes; after drain no new ones
     appear, so a snapshot loop terminates *)
  let rec join_all () =
    Mutex.lock t.conn_mutex;
    let pending = t.conns in
    t.conns <- [];
    Mutex.unlock t.conn_mutex;
    match pending with
    | [] -> ()
    | ths ->
        List.iter Thread.join ths;
        join_all ()
  in
  join_all ();
  try Unix.unlink t.opts.socket with Unix.Unix_error _ -> ()

let stop t =
  drain t;
  wait t

let install_sigterm t =
  let handler _ = drain t in
  try
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
  with Invalid_argument _ -> ()
