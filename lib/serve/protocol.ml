open Testgen

let schema = "atpg-serve/1"

(* Client exit codes for daemon-mediated failures, continuing the CLI's
   contract (0 clean, 1 IO/usage, 3 quarantined, 4 fail-fast, 5 corrupt
   session). *)
let exit_rejected = 6
let exit_drained = 7

type work = {
  w_macro : string;
  w_backend : Circuit.Mna.backend;
  w_fast : bool;
  w_take : int option;
  w_jobs : int;
  w_delta : float;
  w_inject : Numerics.Failpoint.spec list;
  w_inject_seed : int64;
  w_session : string option;
}

let default_work =
  {
    w_macro = "iv";
    w_backend = Circuit.Mna.Dense;
    w_fast = true;
    w_take = None;
    w_jobs = 1;
    w_delta = 0.1;
    w_inject = [];
    w_inject_seed = 0L;
    w_session = None;
  }

type op =
  | Ping of { linger_ms : int }
  | Stats
  | Profile
  | Op of { macro : string; backend : Circuit.Mna.backend }
  | Generate of work
  | Compact of work
  | Baseline of work

type request = { rq_id : string; rq_op : op }

let backend_of_string = function
  | "dense" -> Ok Circuit.Mna.Dense
  | "sparse" -> Ok Circuit.Mna.Sparse
  | other -> Error (Printf.sprintf "unknown backend %S" other)

let backend_to_string = function
  | Circuit.Mna.Dense -> "dense"
  | Circuit.Mna.Sparse -> "sparse"

(* Session names become spool file names; reject anything that could
   escape the spool directory or collide with checkpoint suffixes. *)
let valid_session_name s =
  s <> ""
  && String.length s <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s
  && s.[0] <> '.'

let ( let* ) = Result.bind

let work_of_json json =
  let* backend =
    match Jsonl.str_member "backend" json with
    | None -> Ok default_work.w_backend
    | Some s -> backend_of_string s
  in
  let* inject =
    match Jsonl.list_member "inject" json with
    | None -> Ok []
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Jsonl.to_str item with
            | None -> Error "inject entries must be strings"
            | Some s ->
                let* spec = Numerics.Failpoint.spec_of_string s in
                Ok (acc @ [ spec ]))
          (Ok []) items
  in
  let* session =
    match Jsonl.str_member "session" json with
    | None -> Ok None
    | Some s ->
        if valid_session_name s then Ok (Some s)
        else Error (Printf.sprintf "invalid session name %S" s)
  in
  let* take =
    match Jsonl.member "take" json with
    | None -> Ok None
    | Some v -> (
        match Jsonl.to_int v with
        | Some n when n >= 1 -> Ok (Some n)
        | _ -> Error "take must be a positive integer")
  in
  let* jobs =
    match Jsonl.member "jobs" json with
    | None -> Ok default_work.w_jobs
    | Some v -> (
        match Jsonl.to_int v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error "jobs must be a non-negative integer")
  in
  Ok
    {
      w_macro =
        Option.value ~default:default_work.w_macro
          (Jsonl.str_member "macro" json);
      w_backend = backend;
      w_fast = Option.value ~default:true (Jsonl.bool_member "fast" json);
      w_take = take;
      w_jobs = jobs;
      w_delta =
        Option.value ~default:default_work.w_delta
          (Jsonl.num_member "delta" json);
      w_inject = inject;
      w_inject_seed =
        (match Jsonl.num_member "inject_seed" json with
        | Some f -> Int64.of_float f
        | None -> 0L);
      w_session = session;
    }

let request_of_json ~fallback_id json =
  let rq_id =
    match Jsonl.str_member "req" json with
    | Some id when id <> "" -> id
    | _ -> fallback_id
  in
  let* rq_op =
    match Jsonl.str_member "op" json with
    | None -> Error "missing \"op\""
    | Some "ping" ->
        let linger_ms =
          Option.value ~default:0 (Jsonl.int_member "linger_ms" json)
        in
        Ok (Ping { linger_ms = max 0 linger_ms })
    | Some "stats" -> Ok Stats
    | Some "profile" -> Ok Profile
    | Some "op" ->
        let* backend =
          match Jsonl.str_member "backend" json with
          | None -> Ok Circuit.Mna.Dense
          | Some s -> backend_of_string s
        in
        Ok
          (Op
             {
               macro =
                 Option.value ~default:"iv" (Jsonl.str_member "macro" json);
               backend;
             })
    | Some "generate" ->
        let* w = work_of_json json in
        Ok (Generate w)
    | Some "compact" ->
        let* w = work_of_json json in
        Ok (Compact w)
    | Some "baseline" ->
        let* w = work_of_json json in
        Ok (Baseline w)
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { rq_id; rq_op }

(* -- response lines ---------------------------------------------------- *)

let line ~req ~ev fields =
  Jsonl.Obj (("req", Jsonl.Str req) :: ("ev", Jsonl.Str ev) :: fields)

let hello =
  Jsonl.Obj
    [ ("ev", Jsonl.Str "hello"); ("schema", Jsonl.Str schema) ]

let accepted ~req = line ~req ~ev:"accepted" []

let rejected ~req ~code ~reason =
  line ~req ~ev:"rejected"
    [ ("code", Jsonl.Num (float_of_int code)); ("reason", Jsonl.Str reason) ]

let note ~req message = line ~req ~ev:"note" [ ("message", Jsonl.Str message) ]

let error ~req message =
  line ~req ~ev:"error" [ ("message", Jsonl.Str message) ]

let result ~req fields = line ~req ~ev:"result" fields

let drained ~req ~session ~completed =
  line ~req ~ev:"drained"
    [
      ("session", Jsonl.Str session);
      ("completed", Jsonl.Num (float_of_int completed));
    ]

let done_ ~req ~status =
  line ~req ~ev:"done" [ ("status", Jsonl.Num (float_of_int status)) ]

(* -- verdict encoding --------------------------------------------------- *)

(* One canonical JSON verdict per dictionary fault, in dictionary order:
   the unit the bench compares between the daemon and the one-shot CLI
   path.  Pure function of the run record, so byte-compatible whenever
   the runs are result-identical. *)
let verdict_of_outcome (outcome : Generate.result Resilience.outcome) =
  let of_result (r : Generate.result) =
    match r.Generate.outcome with
    | Generate.Unique { config_id; critical_impact; dictionary_sensitivity; _ }
      ->
        [
          ("status", Jsonl.Str "unique");
          ("config", Jsonl.Num (float_of_int config_id));
          ("critical_impact", Jsonl.Num critical_impact);
          ("dictionary_sensitivity", Jsonl.Num dictionary_sensitivity);
        ]
    | Generate.Undetectable { most_sensitive_config; best_sensitivity; _ } ->
        [
          ("status", Jsonl.Str "undetectable");
          ("config", Jsonl.Num (float_of_int most_sensitive_config));
          ("best_sensitivity", Jsonl.Num best_sensitivity);
        ]
  in
  match outcome with
  | Resilience.Ok r -> of_result r
  | Resilience.Recovered (r, _) -> of_result r
  | Resilience.Failed _ -> [ ("status", Jsonl.Str "failed") ]

let verdicts_of_run (run : Engine.run) =
  Jsonl.List
    (List.map
       (fun report ->
         Jsonl.Obj
           (("fault", Jsonl.Str report.Engine.report_fault_id)
           :: verdict_of_outcome report.Engine.report_outcome))
       run.Engine.reports)
