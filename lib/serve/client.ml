(* Client side of the serve protocol: connect, send one request line,
   collect the event stream until the terminal line.  Shared by the
   [atpg client] subcommand, the bench load generator and the tests. *)

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  hello : Jsonl.t;
}

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      match input_line ic with
      | exception End_of_file ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error "server closed the connection before hello"
      | line -> (
          match Jsonl.of_string line with
          | Error m ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error ("bad hello: " ^ m)
          | Ok hello ->
              if Jsonl.str_member "schema" hello = Some Protocol.schema then
                Ok { fd; ic; oc; hello }
              else
                let schema =
                  Option.value ~default:"?"
                    (Jsonl.str_member "schema" hello)
                in
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Error (Printf.sprintf "unexpected schema %S" schema)))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_line conn json =
  output_string conn.oc (Jsonl.to_string json);
  output_char conn.oc '\n';
  flush conn.oc

type reply = {
  events : Jsonl.t list;  (** every event line, in arrival order *)
  status : int;  (** done status, {!Protocol.exit_rejected} on a
                     rejection, or 1 on a dropped connection *)
}

let rejected reply =
  List.exists (fun e -> Jsonl.str_member "ev" e = Some "rejected") reply.events

let drained_event reply =
  List.find_opt
    (fun e -> Jsonl.str_member "ev" e = Some "drained")
    reply.events

let result_event reply =
  List.find_opt
    (fun e -> Jsonl.str_member "ev" e = Some "result")
    reply.events

(* Collect events for [req] until its terminal line.  [on_event] sees
   every line as it arrives (streaming display in the CLI client). *)
let read_reply ?(on_event = fun (_ : Jsonl.t) -> ()) conn ~req =
  let rec go acc =
    match input_line conn.ic with
    | exception End_of_file ->
        { events = List.rev acc; status = 1 }
    | line -> (
        match Jsonl.of_string line with
        | Error _ -> go acc
        | Ok json ->
            if Jsonl.str_member "req" json <> Some req then go acc
            else begin
              on_event json;
              match Jsonl.str_member "ev" json with
              | Some "done" ->
                  {
                    events = List.rev (json :: acc);
                    status =
                      Option.value ~default:1 (Jsonl.int_member "status" json);
                  }
              | Some "rejected" ->
                  {
                    events = List.rev (json :: acc);
                    status = Protocol.exit_rejected;
                  }
              | _ -> go (json :: acc)
            end)
  in
  go []

let request ?on_event conn ~req json =
  send_line conn
    (match json with
    | Jsonl.Obj fields when not (List.mem_assoc "req" fields) ->
        Jsonl.Obj (("req", Jsonl.Str req) :: fields)
    | other -> other);
  read_reply ?on_event conn ~req

(* One-shot convenience: connect, ask, close. *)
let roundtrip ?on_event ~socket ~req json =
  match connect ~socket with
  | Error m -> Error m
  | Ok conn ->
      let reply =
        Fun.protect ~finally:(fun () -> close conn) (fun () ->
            request ?on_event conn ~req json)
      in
      Ok reply
