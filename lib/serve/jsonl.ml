(* Minimal JSON for the serve protocol.  No JSON library is baked into
   the image, so the daemon, the client and the bench load generator all
   share this one implementation: values print on a single line (JSONL
   framing needs no escaping beyond the string rules) and the parser
   accepts exactly what the printer emits plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let format_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (format_num f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* -- parser ------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected %C, got %C" c.pos ch x
  | None -> parse_error "at %d: expected %C, got end of input" c.pos ch

let expect_word c w =
  let n = String.length w in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = w then
    c.pos <- c.pos + n
  else parse_error "at %d: expected %s" c.pos w

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.text then
              parse_error "truncated \\u escape";
            let hex = String.sub c.text c.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some u ->
                c.pos <- c.pos + 4;
                utf8_of_code buf u
            | None -> parse_error "bad \\u escape %S" hex);
            go ()
        | _ -> parse_error "at %d: bad escape" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error "bad number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> parse_error "at %d: expected ',' or '}'" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "at %d: expected ',' or ']'" c.pos
        in
        List (items [])
      end
  | Some 't' -> expect_word c "true"; Bool true
  | Some 'f' -> expect_word c "false"; Bool false
  | Some 'n' -> expect_word c "null"; Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> parse_error "at %d: unexpected %C" c.pos ch

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

(* -- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let str_member key v = Option.bind (member key v) to_str
let num_member key v = Option.bind (member key v) to_num
let int_member key v = Option.bind (member key v) to_int
let bool_member key v = Option.bind (member key v) to_bool
let list_member key v = Option.bind (member key v) to_list
