(** Client side of the serve protocol ([atpg-serve/1]): connect to the
    daemon's socket, send request lines, collect each request's event
    stream until its terminal ["done"]/["rejected"] line.  Used by the
    [atpg client] subcommand, the bench load generator and the tests. *)

type conn

val connect : socket:string -> (conn, string) result
(** Connect and validate the server's hello (schema check). *)

val close : conn -> unit

type reply = {
  events : Jsonl.t list;  (** every event line, in arrival order *)
  status : int;
      (** the ["done"] status; {!Protocol.exit_rejected} when the
          request was rejected; [1] when the connection dropped before a
          terminal line *)
}

val rejected : reply -> bool
val drained_event : reply -> Jsonl.t option
val result_event : reply -> Jsonl.t option

val request :
  ?on_event:(Jsonl.t -> unit) -> conn -> req:string -> Jsonl.t -> reply
(** Send one request object (a missing ["req"] field is filled in from
    [req]) and block until its terminal line.  [on_event] streams each
    event line as it arrives. *)

val roundtrip :
  ?on_event:(Jsonl.t -> unit) ->
  socket:string ->
  req:string ->
  Jsonl.t ->
  (reply, string) result
(** Connect, {!request}, close. *)
