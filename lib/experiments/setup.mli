(** Experiment context: a macro wired to its test configurations with
    calibrated tolerance boxes — everything the generation engine needs. *)

type t = {
  macro : Macros.Macro.t;
  configs : Testgen.Test_config.t list;
  evaluators : Testgen.Evaluator.t list;
  dictionary : Faults.Dictionary.t;
  profile : Testgen.Execute.profile;
}

val target_of_macro :
  Macros.Macro.t -> Macros.Process.point -> Testgen.Execute.target
(** Build an execution target for the macro at a process point
    (standardized stimulus source and observation node). *)

val create :
  ?profile:Testgen.Execute.profile ->
  ?mode:Testgen.Evaluator.mode ->
  ?continuation:bool ->
  ?batching:bool ->
  ?backend:Circuit.Mna.backend ->
  ?grid:int ->
  ?guardband:float ->
  ?corners:Macros.Process.point list ->
  macro:Macros.Macro.t ->
  configs:Testgen.Test_config.t list ->
  unit ->
  t
(** Calibrate a box model per configuration over the process [corners]
    (default {!Macros.Process.corners}) and bundle evaluators plus the
    macro's exhaustive fault dictionary.  [mode] selects the evaluators'
    execution path (default [`Compiled]; [`Legacy] rebuilds the netlist
    per probe — the benchmark baseline).  [continuation] (default
    [false]) enables warm-start continuation along each fault's impact
    ladder — tolerance-identical, faster; see {!Testgen.Evaluator.create}.
    [batching] (default [true]) admits cross-product sweeps into
    config-major batched evaluation — bit-identical, faster; see
    {!Testgen.Evaluator.create}.  [backend] (default [Dense]) selects
    the evaluators' linear-algebra engine; results are bit-identical
    across backends. *)

val iv :
  ?profile:Testgen.Execute.profile ->
  ?mode:Testgen.Evaluator.mode ->
  ?continuation:bool ->
  ?batching:bool ->
  ?backend:Circuit.Mna.backend ->
  ?grid:int ->
  unit ->
  t
(** The paper's experiment: IV-converter macro with configurations
    #1..#5 and the 55-fault dictionary. *)

val probe :
  ?profile:Testgen.Execute.profile ->
  ?mode:Testgen.Evaluator.mode ->
  ?continuation:bool ->
  ?batching:bool ->
  ?backend:Circuit.Mna.backend ->
  ?configs:int ->
  ?levels:int ->
  ?floor:float ->
  macro:Macros.Macro.t ->
  unit ->
  t
(** A deterministic generic context for {e any} macro: [configs]
    (default 3) DC-level test configurations in half-span windows slid
    across the macro family's stimulus range, [levels] (default 2) DC
    levels per configuration, floor-only tolerance boxes at [floor]
    volts (default 1e-3) and the fast execution profile.  No corner
    calibration and no random draws — the context is a pure function of
    [(macro, configs, levels, floor, backend)], so the CLI one-shot path
    and the serve daemon construct bit-identical problems from a macro
    name.  Use {!probe_options} for engine runs over probe contexts. *)

val probe_options : Testgen.Generate.options
(** Reduced optimizer budgets (coarse brackets, 1e-2 tolerance, short
    impact walks) matched to {!probe}'s floor-only boxes. *)

val evaluator : t -> int -> Testgen.Evaluator.t
(** By configuration id.  @raise Not_found if absent. *)

val reduced : t -> n_faults:int -> t
(** Same context with a truncated dictionary — for quick runs and unit
    tests. *)
