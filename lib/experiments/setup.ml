open Testgen

type t = {
  macro : Macros.Macro.t;
  configs : Test_config.t list;
  evaluators : Evaluator.t list;
  dictionary : Faults.Dictionary.t;
  profile : Execute.profile;
}

let target_of_macro (macro : Macros.Macro.t) point =
  {
    Execute.netlist = macro.Macros.Macro.build point;
    stimulus_source = macro.Macros.Macro.stimulus_source;
    observe_node = macro.Macros.Macro.observe_node;
  }

let create ?(profile = Execute.default_profile) ?mode ?continuation ?backend
    ?grid ?guardband ?corners ~macro ~configs () =
  let corner_points =
    match corners with Some c -> c | None -> Macros.Process.corners ()
  in
  let nominal = target_of_macro macro Macros.Process.nominal in
  let corner_targets = List.map (target_of_macro macro) corner_points in
  let evaluators =
    List.map
      (fun config ->
        let box_model =
          Tolerance.calibrate ~profile ?grid ?guardband config ~nominal
            ~corners:corner_targets ()
        in
        Evaluator.create ~profile ?mode ?continuation ?backend config ~nominal
          ~box_model)
      configs
  in
  {
    macro;
    configs;
    evaluators;
    dictionary = Macros.Macro.dictionary macro;
    profile;
  }

let iv ?profile ?mode ?continuation ?backend ?grid () =
  create ?profile ?mode ?continuation ?backend ?grid
    ~macro:Macros.Iv_converter.macro ~configs:Iv_configs.all ()

let evaluator t id =
  match
    List.find_opt (fun ev -> Evaluator.config_id ev = id) t.evaluators
  with
  | Some ev -> ev
  | None -> raise Not_found

let reduced t ~n_faults =
  { t with dictionary = Faults.Dictionary.take t.dictionary n_faults }
