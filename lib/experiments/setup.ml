open Testgen

type t = {
  macro : Macros.Macro.t;
  configs : Test_config.t list;
  evaluators : Evaluator.t list;
  dictionary : Faults.Dictionary.t;
  profile : Execute.profile;
}

let target_of_macro (macro : Macros.Macro.t) point =
  {
    Execute.netlist = macro.Macros.Macro.build point;
    stimulus_source = macro.Macros.Macro.stimulus_source;
    observe_node = macro.Macros.Macro.observe_node;
  }

let create ?(profile = Execute.default_profile) ?mode ?continuation ?batching
    ?backend ?grid ?guardband ?corners ~macro ~configs () =
  let corner_points =
    match corners with Some c -> c | None -> Macros.Process.corners ()
  in
  let nominal = target_of_macro macro Macros.Process.nominal in
  let corner_targets = List.map (target_of_macro macro) corner_points in
  let evaluators =
    List.map
      (fun config ->
        let box_model =
          Tolerance.calibrate ~profile ?grid ?guardband config ~nominal
            ~corners:corner_targets ()
        in
        Evaluator.create ~profile ?mode ?continuation ?batching ?backend
          config ~nominal ~box_model)
      configs
  in
  {
    macro;
    configs;
    evaluators;
    dictionary = Macros.Macro.dictionary macro;
    profile;
  }

let iv ?profile ?mode ?continuation ?batching ?backend ?grid () =
  create ?profile ?mode ?continuation ?batching ?backend ?grid
    ~macro:Macros.Iv_converter.macro ~configs:Iv_configs.all ()

(* -- generic probe contexts -------------------------------------------- *)

(* Stimulus window each macro family accepts at its control node.  The
   IV-converter is current-driven; the active macros have an input
   common-mode range; the passive/buffered chains pass DC through. *)
let probe_stimulus (macro : Macros.Macro.t) =
  match macro.Macros.Macro.macro_type with
  | "IV-converter" -> ("Iin", "A", -40e-6, 40e-6)
  | "OTA-buffer" -> ("inp", "V", 1.2, 3.8)
  | "SK-lowpass" -> ("in", "V", 1.5, 3.5)
  | other ->
      (* RC-ladder, SK-filter-chain, OTA-cascade, and any future DC-coupled
         family *)
      ignore other;
      ("in", "V", 1.0, 4.0)

let probe_configs ~configs ~levels ~floor macro =
  let control_node, units, lo, hi = probe_stimulus macro in
  let span = hi -. lo in
  let w = 0.5 *. span in
  List.init configs (fun j ->
      (* half-span windows slid evenly across the stimulus range, so the
         configurations cover distinct but overlapping operating regions *)
      let plo =
        if configs = 1 then lo
        else lo +. (float_of_int j *. (span -. w) /. float_of_int (configs - 1))
      in
      let phi = plo +. w in
      let seed_v = 0.5 *. (plo +. phi) in
      let step = (phi -. plo) /. float_of_int (levels + 1) in
      Test_config.create ~id:(800 + j)
        ~name:(Printf.sprintf "Probe DC sweep %d" j)
        ~macro_type:macro.Macros.Macro.macro_type ~control_node
        ~params:
          [
            Test_param.create ~name:"v" ~units ~lower:plo ~upper:phi
              ~seed:seed_v;
          ]
        ~analysis:
          (Test_config.Dc_levels
             (fun v ->
               List.init levels (fun k ->
                   let lvl =
                     Float.min phi (v.(0) +. (float_of_int k *. step))
                   in
                   Circuit.Waveform.Dc lvl)))
        ~returns:Test_config.Per_component
        ~return_names:
          (List.init levels (fun k ->
               Printf.sprintf "V(%s)@%d" macro.Macros.Macro.observe_node k))
        ~accuracy_floor:(List.init levels (fun _ -> floor))
        ~summary:"deterministic dc levels at the control node")

let probe ?(profile = Execute.fast_profile) ?mode ?continuation ?batching
    ?backend ?(configs = 3) ?(levels = 2) ?(floor = 1e-3) ~macro () =
  if configs < 1 then invalid_arg "Setup.probe: configs must be >= 1";
  if levels < 1 then invalid_arg "Setup.probe: levels must be >= 1";
  let configs = probe_configs ~configs ~levels ~floor macro in
  let nominal = target_of_macro macro Macros.Process.nominal in
  let evaluators =
    List.map
      (fun config ->
        Evaluator.create ~profile ?mode ?continuation ?batching ?backend
          config ~nominal ~box_model:(Tolerance.floor_only config))
      configs
  in
  {
    macro;
    configs;
    evaluators;
    dictionary = Macros.Macro.dictionary macro;
    profile;
  }

(* Reduced optimizer budgets matching the probe plan's floor-only boxes:
   a probe context answers "which faults does a compact DC test set
   catch" quickly and deterministically, not how tight the optimum is. *)
let probe_options =
  {
    Generate.default_options with
    Generate.bracket_points = 4;
    optimizer_tol = 1e-2;
    powell_max_iter = 2;
    max_impact_steps = 16;
  }

let evaluator t id =
  match
    List.find_opt (fun ev -> Evaluator.config_id ev = id) t.evaluators
  with
  | Some ev -> ev
  | None -> raise Not_found

let reduced t ~n_faults =
  { t with dictionary = Faults.Dictionary.take t.dictionary n_faults }
