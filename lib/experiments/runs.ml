open Testgen

let fig1 () =
  "FIG1 -- test configuration description example (cf. paper Fig. 1)\n\n"
  ^ Test_config.describe Iv_configs.config5

let tab1 () =
  let rows =
    List.map
      (fun (c : Test_config.t) ->
        [
          string_of_int c.Test_config.config_id;
          c.Test_config.config_name;
          c.Test_config.summary;
          String.concat ", "
            (List.map
               (fun p -> Format.asprintf "%a" Test_param.pp p)
               c.Test_config.params);
          String.concat ", " c.Test_config.return_names;
        ])
      Iv_configs.all
  in
  "TAB1 -- test configuration definitions for the IV-converter (cf. Table 1)\n\n"
  ^ Report.Table.of_rows
      ~headers:
        [
          ("#", Report.Table.Right);
          ("name", Report.Table.Left);
          ("stimulus", Report.Table.Left);
          ("parameters (bounds, seed)", Report.Table.Left);
          ("return value(s)", Report.Table.Left);
        ]
      rows

let tps_fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3

let render_tps (g : Tps.graph) =
  match g.Tps.axes with
  | [ (xn, xs); (yn, ys) ] ->
      (* Tps stores values row-major with axis 0 outermost *)
      Report.Heatmap.render ~x_axis:(xn, xs) ~y_axis:(yn, ys)
        ~values:(fun xi yi -> g.Tps.values.((xi * Array.length ys) + yi))
        ()
  | [ (xn, xs) ] ->
      Report.Heatmap.render_1d ~x_axis:(xn, xs) ~values:g.Tps.values ~height:12
  | _ -> "unsupported tps rank\n"

let fig234 ?(grid = 9) ctx =
  let ev = Setup.evaluator ctx 3 in
  (* The paper weakens its example bridge over 10k/34k/75k; our macro's
     soft-fault boundary for this bridge sits higher, so the same
     hard/soft/soft progression uses 10k/75k/150k. *)
  let impacts = [ (10e3, "FIG2", "hard-fault region");
                  (75e3, "FIG3", "soft-fault region");
                  (150e3, "FIG4", "soft-fault region") ] in
  let graphs =
    List.map
      (fun (r, tag, region) ->
        let g =
          Tps.sweep ev (Faults.Fault.with_impact tps_fault r) ~grid ()
        in
        (tag, region, r, g))
      impacts
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun (tag, region, r, g) ->
      let arg, s = Tps.argmin g in
      Buffer.add_string b
        (Printf.sprintf
           "%s -- tps-graph, THD configuration, bridge n1-vout at %s (%s)\n"
           tag
           (Circuit.Units.format_eng ~unit_symbol:"Ohm" r)
           region);
      Buffer.add_string b
        (Printf.sprintf
           "  argmin: Iin_dc=%s freq=%s  S=%.3g  detected fraction=%.2f\n\n"
           (Circuit.Units.format_eng ~unit_symbol:"A" arg.(0))
           (Circuit.Units.format_eng ~unit_symbol:"Hz" arg.(1))
           s (Tps.detection_fraction g));
      Buffer.add_string b (render_tps g);
      Buffer.add_char b '\n')
    graphs;
  (match graphs with
  | [ (_, _, _, g_hard); (_, _, _, g_soft1); (_, _, _, g_soft2) ] ->
      let s_hard = Tps.normalized_argmin_shift g_hard g_soft1 in
      let s_soft = Tps.normalized_argmin_shift g_soft1 g_soft2 in
      Buffer.add_string b
        (Printf.sprintf
           "soft-region stability (sec. 3.2): argmin shift 10k->75k = %.2f, \
            75k->150k = %.2f\n\
            (once the impact enters the soft-fault region the optimum \
            location is stable: the second shift is the small one, while \
            the landscape only flattens and shifts upward)\n"
           s_hard s_soft)
  | _ -> ());
  Buffer.contents b

let fig5 ctx =
  let ev = Setup.evaluator ctx 2 in
  let config = Evaluator.config ev in
  let seeds = Test_config.param_values_of_seed config in
  let nominal = Evaluator.nominal_observables ev seeds in
  let box = Evaluator.box ev seeds in
  (* a weak fault response inside the box, and a strong one outside *)
  let fault = Faults.Fault.bridge "ntail" "vref" ~resistance:10e3 in
  let weak = Faults.Fault.with_impact fault 10e6 in
  let r1 = Evaluator.faulty_observables ev weak seeds in
  let r2 = Evaluator.faulty_observables ev fault seeds in
  let line label obs =
    Printf.sprintf "  %-26s r1=%8.4f V  r2=%8.4f V" label obs.(0) obs.(1)
  in
  String.concat "\n"
    [
      "FIG5 -- two return values with tolerance box (cf. Fig. 5)";
      "";
      Printf.sprintf "configuration #2 at seed parameters, p = %d return values"
        (Test_config.return_count config);
      line "nominal" nominal;
      Printf.sprintf "  %-26s b1=%8.4f V  b2=%8.4f V" "tolerance box half-width"
        box (* box.(0), box.(1) below *).(0) box.(1);
      line
        (Printf.sprintf "R(T)_1: %s" (Faults.Fault.describe weak))
        r1;
      line (Printf.sprintf "R(T)_2: %s" (Faults.Fault.describe fault)) r2;
      "";
      Printf.sprintf
        "  R(T)_1 stays inside the box (|dr| <= b): may be fault-free -> \
         undetected (S=%.3f)"
        (Sensitivity.compute config ~box ~nominal ~faulty:r1);
      Printf.sprintf
        "  R(T)_2 leaves the box: can only come from a faulty circuit \
         (S=%.3f)"
        (Sensitivity.compute config ~box ~nominal ~faulty:r2);
      "";
    ]

let fig6 ?(fault_id = "bridge:n1-vout") ctx =
  match Faults.Dictionary.find ctx.Setup.dictionary fault_id with
  | None -> Printf.sprintf "FIG6: unknown fault %s\n" fault_id
  | Some entry ->
      let r = Generate.generate ~evaluators:ctx.Setup.evaluators entry in
      let b = Buffer.create 2048 in
      Buffer.add_string b
        (Printf.sprintf
           "FIG6 -- generation scheme trace for %s (cf. Fig. 6)\n\n"
           (Faults.Fault.describe entry.Faults.Dictionary.fault));
      Buffer.add_string b "step 1: per-configuration optimization against the weakened model\n";
      List.iter
        (fun (c : Generate.candidate) ->
          Buffer.add_string b
            (Printf.sprintf
               "  tc%d: params=[%s]  S_low=%9.3f  (%d fault simulations)\n"
               c.Generate.cand_config_id
               (String.concat "; "
                  (Array.to_list
                     (Array.map Circuit.Units.format_eng c.Generate.cand_params)))
               c.Generate.low_impact_sensitivity c.Generate.optimizer_evaluations))
        r.Generate.candidates;
      Buffer.add_string b "\nstep 2: fault-impact convergence\n";
      List.iter
        (fun (s : Generate.trace_step) ->
          Buffer.add_string b
            (Printf.sprintf "  impact R=%-10s detecting: {%s}\n"
               (Circuit.Units.format_eng ~unit_symbol:"Ohm" s.Generate.impact)
               (String.concat ", "
                  (List.map (Printf.sprintf "tc%d") s.Generate.detecting))))
        r.Generate.trace;
      (match r.Generate.outcome with
      | Generate.Unique { config_id; params; critical_impact; dictionary_sensitivity } ->
          Buffer.add_string b
            (Printf.sprintf
               "\nsurvivor: tc%d params=[%s]\ncritical impact level: %s  \
                (S at dictionary impact: %.3f)\n"
               config_id
               (String.concat "; "
                  (Array.to_list (Array.map Circuit.Units.format_eng params)))
               (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact)
               dictionary_sensitivity)
      | Generate.Undetectable { most_sensitive_config; best_sensitivity; strongest_impact; _ } ->
          Buffer.add_string b
            (Printf.sprintf
               "\nundetectable; most sensitive test tc%d (S=%.3f at R=%s)\n"
               most_sensitive_config best_sensitivity
               (Circuit.Units.format_eng ~unit_symbol:"Ohm" strongest_impact)));
      Buffer.contents b

let fig7 () =
  let dev =
    Circuit.Device.Mosfet
      {
        name = "m6";
        drain = "n2";
        gate = "n1";
        source = "vdd";
        model = Circuit.Mos_model.pmos_default;
        w = 100e-6;
        l = 1e-6;
      }
  in
  let expansion =
    Faults.Inject.pinhole_subcircuit dev ~r_shunt:2e3 ~internal_node:"m6_ph1"
  in
  "FIG7 -- the pinhole fault model (cf. Fig. 7)\n\n"
  ^ "a gate-oxide pinhole splits the channel at 25% of L from the drain\n"
  ^ "and shunts gate to channel with the impact resistance Rp:\n\n"
  ^ Printf.sprintf "  original: %s\n\n" (Circuit.Device.to_spice dev)
  ^ String.concat "\n"
      (List.map
         (fun d -> "  " ^ Circuit.Device.to_spice d)
         expansion)
  ^ "\n"

let engine_run ?progress ?options ?policy ?resume ?checkpoint ?executor ctx =
  Engine.run ?options ?policy ?resume ?checkpoint ?progress ?executor
    ~evaluators:ctx.Setup.evaluators ctx.Setup.dictionary

let tab2 _ctx run =
  let dist = Engine.distribution run in
  let rows =
    List.map
      (fun (d : Engine.distribution_row) ->
        [
          Printf.sprintf "#%d" d.Engine.dist_config_id;
          string_of_int d.Engine.bridge_count;
          string_of_int d.Engine.pinhole_count;
        ])
      dist
  in
  let total_b = List.fold_left (fun a (d : Engine.distribution_row) -> a + d.Engine.bridge_count) 0 dist in
  let total_p = List.fold_left (fun a (d : Engine.distribution_row) -> a + d.Engine.pinhole_count) 0 dist in
  let undet = Engine.undetectable_faults run in
  "TAB2 -- distribution of best tests over configurations (cf. Table 2)\n\n"
  ^ Report.Table.of_rows
      ~headers:
        [
          ("ID test configuration", Report.Table.Left);
          ("bridge", Report.Table.Right);
          ("pinhole", Report.Table.Right);
        ]
      (rows @ [ [ "total"; string_of_int total_b; string_of_int total_p ] ])
  ^ Printf.sprintf
      "\nundetectable faults at every tried impact: %d%s\n\
       engine: %d fault simulations, %.1f s wall clock\n"
      (List.length undet)
      (match undet with
      | [] -> ""
      | _ ->
          " ("
          ^ String.concat ", " (List.map (fun r -> r.Generate.fault_id) undet)
          ^ ")")
      run.Engine.total_fault_simulations run.Engine.wall_seconds

let fig8 ctx run =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "FIG8 -- optimized test parameter values, configurations #1..#3 (cf. Fig. 8)\n\n";
  let for_config cid =
    Engine.results_for_config run ~config_id:cid
    |> List.map (fun r -> (r.Generate.fault_id, Generate.best_params r))
  in
  (* config 1: one parameter -> strip plot *)
  let c1 = Evaluator.config (Setup.evaluator ctx 1) in
  let p1 = List.hd c1.Test_config.params in
  let pts1 = List.map (fun (_, v) -> v.(0)) (for_config 1) in
  Buffer.add_string b
    (Printf.sprintf "configuration #1 (%d tests), lev axis:\n"
       (List.length pts1));
  Buffer.add_string b
    (Report.Scatter.render_1d ~label:"lev [A]"
       ~range:(p1.Test_param.lower, p1.Test_param.upper)
       pts1);
  Buffer.add_char b '\n';
  (* configs 2, 3: scatter *)
  List.iter
    (fun cid ->
      let c = Evaluator.config (Setup.evaluator ctx cid) in
      match c.Test_config.params with
      | [ px; py ] ->
          let pts = List.map (fun (_, v) -> (v.(0), v.(1))) (for_config cid) in
          Buffer.add_string b
            (Printf.sprintf "configuration #%d (%d tests):\n" cid
               (List.length pts));
          Buffer.add_string b
            (Report.Scatter.render
               ~x_label:
                 (Printf.sprintf "%s [%s]" px.Test_param.param_name
                    px.Test_param.units)
               ~y_label:
                 (Printf.sprintf "%s [%s]" py.Test_param.param_name
                    py.Test_param.units)
               ~x_range:(px.Test_param.lower, px.Test_param.upper)
               ~y_range:(py.Test_param.lower, py.Test_param.upper)
               [ { Report.Scatter.series_glyph = 'o'; points = pts } ]);
          Buffer.add_char b '\n'
      | _ -> ())
    [ 2; 3 ];
  Buffer.contents b

let tab3 ctx run =
  let results = Engine.results_for_config run ~config_id:5 in
  let c = Evaluator.config (Setup.evaluator ctx 5) in
  let param_names =
    List.map (fun p -> p.Test_param.param_name) c.Test_config.params
  in
  let rows =
    List.map
      (fun r ->
        let v = Generate.best_params r in
        r.Generate.fault_id
        :: List.mapi
             (fun i _ -> Circuit.Units.format_eng ~unit_symbol:"A" v.(i))
             param_names)
      results
  in
  "TAB3 -- best tests defined by configuration #5 (cf. Table 3)\n\n"
  ^
  if rows = [] then "(no fault selected configuration #5 in this run)\n"
  else
    Report.Table.of_rows
      ~headers:
        (("fault", Report.Table.Left)
        :: List.map (fun n -> (n, Report.Table.Right)) param_names)
      rows

let render_tab4 ~delta result =
  let rows =
    List.map
      (fun (ct : Compactor.compact_test) ->
        [
          ct.Compactor.ct_label;
          Printf.sprintf "#%d" ct.Compactor.ct_config_id;
          String.concat "; "
            (Array.to_list
               (Array.map Circuit.Units.format_eng ct.Compactor.ct_params));
          string_of_int (List.length ct.Compactor.ct_fault_ids);
        ])
      result.Compactor.compact_tests
  in
  "TAB4 -- collapsed test set (cf. sec. 4.2, delta = "
  ^ Printf.sprintf "%.2f" delta
  ^ ")\n\n"
  ^ Report.Table.of_rows
      ~headers:
        [
          ("test", Report.Table.Left);
          ("configuration", Report.Table.Left);
          ("parameters", Report.Table.Left);
          ("faults collapsed", Report.Table.Right);
        ]
      rows
  ^ Printf.sprintf
      "\n%d fault-specific tests collapsed onto %d compact tests \
       (ratio %.1fx)\nscreening: %d proposals, %d accepted, %d splits\n\
       final coverage at dictionary impacts: %d/%d (%.1f%%)%s\n"
      result.Compactor.original_test_count
      (List.length result.Compactor.compact_tests)
      (Compactor.compaction_ratio result)
      result.Compactor.stats.Collapse.proposals
      result.Compactor.stats.Collapse.accepted
      result.Compactor.stats.Collapse.splits result.Compactor.coverage.Coverage.covered
      result.Compactor.coverage.Coverage.total
      (Coverage.percent result.Compactor.coverage)
      (match Coverage.missed result.Compactor.coverage with
      | [] -> ""
      | m -> "\nmissed: " ^ String.concat ", " m)

let compact_run ?(delta = 0.1) ctx run =
  Compactor.compact ~delta ~evaluators:ctx.Setup.evaluators
    ctx.Setup.dictionary run

let tab4 ?(delta = 0.1) ctx run = render_tab4 ~delta (compact_run ~delta ctx run)

let xbase ctx run =
  let summary = Baseline.compare ~evaluators:ctx.Setup.evaluators ctx.Setup.dictionary run in
  let better =
    List.length
      (List.filter
         (fun c ->
           match
             (c.Baseline.optimized_critical_impact, c.Baseline.seed_critical_impact)
           with
           | Some o, Some s -> o > s *. 1.05
           | Some _, None -> true
           | None, _ -> false)
         summary.Baseline.comparisons)
  in
  Printf.sprintf
    "XBASE -- tailored optimization vs fixed-seed selection (cf. sec. 2.2)\n\n\
     faults covered at dictionary impact: optimized %d/%d, seed-only %d/%d\n\
     faults where optimization extends the detectable impact range: %d\n\
     median critical-impact gain (optimized / seed): %.2fx\n\
     (the paper's claim: plain selection from a fixed set 'will not result \
     in the most sensitive test set')\n"
    summary.Baseline.optimized_covered summary.Baseline.total
    summary.Baseline.seed_covered summary.Baseline.total better
    summary.Baseline.median_impact_gain

let all_reports ?progress ctx =
  let static =
    [
      ("FIG1", fig1 ());
      ("TAB1", tab1 ());
      ("FIG234", fig234 ctx);
      ("FIG5", fig5 ctx);
      ("FIG6", fig6 ctx);
      ("FIG7", fig7 ());
    ]
  in
  let run = engine_run ?progress ctx in
  static
  @ [
      ("TAB2", tab2 ctx run);
      ("FIG8", fig8 ctx run);
      ("TAB3", tab3 ctx run);
      ("TAB4", tab4 ctx run);
      ("XBASE", xbase ctx run);
    ]
