(** Per-experiment report generators.

    One function per table/figure of the paper (see DESIGN.md §4); each
    returns a printable report.  The expensive whole-dictionary
    generation run is produced once with {!engine_run} and shared by the
    result-dependent experiments. *)

val fig1 : unit -> string
(** Fig. 1: a test-configuration description (the step-response
    configuration with accumulated-sum return value). *)

val tab1 : unit -> string
(** Table 1: the five configuration definitions. *)

val tps_fault : Faults.Fault.t
(** The bridge used for the tps-graph figures (nodes n1-vout, the
    "two arbitrarily chosen nodes" of the paper's example). *)

val fig234 : ?grid:int -> Setup.t -> string
(** Figs. 2-4: tps-graphs of the THD configuration for the bridge at
    10 kOhm (hard region), 34 kOhm and 75 kOhm (soft region), plus the
    soft-region stability summary of §3.2. *)

val fig5 : Setup.t -> string
(** Fig. 5: the p = 2 tolerance box of configuration #2 with one
    response inside the box (possibly fault-free) and one outside
    (necessarily faulty). *)

val fig6 : ?fault_id:string -> Setup.t -> string
(** Fig. 6: full generation trace for one fault — optimized candidates,
    impact-convergence steps and the surviving test. *)

val fig7 : unit -> string
(** Fig. 7: the pinhole fault model as the netlist expansion it induces. *)

val engine_run :
  ?progress:(done_:int -> total:int -> fault_id:string -> unit) ->
  ?options:Testgen.Generate.options ->
  ?policy:Testgen.Resilience.policy ->
  ?resume:Testgen.Generate.result list ->
  ?checkpoint:(Testgen.Generate.result -> unit) ->
  ?executor:Testgen.Engine.executor ->
  Setup.t ->
  Testgen.Engine.run
(** The 55-fault generation run feeding tab2/fig8/tab3/tab4/xbase.
    [options] (e.g. the gradient optimizer mode), [policy], [resume],
    [checkpoint] and [executor] (e.g. [Testgen.Parallel.executor
    ~jobs]) are passed through to {!Testgen.Engine.run}. *)

val tab2 : Setup.t -> Testgen.Engine.run -> string
(** Table 2: distribution of best tests over the configurations, split
    by fault type. *)

val fig8 : Setup.t -> Testgen.Engine.run -> string
(** Fig. 8: optimized parameter values of configurations #1-#3. *)

val tab3 : Setup.t -> Testgen.Engine.run -> string
(** Table 3: the parameter values of configuration #5's best tests. *)

val compact_run :
  ?delta:float -> Setup.t -> Testgen.Engine.run -> Testgen.Compactor.result
(** The §4 compaction of a generation run (default delta 0.1). *)

val render_tab4 : delta:float -> Testgen.Compactor.result -> string
(** Render a compaction result as the TAB4 report. *)

val tab4 : ?delta:float -> Setup.t -> Testgen.Engine.run -> string
(** §4.2: the collapsed (compact) test set, its groups, and the final
    coverage ([compact_run] + [render_tab4]). *)

val xbase : Setup.t -> Testgen.Engine.run -> string
(** §2.2 claim: optimized tailoring vs fixed-seed selection. *)

val all_reports :
  ?progress:(done_:int -> total:int -> fault_id:string -> unit) ->
  Setup.t ->
  (string * string) list
(** Every {e paper} experiment in DESIGN.md order as [(id, report)]
    pairs, running the engine once.  The extension experiments live in
    {!Extensions}. *)
