open Numerics

type t = {
  config : Test_config.t;
  axes : float array array;  (* per param: grid coordinates *)
  values : float array array;  (* per lattice point (row-major): box per return *)
  floors : float array;
}

let config t = t.config

let floors_of config =
  Array.of_list config.Test_config.accuracy_floor

(* enumerate lattice indices in row-major order *)
let lattice_indices axes =
  let dims = Array.map Array.length axes in
  let n = Array.fold_left ( * ) 1 dims in
  List.init n (fun flat ->
      let idx = Array.make (Array.length dims) 0 in
      let rem = ref flat in
      for d = Array.length dims - 1 downto 0 do
        idx.(d) <- !rem mod dims.(d);
        rem := !rem / dims.(d)
      done;
      idx)

let point_of_indices axes idx =
  Array.mapi (fun d i -> axes.(d).(i)) idx

(* common calibration skeleton: [envelope] turns the per-sample absolute
   deviations of one return value into the box half-width *)
let calibrate_with ~profile ~grid ~guardband ~envelope config ~nominal
    ~samples =
  if grid < 2 then invalid_arg "Tolerance.calibrate: grid < 2";
  if guardband < 1. then invalid_arg "Tolerance.calibrate: guardband < 1";
  if samples = [] then invalid_arg "Tolerance.calibrate: no process points";
  let params = Array.of_list config.Test_config.params in
  let axes =
    Array.map
      (fun (p : Test_param.t) ->
        Array.init grid (fun i ->
            p.Test_param.lower
            +. ((p.Test_param.upper -. p.Test_param.lower)
                *. float_of_int i
                /. float_of_int (grid - 1))))
      params
  in
  let p_returns = Test_config.return_count config in
  let floors = floors_of config in
  let values =
    lattice_indices axes
    |> List.map (fun idx ->
           let values_at = point_of_indices axes idx in
           let nominal_obs =
             Execute.observables ~profile config nominal values_at
           in
           let per_return = Array.make p_returns [] in
           List.iter
             (fun sample ->
               match
                 Execute.observables ~profile config sample values_at
               with
               | sample_obs ->
                   let dev =
                     Execute.deviations config ~nominal:nominal_obs
                       ~faulty:sample_obs
                   in
                   Array.iteri
                     (fun i d ->
                       per_return.(i) <- Float.abs d :: per_return.(i))
                     dev
               | exception Execute.Execution_failure _ -> ())
             samples;
           Array.map
             (fun devs ->
               guardband *. envelope (Array.of_list devs))
             per_return)
    |> Array.of_list
  in
  { config; axes; values; floors }

let calibrate ?(profile = Execute.default_profile) ?(grid = 3)
    ?(guardband = 1.25) config ~nominal ~corners () =
  let envelope devs = if Array.length devs = 0 then 0. else Numerics.Stats.max_abs devs in
  calibrate_with ~profile ~grid ~guardband ~envelope config ~nominal
    ~samples:corners

let calibrate_monte_carlo ?(profile = Execute.default_profile) ?(grid = 3)
    ?(guardband = 1.1) ?(quantile = 100.) config ~nominal ~samples () =
  if quantile <= 0. || quantile > 100. then
    invalid_arg "Tolerance.calibrate_monte_carlo: quantile outside (0, 100]";
  let envelope devs =
    if Array.length devs = 0 then 0.
    else Numerics.Stats.percentile devs quantile
  in
  calibrate_with ~profile ~grid ~guardband ~envelope config ~nominal ~samples

(* multilinear interpolation on the lattice, clamped to its hull *)
let box t values_at =
  let n_axes = Array.length t.axes in
  if Vec.dim values_at <> n_axes then
    invalid_arg "Tolerance.box: parameter count mismatch";
  (* per axis: surrounding grid cell and interpolation weight *)
  let cell = Array.make n_axes 0 in
  let weight = Array.make n_axes 0. in
  for d = 0 to n_axes - 1 do
    let axis = t.axes.(d) in
    let g = Array.length axis in
    let v = Float.min axis.(g - 1) (Float.max axis.(0) values_at.(d)) in
    (* find the cell [i, i+1] containing v *)
    let i = ref 0 in
    while !i < g - 2 && axis.(!i + 1) < v do
      incr i
    done;
    cell.(d) <- !i;
    let span = axis.(!i + 1) -. axis.(!i) in
    weight.(d) <- if span <= 0. then 0. else (v -. axis.(!i)) /. span
  done;
  let dims = Array.map Array.length t.axes in
  let flat_of idx =
    let f = ref 0 in
    for d = 0 to n_axes - 1 do
      f := (!f * dims.(d)) + idx.(d)
    done;
    !f
  in
  let p = Array.length t.floors in
  let acc = Array.make p 0. in
  (* iterate over the 2^n cell corners *)
  let n_corners = 1 lsl n_axes in
  for corner = 0 to n_corners - 1 do
    let idx = Array.make n_axes 0 in
    let w = ref 1. in
    for d = 0 to n_axes - 1 do
      let hi = corner land (1 lsl d) <> 0 in
      idx.(d) <- cell.(d) + if hi then 1 else 0;
      w := !w *. (if hi then weight.(d) else 1. -. weight.(d))
    done;
    if !w > 0. then begin
      let v = t.values.(flat_of idx) in
      for i = 0 to p - 1 do
        acc.(i) <- acc.(i) +. (!w *. v.(i))
      done
    end
  done;
  Array.mapi (fun i x -> Float.max x t.floors.(i)) acc

(* Box value and its parameter gradient in one pass.  The multilinear
   surface is differentiable inside each lattice cell: the partial along
   axis [d] replaces that axis's corner factor (weight or 1-weight) by
   its derivative (+1/span or -1/span) and keeps the other factors.  The
   derivative is zero where the surface is flat — outside the lattice
   hull (the clamp pins the weight) and wherever the accuracy floor
   binds (the box is the constant floor there; at an exact tie the
   interpolated side is kept, matching [Float.max]'s left bias).  The
   returned box is computed by the same accumulation, in the same corner
   order with the same zero-weight skips, as {!box} — bit-identical. *)
let box_gradient t values_at =
  let n_axes = Array.length t.axes in
  if Vec.dim values_at <> n_axes then
    invalid_arg "Tolerance.box_gradient: parameter count mismatch";
  let cell = Array.make n_axes 0 in
  let weight = Array.make n_axes 0. in
  let dweight = Array.make n_axes 0. in
  for d = 0 to n_axes - 1 do
    let axis = t.axes.(d) in
    let g = Array.length axis in
    let raw = values_at.(d) in
    let v = Float.min axis.(g - 1) (Float.max axis.(0) raw) in
    let i = ref 0 in
    while !i < g - 2 && axis.(!i + 1) < v do
      incr i
    done;
    cell.(d) <- !i;
    let span = axis.(!i + 1) -. axis.(!i) in
    weight.(d) <- (if span <= 0. then 0. else (v -. axis.(!i)) /. span);
    dweight.(d) <-
      (if span <= 0. || raw < axis.(0) || raw > axis.(g - 1) then 0.
       else 1. /. span)
  done;
  let dims = Array.map Array.length t.axes in
  let flat_of idx =
    let f = ref 0 in
    for d = 0 to n_axes - 1 do
      f := (!f * dims.(d)) + idx.(d)
    done;
    !f
  in
  let p = Array.length t.floors in
  let acc = Array.make p 0. in
  let dacc = Array.make_matrix p n_axes 0. in
  let n_corners = 1 lsl n_axes in
  for corner = 0 to n_corners - 1 do
    let idx = Array.make n_axes 0 in
    let w = ref 1. in
    for d = 0 to n_axes - 1 do
      let hi = corner land (1 lsl d) <> 0 in
      idx.(d) <- cell.(d) + if hi then 1 else 0;
      w := !w *. (if hi then weight.(d) else 1. -. weight.(d))
    done;
    let v = t.values.(flat_of idx) in
    if !w > 0. then
      for i = 0 to p - 1 do
        acc.(i) <- acc.(i) +. (!w *. v.(i))
      done;
    for dd = 0 to n_axes - 1 do
      if dweight.(dd) <> 0. then begin
        let w' = ref 1. in
        for d = 0 to n_axes - 1 do
          let hi = corner land (1 lsl d) <> 0 in
          if d = dd then w' := !w' *. (if hi then dweight.(d) else -.dweight.(d))
          else w' := !w' *. (if hi then weight.(d) else 1. -. weight.(d))
        done;
        if !w' <> 0. then
          for i = 0 to p - 1 do
            dacc.(i).(dd) <- dacc.(i).(dd) +. (!w' *. v.(i))
          done
      end
    done
  done;
  let box = Array.mapi (fun i x -> Float.max x t.floors.(i)) acc in
  let dbox =
    Array.mapi
      (fun i row -> if acc.(i) >= t.floors.(i) then row else Array.make n_axes 0.)
      dacc
  in
  (box, dbox)

let lattice_points t =
  lattice_indices t.axes |> List.map (point_of_indices t.axes)

let floor_only config =
  let params = Array.of_list config.Test_config.params in
  let axes =
    Array.map
      (fun (p : Test_param.t) -> [| p.Test_param.lower; p.Test_param.upper |])
      params
  in
  let n_lattice =
    Array.fold_left (fun acc a -> acc * Array.length a) 1 axes
  in
  let p_returns = Test_config.return_count config in
  {
    config;
    axes;
    values = Array.init n_lattice (fun _ -> Array.make p_returns 0.);
    floors = floors_of config;
  }
