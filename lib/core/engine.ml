type fault_report = {
  report_fault_id : string;
  report_outcome : Generate.result Resilience.outcome;
}

exception Fault_failure of Resilience.diagnosis

type run = {
  results : Generate.result list;
  reports : fault_report list;
  failed_faults : Resilience.diagnosis list;
  recovered_count : int;
  resumed_count : int;
  rung_stats : (string * int) list;
  evaluators : Evaluator.t list;
  wall_seconds : float;
  total_fault_simulations : int;
}

let run ?options ?(policy = Resilience.default_policy) ?(resume = []) ?checkpoint
    ?progress ~evaluators dictionary =
  let entries = Faults.Dictionary.entries dictionary in
  let total = List.length entries in
  let started = Unix.gettimeofday () in
  let count_evals () =
    List.fold_left (fun acc ev -> acc + Evaluator.evaluation_count ev) 0
      evaluators
  in
  let before = count_evals () in
  let resumed = Hashtbl.create 16 in
  List.iter
    (fun (r : Generate.result) ->
      Hashtbl.replace resumed r.Generate.fault_id r)
    resume;
  (* Escalated evaluator sets are built once per rung and shared across
     faults, so their nominal-observable caches amortize the same way the
     baseline evaluators' do. *)
  let escalated = Hashtbl.create 4 in
  let evaluators_for = function
    | None -> evaluators
    | Some (r : Resilience.rung) -> begin
        match Hashtbl.find_opt escalated r.Resilience.rung_label with
        | Some evs -> evs
        | None ->
            let evs =
              List.map
                (fun ev ->
                  Evaluator.with_profile ev
                    (Resilience.escalate r (Evaluator.profile ev)))
                evaluators
            in
            Hashtbl.replace escalated r.Resilience.rung_label evs;
            evs
      end
  in
  let attempt entry rung =
    let evs = evaluators_for rung in
    (match policy.Resilience.attempt_budget with
    | Some b ->
        List.iter
          (fun ev ->
            Evaluator.set_budget ev (Some (Evaluator.evaluation_count ev + b)))
          evs
    | None -> ());
    Fun.protect
      ~finally:(fun () -> List.iter (fun ev -> Evaluator.set_budget ev None) evs)
      (fun () -> Generate.generate ?options ~evaluators:evs entry)
  in
  let reports =
    List.mapi
      (fun i entry ->
        let fid = entry.Faults.Dictionary.fault_id in
        let outcome =
          match Hashtbl.find_opt resumed fid with
          | Some r -> Resilience.Ok r
          | None ->
              let o = Resilience.protect ~policy ~fault_id:fid (attempt entry) in
              (match o with
              | Resilience.Failed d when policy.Resilience.fail_fast ->
                  raise (Fault_failure d)
              | _ -> ());
              (match (Resilience.succeeded o, checkpoint) with
              | Some r, Some ck -> ck r
              | _ -> ());
              o
        in
        (match progress with
        | Some f -> f ~done_:(i + 1) ~total ~fault_id:fid
        | None -> ());
        { report_fault_id = fid; report_outcome = outcome })
      entries
  in
  let results =
    List.filter_map (fun r -> Resilience.succeeded r.report_outcome) reports
  in
  let failed_faults =
    List.filter_map
      (fun r ->
        match r.report_outcome with
        | Resilience.Failed d -> Some d
        | Resilience.Ok _ | Resilience.Recovered _ -> None)
      reports
  in
  let recovered_count =
    List.length
      (List.filter
         (fun r ->
           match r.report_outcome with
           | Resilience.Recovered _ -> true
           | Resilience.Ok _ | Resilience.Failed _ -> false)
         reports)
  in
  let rung_stats =
    let count label =
      List.length
        (List.filter
           (fun r ->
             match r.report_outcome with
             | Resilience.Ok _ -> String.equal label Resilience.baseline_label
             | Resilience.Recovered _ ->
                 Resilience.recovery_rung r.report_outcome = Some label
             | Resilience.Failed _ -> false)
           reports)
    in
    let ladder_rungs =
      List.filteri
        (fun i _ -> i < policy.Resilience.max_retries)
        policy.Resilience.ladder
    in
    (Resilience.baseline_label, count Resilience.baseline_label)
    :: List.map
         (fun (r : Resilience.rung) ->
           (r.Resilience.rung_label, count r.Resilience.rung_label))
         ladder_rungs
  in
  {
    results;
    reports;
    failed_faults;
    recovered_count;
    resumed_count = Hashtbl.length resumed;
    rung_stats;
    evaluators;
    wall_seconds = Unix.gettimeofday () -. started;
    total_fault_simulations = count_evals () - before;
  }

let of_results ~evaluators results =
  {
    results;
    reports =
      List.map
        (fun (r : Generate.result) ->
          {
            report_fault_id = r.Generate.fault_id;
            report_outcome = Resilience.Ok r;
          })
        results;
    failed_faults = [];
    recovered_count = 0;
    resumed_count = List.length results;
    rung_stats = [];
    evaluators;
    wall_seconds = 0.;
    total_fault_simulations = 0;
  }

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

let distribution run =
  let config_ids =
    List.map Evaluator.config_id run.evaluators |> List.sort_uniq Int.compare
  in
  List.map
    (fun cid ->
      let mine =
        List.filter (fun r -> Generate.best_config_id r = cid) run.results
      in
      let bridges, pinholes =
        List.fold_left
          (fun (b, p) r ->
            match Faults.Fault.kind r.Generate.dictionary_fault with
            | `Bridge -> (b + 1, p)
            | `Pinhole -> (b, p + 1))
          (0, 0) mine
      in
      { dist_config_id = cid; bridge_count = bridges; pinhole_count = pinholes })
    config_ids

let undetectable_faults run =
  List.filter
    (fun r ->
      match r.Generate.outcome with
      | Generate.Undetectable _ -> true
      | Generate.Unique _ -> false)
    run.results

let results_for_config run ~config_id =
  List.filter (fun r -> Generate.best_config_id r = config_id) run.results

let critical_impacts run =
  List.filter_map
    (fun r ->
      match r.Generate.outcome with
      | Generate.Unique { critical_impact; _ } ->
          Some (r.Generate.fault_id, critical_impact)
      | Generate.Undetectable _ -> None)
    run.results
