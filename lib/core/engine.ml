type fault_report = {
  report_fault_id : string;
  report_outcome : Generate.result Resilience.outcome;
}

exception Fault_failure of Resilience.diagnosis

type run = {
  results : Generate.result list;
  reports : fault_report list;
  failed_faults : Resilience.diagnosis list;
  recovered_count : int;
  resumed_count : int;
  rung_stats : (string * int) list;
  evaluators : Evaluator.t list;
  wall_seconds : float;
  total_fault_simulations : int;
}

(* -- pluggable execution ----------------------------------------------- *)

(* A worker bundles everything one executing agent (the sequential loop,
   or one domain of a pool) needs to simulate faults without sharing
   mutable state with anyone else: forked evaluators (private caches and
   counters) plus a private table of rung-escalated evaluator sets.
   Escalated sets are built once per rung per worker, so their
   nominal-observable caches amortize the same way the baseline
   evaluators' do. *)
type worker = {
  w_evaluators : Evaluator.t list;
  w_escalated : (string, Evaluator.t list) Hashtbl.t;
}

type executor = {
  exec_run :
    n:int ->
    make_worker:(unit -> worker) ->
    run_task:(worker -> int -> Generate.result Resilience.outcome) ->
    emit:(int -> Generate.result Resilience.outcome -> unit) ->
    unit;
}

let sequential =
  {
    exec_run =
      (fun ~n ~make_worker ~run_task ~emit ->
        let w = make_worker () in
        for i = 0 to n - 1 do
          emit i (run_task w i)
        done);
  }

let c_faults = Obs.Counter.create "engine.faults"

let rung_stats_of_reports ~policy reports =
  let count label =
    List.length
      (List.filter
         (fun r ->
           match r.report_outcome with
           | Resilience.Ok _ -> String.equal label Resilience.baseline_label
           | Resilience.Recovered _ ->
               Resilience.recovery_rung r.report_outcome = Some label
           | Resilience.Failed _ -> false)
         reports)
  in
  let ladder_rungs =
    List.filteri
      (fun i _ -> i < policy.Resilience.max_retries)
      policy.Resilience.ladder
  in
  (Resilience.baseline_label, count Resilience.baseline_label)
  :: List.map
       (fun (r : Resilience.rung) ->
         (r.Resilience.rung_label, count r.Resilience.rung_label))
       ladder_rungs

let run ?options ?(policy = Resilience.default_policy) ?(resume = []) ?checkpoint
    ?progress ?(executor = sequential) ~evaluators dictionary =
  let entries = Array.of_list (Faults.Dictionary.entries dictionary) in
  let total = Array.length entries in
  let started = Unix.gettimeofday () in
  let count_evals () =
    List.fold_left (fun acc ev -> acc + Evaluator.evaluation_count ev) 0
      evaluators
  in
  let before = count_evals () in
  let resumed = Hashtbl.create 16 in
  List.iter
    (fun (r : Generate.result) ->
      Hashtbl.replace resumed r.Generate.fault_id r)
    resume;
  (* Every worker gets forked evaluators — even the sequential one — so
     the caller's evaluators are never mutated while the executor runs
     (forking reads them concurrently) and every worker sees the same
     starting cache state.  Forks are absorbed back afterwards, an
     order-independent merge, so evaluation counts and cache warmth end
     up exactly as a sequential run would leave them. *)
  let workers_mutex = Mutex.create () in
  let workers = ref [] in
  let make_worker () =
    let w =
      {
        w_evaluators = List.map Evaluator.fork evaluators;
        w_escalated = Hashtbl.create 4;
      }
    in
    Mutex.lock workers_mutex;
    workers := w :: !workers;
    Mutex.unlock workers_mutex;
    w
  in
  let absorb_workers () =
    List.iter
      (fun w ->
        List.iter2
          (fun orig fork -> Evaluator.absorb ~into:orig fork)
          evaluators w.w_evaluators)
      !workers
  in
  let evaluators_for w = function
    | None -> w.w_evaluators
    | Some (r : Resilience.rung) -> begin
        match Hashtbl.find_opt w.w_escalated r.Resilience.rung_label with
        | Some evs -> evs
        | None ->
            let evs =
              List.map
                (fun ev ->
                  Evaluator.with_profile ev
                    (Resilience.escalate r (Evaluator.profile ev)))
                w.w_evaluators
            in
            Hashtbl.replace w.w_escalated r.Resilience.rung_label evs;
            evs
      end
  in
  let attempt w entry rung =
    let evs = evaluators_for w rung in
    (match policy.Resilience.attempt_budget with
    | Some b ->
        List.iter
          (fun ev ->
            Evaluator.set_budget ev (Some (Evaluator.evaluation_count ev + b)))
          evs
    | None -> ());
    Fun.protect
      ~finally:(fun () -> List.iter (fun ev -> Evaluator.set_budget ev None) evs)
      (fun () -> Generate.generate ?options ~evaluators:evs entry)
  in
  (* Per-fault work is a pure function of the fault entry: evaluator
     caches cannot change results (exact keys, deterministic values), the
     attempt budget is a fixed per-attempt slack, and failure injection is
     bracketed in a per-fault Failpoint scope so its draws depend only on
     (seed, fault id, query index) — never on which worker runs the fault
     or in what order.

     With failure injection active, one extra isolation step is needed:
     a nominal-cache hit skips a simulation and with it that simulation's
     failpoint queries, so cache warmth — which depends on which faults
     ran earlier, i.e. on scheduling — would shift every later draw in
     the fault's scope.  So under injection every task runs on a fresh
     fork of the run-start evaluators (cache state a pure function of the
     fault), absorbed into its worker afterwards.  Injection is a testing
     hook; production runs keep full cross-fault cache amortization.

     Tracing reuses the same isolation step for the same reason: cache
     hit/miss counters (and through them solver counters) depend on cache
     warmth, so isolating each fault on run-start forks makes every
     counter contribution a pure function of the fault — aggregate
     counters then match between sequential and --jobs N runs exactly.
     With tracing off, nothing changes and the engine's bit-identity
     contract is untouched. *)
  let isolate_tasks = Numerics.Failpoint.active () || Obs.active () in
  (* Span events of task i, buffered on the worker and flushed through
     the in-order emit funnel below, so the trace-file event order is
     deterministic under any worker count.  The slot for task i is
     written by the worker before its outcome reaches the funnel (the
     executor's queue orders the two), and read only in [emit i]. *)
  let obs_buffers = Array.make total Obs.Task.none in
  let run_task w i =
    let entry = entries.(i) in
    let fid = entry.Faults.Dictionary.fault_id in
    match Hashtbl.find_opt resumed fid with
    | Some r -> Resilience.Ok r
    | None ->
        let tw =
          if isolate_tasks then
            {
              w_evaluators = List.map Evaluator.fork evaluators;
              w_escalated = Hashtbl.create 4;
            }
          else w
        in
        let work () =
          Numerics.Failpoint.with_scope ~key:fid (fun () ->
              Resilience.protect ~policy ~fault_id:fid (attempt tw entry))
        in
        let outcome =
          if not (Obs.active ()) then work ()
          else begin
            let outcome_label = ref "ok" in
            (* Task evaluation counts are read off the isolated forks
               (zero at task start under tracing), so the attribute is
               the fault's own spend, independent of scheduling. *)
            let outcome, events =
              Obs.Task.collect (fun () ->
                  Obs.Span.timed ~key:fid
                    ~attrs:(fun () ->
                      [
                        ( "evals",
                          Obs.Int
                            (List.fold_left
                               (fun acc ev ->
                                 acc + Evaluator.evaluation_count ev)
                               0 tw.w_evaluators) );
                        ("outcome", Obs.Str !outcome_label);
                      ])
                    "engine.fault"
                    (fun () ->
                      let o = work () in
                      (outcome_label :=
                         match o with
                         | Resilience.Ok _ -> "ok"
                         | Resilience.Recovered _ -> "recovered"
                         | Resilience.Failed _ -> "quarantined");
                      o))
            in
            obs_buffers.(i) <- events;
            outcome
          end
        in
        if isolate_tasks then
          List.iter2
            (fun wf tf -> Evaluator.absorb ~into:wf tf)
            w.w_evaluators tw.w_evaluators;
        outcome
  in
  (* The single-writer funnel: executors must emit outcomes with strictly
     increasing task indices (a pool reorders completions before emitting),
     so checkpoint blocks are appended — and progress reported — in
     dictionary order from one thread, exactly like the sequential loop. *)
  let report_slots = Array.make total None in
  let emit i outcome =
    if Obs.active () then begin
      (* Flush before the fail-fast raise so the trace keeps the events
         of the fault that terminated the run. *)
      Obs.Task.flush obs_buffers.(i);
      obs_buffers.(i) <- Obs.Task.none;
      Obs.Counter.add c_faults 1
    end;
    (match outcome with
    | Resilience.Failed d when policy.Resilience.fail_fast ->
        raise (Fault_failure d)
    | _ -> ());
    let fid = entries.(i).Faults.Dictionary.fault_id in
    (match (Resilience.succeeded outcome, checkpoint) with
    | Some r, Some ck when not (Hashtbl.mem resumed fid) -> ck r
    | _ -> ());
    report_slots.(i) <- Some { report_fault_id = fid; report_outcome = outcome };
    match progress with
    | Some f -> f ~done_:(i + 1) ~total ~fault_id:fid
    | None -> ()
  in
  (let execute () =
     Fun.protect ~finally:absorb_workers (fun () ->
         executor.exec_run ~n:total ~make_worker ~run_task ~emit)
   in
   if not (Obs.active ()) then execute ()
   else
     Obs.Span.timed
       ~attrs:(fun () -> [ ("faults", Obs.Int total) ])
       "engine.run" execute);
  let reports =
    Array.to_list report_slots
    |> List.map (function
         | Some r -> r
         | None -> invalid_arg "Engine.run: executor did not emit every task")
  in
  let results =
    List.filter_map (fun r -> Resilience.succeeded r.report_outcome) reports
  in
  let failed_faults =
    List.filter_map
      (fun r ->
        match r.report_outcome with
        | Resilience.Failed d -> Some d
        | Resilience.Ok _ | Resilience.Recovered _ -> None)
      reports
  in
  let recovered_count =
    List.length
      (List.filter
         (fun r ->
           match r.report_outcome with
           | Resilience.Recovered _ -> true
           | Resilience.Ok _ | Resilience.Failed _ -> false)
         reports)
  in
  {
    results;
    reports;
    failed_faults;
    recovered_count;
    resumed_count = Hashtbl.length resumed;
    rung_stats = rung_stats_of_reports ~policy reports;
    evaluators;
    wall_seconds = Unix.gettimeofday () -. started;
    total_fault_simulations = count_evals () - before;
  }

let of_results ~evaluators results =
  {
    results;
    reports =
      List.map
        (fun (r : Generate.result) ->
          {
            report_fault_id = r.Generate.fault_id;
            report_outcome = Resilience.Ok r;
          })
        results;
    failed_faults = [];
    recovered_count = 0;
    resumed_count = List.length results;
    rung_stats = [];
    evaluators;
    wall_seconds = 0.;
    total_fault_simulations = 0;
  }

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

let distribution run =
  let config_ids =
    List.map Evaluator.config_id run.evaluators |> List.sort_uniq Int.compare
  in
  List.map
    (fun cid ->
      let mine =
        List.filter (fun r -> Generate.best_config_id r = cid) run.results
      in
      let bridges, pinholes =
        List.fold_left
          (fun (b, p) r ->
            match Faults.Fault.kind r.Generate.dictionary_fault with
            | `Bridge -> (b + 1, p)
            | `Pinhole -> (b, p + 1))
          (0, 0) mine
      in
      { dist_config_id = cid; bridge_count = bridges; pinhole_count = pinholes })
    config_ids

let undetectable_faults run =
  List.filter
    (fun r ->
      match r.Generate.outcome with
      | Generate.Undetectable _ -> true
      | Generate.Unique _ -> false)
    run.results

let results_for_config run ~config_id =
  List.filter (fun r -> Generate.best_config_id r = config_id) run.results

let critical_impacts run =
  List.filter_map
    (fun r ->
      match r.Generate.outcome with
      | Generate.Unique { critical_impact; _ } ->
          Some (r.Generate.fault_id, critical_impact)
      | Generate.Undetectable _ -> None)
    run.results

(* Process exit codes the CLI (and CI) gate on: 0 clean, 1 is left to
   usage/IO errors, 3 means the run completed but left quarantined
   faults, 4 means a fail-fast policy terminated the run, 5 means a
   session or checkpoint file failed integrity checks. *)
let exit_quarantined = 3
let exit_fail_fast = 4
let exit_corrupt_session = 5
let exit_status run = if run.failed_faults = [] then 0 else exit_quarantined
