(* Domain-based fan-out with deterministic, in-order collection.

   Shape: [jobs] worker domains pull task indices from an atomic
   counter and deposit results into a slot array; the calling thread is
   the single collector, walking the slots in index order and handing
   each result to [emit].  The atomic counter makes task *starts*
   monotone — whenever any index has been fetched, every lower index has
   also been fetched — so the collector can always make progress waiting
   on the next slot: the worker that fetched it will fill it with a
   value or an error.

   Determinism: tasks must be independent (per the Engine contract they
   are pure functions of their index), so the only scheduling freedom is
   completion order, and the slot array erases it.  When several tasks
   raise, the collector re-raises the one with the lowest index; when
   [emit] itself raises (fail-fast), the bracket cancels outstanding
   work, joins every domain and re-raises — so failures too are
   independent of scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

let fan_out ~jobs ~make_ctx ~f ~emit n =
  let jobs = max 1 jobs in
  if n = 0 then ()
  else if jobs = 1 then begin
    let ctx = make_ctx () in
    for i = 0 to n - 1 do
      emit i (f ctx i)
    done
  end
  else begin
    let jobs = min jobs n in
    let next = Atomic.make 0 in
    let cancelled = Atomic.make false in
    let mutex = Mutex.create () in
    let filled = Condition.create () in
    let slots = Array.make n None in
    (* Session context crosses the spawn: worker domains obey the
       spawning domain's injection override (a served session's private
       --inject config) and stamp their spans with its request id.  With
       no override and no request both wrappers are identity, so the
       one-shot CLI path is untouched. *)
    let fp_snapshot = Numerics.Failpoint.snapshot () in
    let req = Obs.current_request () in
    let in_session body =
      Numerics.Failpoint.with_snapshot fp_snapshot (fun () ->
          match req with
          | None -> body ()
          | Some id -> Obs.with_request id body)
    in
    let worker () =
      in_session @@ fun () ->
      let ctx = make_ctx () in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && not (Atomic.get cancelled) then begin
          let cell =
            match f ctx i with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock mutex;
          slots.(i) <- Some cell;
          Condition.broadcast filled;
          Mutex.unlock mutex;
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    let join_all () = List.iter Domain.join domains in
    let collect () =
      for i = 0 to n - 1 do
        Mutex.lock mutex;
        while slots.(i) = None do
          Condition.wait filled mutex
        done;
        let cell = Option.get slots.(i) in
        slots.(i) <- None;
        Mutex.unlock mutex;
        match cell with
        | Ok v -> emit i v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      done
    in
    match collect () with
    | () -> join_all ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Atomic.set cancelled true;
        join_all ();
        Printexc.raise_with_backtrace e bt
  end

let map_ordered ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let out = Array.make n None in
  fan_out ~jobs
    ~make_ctx:(fun () -> ())
    ~f:(fun () i -> f i arr.(i))
    ~emit:(fun i v -> out.(i) <- Some v)
    n;
  Array.to_list (Array.map Option.get out)

let executor ~jobs =
  {
    Engine.exec_run =
      (fun ~n ~make_worker ~run_task ~emit ->
        fan_out ~jobs ~make_ctx:make_worker ~f:run_task ~emit n);
  }
