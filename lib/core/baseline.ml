type fault_comparison = {
  cmp_fault_id : string;
  seed_detects : bool;
  seed_best_sensitivity : float;
  seed_critical_impact : float option;
  optimized_critical_impact : float option;
}

type summary = {
  comparisons : fault_comparison list;
  seed_covered : int;
  optimized_covered : int;
  total : int;
  median_impact_gain : float;
}

let seed_tests configs =
  List.map
    (fun (c : Test_config.t) ->
      {
        Coverage.test_label = Printf.sprintf "seed-tc%d" c.Test_config.config_id;
        test_config_id = c.Test_config.config_id;
        test_params = Test_config.param_values_of_seed c;
      })
    configs

let evaluator_for evaluators cid =
  match List.find_opt (fun ev -> Evaluator.config_id ev = cid) evaluators with
  | Some ev -> ev
  | None ->
      invalid_arg (Printf.sprintf "Baseline: no evaluator for config #%d" cid)

(* The fault's sensitivity under every seed test, in test order — one
   config-major batch per test (seed tests are one point per
   configuration), each value bitwise identical to the sequential
   [Evaluator.sensitivity] call.  [set_detects]' List.exists early exit
   becomes a full sweep, which only shifts evaluation counts: the
   detect verdict and the best sensitivity are order-free reductions. *)
let test_sensitivities ~evaluators ~tests fault =
  Array.map
    (fun (t : Coverage.test) ->
      let ev = evaluator_for evaluators t.Coverage.test_config_id in
      match
        Evaluator.batched_fault_sensitivities ev ~faults:[| fault |]
          ~points:[| t.Coverage.test_params |]
      with
      | Some cells -> fst cells.(0).(0)
      | None -> Evaluator.sensitivity ev fault t.Coverage.test_params)
    (Array.of_list tests)

let set_detects ~evaluators ~tests fault =
  Array.exists Sensitivity.detects (test_sensitivities ~evaluators ~tests fault)

let best_sensitivity ~evaluators ~tests fault =
  Array.fold_left Float.min infinity
    (test_sensitivities ~evaluators ~tests fault)

let critical_impact_of_tests ~evaluators ~tests fault ?(span = 1e3)
    ?(steps = 40) () =
  let r_dict = Faults.Fault.impact_resistance fault in
  let r_min = r_dict /. span and r_max = r_dict *. span in
  let detects r =
    set_detects ~evaluators ~tests (Faults.Fault.with_impact fault r)
  in
  let budget = ref steps in
  let spend () = decr budget; !budget >= 0 in
  (* find a detecting impact *)
  let rec find_detect r =
    if detects r then Some r
    else if r <= r_min || not (spend ()) then None
    else find_detect (r /. 2.)
  in
  match find_detect r_dict with
  | None -> None
  | Some r_detect ->
      (* walk up while still detecting *)
      let rec walk_up r =
        if r >= r_max || not (spend ()) then (r, None)
        else begin
          let r' = r *. 2. in
          if detects r' then walk_up r' else (r, Some r')
        end
      in
      let r_lo, r_hi = walk_up r_detect in
      (match r_hi with
      | None -> Some r_lo  (* detects across the whole range *)
      | Some hi ->
          let lo = ref r_lo and hi = ref hi in
          while !hi /. !lo > 1.1 && spend () do
            let mid = sqrt (!lo *. !hi) in
            if detects mid then lo := mid else hi := mid
          done;
          Some (sqrt (!lo *. !hi)))

let compare ~evaluators dictionary run =
  let configs = List.map Evaluator.config evaluators in
  let tests = seed_tests configs in
  let opt_by_fault =
    List.map
      (fun r ->
        ( r.Generate.fault_id,
          match r.Generate.outcome with
          | Generate.Unique { critical_impact; _ } -> Some critical_impact
          | Generate.Undetectable _ -> None ))
      run.Engine.results
  in
  let comparisons =
    List.map
      (fun entry ->
        let fault = entry.Faults.Dictionary.fault in
        let fid = entry.Faults.Dictionary.fault_id in
        {
          cmp_fault_id = fid;
          seed_detects = set_detects ~evaluators ~tests fault;
          seed_best_sensitivity = best_sensitivity ~evaluators ~tests fault;
          seed_critical_impact =
            critical_impact_of_tests ~evaluators ~tests fault ();
          optimized_critical_impact =
            Option.join (List.assoc_opt fid opt_by_fault);
        })
      (Faults.Dictionary.entries dictionary)
  in
  let seed_covered =
    List.length (List.filter (fun c -> c.seed_detects) comparisons)
  in
  let optimized_covered =
    List.length
      (List.filter
         (fun c -> Option.is_some c.optimized_critical_impact)
         comparisons)
  in
  let gains =
    List.filter_map
      (fun c ->
        match (c.optimized_critical_impact, c.seed_critical_impact) with
        | Some o, Some s when s > 0. -> Some (o /. s)
        | Some _, None -> None  (* infinite gain; excluded from the median *)
        | None, _ -> None
        | Some _, Some _ -> None)
      comparisons
  in
  let median_impact_gain =
    match gains with
    | [] -> 1.
    | _ -> Numerics.Stats.median (Array.of_list gains)
  in
  {
    comparisons;
    seed_covered;
    optimized_covered;
    total = Faults.Dictionary.size dictionary;
    median_impact_gain;
  }
