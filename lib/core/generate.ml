open Numerics

type options = {
  soft_factor : float;
  optimizer_tol : float;
  powell_max_iter : int;
  bracket_points : int;
  impact_span : float;
  max_impact_steps : int;
  use_gradient : bool;
}

let default_options =
  {
    soft_factor = 3.;
    optimizer_tol = 1e-3;
    powell_max_iter = 6;
    bracket_points = 8;
    impact_span = 1e3;
    max_impact_steps = 48;
    use_gradient = false;
  }

type candidate = {
  cand_config_id : int;
  cand_params : Vec.t;
  low_impact_sensitivity : float;
  optimizer_evaluations : int;
}

type outcome =
  | Unique of {
      config_id : int;
      params : Vec.t;
      critical_impact : float;
      dictionary_sensitivity : float;
    }
  | Undetectable of {
      most_sensitive_config : int;
      params : Vec.t;
      best_sensitivity : float;
      strongest_impact : float;
    }

type trace_step = { impact : float; detecting : int list }

type result = {
  fault_id : string;
  dictionary_fault : Faults.Fault.t;
  candidates : candidate list;
  outcome : outcome;
  trace : trace_step list;
}

let best_config_id r =
  match r.outcome with
  | Unique { config_id; _ } -> config_id
  | Undetectable { most_sensitive_config; _ } -> most_sensitive_config

let best_params r =
  match r.outcome with
  | Unique { params; _ } -> params
  | Undetectable { params; _ } -> params

let c_line_searches = Obs.Counter.create "generate.grad_line_searches"

(* Projected gradient descent with Armijo backtracking over the
   parameter box, started from the best point of a coarse global
   pre-scan.  Each evaluation returns the cost *and* its analytic
   gradient for the price of one probe (value + one adjoint transpose
   solve per operating point), so the scan plus a handful of Armijo
   steps replaces the oracle's scan plus Brent/Powell's many line
   minimizations.  The seed is the scan's first sample, so the final
   point can never be worse than the seed.  Returns [None] when the
   evaluator has no analytic gradient for this configuration (the
   caller falls back to the oracle path, having spent nothing). *)
(* Coarse global view of the parameter box, shared by the gradient
   descent's pre-scan and the multi-parameter oracle's start selection.
   Single-parameter boxes reuse the Brent oracle's scan granularity;
   two-parameter boxes get the full three-level-per-axis product —
   bounds included, because detecting basins sit in the corners where
   axis sweeps through the seed never look — and wider boxes fall back
   to per-axis sweeps, where the full product would rival the
   optimizer's own cost. *)
let lattice_starts ~options ~lower ~upper seeds =
  let np = Array.length seeds in
  let at_frac i frac = lower.(i) +. (frac *. (upper.(i) -. lower.(i))) in
  let levels = [ 0.; 0.5; 1. ] in
  if np = 1 then
    let n = options.bracket_points in
    List.init (n + 1) (fun i -> [| at_frac 0 (float_of_int i /. float_of_int n) |])
  else if np = 2 then
    List.fold_left
      (fun acc i ->
        List.concat_map
          (fun x ->
            List.map
              (fun frac ->
                let x = Array.copy x in
                x.(i) <- at_frac i frac;
                x)
              levels)
          acc)
      [ seeds ]
      (List.init np Fun.id)
  else
    List.concat_map
      (fun frac ->
        List.init np (fun i ->
            let x = Array.copy seeds in
            x.(i) <- at_frac i frac;
            x))
      levels

let gradient_descent ~options ~evals ~iterations evaluator fault_low =
  let config = Evaluator.config evaluator in
  let ps = config.Test_config.params in
  if ps = [] then
    invalid_arg "Generate.optimize_candidate: configuration without parameters";
  let lower, upper = Test_param.bounds_of ps in
  let seeds = Test_param.seeds_of ps in
  let np = Array.length seeds in
  let eval x = Evaluator.sensitivity_gradient evaluator fault_low x in
  match eval seeds with
  | None -> None
  | Some (f0, g0) ->
      incr evals;
      (* Global pre-scan before descending: a strictly local method
         started at the designer's seed can park on the flat shoulder of
         the weakened cost surface while the detecting basin sits
         elsewhere in the box — exactly the case the oracle's bracket
         scan exists for.  Each probe is one forward+adjoint solve, so
         the scan costs the same as the oracle's and the savings come
         from replacing Brent/Powell's line minimizations with a
         handful of Armijo steps. *)
      let scan_starts = lattice_starts ~options ~lower ~upper seeds in
      let x0, f0, g0 =
        List.fold_left
          (fun (bx, bf, bg) x ->
            match eval x with
            | None -> (bx, bf, bg)
            | Some (f, g) ->
                incr evals;
                if f < bf then (x, f, g) else (bx, bf, bg))
          (seeds, f0, g0) scan_starts
      in
      let max_iters = 5 and max_backtracks = 3 in
      let clamp x =
        Array.mapi (fun i v -> Float.min upper.(i) (Float.max lower.(i) v)) x
      in
      let x = ref x0 and f = ref f0 and g = ref g0 in
      let best_x = ref x0 and best_f = ref f0 in
      let searches = ref 0 in
      let running = ref true in
      while !running && !iterations < max_iters do
        incr iterations;
        (* steepest descent, with components pinned at an active bound
           projected out so the direction stays feasible *)
        let d =
          Array.mapi
            (fun i gi ->
              let di = -.gi in
              if
                (!x.(i) <= lower.(i) && di < 0.)
                || (!x.(i) >= upper.(i) && di > 0.)
              then 0.
              else di)
            !g
        in
        let dnorm =
          Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0. d
        in
        if dnorm = 0. then running := false
        else begin
          let span = ref infinity in
          for i = 0 to np - 1 do
            if upper.(i) > lower.(i) then
              span := Float.min !span (upper.(i) -. lower.(i))
          done;
          let span = if Float.is_finite !span then !span else 1. in
          (* first trial reaches halfway across the narrowest axis *)
          let t0 = 0.5 *. span /. dnorm in
          let slope =
            let s = ref 0. in
            for i = 0 to np - 1 do
              s := !s +. (!g.(i) *. d.(i))
            done;
            !s
          in
          incr searches;
          let rec backtrack t k =
            if k > max_backtracks then None
            else begin
              let x' =
                clamp (Array.mapi (fun i v -> v +. (t *. d.(i))) !x)
              in
              match eval x' with
              | None -> None
              | Some (f', g') ->
                  incr evals;
                  if f' <= !f +. (1e-4 *. t *. slope) || f' < !f then
                    Some (x', f', g')
                  else backtrack (t /. 4.) (k + 1)
            end
          in
          match backtrack t0 0 with
          | None -> running := false
          | Some (x', f', g') ->
              if f' < !best_f then begin
                best_f := f';
                best_x := x'
              end;
              (* stop on a converged step or a trivially-detected
                 sentinel (the surface is flat there) *)
              if
                Float.abs (f' -. !f)
                <= options.optimizer_tol *. Float.max 1. (Float.abs !f)
              then running := false;
              x := x';
              f := f';
              g := g'
        end
      done;
      Obs.Counter.bump c_line_searches !searches;
      Some (!best_x, !best_f)

let optimize_candidate ?(options = default_options) evaluator fault_low =
  let config = Evaluator.config evaluator in
  let before = Evaluator.evaluation_count evaluator in
  let cost values = Evaluator.sensitivity evaluator fault_low values in
  let opt_iterations = ref 0 and opt_evals = ref 0 in
  let run_optimizer () =
    match config.Test_config.params with
    | [ p ] ->
        let cost1 v = cost [| v |] in
        let a = p.Test_param.lower and b = p.Test_param.upper in
        let lo, hi =
          Brent.bracket_scan ~f:cost1 ~a ~b ~n:options.bracket_points
        in
        let r =
          Brent.minimize ~tol:options.optimizer_tol ~f:cost1 ~a:lo ~b:hi ()
        in
        opt_iterations := r.Brent.iterations;
        opt_evals := r.Brent.evals + options.bracket_points + 1;
        ([| r.Brent.xmin |], r.Brent.fmin)
    | _ :: _ :: _ as ps ->
        let lower, upper = Test_param.bounds_of ps in
        let seed = Test_param.seeds_of ps in
        (* The Brent arm opens with a global bracket scan; give Powell
           the same global view — the best point of the coarse box
           lattice becomes its start — so detecting basins in corners
           the seed's descent path never reaches stay findable. *)
        let scan = lattice_starts ~options ~lower ~upper seed in
        (* The seed + lattice sweep is a (1 fault x points) cross-product
           over one configuration: batch it through the config-major
           engine (one held factorization, all points solved against it)
           when the plan admits it.  The fold replicates the sequential
           accumulator exactly — seed first, then scan order, strict [<]
           tie-break — on bitwise-identical costs, so the winning start
           (and with it the whole optimizer trajectory) is unchanged. *)
        let start, start_cost =
          let all_points = Array.of_list (seed :: scan) in
          match
            Evaluator.batched_fault_sensitivities evaluator
              ~faults:[| fault_low |] ~points:all_points
          with
          | Some cells ->
              let best = ref (seed, fst cells.(0).(0)) in
              List.iteri
                (fun i x ->
                  let f = fst cells.(0).(i + 1) in
                  if f < snd !best then best := (x, f))
                scan;
              !best
          | None ->
              List.fold_left
                (fun (bx, bf) x ->
                  let f = cost x in
                  if f < bf then (x, f) else (bx, bf))
                (seed, cost seed) scan
        in
        let r =
          Powell.minimize ~tol:options.optimizer_tol
            ~max_iter:options.powell_max_iter ~f:cost ~lower ~upper ~start ()
        in
        opt_iterations := r.Powell.iterations;
        opt_evals := r.Powell.evaluations + List.length scan + 1;
        if start_cost < r.Powell.fmin then (start, start_cost)
        else (r.Powell.xmin, r.Powell.fmin)
    | [] -> invalid_arg "Generate.optimize_candidate: configuration without parameters"
  in
  let span name f =
    if not (Obs.active ()) then f ()
    else
      Obs.Span.timed
        ~key:(string_of_int (Evaluator.config_id evaluator))
        ~attrs:(fun () ->
          [
            ("iterations", Obs.Int !opt_iterations);
            ("evals", Obs.Int !opt_evals);
          ])
        name f
  in
  (* The gradient mode tries the adjoint descent first; a configuration
     without an analytic gradient falls through to the oracle path,
     having spent no evaluations. *)
  let grad_result =
    if not options.use_gradient then None
    else
      span "generate.optimizer" (fun () ->
          gradient_descent ~options ~evals:opt_evals
            ~iterations:opt_iterations evaluator fault_low)
  in
  let params, fmin =
    match grad_result with
    | Some (params, fmin) ->
        (* the descent's pre-scan covers the seed and the oracle's
           bracket lattice, so the seed guard below is already folded
           into its running best *)
        (params, fmin)
    | None ->
        (* no analytic gradient for this configuration: the verbatim
           oracle path, having spent nothing on the descent *)
        let params, fmin = span "generate.optimizer" run_optimizer in
        (* The designer's seed is a "promising test value" (sec. 2.2):
           when the weakened model leaves the cost surface flat, a local
           optimizer can wander to a point that is worse than the seed
           itself — never accept that. *)
        let seeds = Test_param.seeds_of config.Test_config.params in
        let seed_cost = cost seeds in
        if seed_cost < fmin then (seeds, seed_cost) else (params, fmin)
  in
  {
    cand_config_id = Evaluator.config_id evaluator;
    cand_params = params;
    low_impact_sensitivity = fmin;
    optimizer_evaluations = Evaluator.evaluation_count evaluator - before;
  }

(* Impact-convergence machinery ------------------------------------- *)

(* Evaluators and their optimized candidates are paired once at machine
   construction; every walk/bisect/refine step then indexes the same
   association instead of rebuilding [List.combine] per probe. *)
type machine = {
  pairs : (Evaluator.t * candidate) list;
  base_fault : Faults.Fault.t;
  cache : (int * float, float) Hashtbl.t;
  mutable steps : trace_step list;
  mutable budget : int;
}

let sensitivity_at m (ev, cand) impact =
  let key = (cand.cand_config_id, impact) in
  match Hashtbl.find_opt m.cache key with
  | Some s -> s
  | None ->
      let f = Faults.Fault.with_impact m.base_fault impact in
      (* ladder probe: same [T], new impact — the continuation homotopy *)
      let s = Evaluator.sensitivity ~continue:true ev f cand.cand_params in
      Hashtbl.replace m.cache key s;
      s

let detecting_at m impact =
  m.budget <- m.budget - 1;
  let det =
    List.filter_map
      (fun (ev, cand) ->
        if Sensitivity.detects (sensitivity_at m (ev, cand) impact) then
          Some cand.cand_config_id
        else None)
      m.pairs
  in
  m.steps <- { impact; detecting = det } :: m.steps;
  det

(* Selection probes (which configuration survives a tie-break) must not
   ride the continuation: near-tied candidates — vref faults see configs
   within 1e-9 of each other — would let the warm start's last-digit
   deviation flip the argmin and name a different survivor than the
   default path.  On a continuation evaluator, re-probe cold: the value
   is bit-identical to the non-continuation run's, so both runs pick the
   same winner.  Plain evaluators keep the cached ladder value — the
   default path stays bit-identical, probe count included. *)
let selection_sensitivity m (ev, cand) impact =
  if Evaluator.continuation_enabled ev then
    Evaluator.sensitivity ev
      (Faults.Fault.with_impact m.base_fault impact)
      cand.cand_params
  else sensitivity_at m (ev, cand) impact

let most_sensitive m impact =
  List.fold_left
    (fun (best_pair, best_s) (ev, cand) ->
      let s = selection_sensitivity m (ev, cand) impact in
      match best_pair with
      | None -> (Some (ev, cand), s)
      | Some _ when s < best_s -> (Some (ev, cand), s)
      | Some _ -> (best_pair, best_s))
    (None, infinity) m.pairs
  |> fun (pair, s) ->
  match pair with
  | Some (_, cand) -> (cand, s)
  | None -> invalid_arg "Generate: no candidates"

let pair_by_id m id =
  List.find (fun (_, c) -> c.cand_config_id = id) m.pairs

(* Find the impact where the given candidate stops detecting:
   lo detects, hi does not; log-space bisection. *)
let refine_critical m cand ~lo ~hi =
  let ev, _ = pair_by_id m cand.cand_config_id in
  let lo = ref lo and hi = ref hi in
  let rounds = ref 0 in
  while !hi /. !lo > 1.1 && !rounds < 16 && m.budget > 0 do
    incr rounds;
    m.budget <- m.budget - 1;
    let mid = sqrt (!lo *. !hi) in
    if Sensitivity.detects (sensitivity_at m (ev, cand) mid) then lo := mid
    else hi := mid
  done;
  sqrt (!lo *. !hi)

(* Walk impacts geometrically in the given direction (weaken: r *= 2;
   intensify: r /= 2) until the detection count crosses the target of
   exactly one, then settle a survivor. *)

(* Between r_many (>=2 detecting) and r_none (0 detecting), bisect for a
   point with exactly one detector. *)
let rec bisect_for_unique m ~r_many ~r_none =
  if r_none /. r_many <= 1.05 || m.budget <= 0 then None
  else begin
    let mid = sqrt (r_many *. r_none) in
    match detecting_at m mid with
    | [ only ] -> Some (only, mid)
    | [] -> bisect_for_unique m ~r_many ~r_none:mid
    | _ :: _ :: _ -> bisect_for_unique m ~r_many:mid ~r_none
  end

(* Per-configuration span around one candidate optimization.  The nested
   [generate.optimizer] span carries iteration/eval attributes; this one
   carries the whole configuration's wall time (bracket scan + optimizer
   + seed guard). *)
let traced_candidate ~options ev fault =
  if not (Obs.active ()) then optimize_candidate ~options ev fault
  else
    Obs.Span.timed
      ~key:(string_of_int (Evaluator.config_id ev))
      "generate.configuration"
      (fun () -> optimize_candidate ~options ev fault)

let generate ?(options = default_options) ~evaluators entry =
  if evaluators = [] then invalid_arg "Generate.generate: no evaluators";
  let fault = entry.Faults.Dictionary.fault in
  let r_dict = Faults.Fault.impact_resistance fault in
  let fault_low = Faults.Fault.weaken fault ~factor:options.soft_factor in
  let candidates =
    List.map (fun ev -> traced_candidate ~options ev fault_low) evaluators
  in
  (* Sec. 2.2's extension for hard-to-see faults: when the weakened model
     produced no detection signal at all (flat cost surface), the
     optimized point is arbitrary — re-optimize that configuration against
     the dictionary-impact model and keep whichever point is more
     sensitive at the dictionary impact. *)
  let candidates =
    List.map2
      (fun ev cand ->
        if cand.low_impact_sensitivity <= 0. then cand
        else begin
          let cand_dict = traced_candidate ~options ev fault in
          let s_old = Evaluator.sensitivity ev fault cand.cand_params in
          if cand_dict.low_impact_sensitivity < s_old then
            {
              cand_dict with
              optimizer_evaluations =
                cand.optimizer_evaluations + cand_dict.optimizer_evaluations;
            }
          else cand
        end)
      evaluators candidates
  in
  let m =
    {
      pairs = List.combine evaluators candidates;
      base_fault = fault;
      cache = Hashtbl.create 64;
      steps = [];
      budget = options.max_impact_steps;
    }
  in
  let r_min = r_dict /. options.impact_span in
  let r_max = r_dict *. options.impact_span in
  let unique_outcome config_id r_detect =
    (* push the survivor to its own detection boundary *)
    let ev, cand = pair_by_id m config_id in
    let rec death r =
      if r >= r_max || m.budget <= 0 then r
      else begin
        let r' = r *. 2. in
        m.budget <- m.budget - 1;
        if Sensitivity.detects (sensitivity_at m (ev, cand) r') then death r'
        else r'
      end
    in
    let r_dead = death r_detect in
    let critical =
      if r_dead <= r_detect then r_detect
      else if
        Sensitivity.detects (sensitivity_at m (ev, cand) r_dead)
      then r_dead (* survives even at the weakest impact tried *)
      else refine_critical m cand ~lo:(r_dead /. 2.) ~hi:r_dead
    in
    Unique
      {
        config_id;
        params = cand.cand_params;
        critical_impact = critical;
        dictionary_sensitivity = sensitivity_at m (ev, cand) r_dict;
      }
  in
  let tie_break r =
    let cand, _ = most_sensitive m r in
    unique_outcome cand.cand_config_id r
  in
  let search_outcome () =
    match detecting_at m r_dict with
    | [ only ] -> unique_outcome only r_dict
    | _ :: _ :: _ -> begin
        (* relax the impact *)
        let rec walk_up r_prev r =
          if r > r_max || m.budget <= 0 then tie_break r_prev
          else
            match detecting_at m r with
            | [ only ] -> unique_outcome only r
            | [] -> begin
                match bisect_for_unique m ~r_many:r_prev ~r_none:r with
                | Some (only, r1) -> unique_outcome only r1
                | None -> tie_break r_prev
              end
            | _ :: _ :: _ -> walk_up r (r *. 2.)
        in
        walk_up r_dict (r_dict *. 2.)
      end
    | [] -> begin
        (* intensify the impact *)
        let rec walk_down r_prev r =
          if r < r_min || m.budget <= 0 then begin
            let cand, s = most_sensitive m (Float.max r r_min) in
            Undetectable
              {
                most_sensitive_config = cand.cand_config_id;
                params = cand.cand_params;
                best_sensitivity = s;
                strongest_impact = Float.max r r_min;
              }
          end
          else
            match detecting_at m r with
            | [ only ] -> unique_outcome only r
            | _ :: _ :: _ -> begin
                (* overshot: between r (many) and r_prev (none) *)
                match bisect_for_unique m ~r_many:r ~r_none:r_prev with
                | Some (only, r1) -> unique_outcome only r1
                | None -> tie_break r
              end
            | [] -> walk_down r (r /. 2.)
        in
        walk_down r_dict (r_dict /. 2.)
      end
  in
  let outcome =
    if not (Obs.active ()) then search_outcome ()
    else
      Obs.Span.timed
        ~key:entry.Faults.Dictionary.fault_id
        ~attrs:(fun () -> [ ("steps", Obs.Int (List.length m.steps)) ])
        "generate.impact" search_outcome
  in
  {
    fault_id = entry.Faults.Dictionary.fault_id;
    dictionary_fault = fault;
    candidates;
    outcome;
    trace = List.rev m.steps;
  }
