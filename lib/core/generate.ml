open Numerics

type options = {
  soft_factor : float;
  optimizer_tol : float;
  powell_max_iter : int;
  bracket_points : int;
  impact_span : float;
  max_impact_steps : int;
}

let default_options =
  {
    soft_factor = 3.;
    optimizer_tol = 1e-3;
    powell_max_iter = 6;
    bracket_points = 8;
    impact_span = 1e3;
    max_impact_steps = 48;
  }

type candidate = {
  cand_config_id : int;
  cand_params : Vec.t;
  low_impact_sensitivity : float;
  optimizer_evaluations : int;
}

type outcome =
  | Unique of {
      config_id : int;
      params : Vec.t;
      critical_impact : float;
      dictionary_sensitivity : float;
    }
  | Undetectable of {
      most_sensitive_config : int;
      params : Vec.t;
      best_sensitivity : float;
      strongest_impact : float;
    }

type trace_step = { impact : float; detecting : int list }

type result = {
  fault_id : string;
  dictionary_fault : Faults.Fault.t;
  candidates : candidate list;
  outcome : outcome;
  trace : trace_step list;
}

let best_config_id r =
  match r.outcome with
  | Unique { config_id; _ } -> config_id
  | Undetectable { most_sensitive_config; _ } -> most_sensitive_config

let best_params r =
  match r.outcome with
  | Unique { params; _ } -> params
  | Undetectable { params; _ } -> params

let optimize_candidate ?(options = default_options) evaluator fault_low =
  let config = Evaluator.config evaluator in
  let before = Evaluator.evaluation_count evaluator in
  let cost values = Evaluator.sensitivity evaluator fault_low values in
  let opt_iterations = ref 0 and opt_evals = ref 0 in
  let run_optimizer () =
    match config.Test_config.params with
    | [ p ] ->
        let cost1 v = cost [| v |] in
        let a = p.Test_param.lower and b = p.Test_param.upper in
        let lo, hi =
          Brent.bracket_scan ~f:cost1 ~a ~b ~n:options.bracket_points
        in
        let r =
          Brent.minimize ~tol:options.optimizer_tol ~f:cost1 ~a:lo ~b:hi ()
        in
        opt_iterations := r.Brent.iterations;
        opt_evals := r.Brent.evals + options.bracket_points + 1;
        ([| r.Brent.xmin |], r.Brent.fmin)
    | _ :: _ :: _ as ps ->
        let lower, upper = Test_param.bounds_of ps in
        let start = Test_param.seeds_of ps in
        let r =
          Powell.minimize ~tol:options.optimizer_tol
            ~max_iter:options.powell_max_iter ~f:cost ~lower ~upper ~start ()
        in
        opt_iterations := r.Powell.iterations;
        opt_evals := r.Powell.evaluations;
        (r.Powell.xmin, r.Powell.fmin)
    | [] -> invalid_arg "Generate.optimize_candidate: configuration without parameters"
  in
  let params, fmin =
    if not (Obs.active ()) then run_optimizer ()
    else
      Obs.Span.timed
        ~key:(string_of_int (Evaluator.config_id evaluator))
        ~attrs:(fun () ->
          [
            ("iterations", Obs.Int !opt_iterations);
            ("evals", Obs.Int !opt_evals);
          ])
        "generate.optimizer" run_optimizer
  in
  (* The designer's seed is a "promising test value" (sec. 2.2): when the
     weakened model leaves the cost surface flat, a local optimizer can
     wander to a point that is worse than the seed itself — never accept
     that. *)
  let seeds = Test_param.seeds_of config.Test_config.params in
  let seed_cost = cost seeds in
  let params, fmin =
    if seed_cost < fmin then (seeds, seed_cost) else (params, fmin)
  in
  {
    cand_config_id = Evaluator.config_id evaluator;
    cand_params = params;
    low_impact_sensitivity = fmin;
    optimizer_evaluations = Evaluator.evaluation_count evaluator - before;
  }

(* Impact-convergence machinery ------------------------------------- *)

(* Evaluators and their optimized candidates are paired once at machine
   construction; every walk/bisect/refine step then indexes the same
   association instead of rebuilding [List.combine] per probe. *)
type machine = {
  pairs : (Evaluator.t * candidate) list;
  base_fault : Faults.Fault.t;
  cache : (int * float, float) Hashtbl.t;
  mutable steps : trace_step list;
  mutable budget : int;
}

let sensitivity_at m (ev, cand) impact =
  let key = (cand.cand_config_id, impact) in
  match Hashtbl.find_opt m.cache key with
  | Some s -> s
  | None ->
      let f = Faults.Fault.with_impact m.base_fault impact in
      (* ladder probe: same [T], new impact — the continuation homotopy *)
      let s = Evaluator.sensitivity ~continue:true ev f cand.cand_params in
      Hashtbl.replace m.cache key s;
      s

let detecting_at m impact =
  m.budget <- m.budget - 1;
  let det =
    List.filter_map
      (fun (ev, cand) ->
        if Sensitivity.detects (sensitivity_at m (ev, cand) impact) then
          Some cand.cand_config_id
        else None)
      m.pairs
  in
  m.steps <- { impact; detecting = det } :: m.steps;
  det

(* Selection probes (which configuration survives a tie-break) must not
   ride the continuation: near-tied candidates — vref faults see configs
   within 1e-9 of each other — would let the warm start's last-digit
   deviation flip the argmin and name a different survivor than the
   default path.  On a continuation evaluator, re-probe cold: the value
   is bit-identical to the non-continuation run's, so both runs pick the
   same winner.  Plain evaluators keep the cached ladder value — the
   default path stays bit-identical, probe count included. *)
let selection_sensitivity m (ev, cand) impact =
  if Evaluator.continuation_enabled ev then
    Evaluator.sensitivity ev
      (Faults.Fault.with_impact m.base_fault impact)
      cand.cand_params
  else sensitivity_at m (ev, cand) impact

let most_sensitive m impact =
  List.fold_left
    (fun (best_pair, best_s) (ev, cand) ->
      let s = selection_sensitivity m (ev, cand) impact in
      match best_pair with
      | None -> (Some (ev, cand), s)
      | Some _ when s < best_s -> (Some (ev, cand), s)
      | Some _ -> (best_pair, best_s))
    (None, infinity) m.pairs
  |> fun (pair, s) ->
  match pair with
  | Some (_, cand) -> (cand, s)
  | None -> invalid_arg "Generate: no candidates"

let pair_by_id m id =
  List.find (fun (_, c) -> c.cand_config_id = id) m.pairs

(* Find the impact where the given candidate stops detecting:
   lo detects, hi does not; log-space bisection. *)
let refine_critical m cand ~lo ~hi =
  let ev, _ = pair_by_id m cand.cand_config_id in
  let lo = ref lo and hi = ref hi in
  let rounds = ref 0 in
  while !hi /. !lo > 1.1 && !rounds < 16 && m.budget > 0 do
    incr rounds;
    m.budget <- m.budget - 1;
    let mid = sqrt (!lo *. !hi) in
    if Sensitivity.detects (sensitivity_at m (ev, cand) mid) then lo := mid
    else hi := mid
  done;
  sqrt (!lo *. !hi)

(* Walk impacts geometrically in the given direction (weaken: r *= 2;
   intensify: r /= 2) until the detection count crosses the target of
   exactly one, then settle a survivor. *)

(* Between r_many (>=2 detecting) and r_none (0 detecting), bisect for a
   point with exactly one detector. *)
let rec bisect_for_unique m ~r_many ~r_none =
  if r_none /. r_many <= 1.05 || m.budget <= 0 then None
  else begin
    let mid = sqrt (r_many *. r_none) in
    match detecting_at m mid with
    | [ only ] -> Some (only, mid)
    | [] -> bisect_for_unique m ~r_many ~r_none:mid
    | _ :: _ :: _ -> bisect_for_unique m ~r_many:mid ~r_none
  end

(* Per-configuration span around one candidate optimization.  The nested
   [generate.optimizer] span carries iteration/eval attributes; this one
   carries the whole configuration's wall time (bracket scan + optimizer
   + seed guard). *)
let traced_candidate ~options ev fault =
  if not (Obs.active ()) then optimize_candidate ~options ev fault
  else
    Obs.Span.timed
      ~key:(string_of_int (Evaluator.config_id ev))
      "generate.configuration"
      (fun () -> optimize_candidate ~options ev fault)

let generate ?(options = default_options) ~evaluators entry =
  if evaluators = [] then invalid_arg "Generate.generate: no evaluators";
  let fault = entry.Faults.Dictionary.fault in
  let r_dict = Faults.Fault.impact_resistance fault in
  let fault_low = Faults.Fault.weaken fault ~factor:options.soft_factor in
  let candidates =
    List.map (fun ev -> traced_candidate ~options ev fault_low) evaluators
  in
  (* Sec. 2.2's extension for hard-to-see faults: when the weakened model
     produced no detection signal at all (flat cost surface), the
     optimized point is arbitrary — re-optimize that configuration against
     the dictionary-impact model and keep whichever point is more
     sensitive at the dictionary impact. *)
  let candidates =
    List.map2
      (fun ev cand ->
        if cand.low_impact_sensitivity <= 0. then cand
        else begin
          let cand_dict = traced_candidate ~options ev fault in
          let s_old = Evaluator.sensitivity ev fault cand.cand_params in
          if cand_dict.low_impact_sensitivity < s_old then
            {
              cand_dict with
              optimizer_evaluations =
                cand.optimizer_evaluations + cand_dict.optimizer_evaluations;
            }
          else cand
        end)
      evaluators candidates
  in
  let m =
    {
      pairs = List.combine evaluators candidates;
      base_fault = fault;
      cache = Hashtbl.create 64;
      steps = [];
      budget = options.max_impact_steps;
    }
  in
  let r_min = r_dict /. options.impact_span in
  let r_max = r_dict *. options.impact_span in
  let unique_outcome config_id r_detect =
    (* push the survivor to its own detection boundary *)
    let ev, cand = pair_by_id m config_id in
    let rec death r =
      if r >= r_max || m.budget <= 0 then r
      else begin
        let r' = r *. 2. in
        m.budget <- m.budget - 1;
        if Sensitivity.detects (sensitivity_at m (ev, cand) r') then death r'
        else r'
      end
    in
    let r_dead = death r_detect in
    let critical =
      if r_dead <= r_detect then r_detect
      else if
        Sensitivity.detects (sensitivity_at m (ev, cand) r_dead)
      then r_dead (* survives even at the weakest impact tried *)
      else refine_critical m cand ~lo:(r_dead /. 2.) ~hi:r_dead
    in
    Unique
      {
        config_id;
        params = cand.cand_params;
        critical_impact = critical;
        dictionary_sensitivity = sensitivity_at m (ev, cand) r_dict;
      }
  in
  let tie_break r =
    let cand, _ = most_sensitive m r in
    unique_outcome cand.cand_config_id r
  in
  let search_outcome () =
    match detecting_at m r_dict with
    | [ only ] -> unique_outcome only r_dict
    | _ :: _ :: _ -> begin
        (* relax the impact *)
        let rec walk_up r_prev r =
          if r > r_max || m.budget <= 0 then tie_break r_prev
          else
            match detecting_at m r with
            | [ only ] -> unique_outcome only r
            | [] -> begin
                match bisect_for_unique m ~r_many:r_prev ~r_none:r with
                | Some (only, r1) -> unique_outcome only r1
                | None -> tie_break r_prev
              end
            | _ :: _ :: _ -> walk_up r (r *. 2.)
        in
        walk_up r_dict (r_dict *. 2.)
      end
    | [] -> begin
        (* intensify the impact *)
        let rec walk_down r_prev r =
          if r < r_min || m.budget <= 0 then begin
            let cand, s = most_sensitive m (Float.max r r_min) in
            Undetectable
              {
                most_sensitive_config = cand.cand_config_id;
                params = cand.cand_params;
                best_sensitivity = s;
                strongest_impact = Float.max r r_min;
              }
          end
          else
            match detecting_at m r with
            | [ only ] -> unique_outcome only r
            | _ :: _ :: _ -> begin
                (* overshot: between r (many) and r_prev (none) *)
                match bisect_for_unique m ~r_many:r ~r_none:r_prev with
                | Some (only, r1) -> unique_outcome only r1
                | None -> tie_break r
              end
            | [] -> walk_down r (r /. 2.)
        in
        walk_down r_dict (r_dict /. 2.)
      end
  in
  let outcome =
    if not (Obs.active ()) then search_outcome ()
    else
      Obs.Span.timed
        ~key:entry.Faults.Dictionary.fault_id
        ~attrs:(fun () -> [ ("steps", Obs.Int (List.length m.steps)) ])
        "generate.impact" search_outcome
  in
  {
    fault_id = entry.Faults.Dictionary.fault_id;
    dictionary_fault = fault;
    candidates;
    outcome;
    trace = List.rev m.steps;
  }
