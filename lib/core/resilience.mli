(** Resilient execution of per-fault simulation work.

    Faulty circuits are exactly where Newton/transient solvers are most
    fragile: a hard bridge can make the MNA matrix near-singular, push
    the operating point into a region where the level-1 models produce
    NaN, or stall transient stepping.  This module turns such failures
    from run-aborting exceptions into structured per-fault outcomes:

    - a {b retry ladder} re-attempts the failed work under escalating
      solver options (more Newton iterations, a raised gmin floor,
      relaxed [reltol], a subdivided transient step), each attempt capped
      by an evaluation budget;
    - faults that fail every rung are {b quarantined}: recorded as a
      {!diagnosis} so the surrounding run can continue.

    The ladder is a fixed list, so recovery behaviour is deterministic:
    the same fault and the same failure always walk the same rungs. *)

type rung = {
  rung_label : string;  (** stable name used in reports and rung stats *)
  newton_scale : float;  (** multiply [Dc.options.max_newton] *)
  gmin_floor : float;  (** raise [Dc.options.gmin] to at least this *)
  reltol_scale : float;  (** multiply [Dc.options.reltol] *)
  dt_divisor : int;  (** multiply [Execute.profile.dt_divisor] *)
}

val baseline_label : string
(** ["baseline"] — the rung name reported for the initial, unescalated
    attempt. *)

val default_ladder : rung list
(** Four rungs of strictly increasing aggressiveness:
    [more-newton] (4x Newton budget), [raise-gmin] (gmin floor 1e-9),
    [relax-reltol] (100x reltol, 2x step subdivision) and
    [brute-force] (8x Newton, gmin floor 1e-8, 4x step subdivision). *)

val escalate : rung -> Execute.profile -> Execute.profile
(** Apply a rung's solver-option escalation to an execution profile. *)

type policy = {
  ladder : rung list;
  max_retries : int;  (** rungs attempted after the baseline (<= ladder length) *)
  attempt_budget : int option;
      (** per-configuration faulty-evaluation cap added for each attempt
          ([None] = unlimited) *)
  fail_fast : bool;
      (** abort the surrounding run on the first unrecoverable fault
          instead of quarantining it *)
}

val default_policy : policy
(** The full {!default_ladder}, [max_retries = 4],
    [attempt_budget = Some 4000], [fail_fast = false]. *)

val abort_policy : policy
(** No retries and [fail_fast = true]: the pre-resilience behaviour
    (first simulator failure aborts the run). *)

type attempt = {
  attempt_rung : string;  (** {!baseline_label} or a ladder rung label *)
  attempt_error : string option;
      (** the failure that ended this attempt; [None] means the attempt
          succeeded (only ever the last attempt of a recovery) *)
}

type diagnosis = {
  diag_fault_id : string;
  diag_attempts : attempt list;  (** every attempt, in ladder order *)
  diag_error : string;  (** the final attempt's failure *)
}

val pp_diagnosis : Format.formatter -> diagnosis -> unit

type 'a outcome =
  | Ok of 'a  (** first attempt succeeded *)
  | Recovered of 'a * attempt list
      (** a ladder rung succeeded after [>= 1] failures; the last attempt
          carries [attempt_error = None] and names the winning rung *)
  | Failed of diagnosis  (** every attempt failed: quarantined *)

val succeeded : 'a outcome -> 'a option

val recovery_rung : 'a outcome -> string option
(** The rung that produced the value of a [Recovered] outcome. *)

val recoverable_error : exn -> string option
(** Classify an exception: [Some message] for simulator failures the
    retry ladder may cure ({!Execute.Execution_failure}, DC
    non-convergence, transient step failure, singular MNA matrices,
    {!Evaluator.Budget_exhausted}), [None] for everything else
    (programming errors propagate unchanged). *)

val protect : policy:policy -> fault_id:string -> (rung option -> 'a) -> 'a outcome
(** [protect ~policy ~fault_id f] runs [f None] (the baseline attempt)
    and, on a recoverable failure, walks [f (Some rung)] down the
    policy's ladder (at most [max_retries] rungs) until an attempt
    succeeds.  Unrecoverable exceptions propagate.  [fail_fast] does not
    change [protect] itself — callers decide what to do with a [Failed]
    outcome. *)
