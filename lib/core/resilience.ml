type rung = {
  rung_label : string;
  newton_scale : float;
  gmin_floor : float;
  reltol_scale : float;
  dt_divisor : int;
}

let baseline_label = "baseline"

let default_ladder =
  [
    {
      rung_label = "more-newton";
      newton_scale = 4.;
      gmin_floor = 0.;
      reltol_scale = 1.;
      dt_divisor = 1;
    };
    {
      rung_label = "raise-gmin";
      newton_scale = 4.;
      gmin_floor = 1e-9;
      reltol_scale = 1.;
      dt_divisor = 1;
    };
    {
      rung_label = "relax-reltol";
      newton_scale = 4.;
      gmin_floor = 1e-9;
      reltol_scale = 100.;
      dt_divisor = 2;
    };
    {
      rung_label = "brute-force";
      newton_scale = 8.;
      gmin_floor = 1e-8;
      reltol_scale = 100.;
      dt_divisor = 4;
    };
  ]

let c_escalations = Obs.Counter.create "resilience.escalations"
let c_recovered = Obs.Counter.create "resilience.recovered"
let c_quarantined = Obs.Counter.create "resilience.quarantined"

(* One counter per ladder rung (plus baseline), so the profile shows how
   far up the ladder runs actually climb.  [Obs.Counter.create] is
   idempotent per name, so looking the counter up on each attempt is
   just a registry probe — and it only happens when tracing is active. *)
let rung_counter label =
  Obs.Counter.create ("resilience.rung_attempts." ^ label)

let escalate rung (p : Execute.profile) =
  Obs.Counter.bump c_escalations 1;
  let o = p.Execute.dc_options in
  {
    p with
    Execute.dc_options =
      {
        o with
        Circuit.Dc.max_newton =
          int_of_float (Float.round (float_of_int o.Circuit.Dc.max_newton *. rung.newton_scale));
        gmin = Float.max o.Circuit.Dc.gmin rung.gmin_floor;
        reltol = o.Circuit.Dc.reltol *. rung.reltol_scale;
      };
    dt_divisor = p.Execute.dt_divisor * rung.dt_divisor;
  }

type policy = {
  ladder : rung list;
  max_retries : int;
  attempt_budget : int option;
  fail_fast : bool;
}

let default_policy =
  {
    ladder = default_ladder;
    max_retries = List.length default_ladder;
    attempt_budget = Some 4000;
    fail_fast = false;
  }

let abort_policy =
  { ladder = []; max_retries = 0; attempt_budget = None; fail_fast = true }

type attempt = { attempt_rung : string; attempt_error : string option }

type diagnosis = {
  diag_fault_id : string;
  diag_attempts : attempt list;
  diag_error : string;
}

let pp_diagnosis fmt d =
  Format.fprintf fmt "@[<v 2>%s: unrecoverable after %d attempt(s):"
    d.diag_fault_id
    (List.length d.diag_attempts);
  List.iter
    (fun a ->
      Format.fprintf fmt "@,%-12s %s" a.attempt_rung
        (Option.value ~default:"ok" a.attempt_error))
    d.diag_attempts;
  Format.fprintf fmt "@]"

type 'a outcome = Ok of 'a | Recovered of 'a * attempt list | Failed of diagnosis

let succeeded = function
  | Ok v | Recovered (v, _) -> Some v
  | Failed _ -> None

let recovery_rung = function
  | Recovered (_, attempts) -> begin
      match List.rev attempts with
      | { attempt_rung; attempt_error = None } :: _ -> Some attempt_rung
      | _ -> None
    end
  | Ok _ | Failed _ -> None

let recoverable_error = function
  | Execute.Execution_failure m -> Some m
  | Circuit.Dc.No_convergence m -> Some (Printf.sprintf "DC non-convergence: %s" m)
  | Circuit.Tran.Step_failure { time; reason } ->
      Some (Printf.sprintf "transient step failure at t=%g: %s" time reason)
  | Numerics.Mat.Singular k ->
      Some (Printf.sprintf "singular MNA matrix (elimination step %d)" k)
  | Numerics.Cmat.Singular k ->
      Some (Printf.sprintf "singular small-signal system (elimination step %d)" k)
  | Evaluator.Budget_exhausted { config_id; budget } ->
      Some
        (Printf.sprintf "evaluation budget exhausted (configuration %d, cap %d)"
           config_id budget)
  | _ -> None

(* Rungs actually used under a policy: at most [max_retries] of them. *)
let rungs_of policy =
  List.filteri (fun i _ -> i < policy.max_retries) policy.ladder

let protect ~policy ~fault_id f =
  let run rung =
    match f rung with
    | v -> Stdlib.Ok v
    | exception e -> begin
        match recoverable_error e with
        | Some msg -> Stdlib.Error msg
        | None -> raise e
      end
  in
  let label = function None -> baseline_label | Some r -> r.rung_label in
  let rec walk failed = function
    | [] ->
        let attempts = List.rev failed in
        Obs.Counter.bump c_quarantined 1;
        Failed
          {
            diag_fault_id = fault_id;
            diag_attempts = attempts;
            diag_error =
              (match List.rev attempts with
              | { attempt_error = Some m; _ } :: _ -> m
              | _ -> "no attempts made");
          }
    | rung :: rest -> begin
        if Obs.active () then Obs.Counter.add (rung_counter (label rung)) 1;
        match run rung with
        | Stdlib.Ok v ->
            if failed = [] then Ok v
            else begin
              Obs.Counter.bump c_recovered 1;
              Recovered
                ( v,
                  List.rev
                    ({ attempt_rung = label rung; attempt_error = None } :: failed) )
            end
        | Stdlib.Error msg ->
            walk ({ attempt_rung = label rung; attempt_error = Some msg } :: failed) rest
      end
  in
  walk [] (None :: List.map Option.some (rungs_of policy))
