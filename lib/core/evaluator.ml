
type t = {
  config : Test_config.t;
  profile : Execute.profile;
  nominal : Execute.target;
  box_model : Tolerance.t;
  nominal_cache : (string, float array) Hashtbl.t;
  evals : int ref;
  budget : int option ref;
}

exception Budget_exhausted of { config_id : int; budget : int }

let create ?(profile = Execute.default_profile) config ~nominal ~box_model =
  {
    config;
    profile;
    nominal;
    box_model;
    nominal_cache = Hashtbl.create 64;
    evals = ref 0;
    budget = ref None;
  }

(* Same configuration, target and calibrated box, different execution
   profile — the retry ladder's escalated view of an evaluator.  The
   evaluation counter and budget cell are shared so accounting spans all
   derived copies; the nominal cache is fresh because cached observables
   are profile-dependent. *)
let with_profile t profile = { t with profile; nominal_cache = Hashtbl.create 64 }

let config t = t.config
let config_id t = t.config.Test_config.config_id
let nominal_target t = t.nominal
let profile t = t.profile

let set_budget t budget = t.budget := budget

let charge t =
  (match !(t.budget) with
  | Some b when !(t.evals) >= b ->
      raise (Budget_exhausted { config_id = config_id t; budget = b })
  | Some _ | None -> ());
  incr t.evals

(* Exact (hex-float) keys: a rounded key would let parameter points that
   differ only in the last bits share an entry, making the memoized
   nominal depend on which point was evaluated first — and a resumed run
   would then diverge from the uninterrupted one in the last digits. *)
let cache_key values =
  String.concat ","
    (Array.to_list (Array.map (Printf.sprintf "%h") values))

let nominal_observables t values =
  let key = cache_key values in
  match Hashtbl.find_opt t.nominal_cache key with
  | Some obs -> obs
  | None ->
      let obs = Execute.observables ~profile:t.profile t.config t.nominal values in
      Hashtbl.replace t.nominal_cache key obs;
      obs

let box t values = Tolerance.box t.box_model values

let detected_sentinel = -1e6

let faulty_target t fault =
  {
    t.nominal with
    Execute.netlist = Faults.Inject.apply t.nominal.Execute.netlist fault;
  }

let faulty_observables t fault values =
  charge t;
  Execute.observables ~profile:t.profile t.config (faulty_target t fault) values

let sensitivity_and_deviation t fault values =
  let nominal = nominal_observables t values in
  match faulty_observables t fault values with
  | faulty ->
      let dev = Execute.deviations t.config ~nominal ~faulty in
      let s =
        Sensitivity.compute t.config ~box:(box t values) ~nominal ~faulty
      in
      (s, dev)
  | exception Execute.Execution_failure _ -> (detected_sentinel, [||])

let sensitivity t fault values = fst (sensitivity_and_deviation t fault values)

let sensitivity_of_target t target values =
  let nominal = nominal_observables t values in
  charge t;
  match Execute.observables ~profile:t.profile t.config target values with
  | observed ->
      Sensitivity.compute t.config ~box:(box t values) ~nominal
        ~faulty:observed
  | exception Execute.Execution_failure _ -> detected_sentinel

let evaluation_count t = !(t.evals)
