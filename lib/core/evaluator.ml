
type mode = [ `Legacy | `Compiled ]

(* Per-evaluator accounting lives in unregistered Obs counters: the same
   atomic cells whether tracing is on or off, with fork/absorb giving the
   commutative merge Parallel relies on.  The registered globals below
   additionally accumulate the process-wide profile (active-only bumps,
   so the disabled path costs one atomic load per site). *)
type t = {
  config : Test_config.t;
  profile : Execute.profile;
  nominal : Execute.target;
  box_model : Tolerance.t;
  mode : mode;
  continuation : bool;
  batching : bool;
  backend : Circuit.Mna.backend;
  nominal_cache : (string, float array) Hashtbl.t;
  (* Memoized nominal observables *and* their parameter gradients, keyed
     like [nominal_cache]: the nominal response at a parameter point is
     shared by every fault's gradient probe at that point. *)
  ngrad_cache : (string, float array * float array array) Hashtbl.t;
  compiled_cache : (string, Execute.compiled) Hashtbl.t;
  (* Warm-start stores keyed like the plan cache (per fault site): the
     ladder of probes of one fault continues through one store, so each
     fault's results stay a pure function of that fault — the property
     that keeps continuation runs identical across --jobs N. *)
  cont_cache : (string, Execute.continuation) Hashtbl.t;
  evals : Obs.Counter.t;
  budget : int option ref;
  cache_hits : Obs.Counter.t;
  cache_misses : Obs.Counter.t;
}

let g_evals = Obs.Counter.create "evaluator.fault_evaluations"
let g_cache_hits = Obs.Counter.create "evaluator.nominal_cache.hits"
let g_cache_misses = Obs.Counter.create "evaluator.nominal_cache.misses"
let g_plan_hits = Obs.Counter.create "evaluator.plan_cache.hits"
let g_plan_misses = Obs.Counter.create "evaluator.plan_cache.misses"

(* Batch accounting is unconditional ([Counter.add], not the
   active-guarded [bump]): the serve daemon's [stats] request and the
   bench gates read these without tracing enabled. *)
let g_batch_faults = Obs.Counter.create "evaluator.batch.faults_batched"
let g_batch_fallback = Obs.Counter.create "evaluator.batch.fallback_seq"
let g_batch_panels = Obs.Counter.create "evaluator.batch.panels"

exception Budget_exhausted of { config_id : int; budget : int }

let create ?(profile = Execute.default_profile) ?(mode = `Compiled)
    ?(continuation = false) ?(batching = true) ?(backend = Circuit.Mna.Dense)
    config ~nominal ~box_model =
  {
    config;
    profile;
    nominal;
    box_model;
    mode;
    continuation;
    batching;
    backend;
    nominal_cache = Hashtbl.create 64;
    ngrad_cache = Hashtbl.create 64;
    compiled_cache = Hashtbl.create 16;
    cont_cache = Hashtbl.create 16;
    evals = Obs.Counter.unregistered "evaluator.evals";
    budget = ref None;
    cache_hits = Obs.Counter.unregistered "evaluator.cache_hits";
    cache_misses = Obs.Counter.unregistered "evaluator.cache_misses";
  }

(* Same configuration, target and calibrated box, different execution
   profile — the retry ladder's escalated view of an evaluator.  The
   evaluation counter and budget cell are shared so accounting spans all
   derived copies; the nominal cache is fresh because cached observables
   are profile-dependent.  The compiled-plan cache is shared: plans
   capture topology only, not profile, and the derived evaluator runs in
   the same domain as its parent (the retry ladder is sequential). *)
let with_profile t profile =
  {
    t with
    profile;
    nominal_cache = Hashtbl.create 64;
    ngrad_cache = Hashtbl.create 64;
  }

(* A worker's private view of an evaluator: same (immutable)
   configuration, target, box model and profile, but its own cache and
   its own counters, so domains never contend on shared mutable state.
   The parent's cached observables are copied in as a warm start — safe
   because cache keys are exact and values are deterministic, so any
   domain recomputing an entry would produce the same bits.  The
   compiled-plan cache is NOT warm-started: plans own mutable solver
   workspaces, so each domain must compile its own. *)
let fork t =
  {
    t with
    nominal_cache = Hashtbl.copy t.nominal_cache;
    ngrad_cache = Hashtbl.copy t.ngrad_cache;
    compiled_cache = Hashtbl.create 16;
    cont_cache = Hashtbl.create 16;
    evals = Obs.Counter.fork t.evals;
    budget = ref None;
    cache_hits = Obs.Counter.fork t.cache_hits;
    cache_misses = Obs.Counter.fork t.cache_misses;
  }

(* Deterministic merge of a fork back into its parent.  Counters are
   summed (addition commutes, so the merged totals are independent of
   worker scheduling and merge order); cache entries are unioned, which
   is order-independent because equal keys always map to equal values.
   Compiled plans are deliberately not merged: their workspaces were
   mutated by the child's domain and stay with it. *)
let absorb ~into child =
  if into != child then begin
    Obs.Counter.absorb ~into:into.evals child.evals;
    Obs.Counter.absorb ~into:into.cache_hits child.cache_hits;
    Obs.Counter.absorb ~into:into.cache_misses child.cache_misses;
    Hashtbl.iter
      (fun key obs ->
        if not (Hashtbl.mem into.nominal_cache key) then
          Hashtbl.replace into.nominal_cache key obs)
      child.nominal_cache;
    Hashtbl.iter
      (fun key g ->
        if not (Hashtbl.mem into.ngrad_cache key) then
          Hashtbl.replace into.ngrad_cache key g)
      child.ngrad_cache
  end

let config t = t.config
let config_id t = t.config.Test_config.config_id
let mode t = t.mode
let continuation_enabled t = t.continuation
let batching_enabled t = t.batching
let nominal_target t = t.nominal
let profile t = t.profile

let set_budget t budget = t.budget := budget

let charge t =
  (match !(t.budget) with
  | Some b when Obs.Counter.value t.evals >= b ->
      raise (Budget_exhausted { config_id = config_id t; budget = b })
  | Some _ | None -> ());
  Obs.Counter.incr t.evals;
  Obs.Counter.bump g_evals 1

(* Exact (hex-float) keys: a rounded key would let parameter points that
   differ only in the last bits share an entry, making the memoized
   nominal depend on which point was evaluated first — and a resumed run
   would then diverge from the uninterrupted one in the last digits. *)
let cache_key values =
  String.concat ","
    (Array.to_list (Array.map (Printf.sprintf "%h") values))

(* Compiled plans are cached per topology.  Faults at the same site
   share a topology (the injected device names and node numbering do not
   depend on the impact resistance), so [Fault.id] — which excludes the
   resistance — is exactly the right key; the resistance itself is a
   value-phase override applied at stamp time.  The nominal topology
   lives under a key no fault id can collide with. *)
let nominal_plan_key = "@nominal"

let compiled_plan t ~key target =
  match Hashtbl.find_opt t.compiled_cache key with
  | Some plan ->
      Obs.Counter.bump g_plan_hits 1;
      plan
  | None ->
      Obs.Counter.bump g_plan_misses 1;
      let plan = Execute.compile ~backend:t.backend t.config (target ()) in
      Hashtbl.replace t.compiled_cache key plan;
      plan

let nominal_observables t values =
  let key = cache_key values in
  match Hashtbl.find_opt t.nominal_cache key with
  | Some obs ->
      Obs.Counter.incr t.cache_hits;
      Obs.Counter.bump g_cache_hits 1;
      obs
  | None ->
      Obs.Counter.incr t.cache_misses;
      Obs.Counter.bump g_cache_misses 1;
      (* injection is masked here: whether this nominal computation runs
         at all depends on cache state (cold per-worker caches under
         --jobs, one warm cache sequentially), so letting it consume
         failure draws would break per-fault injection determinism *)
      let obs =
        Numerics.Failpoint.without (fun () ->
            match t.mode with
            | `Legacy ->
                Execute.observables ~profile:t.profile t.config t.nominal
                  values
            | `Compiled ->
                Execute.compiled_observables ~profile:t.profile
                  (compiled_plan t ~key:nominal_plan_key (fun () -> t.nominal))
                  values)
      in
      Hashtbl.replace t.nominal_cache key obs;
      obs

let box t values = Tolerance.box t.box_model values

let detected_sentinel = -1e6

let faulty_target t fault =
  {
    t.nominal with
    Execute.netlist = Faults.Inject.apply t.nominal.Execute.netlist fault;
  }

(* Continuation engages only when the caller says this probe walks the
   impact ladder ([continue]): warm-starting is a homotopy in the impact
   resistance at fixed parameter values, so optimizer probes — which vary
   the parameters at a fixed impact — stay on the cold path and remain
   bit-identical to a non-continuation run.  Keeping the optimizer exact
   matters because it drives sensitivities toward the detection boundary,
   where any last-digit deviation in the optimum flips knife-edge detect
   verdicts across decades of impact. *)
let faulty_observables ?(continue = false) t fault values =
  charge t;
  match t.mode with
  | `Legacy ->
      Execute.observables ~profile:t.profile t.config (faulty_target t fault)
        values
  | `Compiled ->
      let key = Faults.Fault.id fault in
      let plan = compiled_plan t ~key (fun () -> faulty_target t fault) in
      let continuation =
        if not (t.continuation && continue) then None
        else
          match Hashtbl.find_opt t.cont_cache key with
          | Some c -> Some c
          | None ->
              let c = Execute.continuation () in
              Hashtbl.replace t.cont_cache key c;
              Some c
      in
      Execute.compiled_observables ~profile:t.profile
        ~impact:(Faults.Inject.impact_override fault) ?continuation plan
        values

(* A faulty circuit that genuinely cannot be simulated is trivially
   detected (the sentinel below) — but a failure *injected* by the chaos
   harness is an infrastructure event that belongs to the retry ladder,
   not evidence of detection.  The failpoint epoch distinguishes the two:
   when it moved across the faulty evaluation, re-raise. *)
let sensitivity_and_deviation ?continue t fault values =
  let nominal = nominal_observables t values in
  let epoch = Numerics.Failpoint.epoch () in
  match faulty_observables ?continue t fault values with
  | faulty ->
      let dev = Execute.deviations t.config ~nominal ~faulty in
      let s =
        Sensitivity.compute t.config ~box:(box t values) ~nominal ~faulty
      in
      (s, dev)
  | exception Execute.Execution_failure _
    when Numerics.Failpoint.epoch () = epoch ->
      (detected_sentinel, [||])

let sensitivity ?continue t fault values =
  fst (sensitivity_and_deviation ?continue t fault values)

(* Adjoint sensitivity gradient: [Some (s, dS/dp)] when both responses
   admit the analytic gradient (compiled mode, Dc_levels analysis),
   [None] when the caller must fall back to finite-difference probing.
   The value part is bit-identical to {!sensitivity}: same solver
   trajectories, same box arithmetic — only the gradient rides along.
   Nominal gradients are memoized like nominal observables (and seed the
   observables cache with their identical value part); injection is
   masked around the nominal for the same determinism reason.  A faulty
   gradient costs exactly one {!charge}, so [optimizer_evaluations]
   accounting compares probe-for-probe with the oracle path. *)
let nominal_gradient t values =
  match t.mode with
  | `Legacy -> None
  | `Compiled -> (
      let key = cache_key values in
      match Hashtbl.find_opt t.ngrad_cache key with
      | Some g -> Some g
      | None -> (
          let g =
            Numerics.Failpoint.without (fun () ->
                Execute.compiled_gradient ~profile:t.profile
                  (compiled_plan t ~key:nominal_plan_key (fun () -> t.nominal))
                  values)
          in
          match g with
          | None -> None
          | Some g ->
              if not (Hashtbl.mem t.nominal_cache key) then
                Hashtbl.replace t.nominal_cache key g.Execute.g_obs;
              let entry = (g.Execute.g_obs, g.Execute.g_dobs) in
              Hashtbl.replace t.ngrad_cache key entry;
              Some entry))

let sensitivity_gradient t fault values =
  match nominal_gradient t values with
  | None -> None
  | Some (nominal, dnominal) -> (
      charge t;
      let epoch = Numerics.Failpoint.epoch () in
      let key = Faults.Fault.id fault in
      let plan = compiled_plan t ~key (fun () -> faulty_target t fault) in
      match
        Execute.compiled_gradient ~profile:t.profile
          ~impact:(Faults.Inject.impact_override fault) plan values
      with
      | None -> None
      | Some g ->
          let box, dbox = Tolerance.box_gradient t.box_model values in
          Some
            (Sensitivity.compute_gradient t.config ~box ~dbox ~nominal
               ~dnominal ~faulty:g.Execute.g_obs ~dfaulty:g.Execute.g_dobs)
      | exception Execute.Execution_failure _
        when Numerics.Failpoint.epoch () = epoch ->
          (* trivially detected, and flat: the descent stops here *)
          Some (detected_sentinel, Array.make (Numerics.Vec.dim values) 0.))

(* Batched evaluation of faults sharing one site (same {!Faults.Fault.id},
   hence one compiled topology and one stamp pattern): the whole group is
   swept through {!Execute.compiled_dc_levels_batch}, each fault still
   paying one {!charge}.  [None] sends the caller back to the sequential
   per-fault path: legacy mode, an empty or mixed-site group, or a plan
   outside the batchable (linear, DC-levels) family. *)
let batched_sensitivities t ~faults values =
  match (t.mode, faults) with
  | `Legacy, _ | _, [] -> None
  | `Compiled, f0 :: rest ->
      let key = Faults.Fault.id f0 in
      if
        not
          (List.for_all (fun f -> String.equal (Faults.Fault.id f) key) rest)
      then None
      else begin
        let plan = compiled_plan t ~key (fun () -> faulty_target t f0) in
        let impacts =
          Array.of_list
            (List.map (fun f -> Some (Faults.Inject.impact_override f)) faults)
        in
        match
          Execute.compiled_dc_levels_batch ~profile:t.profile plan ~impacts
            values
        with
        | None -> None
        | Some rows ->
            let nominal = nominal_observables t values in
            let box = box t values in
            Some
              (Array.map
                 (fun faulty ->
                   charge t;
                   let dev =
                     Execute.deviations t.config ~nominal ~faulty
                   in
                   let s =
                     Sensitivity.compute t.config ~box ~nominal ~faulty
                   in
                   (s, dev))
                 rows)
      end

(* Config-major batched evaluation of an arbitrary fault set against an
   arbitrary set of parameter points — the engine behind the coverage,
   compaction, collapse and lattice-seeding cross-products.  Faults are
   grouped by site ({!Faults.Fault.id} keys one compiled topology); each
   group pays one factorization per fault through
   {!Execute.compiled_batch_over_faults} and the whole point set solves
   against it.

   Bitwise contract: a returned [(s, dev)] is identical to what
   [sensitivity_and_deviation] computes for the same (fault, point) pair
   — same nominal-cache behaviour (one hit-or-miss per pair), one
   {!charge} per pair, same deviation and box arithmetic on operating
   points the batch engine reproduced bit for bit.  Pairs the engine
   could not settle (singular factorization, damping walk that did not
   converge — where the sequential path escalates to its stepping
   ladders) fall back to the verbatim sequential call, per pair.

   [None] — caller runs its sequential loop unchanged — when batching is
   disabled, the evaluator is in legacy or continuation mode (warm-start
   trajectories are tolerance-, not bit-identical, so batching them would
   change bits), the plan family is non-batchable, or failure injection
   is active: batching reorders evaluations, so letting it run under an
   active injection config would change which draw hits which fault and
   break per-fault injection determinism. *)
let batched_fault_sensitivities t ~faults ~points =
  let nf = Array.length faults and np = Array.length points in
  if
    nf = 0 || np = 0
    || (not t.batching)
    || t.continuation
    || t.mode = `Legacy
  then None
  else if Numerics.Failpoint.active () then begin
    Obs.Counter.add g_batch_fallback (nf * np);
    None
  end
  else begin
    (* group fault indices by site, preserving first-occurrence order *)
    let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
    let order = ref [] in
    Array.iteri
      (fun i f ->
        let key = Faults.Fault.id f in
        match Hashtbl.find_opt groups key with
        | Some is -> is := i :: !is
        | None ->
            Hashtbl.add groups key (ref [ i ]);
            order := key :: !order)
      faults;
    let cells = Array.make_matrix nf np None in
    let batchable = ref true in
    List.iter
      (fun key ->
        if !batchable then begin
          let is = Array.of_list (List.rev !(Hashtbl.find groups key)) in
          let plan =
            compiled_plan t ~key (fun () -> faulty_target t faults.(is.(0)))
          in
          let impacts =
            Array.map
              (fun i -> Some (Faults.Inject.impact_override faults.(i)))
              is
          in
          match
            Execute.compiled_batch_over_faults ~profile:t.profile plan
              ~impacts ~points
          with
          | None -> batchable := false
          | Some batch ->
              Obs.Counter.add g_batch_panels batch.Execute.fb_panels;
              Array.iteri
                (fun gi i ->
                  for p = 0 to np - 1 do
                    cells.(i).(p) <- batch.Execute.fb_obs.(gi).(p)
                  done)
                is
        end)
      (List.rev !order);
    if not !batchable then begin
      Obs.Counter.add g_batch_fallback (nf * np);
      None
    end
    else begin
      (* The fill is explicit nested loops, not [Array.init]: each pair's
         nominal-cache access and {!charge} must happen in a specified
         order so budget exhaustion raises at the same counter state as
         the sequential walk the caller replaced. *)
      let out = Array.make_matrix nf np (0., [||]) in
      for i = 0 to nf - 1 do
        for p = 0 to np - 1 do
          match cells.(i).(p) with
          | Some faulty ->
              let nominal = nominal_observables t points.(p) in
              charge t;
              Obs.Counter.add g_batch_faults 1;
              let dev = Execute.deviations t.config ~nominal ~faulty in
              let s =
                Sensitivity.compute t.config ~box:(box t points.(p)) ~nominal
                  ~faulty
              in
              out.(i).(p) <- (s, dev)
          | None ->
              Obs.Counter.add g_batch_fallback 1;
              out.(i).(p) <- sensitivity_and_deviation t faults.(i) points.(p)
        done
      done;
      Some out
    end
  end

(* One (fault, point) pair through the batch engine: the single-cell
   degenerate case, falling back to {!sensitivity} when the pair is not
   batchable.  Used where a caller holds exactly one pair but wants the
   batched factorization accounting (compaction's member re-checks). *)
let batched_sensitivity t fault values =
  match batched_fault_sensitivities t ~faults:[| fault |] ~points:[| values |]
  with
  | Some cells -> fst cells.(0).(0)
  | None -> sensitivity t fault values

let sensitivity_of_target t target values =
  let nominal = nominal_observables t values in
  charge t;
  let epoch = Numerics.Failpoint.epoch () in
  match Execute.observables ~profile:t.profile t.config target values with
  | observed ->
      Sensitivity.compute t.config ~box:(box t values) ~nominal
        ~faulty:observed
  | exception Execute.Execution_failure _
    when Numerics.Failpoint.epoch () = epoch ->
      detected_sentinel

let evaluation_count t = Obs.Counter.value t.evals

type cache_stats = { hits : int; misses : int; entries : int }

let cache_stats t =
  {
    hits = Obs.Counter.value t.cache_hits;
    misses = Obs.Counter.value t.cache_misses;
    entries = Hashtbl.length t.nominal_cache;
  }

type batch_stats = { faults_batched : int; fallback_seq : int; panels : int }

let batch_stats () =
  {
    faults_batched = Obs.Counter.value g_batch_faults;
    fallback_seq = Obs.Counter.value g_batch_fallback;
    panels = Obs.Counter.value g_batch_panels;
  }
