type test = {
  test_label : string;
  test_config_id : int;
  test_params : Numerics.Vec.t;
}

type detection = {
  det_fault_id : string;
  detected_by : string list;
  best_sensitivity : float;
}

type report = {
  tests : test list;
  detections : detection list;
  covered : int;
  total : int;
}

let percent r =
  if r.total = 0 then 100.
  else 100. *. float_of_int r.covered /. float_of_int r.total

let missed r =
  List.filter_map
    (fun d -> if d.detected_by = [] then Some d.det_fault_id else None)
    r.detections

let evaluate ~evaluators dictionary tests =
  (* index evaluators by configuration once — first binding wins, like
     the List.find_opt walk this replaces *)
  let index = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let cid = Evaluator.config_id ev in
      if not (Hashtbl.mem index cid) then Hashtbl.add index cid ev)
    evaluators;
  let evaluator_for cid =
    match Hashtbl.find_opt index cid with
    | Some ev -> ev
    | None ->
        invalid_arg
          (Printf.sprintf "Coverage.evaluate: no evaluator for config #%d" cid)
  in
  let entries = Array.of_list (Faults.Dictionary.entries dictionary) in
  let faults = Array.map (fun e -> e.Faults.Dictionary.fault) entries in
  let test_arr = Array.of_list tests in
  let nf = Array.length faults and nt = Array.length test_arr in
  (* Config-major prefill: one batched cross-product call per distinct
     configuration covers every (fault, test) pair of that
     configuration, each bitwise identical to the sequential
     [Evaluator.sensitivity] call the fold below would have made.  A
     configuration whose evaluator declines leaves its cells [None] and
     the fold computes them sequentially, unchanged. *)
  let cell = Array.make_matrix nf nt None in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun test ->
      let cid = test.test_config_id in
      if not (Hashtbl.mem seen cid) then begin
        Hashtbl.add seen cid ();
        let cols = ref [] in
        Array.iteri
          (fun ti t -> if t.test_config_id = cid then cols := ti :: !cols)
          test_arr;
        let cols = Array.of_list (List.rev !cols) in
        let ev = evaluator_for cid in
        let points =
          Array.map (fun ti -> test_arr.(ti).test_params) cols
        in
        match Evaluator.batched_fault_sensitivities ev ~faults ~points with
        | None -> ()
        | Some cells ->
            Array.iteri
              (fun pi ti ->
                for fi = 0 to nf - 1 do
                  cell.(fi).(ti) <- Some (fst cells.(fi).(pi))
                done)
              cols
      end)
    test_arr;
  let detections =
    Array.to_list
      (Array.mapi
         (fun fi entry ->
           let fault = entry.Faults.Dictionary.fault in
           let hits = ref [] and best = ref infinity in
           Array.iteri
             (fun ti test ->
               let s =
                 match cell.(fi).(ti) with
                 | Some s -> s
                 | None ->
                     let ev = evaluator_for test.test_config_id in
                     Evaluator.sensitivity ev fault test.test_params
               in
               if Sensitivity.detects s then hits := test.test_label :: !hits;
               best := Float.min !best s)
             test_arr;
           {
             det_fault_id = entry.Faults.Dictionary.fault_id;
             detected_by = List.rev !hits;
             best_sensitivity = !best;
           })
         entries)
  in
  let covered =
    List.length (List.filter (fun d -> d.detected_by <> []) detections)
  in
  {
    tests;
    detections;
    covered;
    total = Faults.Dictionary.size dictionary;
  }

let essential_tests r =
  List.filter_map
    (fun d ->
      match d.detected_by with [ only ] -> Some only | [] | _ :: _ :: _ -> None)
    r.detections
  |> List.sort_uniq String.compare
