(** The test-parameter sensitivity cost function (paper §3.1).

    For a single return value,
    [S_f(T) = 1 - |delta r(T)| / box(T)]:
    positive where the fault model is classified undetectable, negative
    where detection will occur, and exactly 1 at zero deviation — the
    paper's "insensitivity has cost value 1".  For [p] return values the
    minimum of the individual sensitivities is taken, so any single
    return value leaving its box means detection. *)

val of_deviation : deviation:float -> box:float -> float
(** [1 - |deviation| / box].  @raise Invalid_argument if [box <= 0]. *)

val combine : float array -> float
(** Minimum over per-return-value sensitivities (the paper's extension
    to p return values).  @raise Invalid_argument on an empty array. *)

val compute :
  Test_config.t ->
  box:float array ->
  nominal:float array ->
  faulty:float array ->
  float
(** Full pipeline: deviations per return value, each scaled by its box,
    combined with {!combine}. *)

val detects : float -> bool
(** [s < 0.] — the faulty response is guaranteed outside the tolerance
    box. *)

val compute_gradient :
  Test_config.t ->
  box:float array ->
  dbox:float array array ->
  nominal:float array ->
  dnominal:float array array ->
  faulty:float array ->
  dfaulty:float array array ->
  float * float array
(** [compute_gradient config ~box ~dbox ~nominal ~dnominal ~faulty
    ~dfaulty] is the sensitivity together with its parameter gradient
    [dS/dp], chaining the observable gradients of both responses (rows
    indexed like the observables, columns like the parameters) with the
    box gradient from {!Tolerance.box_gradient}.  The value part equals
    {!compute} on the same inputs.  At the kinks of the
    piecewise-smooth surface (deviation crossing zero, the min or the
    max-delta switching return values) the one-sided derivative of the
    branch {!compute} itself selects is returned.
    @raise Invalid_argument on mismatched lengths. *)
