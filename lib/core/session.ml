let format_version = 1

let float_str x = Printf.sprintf "%.17g" x

let vec_str v =
  String.concat " " (Array.to_list (Array.map float_str v))

let fault_str = function
  | Faults.Fault.Bridge { node_a; node_b; resistance } ->
      Printf.sprintf "bridge %s %s %s" node_a node_b (float_str resistance)
  | Faults.Fault.Pinhole { mosfet; r_shunt } ->
      Printf.sprintf "pinhole %s %s" mosfet (float_str r_shunt)

let header_line = Printf.sprintf "atpg-session %d\n" format_version

let add_result b (r : Generate.result) =
  begin
      Buffer.add_string b
        (Printf.sprintf "result %s\n" r.Generate.fault_id);
      Buffer.add_string b
        (Printf.sprintf "fault %s\n" (fault_str r.Generate.dictionary_fault));
      List.iter
        (fun (c : Generate.candidate) ->
          Buffer.add_string b
            (Printf.sprintf "candidate %d %s %d | %s\n" c.Generate.cand_config_id
               (float_str c.Generate.low_impact_sensitivity)
               c.Generate.optimizer_evaluations
               (vec_str c.Generate.cand_params)))
        r.Generate.candidates;
      (match r.Generate.outcome with
      | Generate.Unique { config_id; params; critical_impact; dictionary_sensitivity } ->
          Buffer.add_string b
            (Printf.sprintf "unique %d %s %s | %s\n" config_id
               (float_str critical_impact)
               (float_str dictionary_sensitivity)
               (vec_str params))
      | Generate.Undetectable
          { most_sensitive_config; params; best_sensitivity; strongest_impact } ->
          Buffer.add_string b
            (Printf.sprintf "undetectable %d %s %s | %s\n" most_sensitive_config
               (float_str best_sensitivity)
               (float_str strongest_impact)
               (vec_str params)));
      List.iter
        (fun (s : Generate.trace_step) ->
          Buffer.add_string b
            (Printf.sprintf "trace %s |%s\n"
               (float_str s.Generate.impact)
               (String.concat ""
                  (List.map (Printf.sprintf " %d") s.Generate.detecting))))
        r.Generate.trace;
      Buffer.add_string b "end\n"
  end

let to_string results =
  let b = Buffer.create 4096 in
  Buffer.add_string b header_line;
  List.iter (add_result b) results;
  Buffer.contents b

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_float s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failf "bad float %S" s

let parse_int s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failf "bad int %S" s

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let split_bar line =
  match String.index_opt line '|' with
  | None -> failf "missing '|' separator in %S" line
  | Some i ->
      ( String.trim (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_vec s = Array.of_list (List.map parse_float (words s))

let parse_fault = function
  | [ "bridge"; a; b; r ] -> Faults.Fault.bridge a b ~resistance:(parse_float r)
  | [ "pinhole"; m; r ] -> Faults.Fault.pinhole m ~r_shunt:(parse_float r)
  | other -> failf "bad fault line: %s" (String.concat " " other)

type partial = {
  mutable p_fault : Faults.Fault.t option;
  mutable p_candidates : Generate.candidate list;
  mutable p_outcome : Generate.outcome option;
  mutable p_trace : Generate.trace_step list;
}

let of_string text =
  if String.length text = 0 then Error "empty session file (0 bytes)"
  else
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> Error "empty session"
  | header :: rest -> begin
      match words header with
      | [ "atpg-session"; v ] when int_of_string_opt v = Some format_version
        -> begin
          try
            let results = ref [] in
            let current = ref None in
            let current_id = ref "" in
            let finish () =
              match !current with
              | None -> ()
              | Some p ->
                  let fault =
                    match p.p_fault with
                    | Some f -> f
                    | None -> failf "result %s: missing fault" !current_id
                  in
                  let outcome =
                    match p.p_outcome with
                    | Some o -> o
                    | None -> failf "result %s: missing outcome" !current_id
                  in
                  results :=
                    {
                      Generate.fault_id = !current_id;
                      dictionary_fault = fault;
                      candidates = List.rev p.p_candidates;
                      outcome;
                      trace = List.rev p.p_trace;
                    }
                    :: !results;
                  current := None
            in
            List.iter
              (fun line ->
                let line = String.trim line in
                if line = "" then ()
                else if line.[0] = '#' then
                  (* checkpoint trailers and comments; integrity is
                     checked byte-exactly by [scan_trailers], not here *)
                  ()
                else
                  match (words line, !current) with
                  | "result" :: id :: [], _ ->
                      finish ();
                      current_id := String.concat "" [ id ];
                      current :=
                        Some
                          {
                            p_fault = None;
                            p_candidates = [];
                            p_outcome = None;
                            p_trace = [];
                          }
                  | "fault" :: spec, Some p -> p.p_fault <- Some (parse_fault spec)
                  | "candidate" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; s; evals ] ->
                          p.p_candidates <-
                            {
                              Generate.cand_config_id = parse_int cid;
                              cand_params = parse_vec tail;
                              low_impact_sensitivity = parse_float s;
                              optimizer_evaluations = parse_int evals;
                            }
                            :: p.p_candidates
                      | _ -> failf "bad candidate line %S" line
                    end
                  | "unique" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; crit; s ] ->
                          p.p_outcome <-
                            Some
                              (Generate.Unique
                                 {
                                   config_id = parse_int cid;
                                   params = parse_vec tail;
                                   critical_impact = parse_float crit;
                                   dictionary_sensitivity = parse_float s;
                                 })
                      | _ -> failf "bad unique line %S" line
                    end
                  | "undetectable" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; s; impact ] ->
                          p.p_outcome <-
                            Some
                              (Generate.Undetectable
                                 {
                                   most_sensitive_config = parse_int cid;
                                   params = parse_vec tail;
                                   best_sensitivity = parse_float s;
                                   strongest_impact = parse_float impact;
                                 })
                      | _ -> failf "bad undetectable line %S" line
                    end
                  | "trace" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; impact ] ->
                          p.p_trace <-
                            {
                              Generate.impact = parse_float impact;
                              detecting = List.map parse_int (words tail);
                            }
                            :: p.p_trace
                      | _ -> failf "bad trace line %S" line
                    end
                  | [ "end" ], Some _ -> finish ()
                  | _, None -> failf "line outside a result block: %S" line
                  | other, Some _ ->
                      failf "unknown line: %S" (String.concat " " other))
              rest;
            finish ();
            Ok (List.rev !results)
          with Bad m | Invalid_argument m -> Error m
        end
      | [ "atpg-session"; v ] ->
          Error (Printf.sprintf "unsupported session version %s" v)
      | _ -> Error "not an atpg session file"
    end

(* -- crash-safe writes -------------------------------------------------- *)

(* Whole-file writes go through a temporary sibling, an fsync and an
   atomic rename, so a crash mid-save leaves either the old file or the
   new one — never a torn hybrid. *)
let write_atomic ~path text =
  let tmp = path ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error m -> Error m
  | oc -> begin
      match
        output_string oc text;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc);
        close_out oc;
        Sys.rename tmp path
      with
      | () -> Ok ()
      | exception Sys_error m ->
          (try close_out_noerr oc with _ -> ());
          (try Sys.remove tmp with Sys_error _ -> ());
          Error m
      | exception Unix.Unix_error (e, fn, _) ->
          (try close_out_noerr oc with _ -> ());
          (try Sys.remove tmp with Sys_error _ -> ());
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    end

let save ~path results = write_atomic ~path (to_string results)

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Ok text

(* -- checkpoint trailers ------------------------------------------------ *)

(* Every block a checkpoint appends is followed by a one-line trailer
   recording the block's byte length and CRC-32:

     result ...
     ...
     end
     #ck <len> <crc32-hex>

   Recovery walks the trailers byte-exactly: a block counts as durable
   only when its trailer is complete and both the length and the checksum
   verify, so a torn write (kill mid-[write]) or a corrupted byte is
   detected instead of being parsed as a shorter-but-valid session. *)

let trailer_of_block block =
  Printf.sprintf "#ck %d %08lx\n" (String.length block)
    (Numerics.Checksum.crc32 block)

let block_of_result r =
  let b = Buffer.create 1024 in
  add_result b r;
  Buffer.contents b

let to_checkpoint_string results =
  let b = Buffer.create 4096 in
  Buffer.add_string b header_line;
  List.iter
    (fun r ->
      let block = block_of_result r in
      Buffer.add_string b block;
      Buffer.add_string b (trailer_of_block block))
    results;
  Buffer.contents b

type scan = {
  scan_verified : int;  (** bytes of the longest verified prefix *)
  scan_blocks : int;  (** blocks covered by that prefix *)
  scan_anomaly : string option;
      (** first integrity violation (bad checksum, malformed or torn
          trailer); [None] when the scan ended at EOF or at a trailerless
          tail *)
}

let scan_trailers text =
  let len = String.length text in
  let find_trailer from =
    let rec go i =
      if i < 0 || i >= len then None
      else
        match String.index_from_opt text i '#' with
        | None -> None
        | Some j ->
            if
              j > 0
              && text.[j - 1] = '\n'
              && j + 4 <= len
              && String.equal (String.sub text j 4) "#ck "
            then Some j
            else go (j + 1)
    in
    go from
  in
  let rec walk pos blocks =
    if pos >= len then { scan_verified = pos; scan_blocks = blocks; scan_anomaly = None }
    else
      match find_trailer pos with
      | None ->
          (* a trailerless tail: either a block torn before its trailer
             was written, or a legacy (pre-trailer) checkpoint *)
          { scan_verified = pos; scan_blocks = blocks; scan_anomaly = None }
      | Some t -> begin
          match String.index_from_opt text t '\n' with
          | None ->
              {
                scan_verified = pos;
                scan_blocks = blocks;
                scan_anomaly =
                  Some (Printf.sprintf "torn checkpoint trailer at byte %d" t);
              }
          | Some nl -> begin
              let fields =
                String.split_on_char ' '
                  (String.sub text (t + 4) (nl - t - 4))
                |> List.filter (fun w -> w <> "")
              in
              match fields with
              | [ len_s; crc_s ] -> begin
                  match
                    ( int_of_string_opt len_s,
                      try Some (Int32.of_string ("0x" ^ crc_s))
                      with Failure _ -> None )
                  with
                  | Some blen, Some crc
                    when blen = t - pos
                         && Int32.equal crc
                              (Numerics.Checksum.crc32_sub text ~pos
                                 ~len:(t - pos)) ->
                      walk (nl + 1) (blocks + 1)
                  | Some blen, Some _ when blen <> t - pos ->
                      {
                        scan_verified = pos;
                        scan_blocks = blocks;
                        scan_anomaly =
                          Some
                            (Printf.sprintf
                               "checkpoint length mismatch at byte %d \
                                (trailer says %s, block is %d bytes)"
                               t len_s (t - pos));
                      }
                  | Some _, Some _ ->
                      {
                        scan_verified = pos;
                        scan_blocks = blocks;
                        scan_anomaly =
                          Some
                            (Printf.sprintf
                               "checkpoint checksum mismatch at byte %d \
                                (torn or corrupted block)"
                               pos);
                      }
                  | _ ->
                      {
                        scan_verified = pos;
                        scan_blocks = blocks;
                        scan_anomaly =
                          Some
                            (Printf.sprintf "malformed checkpoint trailer at byte %d" t);
                      }
                end
              | _ ->
                  {
                    scan_verified = pos;
                    scan_blocks = blocks;
                    scan_anomaly =
                      Some
                        (Printf.sprintf "malformed checkpoint trailer at byte %d" t);
                  }
            end
        end
  in
  walk (String.length header_line) 0

let header_ok text =
  String.length text >= String.length header_line
  && String.equal (String.sub text 0 (String.length header_line)) header_line

(* Keep the header plus every complete result block: everything up to and
   including the last "end" line.  The legacy salvage for pre-trailer
   checkpoint files, and for a trailerless tail behind the last verified
   trailer. *)
let truncate_to_complete text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> text
  | header :: rest ->
      let kept =
        let rec keep acc pending = function
          | [] -> List.rev acc
          | line :: tl ->
              if String.equal (String.trim line) "end" then
                keep (line :: (pending @ acc)) [] tl
              else keep acc (line :: pending) tl
        in
        keep [] [] rest
      in
      String.concat "\n" ((header :: kept) @ [ "" ])

(* The longest prefix of [text] recovery trusts: every trailer-verified
   block and, when the file carries no trailers at all (a legacy
   checkpoint), every syntactically complete block. *)
let salvage text =
  if not (header_ok text) then
    (* a torn header (prefix of the real one) salvages to an empty
       session; anything else is not ours to rewrite *)
    if
      String.length text < String.length header_line
      && String.equal text (String.sub header_line 0 (String.length text))
    then Ok header_line
    else
      match of_string text with
      | Error m -> Error m
      | Ok _ -> Error "unexpected session header"
  else
    let scan = scan_trailers text in
    if scan.scan_blocks = 0 && scan.scan_anomaly = None then
      (* no usable trailer: legacy file (or header-only) — salvage
         complete blocks syntactically *)
      Ok (truncate_to_complete text)
    else Ok (String.sub text 0 scan.scan_verified)

let load ~path =
  match read_file path with
  | Error m -> Error m
  | Ok text ->
      if String.length text = 0 then Error "empty session file (0 bytes)"
      else if not (header_ok text) then of_string text
      else
        let scan = scan_trailers text in
        if scan.scan_blocks = 0 && scan.scan_anomaly = None then
          of_string text
        else begin
          match scan.scan_anomaly with
          | Some m -> Error m
          | None ->
              if scan.scan_verified < String.length text then
                Error
                  (Printf.sprintf
                     "torn checkpoint: %d bytes of unverified data after \
                      block %d (use --resume to salvage)"
                     (String.length text - scan.scan_verified)
                     scan.scan_blocks)
              else of_string text
        end

let load_partial ~path =
  match read_file path with
  | Error m -> Error m
  | Ok text -> begin
      match salvage text with
      | Error m -> Error m
      | Ok prefix -> of_string prefix
    end

(* -- incremental checkpointing ---------------------------------------- *)

exception Torn_write

type checkpoint = { ck_oc : out_channel }

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let checkpoint_create ~path =
  match open_out_bin path with
  | exception Sys_error m -> Error m
  | oc ->
      output_string oc header_line;
      fsync_channel oc;
      Ok { ck_oc = oc }

let checkpoint_resume ~path =
  if not (Sys.file_exists path) then
    match checkpoint_create ~path with
    | Error m -> Error m
    | Ok ck -> Ok (ck, [])
  else
    match read_file path with
    | Error m -> Error m
    | Ok text -> begin
        match salvage text with
        | Error m -> Error m
        | Ok prefix -> begin
            match of_string prefix with
            | Error m -> Error m
            | Ok results -> begin
                (* rewrite the salvaged prefix atomically — in canonical
                   trailered form, so a legacy or torn file never carries
                   its tail (or its trailerless blocks) forward — then
                   reopen for appending *)
                match write_atomic ~path (to_checkpoint_string results) with
                | Error m -> Error m
                | Ok () -> begin
                    match
                      open_out_gen [ Open_wronly; Open_append; Open_binary ]
                        0o644 path
                    with
                    | exception Sys_error m -> Error m
                    | oc -> Ok ({ ck_oc = oc }, results)
                  end
              end
          end
      end

let checkpoint_append ck r =
  let block = block_of_result r in
  let payload = block ^ trailer_of_block block in
  if Numerics.Failpoint.should_fail "session.torn_write" then begin
    (* simulate a kill mid-write: half the payload reaches the file, the
       trailer (or its tail) does not, and the writer dies *)
    output_string ck.ck_oc
      (String.sub payload 0 (String.length payload / 2));
    flush ck.ck_oc;
    raise Torn_write
  end;
  output_string ck.ck_oc payload;
  fsync_channel ck.ck_oc

let checkpoint_close ck = close_out ck.ck_oc
let checkpoint_abort ck = close_out_noerr ck.ck_oc
