let format_version = 1

let float_str x = Printf.sprintf "%.17g" x

let vec_str v =
  String.concat " " (Array.to_list (Array.map float_str v))

let fault_str = function
  | Faults.Fault.Bridge { node_a; node_b; resistance } ->
      Printf.sprintf "bridge %s %s %s" node_a node_b (float_str resistance)
  | Faults.Fault.Pinhole { mosfet; r_shunt } ->
      Printf.sprintf "pinhole %s %s" mosfet (float_str r_shunt)

let header_line = Printf.sprintf "atpg-session %d\n" format_version

let add_result b (r : Generate.result) =
  begin
      Buffer.add_string b
        (Printf.sprintf "result %s\n" r.Generate.fault_id);
      Buffer.add_string b
        (Printf.sprintf "fault %s\n" (fault_str r.Generate.dictionary_fault));
      List.iter
        (fun (c : Generate.candidate) ->
          Buffer.add_string b
            (Printf.sprintf "candidate %d %s %d | %s\n" c.Generate.cand_config_id
               (float_str c.Generate.low_impact_sensitivity)
               c.Generate.optimizer_evaluations
               (vec_str c.Generate.cand_params)))
        r.Generate.candidates;
      (match r.Generate.outcome with
      | Generate.Unique { config_id; params; critical_impact; dictionary_sensitivity } ->
          Buffer.add_string b
            (Printf.sprintf "unique %d %s %s | %s\n" config_id
               (float_str critical_impact)
               (float_str dictionary_sensitivity)
               (vec_str params))
      | Generate.Undetectable
          { most_sensitive_config; params; best_sensitivity; strongest_impact } ->
          Buffer.add_string b
            (Printf.sprintf "undetectable %d %s %s | %s\n" most_sensitive_config
               (float_str best_sensitivity)
               (float_str strongest_impact)
               (vec_str params)));
      List.iter
        (fun (s : Generate.trace_step) ->
          Buffer.add_string b
            (Printf.sprintf "trace %s |%s\n"
               (float_str s.Generate.impact)
               (String.concat ""
                  (List.map (Printf.sprintf " %d") s.Generate.detecting))))
        r.Generate.trace;
      Buffer.add_string b "end\n"
  end

let to_string results =
  let b = Buffer.create 4096 in
  Buffer.add_string b header_line;
  List.iter (add_result b) results;
  Buffer.contents b

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_float s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failf "bad float %S" s

let parse_int s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failf "bad int %S" s

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let split_bar line =
  match String.index_opt line '|' with
  | None -> failf "missing '|' separator in %S" line
  | Some i ->
      ( String.trim (String.sub line 0 i),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_vec s = Array.of_list (List.map parse_float (words s))

let parse_fault = function
  | [ "bridge"; a; b; r ] -> Faults.Fault.bridge a b ~resistance:(parse_float r)
  | [ "pinhole"; m; r ] -> Faults.Fault.pinhole m ~r_shunt:(parse_float r)
  | other -> failf "bad fault line: %s" (String.concat " " other)

type partial = {
  mutable p_fault : Faults.Fault.t option;
  mutable p_candidates : Generate.candidate list;
  mutable p_outcome : Generate.outcome option;
  mutable p_trace : Generate.trace_step list;
}

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> Error "empty session"
  | header :: rest -> begin
      match words header with
      | [ "atpg-session"; v ] when int_of_string_opt v = Some format_version
        -> begin
          try
            let results = ref [] in
            let current = ref None in
            let current_id = ref "" in
            let finish () =
              match !current with
              | None -> ()
              | Some p ->
                  let fault =
                    match p.p_fault with
                    | Some f -> f
                    | None -> failf "result %s: missing fault" !current_id
                  in
                  let outcome =
                    match p.p_outcome with
                    | Some o -> o
                    | None -> failf "result %s: missing outcome" !current_id
                  in
                  results :=
                    {
                      Generate.fault_id = !current_id;
                      dictionary_fault = fault;
                      candidates = List.rev p.p_candidates;
                      outcome;
                      trace = List.rev p.p_trace;
                    }
                    :: !results;
                  current := None
            in
            List.iter
              (fun line ->
                let line = String.trim line in
                if line = "" then ()
                else
                  match (words line, !current) with
                  | "result" :: id :: [], _ ->
                      finish ();
                      current_id := String.concat "" [ id ];
                      current :=
                        Some
                          {
                            p_fault = None;
                            p_candidates = [];
                            p_outcome = None;
                            p_trace = [];
                          }
                  | "fault" :: spec, Some p -> p.p_fault <- Some (parse_fault spec)
                  | "candidate" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; s; evals ] ->
                          p.p_candidates <-
                            {
                              Generate.cand_config_id = parse_int cid;
                              cand_params = parse_vec tail;
                              low_impact_sensitivity = parse_float s;
                              optimizer_evaluations = parse_int evals;
                            }
                            :: p.p_candidates
                      | _ -> failf "bad candidate line %S" line
                    end
                  | "unique" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; crit; s ] ->
                          p.p_outcome <-
                            Some
                              (Generate.Unique
                                 {
                                   config_id = parse_int cid;
                                   params = parse_vec tail;
                                   critical_impact = parse_float crit;
                                   dictionary_sensitivity = parse_float s;
                                 })
                      | _ -> failf "bad unique line %S" line
                    end
                  | "undetectable" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; cid; s; impact ] ->
                          p.p_outcome <-
                            Some
                              (Generate.Undetectable
                                 {
                                   most_sensitive_config = parse_int cid;
                                   params = parse_vec tail;
                                   best_sensitivity = parse_float s;
                                   strongest_impact = parse_float impact;
                                 })
                      | _ -> failf "bad undetectable line %S" line
                    end
                  | "trace" :: _, Some p -> begin
                      let head, tail = split_bar line in
                      match words head with
                      | [ _; impact ] ->
                          p.p_trace <-
                            {
                              Generate.impact = parse_float impact;
                              detecting = List.map parse_int (words tail);
                            }
                            :: p.p_trace
                      | _ -> failf "bad trace line %S" line
                    end
                  | [ "end" ], Some _ -> finish ()
                  | _, None -> failf "line outside a result block: %S" line
                  | other, Some _ ->
                      failf "unknown line: %S" (String.concat " " other))
              rest;
            finish ();
            Ok (List.rev !results)
          with Bad m | Invalid_argument m -> Error m
        end
      | [ "atpg-session"; v ] ->
          Error (Printf.sprintf "unsupported session version %s" v)
      | _ -> Error "not an atpg session file"
    end

let save ~path results =
  match open_out path with
  | exception Sys_error m -> Error m
  | oc ->
      output_string oc (to_string results);
      close_out oc;
      Ok ()

let read_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Ok text

let load ~path =
  match read_file path with Error m -> Error m | Ok text -> of_string text

(* -- incremental checkpointing ---------------------------------------- *)

(* Keep the header plus every complete result block: everything up to and
   including the last "end" line.  A checkpoint writer only appends whole
   blocks, so an interrupted run leaves at most one torn block at the
   tail — which this drops. *)
let truncate_to_complete text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> text
  | header :: rest ->
      let kept =
        let rec keep acc pending = function
          | [] -> List.rev acc
          | line :: tl ->
              if String.equal (String.trim line) "end" then
                keep (line :: (pending @ acc)) [] tl
              else keep acc (line :: pending) tl
        in
        keep [] [] rest
      in
      String.concat "\n" ((header :: kept) @ [ "" ])

let load_partial ~path =
  match read_file path with
  | Error m -> Error m
  | Ok text -> of_string (truncate_to_complete text)

type checkpoint = { ck_oc : out_channel }

let checkpoint_create ~path =
  match open_out path with
  | exception Sys_error m -> Error m
  | oc ->
      output_string oc header_line;
      flush oc;
      Ok { ck_oc = oc }

let checkpoint_resume ~path =
  if not (Sys.file_exists path) then
    match checkpoint_create ~path with
    | Error m -> Error m
    | Ok ck -> Ok (ck, [])
  else
    match read_file path with
    | Error m -> Error m
    | Ok text -> begin
        let salvaged = truncate_to_complete text in
        match of_string salvaged with
        | Error m -> Error m
        | Ok results -> begin
            (* rewrite the salvaged prefix so the file never carries the
               torn tail forward *)
            match open_out path with
            | exception Sys_error m -> Error m
            | oc ->
                output_string oc salvaged;
                flush oc;
                Ok ({ ck_oc = oc }, results)
          end
      end

let checkpoint_append ck r =
  let b = Buffer.create 1024 in
  add_result b r;
  output_string ck.ck_oc (Buffer.contents b);
  flush ck.ck_oc

let checkpoint_close ck = close_out ck.ck_oc
