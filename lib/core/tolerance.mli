(** Tolerance-box estimation ("box functions").

    A fault can only be detected when the faulty return value leaves the
    window that "safely boxes in expectable response values based on
    known variations on process parameters" plus "the accuracy
    specifications of test equipment" (paper §2.2).

    Following §3.3 ("for each test configuration a function is available
    estimating the tolerance box value(s) for any parameter value set"),
    the box is {e calibrated once} per configuration: the deviation of
    every process corner from the nominal response is measured on a
    lattice of parameter values, enveloped, inflated by a guardband, and
    afterwards interpolated multilinearly for arbitrary parameter values.
    The tester accuracy floor bounds the box from below. *)

type t

val calibrate :
  ?profile:Execute.profile ->
  ?grid:int ->
  ?guardband:float ->
  Test_config.t ->
  nominal:Execute.target ->
  corners:Execute.target list ->
  unit ->
  t
(** [grid] (default 3) is the number of lattice points per parameter
    axis; [guardband] (default 1.25) inflates the raw corner envelope.
    Corners that fail to simulate at some lattice point are skipped at
    that point (a corner so extreme it breaks the solver would be
    screened out at production test anyway).
    @raise Invalid_argument if [grid < 2], [guardband < 1] or [corners]
    is empty.
    @raise Execute.Execution_failure if the {e nominal} circuit fails. *)

val calibrate_monte_carlo :
  ?profile:Execute.profile ->
  ?grid:int ->
  ?guardband:float ->
  ?quantile:float ->
  Test_config.t ->
  nominal:Execute.target ->
  samples:Execute.target list ->
  unit ->
  t
(** Monte-Carlo variant of {!calibrate}: the per-lattice-point envelope is
    the [quantile] (default 100, i.e. the maximum) of the absolute
    deviations over the given process {e samples} instead of the corner
    maximum.  With a large sample count and a sub-100 quantile this trades
    a controlled overkill rate for a tighter box.
    @raise Invalid_argument on an empty sample list or a quantile outside
    (0, 100]. *)

val box : t -> Numerics.Vec.t -> float array
(** Tolerance-box half-widths (one per return value) at a parameter
    value set, clamped below by the configuration's accuracy floor.
    Values outside the lattice are clamped onto it. *)

val box_gradient : t -> Numerics.Vec.t -> float array * float array array
(** [box_gradient t values] is the box half-widths together with their
    parameter gradient: [(box, dbox)] with [dbox.(i).(d)] the partial of
    return value [i]'s half-width along parameter [d].  The box part is
    bit-identical to {!box}.  The multilinear surface's derivative is
    exact inside each lattice cell and zero where the surface is flat:
    outside the lattice hull (the clamp) and wherever the accuracy
    floor binds.  Consumed by the adjoint sensitivity chain — the cost
    function depends on parameters through the box as well as through
    the circuit response, so a gradient that ignored [dbox] would
    disagree with finite differences. *)

val config : t -> Test_config.t

val lattice_points : t -> Numerics.Vec.t list
(** The calibration lattice (diagnostics and tests). *)

val floor_only :
  Test_config.t -> t
(** A degenerate model whose box is just the tester accuracy floor —
    useful for unit tests and for idealized what-if studies. *)
