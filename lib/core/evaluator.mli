(** Bundled per-configuration evaluation context.

    An evaluator owns everything needed to answer "what is [S_f(T)] for
    this configuration?": the nominal target, the calibrated box model
    and an execution profile.  Nominal observables are memoized per
    parameter value set, which makes the impact-convergence loop (many
    impacts, same [T]) cheap. *)

type t

type mode = [ `Legacy | `Compiled ]
(** How measurements reach the simulator.  [`Compiled] (the default)
    caches one compiled execution plan per topology — the nominal
    netlist, and one per fault {e site} ({!Faults.Fault.id} excludes the
    impact resistance, which restamps as a value) — so each optimizer
    probe restamps a preallocated workspace instead of rewriting and
    re-indexing the netlist.  [`Legacy] rebuilds per probe; it exists as
    the reference implementation for parity tests and benchmarks.  Both
    modes produce bit-identical observables. *)

exception Budget_exhausted of { config_id : int; budget : int }
(** Raised by a faulty-circuit evaluation once the shared evaluation
    counter reaches the budget installed with {!set_budget} — the retry
    ladder's per-attempt cap.  Deliberately distinct from
    {!Execute.Execution_failure} so it is never mistaken for a detected
    fault. *)

val create :
  ?profile:Execute.profile ->
  ?mode:mode ->
  ?continuation:bool ->
  ?batching:bool ->
  ?backend:Circuit.Mna.backend ->
  Test_config.t ->
  nominal:Execute.target ->
  box_model:Tolerance.t ->
  t
(** [backend] (default [Dense]) selects the linear-algebra engine every
    compiled plan of this evaluator is built on; results are
    bit-identical across backends (see {!Circuit.Mna.backend}).

    [batching] (default [true]) admits this evaluator's cross-product
    sweeps into config-major batched evaluation
    ({!batched_fault_sensitivities}); disabling it forces every consumer
    onto the sequential per-(fault, point) path — the reference
    implementation batched results are bit-compared against.

    [continuation] (default [false]) opts impact-ladder probes
    ({!sensitivity} with [~continue:true]) on the compiled path into
    warm-start continuation: ladder probes of one fault site share an
    {!Execute.continuation} store, so the impact ladder's solves seed
    Newton from the previous level and may take rank-1 first steps (see
    {!Circuit.Dc.solve}).  Optimizer probes and nominal observables are
    never continued, and each fault's store is private to that fault, so
    results stay a pure function of the fault — identical across
    [--jobs N] — but are tolerance-identical rather than bit-identical
    to a non-continuation run. *)

val with_profile : t -> Execute.profile -> t
(** A derived evaluator with a different execution profile (used by the
    resilience retry ladder).  Configuration, target, box model, the
    evaluation counter and the budget cell are shared with the parent;
    the nominal-observable cache is fresh (cached values depend on the
    profile).  Compiled plans are shared — they capture topology, not
    profile, and the retry ladder runs sequentially in one domain. *)

val fork : t -> t
(** A worker-private copy for parallel execution: shares the immutable
    configuration, target, box model and profile, but owns a private
    nominal-observable cache (warm-started from the parent's entries)
    and zeroed evaluation/budget/cache counters, so domains never touch
    shared mutable state.  The compiled-plan cache starts empty: plans
    own mutable solver workspaces and must never cross domains.
    Determinism is unaffected: cache keys are exact and cached values
    deterministic, so a cold and a warm cache produce bit-identical
    results. *)

val absorb : into:t -> t -> unit
(** [absorb ~into:parent child] merges a fork back: counters are summed
    and cache entries unioned.  Both operations commute, so the merged
    statistics are independent of worker scheduling and of the order
    forks are absorbed in — the deterministic merge of per-domain cache
    statistics.  A no-op when [parent == child]. *)

val config : t -> Test_config.t
val config_id : t -> int
val nominal_target : t -> Execute.target
val profile : t -> Execute.profile
val mode : t -> mode

val continuation_enabled : t -> bool
(** Whether {!create} enabled warm-start continuation. *)

val batching_enabled : t -> bool
(** Whether {!create} admitted config-major batched evaluation. *)

val set_budget : t -> int option -> unit
(** Install (or clear, with [None]) an absolute evaluation-count budget:
    once {!evaluation_count} reaches it, the next faulty evaluation
    raises {!Budget_exhausted}.  Shared with evaluators derived via
    {!with_profile}. *)

val nominal_observables : t -> Numerics.Vec.t -> float array
(** Memoized nominal measurement at the given parameter values. *)

val box : t -> Numerics.Vec.t -> float array

val detected_sentinel : float
(** Sensitivity assigned when the faulty circuit cannot be simulated at
    all (-1e6): a macro whose faulty version does not even reach an
    operating point is trivially caught on the tester. *)

val sensitivity :
  ?continue:bool -> t -> Faults.Fault.t -> Numerics.Vec.t -> float
(** [S_f(T)]: injects the fault into the nominal netlist, measures, and
    scores against the memoized nominal response and the box model.
    Returns {!detected_sentinel} if the faulty simulation fails.

    [continue] (default [false]) marks this probe as part of the fault's
    impact ladder: on an evaluator created with [~continuation:true] it
    warm-starts the solves from the previous ladder level.  Leave it off
    for probes that vary the parameter values (the optimizer), which
    must stay bit-identical to a non-continuation run — continuation is
    a homotopy in the impact, not in [T].
    @raise Execute.Execution_failure if the {e nominal} simulation fails
    (a setup error, not a fault effect). *)

val sensitivity_and_deviation :
  ?continue:bool ->
  t ->
  Faults.Fault.t ->
  Numerics.Vec.t ->
  float * float array
(** Sensitivity together with the per-return-value deviations (reports).
    The deviation array is empty when the faulty simulation failed. *)

val sensitivity_gradient :
  t -> Faults.Fault.t -> Numerics.Vec.t -> (float * float array) option
(** [Some (S_f(T), dS/dp)] by the adjoint chain — one faulty solve plus
    one transpose solve per operating point instead of one solve per
    parameter — when the configuration admits the analytic gradient
    (compiled mode, [Dc_levels] analysis); [None] tells the caller to
    fall back to finite-difference probing, at no evaluation cost.  The
    value part is bit-identical to {!sensitivity} at the same point:
    same solver trajectories, same box arithmetic.  A successful call
    charges exactly one evaluation, like one oracle probe; nominal
    responses and their gradients are memoized per parameter point.  If
    the faulty simulation fails, returns {!detected_sentinel} with a
    zero gradient (trivially detected, and flat — a descent stops
    there).
    @raise Execute.Execution_failure if the {e nominal} simulation
    fails. *)

val faulty_observables :
  ?continue:bool -> t -> Faults.Fault.t -> Numerics.Vec.t -> float array
(** Raw faulty measurement (no memoization).  [continue] as in
    {!sensitivity}.
    @raise Execute.Execution_failure on simulator failure. *)

val batched_sensitivities :
  t ->
  faults:Faults.Fault.t list ->
  Numerics.Vec.t ->
  (float * float array) array option
(** Batched sensitivities-and-deviations for faults sharing one site
    (one {!Faults.Fault.id}, hence one compiled topology and stamp
    pattern): the whole group is swept through
    {!Execute.compiled_dc_levels_batch} — per fault one restamp and one
    pattern-reuse refactorization, all probe levels solved in one
    blocked triangular sweep on the sparse backend.  Each fault still
    charges one evaluation.  [None] sends the caller to the sequential
    per-fault path: legacy mode, an empty or mixed-site group, or a
    plan outside the batchable (linear, DC-levels) family; results are
    then taken fault by fault via {!sensitivity_and_deviation}, which
    this path matches to solver tolerance.
    @raise Execute.Execution_failure if the nominal simulation fails. *)

val batched_fault_sensitivities :
  t ->
  faults:Faults.Fault.t array ->
  points:Numerics.Vec.t array ->
  (float * float array) array array option
(** Config-major batched evaluation of the full (fault x parameter
    point) cross-product: faults are grouped by site (one compiled
    topology per {!Faults.Fault.id}), each fault pays one restamp and
    one factorization — a numeric-only pattern replay on the sparse
    backend — and every probe level of every point solves against that
    held factorization in blocked panels
    ({!Execute.compiled_batch_over_faults}).

    [Some cells] has [cells.(f).(p)] {e bitwise identical} to
    [sensitivity_and_deviation t faults.(f) points.(p)] on the
    sequential path, with identical nominal-cache accounting and exactly
    one evaluation charged per pair in (fault-major) deterministic
    order; pairs the batch engine could not settle are recomputed by the
    verbatim sequential call (counted under
    [evaluator.batch.fallback_seq]).

    [None] — caller keeps its sequential loop — when batching is
    disabled, the evaluator is in legacy or continuation mode, the plan
    family is non-batchable (nonlinear topology or a non-DC-levels
    analysis), or failure injection is active (batching would reorder
    the injection draws).
    @raise Execute.Execution_failure if the nominal simulation fails.
    @raise Budget_exhausted as the sequential walk would. *)

val batched_sensitivity : t -> Faults.Fault.t -> Numerics.Vec.t -> float
(** The single-pair degenerate case of {!batched_fault_sensitivities},
    falling back to {!sensitivity} when not batchable — bit-identical to
    {!sensitivity} either way. *)

val sensitivity_of_target : t -> Execute.target -> Numerics.Vec.t -> float
(** Score an arbitrary target (e.g. a fault-free circuit at a Monte-Carlo
    process point) against this evaluator's nominal response and box —
    the production pass/fail decision: negative means the part fails the
    test.  Returns {!detected_sentinel} if the target cannot be
    simulated. *)

val evaluation_count : t -> int
(** Number of faulty-circuit simulations performed so far. *)

type cache_stats = { hits : int; misses : int; entries : int }

val cache_stats : t -> cache_stats
(** Nominal-observable cache statistics (memoization hits/misses and
    live entries) — summed across absorbed forks by {!absorb}. *)

type batch_stats = { faults_batched : int; fallback_seq : int; panels : int }

val batch_stats : unit -> batch_stats
(** Process-wide config-major batching statistics: (fault, point) pairs
    settled by the batch engine, pairs that fell back to the sequential
    path (declined batches included), and held-factorization panels
    actually built.  Backed by the registered [evaluator.batch.*]
    counters, maintained whether or not tracing is active. *)
