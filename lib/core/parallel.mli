(** Multicore fault simulation: a [Domain]-based worker pool whose
    output is bit-for-bit identical to the sequential engine's.

    Worker domains pull task indices from an atomic work queue (cheap
    faults don't stall behind expensive ones) and deposit outcomes into
    a slot array; the calling thread collects slots {e in index order}
    and feeds them to the engine's single-writer funnel.  Combined with
    the engine's worker-private evaluator forks, the deterministic
    fork/absorb cache merge and per-fault failure-injection scopes, a
    run at any [--jobs] value produces the same {!Engine.run} record —
    same fault ordering, same [rung_stats], same {!Session} checkpoint
    bytes — so sessions checkpoint and resume interchangeably across job
    counts.

    Error determinism: if several tasks raise, the exception from the
    lowest task index propagates; a fail-fast {!Engine.Fault_failure}
    raised by the funnel cancels outstanding work and propagates after
    every domain is joined.  Either way no domain is leaked. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val fan_out :
  jobs:int ->
  make_ctx:(unit -> 'ctx) ->
  f:('ctx -> int -> 'a) ->
  emit:(int -> 'a -> unit) ->
  int ->
  unit
(** [fan_out ~jobs ~make_ctx ~f ~emit n] evaluates [f ctx i] for every
    [i] in [0 .. n-1] on a pool of [jobs] domains (each with its own
    [make_ctx ()] context) and calls [emit i result] for increasing [i]
    from the calling thread.  With [jobs <= 1] (or [n <= 1] worth of
    work) it degenerates to a plain in-order loop with no domains
    spawned.  [f] must not depend on shared mutable state; [emit] runs
    only on the calling thread and may raise to abort the fan-out. *)

val map_ordered : jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map_ordered ~jobs f l] is [List.mapi f l] computed on [jobs]
    domains, order preserved. *)

val executor : jobs:int -> Engine.executor
(** An {!Engine.executor} running per-fault tasks on [jobs] domains.
    [executor ~jobs:1] is behaviourally identical to
    {!Engine.sequential}. *)
