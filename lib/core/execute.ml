open Circuit

type target = {
  netlist : Netlist.t;
  stimulus_source : string;
  observe_node : string;
}

type profile = {
  samples_per_period : int;
  settle_periods : int;
  analyze_periods : int;
  thd_harmonics : int;
  dc_options : Dc.options;
  dt_divisor : int;
}

let default_profile =
  {
    samples_per_period = 128;
    settle_periods = 2;
    analyze_periods = 2;
    thd_harmonics = 5;
    dc_options = Dc.default_options;
    dt_divisor = 1;
  }

let fast_profile =
  {
    samples_per_period = 64;
    settle_periods = 1;
    analyze_periods = 1;
    thd_harmonics = 5;
    dc_options = Dc.default_options;
    dt_divisor = 1;
  }

exception Execution_failure of string

let with_stimulus nl ~source wave =
  match Netlist.find nl source with
  | None ->
      invalid_arg
        (Printf.sprintf "Execute.with_stimulus: no device %S" source)
  | Some (Device.Isource i) ->
      Netlist.replace nl source [ Device.Isource { i with wave } ]
  | Some (Device.Vsource v) ->
      Netlist.replace nl source [ Device.Vsource { v with wave } ]
  | Some
      ( Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
      | Device.Vcvs _ | Device.Vccs _ | Device.Mosfet _ ) ->
      invalid_arg
        (Printf.sprintf
           "Execute.with_stimulus: %S is not an independent source" source)

let check_values config values =
  if Numerics.Vec.dim values <> Test_config.n_params config then
    invalid_arg "Execute: parameter value count mismatch"

let dc_voltage ~options nl ~observe =
  let sys = Mna.build nl in
  match Dc.solve ~options sys ~time:`Dc with
  | report -> Mna.voltage sys report.Dc.solution observe
  | exception Dc.No_convergence msg -> raise (Execution_failure msg)

(* Integrate with the step subdivided by [dt_divisor] (a retry-ladder
   escalation: a stiffer faulty circuit often converges with a finer
   step), then decimate back onto the requested sample grid so callers
   always see the same observable length and timing. *)
let transient ~options ~dt_divisor nl ~observe ~tstop ~dt =
  let sys = Mna.build nl in
  let k = Int.max 1 dt_divisor in
  let dt_fine = dt /. float_of_int k in
  match Tran.simulate ~options sys ~tstop ~dt:dt_fine ~observe:[ observe ] with
  | result ->
      let fine = Tran.probe_values result observe in
      if k = 1 then fine
      else begin
        let n_coarse = Int.max 1 (int_of_float (Float.round (tstop /. dt))) in
        Array.init (n_coarse + 1) (fun i ->
            fine.(Int.min (i * k) (Array.length fine - 1)))
      end
  | exception Tran.Step_failure { time; reason } ->
      raise
        (Execution_failure
           (Printf.sprintf "transient step failed at t=%g: %s" time reason))
  | exception Dc.No_convergence msg -> raise (Execution_failure msg)

let observables ?(profile = default_profile) config target values =
  check_values config values;
  if Numerics.Failpoint.should_fail "execute.observables" then
    raise (Execution_failure "injected failure at execute.observables");
  let options = profile.dc_options in
  let dt_divisor = profile.dt_divisor in
  match config.Test_config.analysis with
  | Test_config.Dc_levels waves ->
      waves values
      |> List.map (fun w ->
             let nl =
               with_stimulus target.netlist ~source:target.stimulus_source w
             in
             dc_voltage ~options nl ~observe:target.observe_node)
      |> Array.of_list
  | Test_config.Tran_thd { stimulus; fundamental } ->
      let f0 = fundamental values in
      if f0 <= 0. then raise (Execution_failure "THD: non-positive fundamental");
      let spp = profile.samples_per_period in
      let dt = 1. /. (f0 *. float_of_int spp) in
      let total = profile.settle_periods + profile.analyze_periods in
      let tstop = float_of_int total /. f0 in
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source
          (stimulus values)
      in
      let samples =
        transient ~options ~dt_divisor nl ~observe:target.observe_node ~tstop ~dt
      in
      let keep = spp * profile.analyze_periods in
      let seg = Array.sub samples (Array.length samples - keep) keep in
      let thd =
        Sigproc.Thd.thd_percent ~harmonics:profile.thd_harmonics ~samples:seg
          ~sample_rate:(1. /. dt) ~fundamental_hz:f0 ()
      in
      [| thd |]
  | Test_config.Tran_samples { stimulus; sample_rate; test_time } ->
      let dt = 1. /. sample_rate in
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source
          (stimulus values)
      in
      transient ~options ~dt_divisor nl ~observe:target.observe_node ~tstop:test_time ~dt
  | Test_config.Tran_imd { stimulus; base_freq; k1; k2 } ->
      let f0 = base_freq values in
      if f0 <= 0. then raise (Execution_failure "IMD: non-positive base frequency");
      let spp = profile.samples_per_period in
      (* sampling is locked to the base period; the highest product
         2 k2 - k1 must stay below Nyquist *)
      if (2 * k2) - k1 >= spp / 2 then
        raise (Execution_failure "IMD: products above Nyquist for this profile");
      let dt = 1. /. (f0 *. float_of_int spp) in
      let total = profile.settle_periods + profile.analyze_periods in
      let tstop = float_of_int total /. f0 in
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source
          (stimulus values)
      in
      let samples =
        transient ~options ~dt_divisor nl ~observe:target.observe_node ~tstop ~dt
      in
      let keep = spp * profile.analyze_periods in
      let seg = Array.sub samples (Array.length samples - keep) keep in
      let imd3 =
        Sigproc.Imd.imd3_percent ~samples:seg ~sample_rate:(1. /. dt)
          ~base_freq:f0 ~k1 ~k2 ()
      in
      [| imd3 |]
  | Test_config.Noise_psd { bias; freq } ->
      let f = freq values in
      if f <= 0. then raise (Execution_failure "noise: non-positive frequency");
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source
          (bias values)
      in
      let sys = Mna.build nl in
      let op =
        match Dc.solve ~options sys ~time:`Dc with
        | report -> report.Dc.solution
        | exception Dc.No_convergence msg -> raise (Execution_failure msg)
      in
      (match
         Noise.output_noise sys ~op ~observe:target.observe_node
           ~freqs:[| f |]
       with
      | [ point ] -> [| 1e9 *. sqrt point.Noise.total_psd |]
      | _ -> raise (Execution_failure "noise: unexpected result")
      | exception Not_found ->
          raise (Execution_failure "noise: unknown observation node")
      | exception Numerics.Cmat.Singular _ ->
          raise (Execution_failure "noise: singular small-signal system"))
  | Test_config.Ac_gain { bias; freq } ->
      let f = freq values in
      if f <= 0. then raise (Execution_failure "AC: non-positive frequency");
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source
          (bias values)
      in
      let sys = Mna.build nl in
      let op =
        match Dc.solve ~options sys ~time:`Dc with
        | report -> report.Dc.solution
        | exception Dc.No_convergence msg -> raise (Execution_failure msg)
      in
      (match
         Ac.sweep sys ~op ~source:target.stimulus_source ~freqs:[| f |]
           ~observe:target.observe_node
       with
      | [ point ] ->
          [| Ac.gain_db point.Ac.value; Ac.phase_deg point.Ac.value |]
      | _ -> raise (Execution_failure "AC: unexpected sweep result")
      | exception Numerics.Cmat.Singular _ ->
          raise (Execution_failure "AC: singular small-signal system"))

let deviations config ~nominal ~faulty =
  if Array.length nominal <> Array.length faulty then
    invalid_arg "Execute.deviations: observable length mismatch";
  match config.Test_config.returns with
  | Test_config.Per_component ->
      Array.init (Array.length faulty) (fun i -> faulty.(i) -. nominal.(i))
  | Test_config.Max_abs_delta ->
      [| Sigproc.Metrics.max_abs_delta faulty nominal |]
  | Test_config.Sum_abs_delta ->
      [|
        Float.abs
          (Sigproc.Metrics.accumulate faulty
          -. Sigproc.Metrics.accumulate nominal);
      |]

let return_values config ~nominal ~observed =
  match config.Test_config.returns with
  | Test_config.Per_component -> Array.copy observed
  | Test_config.Max_abs_delta | Test_config.Sum_abs_delta ->
      deviations config ~nominal ~faulty:observed
