open Circuit

type target = {
  netlist : Netlist.t;
  stimulus_source : string;
  observe_node : string;
}

type profile = {
  samples_per_period : int;
  settle_periods : int;
  analyze_periods : int;
  thd_harmonics : int;
  dc_options : Dc.options;
  dt_divisor : int;
}

let default_profile =
  {
    samples_per_period = 128;
    settle_periods = 2;
    analyze_periods = 2;
    thd_harmonics = 5;
    dc_options = Dc.default_options;
    dt_divisor = 1;
  }

let fast_profile =
  {
    samples_per_period = 64;
    settle_periods = 1;
    analyze_periods = 1;
    thd_harmonics = 5;
    dc_options = Dc.default_options;
    dt_divisor = 1;
  }

exception Execution_failure of string

let with_stimulus nl ~source wave =
  match Netlist.find nl source with
  | None ->
      invalid_arg
        (Printf.sprintf "Execute.with_stimulus: no device %S" source)
  | Some (Device.Isource i) ->
      Netlist.replace nl source [ Device.Isource { i with wave } ]
  | Some (Device.Vsource v) ->
      Netlist.replace nl source [ Device.Vsource { v with wave } ]
  | Some
      ( Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
      | Device.Vcvs _ | Device.Vccs _ | Device.Mosfet _ ) ->
      invalid_arg
        (Printf.sprintf
           "Execute.with_stimulus: %S is not an independent source" source)

let check_values config values =
  if Numerics.Vec.dim values <> Test_config.n_params config then
    invalid_arg "Execute: parameter value count mismatch"

(* ------------------------------------------------------------------ *)
(* Compiled plans: the compile-once / restamp-many hot path             *)
(* ------------------------------------------------------------------ *)

(* Replacing a device in a netlist moves it to the end of the device
   list, which shifts its unknown index — so the per-probe legacy path
   ([with_stimulus] then [Mna.build]) always sees the stimulus source
   last.  A compiled plan must index the same topology, so compilation
   normalizes the netlist by replacing the stimulus with its own current
   wave: same devices, same order, same unknown numbering as every probe
   of the legacy path. *)
let normalize_stimulus nl ~source =
  match Netlist.find nl source with
  | Some (Device.Isource { wave; _ }) | Some (Device.Vsource { wave; _ }) ->
      with_stimulus nl ~source wave
  | Some _ | None ->
      (* not an independent source / missing: raise with_stimulus's
         canonical error *)
      with_stimulus nl ~source (Waveform.Dc 0.)

type compiled = {
  c_config : Test_config.t;
  c_target : target;
  c_plan : Mna.t;
  c_ws : Mna.workspace;
  c_ac : Ac.workspace option;
}

let compile ?backend config target =
  let nl = normalize_stimulus target.netlist ~source:target.stimulus_source in
  let plan = Mna.build ?backend nl in
  let c_ac =
    match config.Test_config.analysis with
    | Test_config.Noise_psd _ | Test_config.Ac_gain _ ->
        Some (Ac.workspace plan)
    | Test_config.Dc_levels _ | Test_config.Tran_thd _
    | Test_config.Tran_samples _ | Test_config.Tran_imd _ -> None
  in
  {
    c_config = config;
    c_target = target;
    c_plan = plan;
    c_ws = Mna.workspace plan;
    c_ac;
  }

let compiled_target c = c.c_target
let compiled_config c = c.c_config

(* Per-(fault, configuration) continuation store for the impact ladder:
   one {!Dc.continuation} per DC solve site of a probe, allocated lazily
   in probe order.  The cursor resets at every [compiled_observables]
   call, so the k-th DC solve of one probe always continues from the
   k-th DC solve of the previous probe of the same store — the homotopy
   pairing the impact walk needs.  A store belongs to one compiled plan
   and one domain, like the plan's workspace. *)
type continuation = {
  mutable ct_slots : Dc.continuation option array;
  mutable ct_cursor : int;
}

let continuation () = { ct_slots = Array.make 4 None; ct_cursor = 0 }

let continuation_slot ct sys =
  let n = Array.length ct.ct_slots in
  if ct.ct_cursor >= n then begin
    let bigger = Array.make (2 * n) None in
    Array.blit ct.ct_slots 0 bigger 0 n;
    ct.ct_slots <- bigger
  end;
  let slot =
    match ct.ct_slots.(ct.ct_cursor) with
    | Some s -> s
    | None ->
        let s = Dc.continuation sys in
        ct.ct_slots.(ct.ct_cursor) <- Some s;
        s
  in
  ct.ct_cursor <- ct.ct_cursor + 1;
  slot

(* How an analysis obtains a simulatable system for one probe wave:
   the legacy path rewrites the netlist and re-indexes it per probe; the
   compiled path restamps the precompiled plan's workspace. *)
type engine =
  | Direct of target
  | Restamp of {
      c : compiled;
      impact : (string * float) option;
      cont : continuation option;
    }

let engine_target = function Direct t -> t | Restamp { c; _ } -> c.c_target

type inst = {
  i_sys : Mna.t;
  i_ws : Mna.workspace option;
  i_restamp : Mna.restamp option;
  i_ac : Ac.workspace option;
  i_cont : Dc.continuation option;
}

let instantiate engine wave =
  match engine with
  | Direct target ->
      let nl =
        with_stimulus target.netlist ~source:target.stimulus_source wave
      in
      {
        i_sys = Mna.build nl;
        i_ws = None;
        i_restamp = None;
        i_ac = None;
        i_cont = None;
      }
  | Restamp { c; impact; cont } ->
      let source = c.c_target.stimulus_source in
      (* the legacy path validates each probe wave when it is inserted
         into the netlist; keep the same rejection (and message shape) *)
      (match Waveform.validate wave with
      | Ok () -> ()
      | Error e ->
          invalid_arg (Printf.sprintf "Netlist.add: %s: %s" source e));
      {
        i_sys = c.c_plan;
        i_ws = Some c.c_ws;
        i_restamp = Some { Mna.stimulus = Some (source, wave); impact };
        i_ac = c.c_ac;
        i_cont =
          (match cont with
          | Some ct -> Some (continuation_slot ct c.c_plan)
          | None -> None);
      }

(* The one operating-point helper shared by the DC, noise and AC arms:
   solve at the DC time point and map non-convergence to the uniform
   execution failure. *)
let operating_point ~options inst =
  match
    Dc.solve ~options ?workspace:inst.i_ws ?restamp:inst.i_restamp
      ?continuation:inst.i_cont inst.i_sys ~time:`Dc
  with
  | report -> report.Dc.solution
  | exception Dc.No_convergence msg -> raise (Execution_failure msg)

(* Integrate with the step subdivided by [dt_divisor] (a retry-ladder
   escalation: a stiffer faulty circuit often converges with a finer
   step), then decimate back onto the requested sample grid so callers
   always see the same observable length and timing. *)
let transient ~options ~dt_divisor inst ~observe ~tstop ~dt =
  let k = Int.max 1 dt_divisor in
  let dt_fine = dt /. float_of_int k in
  match
    Tran.simulate ~options ?workspace:inst.i_ws ?restamp:inst.i_restamp
      ?continuation:inst.i_cont inst.i_sys ~tstop ~dt:dt_fine
      ~observe:[ observe ]
  with
  | result ->
      let fine = Tran.probe_values result observe in
      if k = 1 then fine
      else begin
        let n_coarse = Int.max 1 (int_of_float (Float.round (tstop /. dt))) in
        Array.init (n_coarse + 1) (fun i ->
            fine.(Int.min (i * k) (Array.length fine - 1)))
      end
  | exception Tran.Step_failure { time; reason } ->
      raise
        (Execution_failure
           (Printf.sprintf "transient step failed at t=%g: %s" time reason))
  | exception Dc.No_convergence msg -> raise (Execution_failure msg)

let observables_body engine ~profile config values =
  check_values config values;
  if Numerics.Failpoint.should_fail "execute.observables" then
    raise (Execution_failure "injected failure at execute.observables");
  let options = profile.dc_options in
  let dt_divisor = profile.dt_divisor in
  let target = engine_target engine in
  let observe = target.observe_node in
  match config.Test_config.analysis with
  | Test_config.Dc_levels waves ->
      waves values
      |> List.map (fun w ->
             let inst = instantiate engine w in
             Mna.voltage inst.i_sys (operating_point ~options inst) observe)
      |> Array.of_list
  | Test_config.Tran_thd { stimulus; fundamental } ->
      let f0 = fundamental values in
      if f0 <= 0. then raise (Execution_failure "THD: non-positive fundamental");
      let spp = profile.samples_per_period in
      let dt = 1. /. (f0 *. float_of_int spp) in
      let total = profile.settle_periods + profile.analyze_periods in
      let tstop = float_of_int total /. f0 in
      let inst = instantiate engine (stimulus values) in
      let samples = transient ~options ~dt_divisor inst ~observe ~tstop ~dt in
      let keep = spp * profile.analyze_periods in
      let seg = Array.sub samples (Array.length samples - keep) keep in
      let thd =
        Sigproc.Thd.thd_percent ~harmonics:profile.thd_harmonics ~samples:seg
          ~sample_rate:(1. /. dt) ~fundamental_hz:f0 ()
      in
      [| thd |]
  | Test_config.Tran_samples { stimulus; sample_rate; test_time } ->
      let dt = 1. /. sample_rate in
      let inst = instantiate engine (stimulus values) in
      transient ~options ~dt_divisor inst ~observe ~tstop:test_time ~dt
  | Test_config.Tran_imd { stimulus; base_freq; k1; k2 } ->
      let f0 = base_freq values in
      if f0 <= 0. then raise (Execution_failure "IMD: non-positive base frequency");
      let spp = profile.samples_per_period in
      (* sampling is locked to the base period; the highest product
         2 k2 - k1 must stay below Nyquist *)
      if (2 * k2) - k1 >= spp / 2 then
        raise (Execution_failure "IMD: products above Nyquist for this profile");
      let dt = 1. /. (f0 *. float_of_int spp) in
      let total = profile.settle_periods + profile.analyze_periods in
      let tstop = float_of_int total /. f0 in
      let inst = instantiate engine (stimulus values) in
      let samples = transient ~options ~dt_divisor inst ~observe ~tstop ~dt in
      let keep = spp * profile.analyze_periods in
      let seg = Array.sub samples (Array.length samples - keep) keep in
      let imd3 =
        Sigproc.Imd.imd3_percent ~samples:seg ~sample_rate:(1. /. dt)
          ~base_freq:f0 ~k1 ~k2 ()
      in
      [| imd3 |]
  | Test_config.Noise_psd { bias; freq } ->
      let f = freq values in
      if f <= 0. then raise (Execution_failure "noise: non-positive frequency");
      let inst = instantiate engine (bias values) in
      let op = operating_point ~options inst in
      (match
         Noise.output_noise ?workspace:inst.i_ac ?restamp:inst.i_restamp
           inst.i_sys ~op ~observe ~freqs:[| f |]
       with
      | [ point ] -> [| 1e9 *. sqrt point.Noise.total_psd |]
      | _ -> raise (Execution_failure "noise: unexpected result")
      | exception Not_found ->
          raise (Execution_failure "noise: unknown observation node")
      | exception Numerics.Cmat.Singular _ ->
          raise (Execution_failure "noise: singular small-signal system"))
  | Test_config.Ac_gain { bias; freq } ->
      let f = freq values in
      if f <= 0. then raise (Execution_failure "AC: non-positive frequency");
      let inst = instantiate engine (bias values) in
      let op = operating_point ~options inst in
      (match
         Ac.sweep ?workspace:inst.i_ac ?restamp:inst.i_restamp inst.i_sys ~op
           ~source:target.stimulus_source ~freqs:[| f |] ~observe
       with
      | [ point ] ->
          [| Ac.gain_db point.Ac.value; Ac.phase_deg point.Ac.value |]
      | _ -> raise (Execution_failure "AC: unexpected sweep result")
      | exception Numerics.Cmat.Singular _ ->
          raise (Execution_failure "AC: singular small-signal system"))

(* The span closure is only built when tracing is active, so the
   disabled path is a direct call with no extra allocation. *)
let observables_of engine ~profile config values =
  if not (Obs.active ()) then observables_body engine ~profile config values
  else
    Obs.Span.timed ~key:(string_of_int config.Test_config.config_id)
      "execute.solve" (fun () -> observables_body engine ~profile config values)

let observables ?(profile = default_profile) config target values =
  observables_of (Direct target) ~profile config values

let compiled_observables ?(profile = default_profile) ?impact ?continuation c
    values =
  (match continuation with
  | Some ct -> ct.ct_cursor <- 0
  | None -> ());
  observables_of
    (Restamp { c; impact; cont = continuation })
    ~profile c.c_config values

(* ------------------------------------------------------------------ *)
(* Batched multi-fault solves: one pattern, many impacts, blocked RHS   *)
(* ------------------------------------------------------------------ *)

(* Faults at one site share the compiled plan's stamp pattern and differ
   only in the impact resistance, so a sweep over them is the ideal
   batching shape: per impact the system matrix is restamped and
   refactored once — a numeric-only pattern replay on the sparse
   backend — and, because a linear plan's matrix does not depend on the
   stimulus level, all of a DC-levels analysis' probe levels then solve
   against that single factorization in one blocked triangular sweep.
   Valid for linear plans only (no MOSFETs): there the assembled system
   is exact, one solve IS the operating point, and each blocked column's
   floats are identical to a sequential [solve_into] of that column. *)
let compiled_dc_levels_batch ?(profile = default_profile) c ~impacts values =
  check_values c.c_config values;
  match c.c_config.Test_config.analysis with
  | Test_config.Tran_thd _ | Test_config.Tran_samples _ | Test_config.Tran_imd _
  | Test_config.Noise_psd _ | Test_config.Ac_gain _ ->
      None
  | Test_config.Dc_levels waves ->
      let nonlinear =
        List.exists
          (function Device.Mosfet _ -> true | _ -> false)
          (Netlist.devices (Mna.netlist c.c_plan))
      in
      if nonlinear then None
      else begin
        let target = c.c_target in
        let source = target.stimulus_source in
        let ws = c.c_ws in
        let waves = Array.of_list (waves values) in
        let m = Array.length waves in
        let n = Mna.size c.c_plan in
        let gmin = profile.dc_options.Dc.gmin in
        let x0 = Numerics.Vec.create n 0. in
        let obs_row = Mna.node_index c.c_plan target.observe_node in
        Array.iter
          (fun w ->
            match Waveform.validate w with
            | Ok () -> ()
            | Error e ->
                invalid_arg (Printf.sprintf "Netlist.add: %s: %s" source e))
          waves;
        let n_impacts = Array.length impacts in
        let out = Array.make_matrix n_impacts m 0. in
        let factor_or_fail () =
          match Mna.ws_factor ws with
          | (_ : bool) -> ()
          | exception Numerics.Mat.Singular _ ->
              raise (Execution_failure "batched DC levels: singular system")
        in
        (match Mna.ws_sparse_lu ws with
        | Some slu ->
            let b =
              Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m
            in
            let xb =
              Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m
            in
            Array.iteri
              (fun fi impact ->
                for r = 0 to m - 1 do
                  Mna.assemble_into c.c_plan ws ~x:x0 ~time:`Dc
                    ~restamp:{ Mna.stimulus = Some (source, waves.(r)); impact }
                    ~gmin ();
                  for i = 0 to n - 1 do
                    b.{i, r} <- ws.Mna.w_z.(i)
                  done
                done;
                factor_or_fail ();
                Numerics.Smat.solve_block slu ~b ~x:xb;
                (match obs_row with
                | Some row ->
                    for r = 0 to m - 1 do
                      out.(fi).(r) <- xb.{row, r}
                    done
                | None -> ()))
              impacts
        | None ->
            (* dense fallback: still one factorization per impact, levels
               solved sequentially against it *)
            let zs = Array.init m (fun _ -> Numerics.Vec.create n 0.) in
            let x = Numerics.Vec.create n 0. in
            Array.iteri
              (fun fi impact ->
                for r = 0 to m - 1 do
                  Mna.assemble_into c.c_plan ws ~x:x0 ~time:`Dc
                    ~restamp:{ Mna.stimulus = Some (source, waves.(r)); impact }
                    ~gmin ();
                  Array.blit ws.Mna.w_z 0 zs.(r) 0 n
                done;
                factor_or_fail ();
                (match obs_row with
                | Some row ->
                    for r = 0 to m - 1 do
                      Mna.ws_solve_into ws zs.(r) x;
                      out.(fi).(r) <- x.(row)
                    done
                | None -> ()))
              impacts);
        Some out
      end

(* ------------------------------------------------------------------ *)
(* Config-major fault batching: one factorization per fault, the whole  *)
(* (point x level) probe cross-product solved against it                *)
(* ------------------------------------------------------------------ *)

type fault_batch = {
  fb_obs : float array option array array;
  fb_panels : int;
}

(* Exact replay of [Dc.newton_ws]'s damped-update walk for a linear
   plan.  The assembled system of a linear (MOSFET-free) topology does
   not depend on the Newton iterate, so every iteration's raw solve
   produces the same vector [s] and the sequential trajectory is a pure
   damping walk toward it: [x <- x + alpha * (s - x)] with [alpha]
   bounded by the node-voltage limit.  Replaying that walk term for term
   — the same [Float.max] reduction for the step bound, the same update
   form (kept even at [alpha = 1.], where it is not a bitwise no-op),
   the same node-only convergence test on the damped iterate —
   reproduces the converged solution bit for bit without touching the
   factorization again.  Returns the buffer holding the converged
   iterate, or [None] when the walk does not converge inside the Newton
   budget (the sequential path then enters its gmin/source stepping
   ladders, which the caller must replay verbatim, fault by fault). *)
let replay_damped ~options ~n_nodes ~s xa xb =
  let size = Array.length s in
  let finite = ref true in
  for i = 0 to n_nodes - 1 do
    if not (Float.is_finite s.(i)) then finite := false
  done;
  if not !finite then None
  else begin
    let vlimit = options.Dc.vlimit in
    let abstol = options.Dc.abstol and reltol = options.Dc.reltol in
    Array.fill xa 0 size 0.;
    let cur = ref xa and nxt = ref xb in
    let converged = ref false in
    let iters = ref 0 in
    while (not !converged) && !iters < options.Dc.max_newton do
      incr iters;
      let x = !cur and x_new = !nxt in
      (* The sequential walk blits [s] into [x_new] and then reduces,
         updates and tests over it in separate passes; here the blit is
         folded away ([x_new.(i)] {e is} [s.(i)] at that point) and the
         update and convergence passes fused — every arithmetic
         expression below is term-for-term the sequential one, so the
         trajectory stays bitwise identical. *)
      let dv_max = ref 0. in
      for i = 0 to n_nodes - 1 do
        dv_max := Float.max !dv_max (Float.abs (s.(i) -. x.(i)))
      done;
      let alpha = if !dv_max > vlimit then vlimit /. !dv_max else 1. in
      if alpha = 1. then begin
        let ok = ref true in
        for i = 0 to size - 1 do
          let xi = x.(i) in
          let xn = xi +. (alpha *. (s.(i) -. xi)) in
          x_new.(i) <- xn;
          if i < n_nodes then begin
            let dx = Float.abs (xn -. xi) in
            if dx > abstol +. (reltol *. Float.abs xn) then ok := false
          end
        done;
        converged := !ok
      end
      else
        for i = 0 to size - 1 do
          let xi = x.(i) in
          x_new.(i) <- xi +. (alpha *. (s.(i) -. xi))
        done;
      cur := x_new;
      nxt := x
    done;
    if !converged then Some !cur else None
  end

(* The config-major engine behind {!Evaluator.batched_fault_sensitivities}:
   for each fault (impact override) the system is restamped and factored
   ONCE — a numeric-only pattern replay on the sparse backend — and every
   probe column of every parameter point solves against that held
   factorization, in one blocked triangular panel on sparse
   ({!Numerics.Smat.solve_block}) or a sequential [ws_solve_into] sweep
   on dense.  Each column's converged operating point is then recovered
   by the exact damping replay above, so results are bitwise identical
   to walking {!compiled_observables} pair by pair.  A fault whose
   factorization is singular, or whose damping walk does not converge,
   leaves [None] cells for the caller's verbatim sequential fallback. *)
let compiled_batch_over_faults ?(profile = default_profile) c ~impacts ~points =
  match c.c_config.Test_config.analysis with
  | Test_config.Tran_thd _ | Test_config.Tran_samples _ | Test_config.Tran_imd _
  | Test_config.Noise_psd _ | Test_config.Ac_gain _ ->
      None
  | Test_config.Dc_levels waves ->
      let nonlinear =
        List.exists
          (function Device.Mosfet _ -> true | _ -> false)
          (Netlist.devices (Mna.netlist c.c_plan))
      in
      if nonlinear then None
      else begin
        Array.iter (check_values c.c_config) points;
        let target = c.c_target in
        let source = target.stimulus_source in
        let ws = c.c_ws in
        let wave_rows = Array.map (fun v -> Array.of_list (waves v)) points in
        Array.iter
          (Array.iter (fun w ->
               match Waveform.validate w with
               | Ok () -> ()
               | Error e ->
                   invalid_arg (Printf.sprintf "Netlist.add: %s: %s" source e)))
          wave_rows;
        let np = Array.length points in
        let offsets = Array.make (Int.max 1 np) 0 in
        let total = ref 0 in
        Array.iteri
          (fun p row ->
            offsets.(p) <- !total;
            total := !total + Array.length row)
          wave_rows;
        let m = !total in
        let n = Mna.size c.c_plan in
        let n_nodes = Mna.n_nodes c.c_plan in
        let options = profile.dc_options in
        let gmin = options.Dc.gmin in
        let x0 = Numerics.Vec.create n 0. in
        let obs_row = Mna.node_index c.c_plan target.observe_node in
        let n_impacts = Array.length impacts in
        let out = Array.init n_impacts (fun _ -> Array.make np None) in
        let panels = ref 0 in
        if m > 0 && n_impacts > 0 then begin
          let sbuf = Numerics.Vec.create n 0. in
          let xa = Numerics.Vec.create n 0. in
          let xb = Numerics.Vec.create n 0. in
          let assemble impact p l =
            Mna.assemble_into c.c_plan ws ~x:x0 ~time:`Dc
              ~restamp:
                { Mna.stimulus = Some (source, wave_rows.(p).(l)); impact }
              ~gmin ()
          in
          (* Replay every column of this fault against the held
             factorization; a point whose columns all converge yields its
             observable vector, anything else stays [None]. *)
          let replay_points solve_col =
            Array.init np (fun p ->
                let levels = Array.length wave_rows.(p) in
                let obs = Array.make levels 0. in
                let ok = ref true in
                for l = 0 to levels - 1 do
                  if !ok then begin
                    solve_col (offsets.(p) + l);
                    match replay_damped ~options ~n_nodes ~s:sbuf xa xb with
                    | Some x ->
                        obs.(l) <-
                          (match obs_row with Some r -> x.(r) | None -> 0.)
                    | None -> ok := false
                  end
                done;
                if !ok then Some obs else None)
          in
          match Mna.ws_sparse_lu ws with
          | Some slu ->
              let b =
                Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m
              in
              let xs =
                Bigarray.Array2.create Bigarray.float64 Bigarray.c_layout n m
              in
              Array.iteri
                (fun fi impact ->
                  for p = 0 to np - 1 do
                    for l = 0 to Array.length wave_rows.(p) - 1 do
                      assemble impact p l;
                      let k = offsets.(p) + l in
                      for i = 0 to n - 1 do
                        b.{i, k} <- ws.Mna.w_z.(i)
                      done
                    done
                  done;
                  match Mna.ws_factor ws with
                  | (_ : bool) ->
                      Numerics.Smat.solve_block slu ~b ~x:xs;
                      incr panels;
                      out.(fi) <-
                        replay_points (fun k ->
                            for i = 0 to n - 1 do
                              sbuf.(i) <- xs.{i, k}
                            done)
                  | exception Numerics.Mat.Singular _ ->
                      (* the sequential path escalates to its stepping
                         ladders here: leave the row to the fallback *)
                      ())
                impacts
          | None ->
              let zs = Array.init m (fun _ -> Numerics.Vec.create n 0.) in
              Array.iteri
                (fun fi impact ->
                  for p = 0 to np - 1 do
                    for l = 0 to Array.length wave_rows.(p) - 1 do
                      assemble impact p l;
                      Array.blit ws.Mna.w_z 0 zs.(offsets.(p) + l) 0 n
                    done
                  done;
                  match Mna.ws_factor ws with
                  | (_ : bool) ->
                      incr panels;
                      out.(fi) <-
                        replay_points (fun k ->
                            Mna.ws_solve_into ws zs.(k) sbuf)
                  | exception Numerics.Mat.Singular _ -> ())
                impacts
        end;
        Some { fb_obs = out; fb_panels = !panels }
      end

(* ------------------------------------------------------------------ *)
(* Adjoint gradients: one extra triangular solve per operating point    *)
(* ------------------------------------------------------------------ *)

type gradient = {
  g_obs : float array;  (* identical to [observables] at the same point *)
  g_dobs : float array array;  (* per observable: d obs / d p, per parameter *)
  g_dimpact : float array option;
      (* per observable: d obs / d (impact resistance), when an impact
         override is active *)
}

(* DC-levels analyses are the analytically differentiable family: the
   parameters enter only through each probe's stimulus DC level, so
   [d obs/d p = (lambda^T dz/dlevel) * (d level/d p)].  The adjoint
   vector comes from one transpose solve per operating point against
   the Jacobian reassembled at the converged solution; the level's own
   parameter derivative comes from central differences on the stimulus
   closure — waveform construction only, no circuit solves, exact to
   rounding for the affine level maps the configurations use.  Other
   analyses return [None] and the caller falls back to the
   finite-difference oracle. *)
let gradient_body engine ~profile config values =
  check_values config values;
  if Numerics.Failpoint.should_fail "execute.observables" then
    raise (Execution_failure "injected failure at execute.observables");
  match config.Test_config.analysis with
  | Test_config.Tran_thd _ | Test_config.Tran_samples _ | Test_config.Tran_imd _
  | Test_config.Noise_psd _ | Test_config.Ac_gain _ ->
      None
  | Test_config.Dc_levels waves ->
      let options = profile.dc_options in
      let target = engine_target engine in
      let observe = target.observe_node in
      let source = target.stimulus_source in
      let n_params = Test_config.n_params config in
      let base_waves = Array.of_list (waves values) in
      let n_obs = Array.length base_waves in
      (* d level_k / d p_d by central differences on the closure *)
      let dlevel = Array.make_matrix n_obs n_params 0. in
      (try
         for d = 0 to n_params - 1 do
           let h = 1e-4 *. Float.max 1. (Float.abs values.(d)) in
           let vp = Array.copy values and vm = Array.copy values in
           vp.(d) <- values.(d) +. h;
           vm.(d) <- values.(d) -. h;
           let wp = Array.of_list (waves vp)
           and wm = Array.of_list (waves vm) in
           if Array.length wp <> n_obs || Array.length wm <> n_obs then
             raise Exit;
           for k = 0 to n_obs - 1 do
             dlevel.(k).(d) <-
               (Waveform.dc_value wp.(k) -. Waveform.dc_value wm.(k))
               /. (2. *. h)
           done
         done
       with Exit ->
         raise (Execution_failure "gradient: wave count varies with parameters"));
      let impact =
        match engine with
        | Restamp { impact = Some (dev, r); _ } -> Some (dev, r)
        | Restamp { impact = None; _ } | Direct _ -> None
      in
      let obs = Array.make n_obs 0. in
      let dobs = Array.make_matrix n_obs n_params 0. in
      let dimpact = Array.make n_obs 0. in
      Array.iteri
        (fun k w ->
          let inst = instantiate engine w in
          let x = operating_point ~options inst in
          obs.(k) <- Mna.voltage inst.i_sys x observe;
          match Mna.node_index inst.i_sys observe with
          | None -> () (* observing ground: identically zero *)
          | Some obs_row -> (
              let lambda =
                try
                  Dc.solve_adjoint ~options ?restamp:inst.i_restamp
                    ?workspace:inst.i_ws inst.i_sys ~x ~obs_row
                with Numerics.Mat.Singular _ ->
                  raise
                    (Execution_failure
                       "gradient: singular Jacobian at operating point")
              in
              (match Mna.stimulus_site inst.i_sys source with
              | None -> ()
              | Some site ->
                  let dot = Mna.stimulus_adjoint_dot site lambda in
                  for d = 0 to n_params - 1 do
                    dobs.(k).(d) <- dot *. dlevel.(k).(d)
                  done);
              match impact with
              | None -> ()
              | Some (device, ohms) -> (
                  match
                    Mna.impact_adjoint_dot inst.i_sys ~device ~ohms ~lambda ~x
                  with
                  | Some dr -> dimpact.(k) <- dr
                  | None -> ())))
        base_waves;
      Some
        {
          g_obs = obs;
          g_dobs = dobs;
          g_dimpact = (match impact with Some _ -> Some dimpact | None -> None);
        }

(* One gradient call is one probe: the same [execute.solve] span the
   observables path counts, so probe accounting compares directly
   between the adjoint path and the finite-difference oracle. *)
let gradient_of engine ~profile config values =
  if not (Obs.active ()) then gradient_body engine ~profile config values
  else
    Obs.Span.timed ~key:(string_of_int config.Test_config.config_id)
      "execute.solve" (fun () -> gradient_body engine ~profile config values)

let gradient ?(profile = default_profile) config target values =
  gradient_of (Direct target) ~profile config values

let compiled_gradient ?(profile = default_profile) ?impact c values =
  gradient_of (Restamp { c; impact; cont = None }) ~profile c.c_config values

let deviations config ~nominal ~faulty =
  if Array.length nominal <> Array.length faulty then
    invalid_arg "Execute.deviations: observable length mismatch";
  match config.Test_config.returns with
  | Test_config.Per_component ->
      Array.init (Array.length faulty) (fun i -> faulty.(i) -. nominal.(i))
  | Test_config.Max_abs_delta ->
      [| Sigproc.Metrics.max_abs_delta faulty nominal |]
  | Test_config.Sum_abs_delta ->
      [|
        Float.abs
          (Sigproc.Metrics.accumulate faulty
          -. Sigproc.Metrics.accumulate nominal);
      |]

let return_values config ~nominal ~observed =
  match config.Test_config.returns with
  | Test_config.Per_component -> Array.copy observed
  | Test_config.Max_abs_delta | Test_config.Sum_abs_delta ->
      deviations config ~nominal ~faulty:observed
