(** Persistence of generation results.

    A whole-dictionary generation run costs minutes of simulation; this
    module saves its results in a line-oriented text format so compaction,
    scheduling and reporting can be re-run (or run with different
    parameters such as [delta]) without regenerating.  The format is
    versioned, human-readable and stable under round-trips.

    {b Crash safety.}  Whole-file writes ({!save}) go through a temporary
    sibling, an [fsync] and an atomic rename.  Checkpoint files append a
    one-line [#ck <len> <crc32>] trailer after every result block;
    recovery ({!checkpoint_resume}, {!load_partial}) trusts exactly the
    blocks whose trailers verify, so a torn write or a corrupted byte is
    detected instead of being parsed as a shorter-but-valid session.
    Trailer lines start with [#] and are ignored by {!of_string}, so a
    checkpoint file is also a loadable session file. *)

val format_version : int

val to_string : Generate.result list -> string
(** Serialize results (candidates, outcome, impact trace). *)

val to_checkpoint_string : Generate.result list -> string
(** Like {!to_string}, with the integrity trailer after each block —
    the exact bytes a checkpointed run leaves on disk. *)

val of_string : string -> (Generate.result list, string) result
(** Parse a serialized session.  Fails with a diagnostic on version
    mismatch or malformed input (including a zero-byte string).
    [#]-prefixed lines (checkpoint trailers, comments) are skipped. *)

val save : path:string -> Generate.result list -> (unit, string) result
(** Atomic whole-file write (tmp + fsync + rename). *)

val load : path:string -> (Generate.result list, string) result
(** Strict load: a zero-length file, a bad header, a checksum or length
    mismatch in a checkpoint trailer, or unverified bytes after the last
    verified block all fail with a diagnostic naming the corruption.
    Files without trailers (plain {!save} output) parse as before. *)

val load_partial : path:string -> (Generate.result list, string) result
(** Lenient load: recover the longest trustworthy prefix.  For trailered
    checkpoint files that is every trailer-verified block; for legacy
    trailerless files, every syntactically complete block.  An incomplete
    or corrupt tail is dropped, not an error. *)

(** {2 Incremental checkpointing}

    A checkpoint is a session file grown one trailered result block at a
    time (each block flushed and fsynced as soon as its fault completes),
    so a run killed mid-dictionary leaves a recoverable prefix.  Because
    per-fault generation is deterministic and independent, resuming from
    the prefix and finishing the dictionary reproduces the uninterrupted
    run's checkpoint file byte for byte. *)

exception Torn_write
(** Raised by {!checkpoint_append} when the [session.torn_write]
    failure point trips: half the payload reaches the file and the
    writer dies — the simulated kill used by crash-safety campaigns. *)

type checkpoint

val checkpoint_create : path:string -> (checkpoint, string) result
(** Start a fresh checkpoint file (truncating any existing one) and
    write the session header. *)

val checkpoint_resume :
  path:string -> (checkpoint * Generate.result list, string) result
(** Reopen an interrupted checkpoint: salvage every trailer-verified
    result block (torn or corrupt tails from a mid-write kill are
    dropped), rewrite the salvaged prefix atomically in canonical
    trailered form, return the recovered results, and position the
    checkpoint so subsequent appends continue the file.  Legacy
    trailerless checkpoints salvage every syntactically complete block
    and are upgraded to trailered form.  A missing file behaves like
    {!checkpoint_create}. *)

val checkpoint_append : checkpoint -> Generate.result -> unit
(** Append one trailered result block, flush and fsync — the
    [?checkpoint] hook for {!Engine.run}.
    @raise Torn_write when the [session.torn_write] failure point trips. *)

val checkpoint_close : checkpoint -> unit

val checkpoint_abort : checkpoint -> unit
(** Close the underlying channel without flushing guarantees — for
    recovery paths that abandon a checkpoint after {!Torn_write}. *)
