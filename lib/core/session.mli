(** Persistence of generation results.

    A whole-dictionary generation run costs minutes of simulation; this
    module saves its results in a line-oriented text format so compaction,
    scheduling and reporting can be re-run (or run with different
    parameters such as [delta]) without regenerating.  The format is
    versioned, human-readable and stable under round-trips. *)

val format_version : int

val to_string : Generate.result list -> string
(** Serialize results (candidates, outcome, impact trace). *)

val of_string : string -> (Generate.result list, string) result
(** Parse a serialized session.  Fails with a diagnostic on version
    mismatch or malformed input. *)

val save : path:string -> Generate.result list -> (unit, string) result

val load : path:string -> (Generate.result list, string) result

(** {2 Incremental checkpointing}

    A checkpoint is a session file grown one result block at a time (each
    block flushed as soon as its fault completes), so a run killed
    mid-dictionary leaves a loadable prefix.  Because per-fault
    generation is deterministic and independent, resuming from the
    prefix and finishing the dictionary reproduces the uninterrupted
    run's session file byte for byte. *)

type checkpoint

val checkpoint_create : path:string -> (checkpoint, string) result
(** Start a fresh checkpoint file (truncating any existing one) and
    write the session header. *)

val checkpoint_resume :
  path:string -> (checkpoint * Generate.result list, string) result
(** Reopen an interrupted checkpoint: salvage every complete result
    block (a torn trailing block from a mid-write kill is dropped and
    removed from the file), return the recovered results, and position
    the checkpoint so subsequent appends continue the file.  A missing
    file behaves like {!checkpoint_create}. *)

val checkpoint_append : checkpoint -> Generate.result -> unit
(** Append one result block and flush — the [?checkpoint] hook for
    {!Engine.run}. *)

val checkpoint_close : checkpoint -> unit

val load_partial : path:string -> (Generate.result list, string) result
(** Like {!load}, but tolerate a truncated tail: every complete result
    block parses, an incomplete final block is dropped. *)
