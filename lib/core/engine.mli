(** Whole-dictionary test generation (the producer of Table 2 and
    Fig. 8), with per-fault failure quarantine.

    A simulator failure while generating one fault's test no longer
    aborts the run: the fault is re-attempted down the
    {!Resilience.policy}'s retry ladder and, if every rung fails,
    quarantined with a diagnosis while the remaining faults proceed. *)

type fault_report = {
  report_fault_id : string;
  report_outcome : Generate.result Resilience.outcome;
}

exception Fault_failure of Resilience.diagnosis
(** Raised (instead of quarantining) when the policy has
    [fail_fast = true] and a fault exhausts its retry ladder. *)

type run = {
  results : Generate.result list;
      (** one per successfully generated dictionary entry (including
          recovered and resumed ones), in dictionary order — quarantined
          faults are absent *)
  reports : fault_report list;
      (** one per dictionary entry, in order, successful or not *)
  failed_faults : Resilience.diagnosis list;
      (** quarantined faults, in dictionary order *)
  recovered_count : int;  (** faults that needed [>= 1] ladder rung *)
  resumed_count : int;  (** faults taken from the [resume] list, unsimulated *)
  rung_stats : (string * int) list;
      (** per-rung success counts, baseline first, zero rows included *)
  evaluators : Evaluator.t list;
  wall_seconds : float;  (** monotonic wall-clock duration of the run *)
  total_fault_simulations : int;
}

(** {2 Pluggable execution}

    The engine separates {e what} is simulated (per-fault test
    generation, resume lookup, retry ladders) from {e how} tasks are
    scheduled.  An {!executor} receives the task count, a worker
    factory, the per-task work function and an emission funnel; the
    bundled {!sequential} executor is a plain loop, and
    {!Parallel.executor} fans tasks across domains.  Because per-fault
    work is deterministic and isolated (worker-private evaluator forks,
    per-fault failure-injection scopes) and emission is required to be
    in index order, every conforming executor produces the same [run]
    record bit for bit. *)

type worker
(** One executing agent's private simulation state: forked evaluators
    plus its escalated-evaluator table.  Created only through the
    [make_worker] callback passed to an executor. *)

type executor = {
  exec_run :
    n:int ->
    make_worker:(unit -> worker) ->
    run_task:(worker -> int -> Generate.result Resilience.outcome) ->
    emit:(int -> Generate.result Resilience.outcome -> unit) ->
    unit;
}
(** Contract: call [run_task w i] exactly once for each [i] in
    [0 .. n-1] (any order, any worker, concurrently), and pass each
    outcome to [emit i] with {e strictly increasing} [i] from a single
    thread — reordering completions is the executor's job.  [make_worker]
    and [emit] are thread-safe with respect to concurrent [run_task]
    calls; [emit] may raise ({!Fault_failure} under a fail-fast policy),
    in which case the executor must stop issuing work, join its workers
    and let the exception propagate. *)

val sequential : executor
(** The in-order single-worker loop (the default). *)

val rung_stats_of_reports :
  policy:Resilience.policy -> fault_report list -> (string * int) list
(** Per-rung success counts for a report list (baseline first, zero rows
    included) — the pure aggregation used to build {!run.rung_stats},
    exposed so merge properties can be tested in isolation. *)

val run :
  ?options:Generate.options ->
  ?policy:Resilience.policy ->
  ?resume:Generate.result list ->
  ?checkpoint:(Generate.result -> unit) ->
  ?progress:(done_:int -> total:int -> fault_id:string -> unit) ->
  ?executor:executor ->
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  run
(** Generate the optimal test for every fault of the dictionary.

    [policy] governs retries and quarantine (default
    {!Resilience.default_policy}; use {!Resilience.abort_policy} for the
    historical abort-on-first-failure behaviour).  Faults whose id
    appears in [resume] are not re-simulated — the stored result is
    reused, so an interrupted run restarts where it left off.
    [checkpoint] is invoked with each freshly generated (non-resumed)
    result as soon as it completes, in dictionary order, before any
    later fault is reported — the hook {!Session.checkpoint_append}
    persists partial runs and stays single-writer under any executor.
    [progress] is invoked after each fault (CLI feedback), also in
    dictionary order.  [executor] schedules the per-fault tasks
    (default {!sequential}); the resulting [run] record does not depend
    on the choice of executor.

    @raise Fault_failure under a [fail_fast] policy. *)

val of_results : evaluators:Evaluator.t list -> Generate.result list -> run
(** Wrap results loaded from a {!Session} file as a run (no simulation
    statistics; every result counts as resumed). *)

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

val distribution : run -> distribution_row list
(** Per-configuration counts of best tests, split by fault kind — the
    paper's Table 2.  Rows are sorted by configuration id and include
    zero rows for configurations that won no fault. *)

val undetectable_faults : run -> Generate.result list

val results_for_config : run -> config_id:int -> Generate.result list
(** Results whose best test uses the given configuration (Fig. 8 and
    Table 3 inputs). *)

val critical_impacts : run -> (string * float) list
(** [(fault_id, critical impact)] for every uniquely solved fault. *)

(** {2 Process exit codes}

    The CLI maps run outcomes onto distinct exit codes so CI can gate on
    them: [0] clean, [1] usage/IO errors (owned by the CLI layer),
    {!exit_quarantined} when the run completed but left quarantined
    faults, {!exit_fail_fast} when a fail-fast policy terminated the
    run, {!exit_corrupt_session} when a session or checkpoint file
    failed integrity checks. *)

val exit_quarantined : int
(** [3] — the run completed but [failed_faults] is non-empty. *)

val exit_fail_fast : int
(** [4] — a [fail_fast] policy aborted the run ({!Fault_failure}). *)

val exit_corrupt_session : int
(** [5] — a session or checkpoint file is corrupt (truncated, torn
    write, checksum mismatch, bad header). *)

val exit_status : run -> int
(** [0] for a clean run, {!exit_quarantined} if any fault ended the run
    quarantined. *)
