(** Whole-dictionary test generation (the producer of Table 2 and
    Fig. 8), with per-fault failure quarantine.

    A simulator failure while generating one fault's test no longer
    aborts the run: the fault is re-attempted down the
    {!Resilience.policy}'s retry ladder and, if every rung fails,
    quarantined with a diagnosis while the remaining faults proceed. *)

type fault_report = {
  report_fault_id : string;
  report_outcome : Generate.result Resilience.outcome;
}

exception Fault_failure of Resilience.diagnosis
(** Raised (instead of quarantining) when the policy has
    [fail_fast = true] and a fault exhausts its retry ladder. *)

type run = {
  results : Generate.result list;
      (** one per successfully generated dictionary entry (including
          recovered and resumed ones), in dictionary order — quarantined
          faults are absent *)
  reports : fault_report list;
      (** one per dictionary entry, in order, successful or not *)
  failed_faults : Resilience.diagnosis list;
      (** quarantined faults, in dictionary order *)
  recovered_count : int;  (** faults that needed [>= 1] ladder rung *)
  resumed_count : int;  (** faults taken from the [resume] list, unsimulated *)
  rung_stats : (string * int) list;
      (** per-rung success counts, baseline first, zero rows included *)
  evaluators : Evaluator.t list;
  wall_seconds : float;  (** monotonic wall-clock duration of the run *)
  total_fault_simulations : int;
}

val run :
  ?options:Generate.options ->
  ?policy:Resilience.policy ->
  ?resume:Generate.result list ->
  ?checkpoint:(Generate.result -> unit) ->
  ?progress:(done_:int -> total:int -> fault_id:string -> unit) ->
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  run
(** Generate the optimal test for every fault of the dictionary.

    [policy] governs retries and quarantine (default
    {!Resilience.default_policy}; use {!Resilience.abort_policy} for the
    historical abort-on-first-failure behaviour).  Faults whose id
    appears in [resume] are not re-simulated — the stored result is
    reused, so an interrupted run restarts where it left off.
    [checkpoint] is invoked with each freshly generated (non-resumed)
    result as soon as it completes, before the next fault starts —
    the hook {!Session.checkpoint_append} persists partial runs.
    [progress] is invoked after each fault (CLI feedback).

    @raise Fault_failure under a [fail_fast] policy. *)

val of_results : evaluators:Evaluator.t list -> Generate.result list -> run
(** Wrap results loaded from a {!Session} file as a run (no simulation
    statistics; every result counts as resumed). *)

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

val distribution : run -> distribution_row list
(** Per-configuration counts of best tests, split by fault kind — the
    paper's Table 2.  Rows are sorted by configuration id and include
    zero rows for configurations that won no fault. *)

val undetectable_faults : run -> Generate.result list

val results_for_config : run -> config_id:int -> Generate.result list
(** Results whose best test uses the given configuration (Fig. 8 and
    Table 3 inputs). *)

val critical_impacts : run -> (string * float) list
(** [(fault_id, critical impact)] for every uniquely solved fault. *)
