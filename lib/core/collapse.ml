open Numerics

type member = {
  member_fault_id : string;
  member_fault : Faults.Fault.t;
  member_params : Vec.t;
  member_opt_sensitivity : float;
}

type group = {
  group_config_id : int;
  members : member list;
  group_params : Vec.t;
  screened_sensitivities : (string * float) list;
}

type stats = { proposals : int; accepted : int; splits : int }

let acceptance_bound ~delta s_opt = s_opt +. (delta *. (1. -. s_opt))

let screen evaluator ~delta members candidate =
  (* All member sensitivities at the candidate come from one config-major
     batch (one held factorization per fault site, every member solved
     against it); the walk below then reads them in member order with the
     original early-exit verdict semantics.  Each batched value is
     bitwise identical to the sequential [Evaluator.sensitivity] call it
     replaces — a rejected candidate merely evaluated members past the
     first violation that the sequential walk would have skipped. *)
  let batched =
    match members with
    | [] -> None
    | _ :: _ ->
        Evaluator.batched_fault_sensitivities evaluator
          ~faults:(Array.of_list (List.map (fun m -> m.member_fault) members))
          ~points:[| candidate |]
  in
  let sensitivity_of i m =
    match batched with
    | Some cells -> fst cells.(i).(0)
    | None -> Evaluator.sensitivity evaluator m.member_fault candidate
  in
  let rec walk i acc = function
    | [] -> Some (List.rev acc)
    | m :: rest ->
        let s = sensitivity_of i m in
        if s <= acceptance_bound ~delta m.member_opt_sensitivity then
          walk (i + 1) ((m.member_fault_id, s) :: acc) rest
        else None
  in
  walk 0 [] members

let collapse_config evaluator ~delta ?threshold members =
  if delta < 0. || delta > 1. then
    invalid_arg "Collapse.collapse_config: delta outside [0, 1]";
  let config = Evaluator.config evaluator in
  let params = config.Test_config.params in
  let items =
    List.map
      (fun m -> { Cluster.item_id = m.member_fault_id; location = m.member_params })
      members
  in
  let by_id =
    List.map (fun m -> (m.member_fault_id, m)) members
  in
  let member_of (it : Cluster.item) = List.assoc it.Cluster.item_id by_id in
  let clusters = Cluster.group ~params ?threshold items in
  let proposals = ref 0 and accepted = ref 0 and splits = ref 0 in
  let rec settle cluster =
    let cluster_members = List.map member_of cluster in
    let candidate = Cluster.centroid cluster in
    incr proposals;
    match screen evaluator ~delta cluster_members candidate with
    | Some sens ->
        incr accepted;
        [
          {
            group_config_id = Evaluator.config_id evaluator;
            members = cluster_members;
            group_params = candidate;
            screened_sensitivities = sens;
          };
        ]
    | None -> begin
        match cluster with
        | [] | [ _ ] ->
            (* a singleton can only fail if the evaluation is noisy or the
               centroid clamping moved the point; fall back to the
               member's own optimized parameters, which pass by
               construction *)
            let m = List.map member_of cluster in
            List.map
              (fun mm ->
                {
                  group_config_id = Evaluator.config_id evaluator;
                  members = [ mm ];
                  group_params = mm.member_params;
                  screened_sensitivities =
                    [ (mm.member_fault_id, mm.member_opt_sensitivity) ];
                })
              m
        | _ :: _ :: _ ->
            incr splits;
            let a, b = Cluster.split cluster in
            settle a @ settle b
      end
  in
  let groups = List.concat_map settle clusters in
  (groups, { proposals = !proposals; accepted = !accepted; splits = !splits })
