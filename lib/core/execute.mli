(** Test execution: apply a test to a circuit and collect observables.

    This is the reproduction's stand-in for "HSPICE run + automatic
    post-processing" (paper §3.3): the configuration's stimulus replaces
    the macro's input-source waveform, the requested analysis runs, and
    the observable vector comes back.  Deviation computation implements
    the per-return-value [delta r] of §3.1. *)

type target = {
  netlist : Circuit.Netlist.t;  (** nominal or fault-injected macro *)
  stimulus_source : string;  (** independent source the stimulus replaces *)
  observe_node : string;
}

type profile = {
  samples_per_period : int;  (** THD transient resolution (default 128) *)
  settle_periods : int;  (** periods simulated before the THD window (2) *)
  analyze_periods : int;  (** periods inside the THD window (2) *)
  thd_harmonics : int;  (** highest harmonic order (5) *)
  dc_options : Circuit.Dc.options;
  dt_divisor : int;
      (** transient integration-step subdivision (default 1).  Values > 1
          integrate with [dt / dt_divisor] and decimate back onto the
          requested sample grid — a retry-ladder escalation for stiff
          faulty circuits that preserves observable length and timing. *)
}

val default_profile : profile

val fast_profile : profile
(** Coarser THD windows for unit tests and quick sweeps. *)

exception Execution_failure of string
(** Raised when the underlying analysis cannot complete (DC or transient
    non-convergence) — treated by callers as "no measurable response". *)

val with_stimulus :
  Circuit.Netlist.t -> source:string -> Circuit.Waveform.t ->
  Circuit.Netlist.t
(** Replace the waveform of the named independent V or I source.
    @raise Invalid_argument if the device is missing or not an
    independent source. *)

val observables :
  ?profile:profile -> Test_config.t -> target -> Numerics.Vec.t ->
  float array
(** Run the configuration's analysis with the given parameter values.
    The result length depends on the analysis: one voltage per DC level,
    one THD value, or the full sample train.  The failure-injection point
    ["execute.observables"] (see {!Numerics.Failpoint}) raises
    {!Execution_failure} at entry.
    @raise Execution_failure on simulator failure.
    @raise Invalid_argument if the value vector length differs from the
    configuration's parameter count. *)

type compiled
(** A compiled execution plan: the target's topology indexed once
    ({!Circuit.Mna.build}) with a preallocated solver workspace (and a
    small-signal workspace for AC/noise analyses).  Every probe of the
    optimizer then restamps stimulus values into the same workspace
    instead of rewriting and re-indexing the netlist.

    A plan owns mutable buffers: share it freely across sequential
    probes, never across domains. *)

val compile : ?backend:Circuit.Mna.backend -> Test_config.t -> target -> compiled
(** Compile the target's topology for the configuration's analysis.
    The plan is built from the stimulus-normalized netlist (the stimulus
    source moved to the end of device order, exactly where every
    per-probe {!with_stimulus} rewrite puts it), so unknown numbering —
    and therefore pivoting and arithmetic — matches the legacy path
    bit for bit.  [backend] (default [Dense]) selects the plan's
    linear-algebra engine; both produce bit-identical results
    (see {!Circuit.Mna.backend}).
    @raise Invalid_argument if the stimulus source is missing or not an
    independent source. *)

val compiled_target : compiled -> target
val compiled_config : compiled -> Test_config.t

type continuation
(** Warm-start state for a ladder of probes over one compiled plan: one
    {!Circuit.Dc.continuation} per DC solve site of a probe, paired by
    position (the k-th solve of each probe continues from the k-th solve
    of the previous one).  Belongs to one plan and one domain, like the
    plan's workspace. *)

val continuation : unit -> continuation
(** A fresh (cold) continuation store; slots are allocated lazily on
    first use. *)

val compiled_observables :
  ?profile:profile ->
  ?impact:string * float ->
  ?continuation:continuation ->
  compiled ->
  Numerics.Vec.t ->
  float array
(** {!observables} over a compiled plan: bit-identical results, no
    per-probe netlist rewrite, matrix allocation or LU allocation.
    [impact] overrides one resistor's value during stamping — the
    value phase of a fault whose injected topology the plan was compiled
    from (see [Faults.Inject.impact_override]).  The same failpoint
    ["execute.observables"] fires at entry, after the same number of
    draws as the legacy path.

    [continuation] opts this probe into warm-start continuation: every
    DC operating point (including the transient initial condition) seeds
    Newton from the matching solve of the previous probe and may take a
    rank-1 first step against its held factorization when only the
    impact resistance changed (see {!Circuit.Dc.solve}).  Results are
    then tolerance-identical rather than bit-identical to the cold path.
    @raise Execution_failure on simulator failure.
    @raise Invalid_argument on value-count mismatch or an invalid probe
    waveform (same rejection as netlist insertion on the legacy path). *)

val compiled_dc_levels_batch :
  ?profile:profile ->
  compiled ->
  impacts:(string * float) option array ->
  Numerics.Vec.t ->
  float array array option
(** Batched multi-fault DC-levels sweep over one compiled plan: faults
    at one site share the plan's stamp pattern and differ only in the
    impact resistance, so per impact the system is restamped and
    refactored once (a numeric-only pattern replay on the sparse
    backend) and all probe levels solve against that single
    factorization — one blocked triangular sweep
    ({!Numerics.Smat.solve_block}) on sparse, sequential solves on
    dense.  Returns one observable row per entry of [impacts] (an entry
    of [None] is the nominal-value stamp).

    [None] when the plan is outside the batchable family: a non-DC-levels
    analysis, or a nonlinear (MOSFET-bearing) topology — there the
    system matrix depends on the stimulus level through the iterate and
    the caller must walk {!compiled_observables} fault by fault.  For
    linear plans the assembled system is exact, so each row equals the
    operating points the sequential path converges to (to solver
    tolerance; the sequential path's damped Newton trajectory may differ
    in low-order bits).
    @raise Execution_failure on a singular system.
    @raise Invalid_argument on value-count mismatch or an invalid probe
    waveform. *)

type fault_batch = {
  fb_obs : float array option array array;
      (** impact-major: [fb_obs.(f).(p)] is the observable vector of
          fault [f] at parameter point [p], or [None] when that pair
          must be recomputed sequentially *)
  fb_panels : int;
      (** factorizations actually held — one per impact whose restamped
          system factored successfully *)
}
(** Result of a config-major batched sweep: the full
    (fault x parameter point) cross-product of one configuration. *)

val compiled_batch_over_faults :
  ?profile:profile ->
  compiled ->
  impacts:(string * float) option array ->
  points:Numerics.Vec.t array ->
  fault_batch option
(** Config-major concurrent fault evaluation: for each entry of
    [impacts] the compiled system is restamped and factored ONCE (a
    numeric-only pattern replay on the sparse backend), and every probe
    level of every parameter point in [points] solves against that held
    factorization — one blocked triangular panel
    ({!Numerics.Smat.solve_block}) on sparse, a sequential
    [ws_solve_into] sweep on dense.  Each column's converged operating
    point is then recovered by an exact replay of the sequential damped
    Newton walk (the system of a linear plan does not depend on the
    iterate, so the trajectory is a pure damping walk toward the single
    solve), making every returned observable bitwise identical to
    {!compiled_observables} on the same (impact, point) pair.

    [None] when the plan is outside the batchable family (non-DC-levels
    analysis, or a nonlinear MOSFET-bearing topology).  Within a batch,
    a cell is [None] when its fault's factorization was singular or a
    damping walk did not converge — the sequential path escalates to its
    gmin/source stepping ladders there, which the caller must replay
    verbatim, fault by fault.  Unlike the sequential path this function
    never raises {!Execution_failure}.
    @raise Invalid_argument on value-count mismatch or an invalid probe
    waveform (same rejection as the sequential path). *)

type gradient = {
  g_obs : float array;
      (** the observables themselves — bit-identical to {!observables}
          at the same parameter point *)
  g_dobs : float array array;
      (** per observable: its gradient along the test parameters *)
  g_dimpact : float array option;
      (** per observable: its derivative along the fault-impact
          resistance, present when an impact override was active *)
}
(** Observables together with their analytic parameter gradients. *)

val gradient :
  ?profile:profile -> Test_config.t -> target -> Numerics.Vec.t ->
  gradient option
(** [gradient config target values] computes the observables and their
    parameter gradients in one pass: one DC solve plus one adjoint
    transpose solve per operating point ({!Circuit.Dc.solve_adjoint}),
    with the stimulus level's own parameter derivative taken by central
    differences on the configuration's level closure (waveform
    construction only — no circuit solves; exact to rounding for affine
    level maps).  Only [Dc_levels] analyses are differentiable this way:
    every other analysis returns [None] and the caller falls back to
    finite-difference probing.  Counts as one [execute.solve] span, so
    probe accounting compares directly with the oracle path.
    @raise Execution_failure on simulator failure (including a singular
    Jacobian at the operating point). *)

val compiled_gradient :
  ?profile:profile ->
  ?impact:string * float ->
  compiled ->
  Numerics.Vec.t ->
  gradient option
(** {!gradient} over a compiled plan, with the fault-impact override of
    {!compiled_observables}.  When [impact] is given, the result also
    carries each observable's derivative along the impact resistance
    ([g_dimpact]).  Never rides the warm-start continuation: gradient
    probes vary the parameters at fixed impact, which is exactly the
    cold-path contract optimizer probes already obey. *)

val deviations :
  Test_config.t -> nominal:float array -> faulty:float array -> float array
(** Per-return-value deviations [delta r_i] between two observable
    vectors, according to the configuration's return mode.  Length equals
    {!Test_config.return_count}.
    @raise Invalid_argument on observable length mismatch. *)

val return_values :
  Test_config.t -> nominal:float array -> observed:float array -> float array
(** The return values [R(T)] themselves (for reports): equal to the
    observables for [Per_component], and to the deviation metric
    relative to nominal for the delta modes. *)
