let of_deviation ~deviation ~box =
  if box <= 0. then invalid_arg "Sensitivity.of_deviation: box <= 0";
  1. -. (Float.abs deviation /. box)

let combine per_return =
  if Array.length per_return = 0 then
    invalid_arg "Sensitivity.combine: no return values";
  Array.fold_left Float.min per_return.(0) per_return

let compute config ~box ~nominal ~faulty =
  let dev = Execute.deviations config ~nominal ~faulty in
  if Array.length dev <> Array.length box then
    invalid_arg "Sensitivity.compute: box length mismatch";
  combine
    (Array.mapi (fun i d -> of_deviation ~deviation:d ~box:box.(i)) dev)

let detects s = s < 0.

(* Chain rule through the full cost pipeline.  The parameters reach the
   sensitivity through three channels — the faulty response, the nominal
   response, and the tolerance box (a function of the parameter point) —
   so all three gradients are required; dropping any one would disagree
   with finite differences.  At the kinks of the piecewise-smooth
   surface (a deviation crossing zero, the min/argmax switching return
   values) the one-sided derivative of the branch [compute] itself
   selects is returned: the same first-index tie-breaking as
   {!combine}'s fold and the deviation reductions. *)
let compute_gradient config ~box ~dbox ~nominal ~dnominal ~faulty ~dfaulty =
  let dev = Execute.deviations config ~nominal ~faulty in
  if Array.length dev <> Array.length box then
    invalid_arg "Sensitivity.compute_gradient: box length mismatch";
  let n_obs = Array.length faulty in
  if
    Array.length dnominal <> n_obs
    || Array.length dfaulty <> n_obs
    || Array.length dbox <> Array.length box
  then invalid_arg "Sensitivity.compute_gradient: gradient length mismatch";
  let n_params = if n_obs = 0 then 0 else Array.length dfaulty.(0) in
  let sign v = if v > 0. then 1. else if v < 0. then -1. else 0. in
  (* per-return-value deviation gradients, mirroring the branch of
     [Execute.deviations] that produced [dev] *)
  let ddev =
    match config.Test_config.returns with
    | Test_config.Per_component ->
        Array.init n_obs (fun i ->
            Array.init n_params (fun d -> dfaulty.(i).(d) -. dnominal.(i).(d)))
    | Test_config.Max_abs_delta ->
        let best = ref 0 in
        let bestv = ref (Float.abs (faulty.(0) -. nominal.(0))) in
        for i = 1 to n_obs - 1 do
          let v = Float.abs (faulty.(i) -. nominal.(i)) in
          if v > !bestv then begin
            bestv := v;
            best := i
          end
        done;
        let i = !best in
        let sg = sign (faulty.(i) -. nominal.(i)) in
        [|
          Array.init n_params (fun d ->
              sg *. (dfaulty.(i).(d) -. dnominal.(i).(d)));
        |]
    | Test_config.Sum_abs_delta ->
        let total = ref 0. in
        for i = 0 to n_obs - 1 do
          total := !total +. (faulty.(i) -. nominal.(i))
        done;
        let sg = sign !total in
        [|
          Array.init n_params (fun d ->
              let s = ref 0. in
              for i = 0 to n_obs - 1 do
                s := !s +. (dfaulty.(i).(d) -. dnominal.(i).(d))
              done;
              sg *. !s);
        |]
  in
  let per_return =
    Array.mapi (fun i d -> of_deviation ~deviation:d ~box:box.(i)) dev
  in
  let s = combine per_return in
  (* first index attaining the minimum — the branch [combine] selects *)
  let i_min = ref 0 in
  (try
     Array.iteri
       (fun i v ->
         if v = s then begin
           i_min := i;
           raise Exit
         end)
       per_return
   with Exit -> ());
  let i = !i_min in
  let grad =
    Array.init n_params (fun d ->
        let dabs = sign dev.(i) *. ddev.(i).(d) in
        -.((dabs *. box.(i)) -. (Float.abs dev.(i) *. dbox.(i).(d)))
        /. (box.(i) *. box.(i)))
  in
  (s, grad)
