type compact_test = {
  ct_label : string;
  ct_config_id : int;
  ct_params : Numerics.Vec.t;
  ct_fault_ids : string list;
}

type result = {
  compact_tests : compact_test list;
  groups : Collapse.group list;
  stats : Collapse.stats;
  original_test_count : int;
  coverage : Coverage.report;
}

let members_of_run run ~config_id =
  (* one evaluator lookup per call, not one List.find per result row —
     same first-match semantics (and Not_found on a foreign config) *)
  let ev =
    lazy
      (List.find
         (fun ev -> Evaluator.config_id ev = config_id)
         run.Engine.evaluators)
  in
  Engine.results_for_config run ~config_id
  |> List.map (fun r ->
         match r.Generate.outcome with
         | Generate.Unique
             { params; critical_impact; dictionary_sensitivity = _; _ } ->
             let ev = Lazy.force ev in
             let fault_at_critical =
               Faults.Fault.with_impact r.Generate.dictionary_fault
                 critical_impact
             in
             (* the optimal sensitivity at the critical impact: evaluated
                once here so the collapse screen compares like for like —
                through the batch engine (one held factorization) when
                the plan admits it, bit-identical either way *)
             let s_opt =
               Evaluator.batched_sensitivity ev fault_at_critical params
             in
             {
               Collapse.member_fault_id = r.Generate.fault_id;
               member_fault = fault_at_critical;
               member_params = params;
               member_opt_sensitivity = s_opt;
             }
         | Generate.Undetectable
             { params; best_sensitivity; strongest_impact; _ } ->
             {
               Collapse.member_fault_id = r.Generate.fault_id;
               member_fault =
                 Faults.Fault.with_impact r.Generate.dictionary_fault
                   strongest_impact;
               member_params = params;
               member_opt_sensitivity = best_sensitivity;
             })

let compact ?(delta = 0.1) ?threshold ~evaluators dictionary run =
  let zero = { Collapse.proposals = 0; accepted = 0; splits = 0 } in
  let groups, stats =
    List.fold_left
      (fun (groups, stats) ev ->
        let config_id = Evaluator.config_id ev in
        let members = members_of_run run ~config_id in
        if members = [] then (groups, stats)
        else begin
          let g, s = Collapse.collapse_config ev ~delta ?threshold members in
          ( groups @ g,
            {
              Collapse.proposals = stats.Collapse.proposals + s.Collapse.proposals;
              accepted = stats.Collapse.accepted + s.Collapse.accepted;
              splits = stats.Collapse.splits + s.Collapse.splits;
            } )
        end)
      ([], zero) evaluators
  in
  let counter = Hashtbl.create 8 in
  let compact_tests =
    List.map
      (fun (g : Collapse.group) ->
        let n =
          1 + Option.value ~default:0 (Hashtbl.find_opt counter g.Collapse.group_config_id)
        in
        Hashtbl.replace counter g.Collapse.group_config_id n;
        {
          ct_label = Printf.sprintf "tc%d-g%d" g.Collapse.group_config_id n;
          ct_config_id = g.Collapse.group_config_id;
          ct_params = g.Collapse.group_params;
          ct_fault_ids =
            List.map (fun m -> m.Collapse.member_fault_id) g.Collapse.members;
        })
      groups
  in
  let coverage =
    Coverage.evaluate ~evaluators dictionary
      (List.map
         (fun ct ->
           {
             Coverage.test_label = ct.ct_label;
             test_config_id = ct.ct_config_id;
             test_params = ct.ct_params;
           })
         compact_tests)
  in
  {
    compact_tests;
    groups;
    stats;
    original_test_count = List.length run.Engine.results;
    coverage;
  }

let compaction_ratio r =
  if r.compact_tests = [] then 1.
  else
    float_of_int r.original_test_count
    /. float_of_int (List.length r.compact_tests)
