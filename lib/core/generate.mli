(** Fault-specific test generation — the paper's Fig. 6 scheme.

    For one dictionary fault:

    + for every test configuration, optimize the test parameters against
      a {e weakened} (soft-region) version of the fault — Brent's method
      for single-parameter configurations, Powell's method otherwise;
    + evaluate all optimized candidate tests at the dictionary impact and
      converge the impact: {e relax} it while more than one candidate
      detects, {e intensify} it while none does, until a unique surviving
      test remains.  That survivor is the optimal test; the impact at
      which every other candidate has already failed is the fault's
      {e critical impact level}.

    Faults that stay undetected even at the strongest impact are
    reported as undetectable together with their most sensitive test. *)

type options = {
  soft_factor : float;
      (** weakening factor applied to the dictionary impact before
          optimization (default 3) *)
  optimizer_tol : float;  (** Brent/Powell tolerance (default 1e-3) *)
  powell_max_iter : int;  (** outer Powell sweeps (default 6) *)
  bracket_points : int;  (** coarse pre-scan for Brent (default 8) *)
  impact_span : float;
      (** impact search range around the dictionary value (default 1e3):
          resistances in [R/span, R*span] *)
  max_impact_steps : int;  (** impact walk/bisection budget (default 48) *)
  use_gradient : bool;
      (** when [true], candidate optimization runs a projected gradient
          descent (Armijo backtracking) on the adjoint sensitivity
          gradient, started from the best point of a coarse global
          pre-scan that mirrors the oracle's bracket lattice — so the
          descent keeps the oracle's global view of the cost surface
          while replacing Brent/Powell's many line-minimization probes
          with a handful of Armijo steps.  Configurations without an
          analytic gradient fall back to the verbatim Brent/Powell
          path (default [false]) *)
}

val default_options : options

type candidate = {
  cand_config_id : int;
  cand_params : Numerics.Vec.t;
  low_impact_sensitivity : float;
      (** optimized cost against the generation model (the weakened fault;
          the dictionary-impact fault for configurations whose weakened
          cost surface showed no detection signal) *)
  optimizer_evaluations : int;
}

type outcome =
  | Unique of {
      config_id : int;
      params : Numerics.Vec.t;
      critical_impact : float;
          (** model resistance at the detection boundary of the winning
              test *)
      dictionary_sensitivity : float;
          (** sensitivity of the winning test at the dictionary impact *)
    }
  | Undetectable of {
      most_sensitive_config : int;
      params : Numerics.Vec.t;
      best_sensitivity : float;
      strongest_impact : float;
    }

type trace_step = {
  impact : float;
  detecting : int list;  (** configuration ids whose candidate detects *)
}

type result = {
  fault_id : string;
  dictionary_fault : Faults.Fault.t;
  candidates : candidate list;
  outcome : outcome;
  trace : trace_step list;  (** impact-convergence history, in order *)
}

val best_config_id : result -> int
(** Winning configuration id regardless of outcome flavour. *)

val best_params : result -> Numerics.Vec.t

val optimize_candidate :
  ?options:options -> Evaluator.t -> Faults.Fault.t -> candidate
(** Step 1 only: the optimized candidate of one configuration for the
    (already weakened) fault model. *)

val generate :
  ?options:options ->
  evaluators:Evaluator.t list ->
  Faults.Dictionary.entry ->
  result
(** The full Fig. 6 flow.  @raise Invalid_argument on an empty evaluator
    list. *)
