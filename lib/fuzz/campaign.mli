(** Deterministic failure-injection fuzz campaigns.

    A campaign draws one {!Scenario.spec} from an [Rng] stream keyed by
    the campaign seed and index, builds it, runs the engine once, and
    checks every {!Invariants.t} against it.  A failing invariant is
    greedily shrunk ({!Scenario.shrink}) to the smallest spec that still
    trips it before being reported.

    Campaigns run sequentially for reproducible shrink order, but they
    no longer {e have} to be the only injected work in the process: the
    failure-injection configuration is scoped to the running domain
    ({!Numerics.Failpoint.with_config}), so concurrent sessions with
    different [--inject] specs — e.g. several requests inside the serve
    daemon — cannot corrupt each other's failure schedules.  [jobs]
    selects the engine executor width used {e inside} the parallel
    invariants — and because engine runs are bit-identical across job
    counts, the whole report is a pure function of [(options)],
    byte-deterministic for a fixed seed at any [jobs] value. *)

type options = {
  campaigns : int;  (** scenarios to draw, >= 1 *)
  seed : int64;  (** campaign stream seed *)
  jobs : int;  (** engine executor width for parallel invariants; 0 = auto *)
  inject : Numerics.Failpoint.spec list;
      (** failure sites swept by the injection invariants *)
  checks : string list option;
      (** run only these invariants ([None] = all) *)
  self_test : bool;
      (** also run the planted {!Invariants.self_test_invariant} *)
}

val default_inject : Numerics.Failpoint.spec list
(** Low-probability DC-convergence and execution failures, trigger-capped
    so every scenario still completes. *)

val default_options : options
(** 20 campaigns, seed 0, auto jobs, {!default_inject}, all invariants,
    no self-test. *)

type violation = {
  v_campaign : int;
  v_invariant : string;
  v_spec : Scenario.spec;  (** the originally drawn failing spec *)
  v_shrunk : Scenario.spec;  (** minimal spec still failing *)
  v_shrink_steps : int;  (** accepted shrink steps from spec to shrunk *)
  v_detail : string;  (** failure detail at the shrunk spec *)
}

type tally = { t_name : string; t_pass : int; t_skip : int; t_fail : int }

type report = {
  r_options : options;
  r_scenarios : int;
  r_dense_scenarios : int;  (** scenarios drawn on the dense backend *)
  r_sparse_scenarios : int;  (** scenarios drawn on the sparse backend *)
  r_dense_guard_notes : int;
      (** dense scenarios large enough to trip
          {!Circuit.Mna.dense_guard_note} *)
  r_build_failures : int;  (** scenarios whose build or base run raised *)
  r_checks_run : int;
  r_checks_passed : int;
  r_checks_skipped : int;
  r_tallies : tally list;  (** per-invariant outcome counts *)
  r_violations : violation list;
}

val run :
  ?progress:(campaign:int -> total:int -> unit) ->
  ?note:(string -> unit) ->
  options ->
  (report, string) result
(** Run the campaigns.  [Error] only on invalid options (an unknown
    invariant name in [checks]); invariant violations are reported in
    the result, not as an error.  [note] receives advisory messages
    (currently the {!Circuit.Mna.dense_guard_note} for oversized dense
    scenarios); it defaults to dropping them — the CLI forwards them to
    stderr. *)

val clean : report -> bool
(** No violations and no build failures. *)

val report_json : report -> string
(** Deterministic JSON rendering (no timing, no host data): identical
    options produce identical bytes. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary including shrunk counterexamples. *)
