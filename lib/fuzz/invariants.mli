(** Engine invariants checked by fuzz campaigns.

    Each invariant takes a built scenario plus its base (sequential,
    injection-free) engine run and either passes, skips (vacuous for
    this scenario), or fails with a human-readable detail:

    - [session-roundtrip] — results survive serialize/parse byte-stably,
      in both the plain and the trailered checkpoint form;
    - [parallel-merge] — a parallel run is bit-identical to the
      sequential run (session bytes, rung stats, quarantine reports);
    - [compaction-no-loss] — compaction at delta 0.1 never loses the
      detection of a fault its own optimal test detected, and never
      grows the test set;
    - [coverage-monotone] — a detected fault stays detected when its
      impact is intensified 4x (vacuously skipped when the intensified
      circuit does not simulate);
    - [inject-contract] — under failure injection, every dictionary
      fault is accounted for exactly once, quarantine reports stay
      within the dictionary, and {!Testgen.Engine.exit_status} honours
      the 0/3 contract;
    - [inject-parity] — sequential and parallel runs under the same
      injection agree bit-for-bit;
    - [crash-safety] — a run torn mid-checkpoint-write (via the
      [session.torn_write] failure point) recovers with
      {!Testgen.Session.checkpoint_resume} and finishes to a checkpoint
      file byte-identical to an uninterrupted run's;
    - [continuation-compat] — warm-start continuation keeps every
      fault's outcome flavour and winning configuration, with critical
      impacts within a factor 1.25. *)

type outcome = Pass | Skip of string | Fail of string

type ctx = {
  built : Scenario.built;
  run : Testgen.Engine.run;  (** the base sequential, injection-free run *)
  jobs : int;  (** executor width for the parallel invariants (>= 1) *)
  inject : Numerics.Failpoint.spec list;
      (** failure sites for the injection invariants *)
  inject_seed : int64;
}

val make_ctx :
  jobs:int ->
  inject:Numerics.Failpoint.spec list ->
  inject_seed:int64 ->
  Scenario.spec ->
  ctx
(** Build the scenario and its base run.  May raise if the scenario
    itself cannot be built or run (callers treat that as a finding). *)

type t = { name : string; check : ctx -> outcome }

val all : t list
(** The production invariants, in a fixed documented order. *)

val self_test_invariant : t
(** A deliberately planted violation (fails whenever
    [fault_count >= 2]); campaigns run it only in self-test mode to
    prove the find-and-shrink pipeline works end to end. *)

val names : string list
(** Names of {!all}, for CLI validation and reports. *)
