(** Fuzzed test-generation scenarios.

    A scenario {!spec} is a small, fully-deterministic description of one
    randomized end-to-end problem: a macro topology, a weighted subsample
    of its fault universe, and a handful of randomly-parameterized DC
    test configurations with random tolerance floors.  {!build} expands a
    spec into evaluators and a dictionary ready for {!Testgen.Engine.run};
    the expansion draws every value from {!Numerics.Rng} streams keyed by
    the spec itself, so equal specs build bit-identical scenarios — the
    property {!shrink}ing and counterexample replay rely on. *)

type topology =
  | Rc_ladder of int  (** passive ladder with the given section count *)
  | Ota
  | Sallen_key
  | Sk_chain of int
      (** buffered Sallen-Key chain ({!Macros.Filter_chain.sk_chain}) —
          fuzzed up to 16 stages, a 49-node / 66-unknown system *)
  | Ota_cascade of int
      (** gm-RC cascade ({!Macros.Filter_chain.ota_cascade}) — fuzzed up
          to 32 stages, a 65-node system *)

type spec = {
  topology : topology;
  backend : Circuit.Mna.backend;
      (** linear-algebra engine the evaluators compile with; results are
          backend-independent, so every invariant must hold on either *)
  fault_count : int;  (** faults drawn from the macro's universe, >= 1 *)
  bridge_weight : int;  (** percent chance each draw prefers a bridge *)
  config_count : int;  (** fuzzed DC configurations, >= 1 *)
  levels : int;  (** DC levels (return values) per configuration, >= 1 *)
  floor_exp : int;  (** tester accuracy floor is [10^-floor_exp] volts *)
  value_seed : int;  (** stream selector for all value draws *)
}

val minimal : spec
(** The smallest scenario: 1-section ladder, 1 bridge fault, 1
    single-level configuration — the fixed point of {!shrink}. *)

val to_string : spec -> string
(** Compact one-line form, e.g. ["rc2/f3/bw75/c2/l1/e3/v417"]; sparse
    specs carry a trailing ["/sp"] (dense renders as before). *)

val pp : Format.formatter -> spec -> unit

val size : spec -> int
(** Scenario cost measure; every {!shrink} candidate is strictly
    smaller, so greedy shrinking terminates. *)

type built = {
  spec : spec;
  macro : Macros.Macro.t;
  configs : Testgen.Test_config.t list;
  dictionary : Faults.Dictionary.t;
  evaluators : Testgen.Evaluator.t list;
}

val build : ?continuation:bool -> spec -> built
(** Expand a spec (deterministically) into a runnable scenario:
    floor-only tolerance boxes, the fast execution profile, compiled
    evaluators.  [continuation] (default false) enables warm-start
    continuation, the variant the continuation-compatibility invariant
    compares against. *)

val evaluators_of :
  ?continuation:bool ->
  ?backend:Circuit.Mna.backend ->
  Macros.Macro.t ->
  Testgen.Test_config.t list ->
  Testgen.Evaluator.t list
(** The evaluator construction used by {!build}, exposed so invariants
    can rebuild fresh evaluators for the same scenario.  [backend]
    defaults to dense; {!build} passes the spec's own. *)

val generate_options : Testgen.Generate.options
(** Reduced optimizer budgets used for all fuzz engine runs. *)

val gen : Numerics.Rng.t -> spec
(** Draw a random spec (bounded sizes, RC-ladder-heavy topology mix). *)

val shrink : spec -> spec list
(** Strictly smaller candidate specs, smallest first, deduplicated.
    Empty exactly at {!minimal}-like fixed points. *)

val qcheck_gen : spec QCheck.Gen.t

val arbitrary : spec QCheck.arbitrary
(** QCheck arbitrary with printing and shrinking wired in. *)
