open Testgen

type outcome = Pass | Skip of string | Fail of string

type ctx = {
  built : Scenario.built;
  run : Engine.run;  (** the base sequential, injection-free run *)
  jobs : int;
  inject : Numerics.Failpoint.spec list;
  inject_seed : int64;
}

let base_run ?executor ?resume ?checkpoint built =
  Engine.run ~options:Scenario.generate_options ?executor ?resume ?checkpoint
    ~evaluators:built.Scenario.evaluators built.Scenario.dictionary

let make_ctx ~jobs ~inject ~inject_seed spec =
  let built = Scenario.build spec in
  { built; run = base_run built; jobs; inject; inject_seed }

let fail fmt = Printf.ksprintf (fun m -> Fail m) fmt

(* engine runs compare equal when their persisted form, their rung
   statistics and their quarantine reports all agree *)
let runs_agree label (a : Engine.run) (b : Engine.run) =
  let ids r =
    List.map (fun d -> d.Resilience.diag_fault_id) r.Engine.failed_faults
  in
  if not (String.equal (Session.to_string a.results) (Session.to_string b.results))
  then fail "%s: session bytes differ" label
  else if a.rung_stats <> b.rung_stats then
    fail "%s: rung stats differ" label
  else if ids a <> ids b then
    fail "%s: quarantine reports differ (%s vs %s)" label
      (String.concat "," (ids a)) (String.concat "," (ids b))
  else Pass

(* -- session-roundtrip -------------------------------------------------- *)

let session_roundtrip ctx =
  let text = Session.to_string ctx.run.Engine.results in
  match Session.of_string text with
  | Error m -> fail "plain form does not parse back: %s" m
  | Ok rt ->
      if not (String.equal (Session.to_string rt) text) then
        Fail "plain roundtrip is not byte-stable"
      else begin
        let ck = Session.to_checkpoint_string ctx.run.Engine.results in
        match Session.of_string ck with
        | Error m -> fail "checkpoint form does not parse back: %s" m
        | Ok rt ->
            if not (String.equal (Session.to_string rt) text) then
              Fail "checkpoint roundtrip changes the results"
            else Pass
      end

(* -- parallel-merge ----------------------------------------------------- *)

let parallel_merge ctx =
  let jobs = if ctx.jobs > 1 then ctx.jobs else 2 in
  let prun = base_run ~executor:(Parallel.executor ~jobs) ctx.built in
  runs_agree (Printf.sprintf "jobs=%d vs sequential" jobs) ctx.run prun

(* -- compaction-no-loss ------------------------------------------------- *)

let compaction_no_loss ctx =
  let result =
    Compactor.compact ~delta:0.1 ~evaluators:ctx.built.Scenario.evaluators
      ctx.built.Scenario.dictionary ctx.run
  in
  let detected_before =
    List.filter_map
      (fun r ->
        match r.Generate.outcome with
        | Generate.Unique { dictionary_sensitivity; _ }
          when dictionary_sensitivity < 0. ->
            Some r.Generate.fault_id
        | _ -> None)
      ctx.run.Engine.results
  in
  let lost =
    List.filter
      (fun fid ->
        List.exists
          (fun d ->
            String.equal d.Coverage.det_fault_id fid && d.Coverage.detected_by = [])
          result.Compactor.coverage.Coverage.detections)
      detected_before
  in
  if lost <> [] then
    fail "compaction at delta 0.1 lost detection of: %s"
      (String.concat ", " lost)
  else if
    List.length result.Compactor.compact_tests > result.Compactor.original_test_count
  then Fail "compact set larger than the original test set"
  else Pass

(* -- coverage-monotone -------------------------------------------------- *)

let coverage_monotone ctx =
  let evaluator_for id =
    List.find_opt
      (fun ev -> Evaluator.config_id ev = id)
      ctx.built.Scenario.evaluators
  in
  let violations, checked =
    List.fold_left
      (fun (bad, n) r ->
        match r.Generate.outcome with
        | Generate.Unique { config_id; params; dictionary_sensitivity; _ }
          when dictionary_sensitivity < 0. -> begin
            match evaluator_for config_id with
            | None -> (bad, n)
            | Some ev -> begin
                let harder =
                  Faults.Fault.intensify r.Generate.dictionary_fault ~factor:4.
                in
                match Evaluator.sensitivity ev harder params with
                | s when s < 0. -> (bad, n + 1)
                | s ->
                    ( Printf.sprintf "%s: S=%.3g at dictionary impact but S=%.3g at 4x intensity"
                        r.Generate.fault_id dictionary_sensitivity s
                      :: bad,
                      n + 1 )
                | exception Execute.Execution_failure _ ->
                    (* vacuous: the intensified circuit does not simulate;
                       the sentinel path inside [sensitivity] already
                       covers the common case *)
                    (bad, n)
              end
          end
        | _ -> (bad, n))
      ([], 0) ctx.run.Engine.results
  in
  if violations <> [] then
    fail "detection not monotone in fault impact: %s"
      (String.concat "; " (List.rev violations))
  else if checked = 0 then Skip "no detected fault to intensify"
  else Pass

(* -- inject-contract ---------------------------------------------------- *)

let injected_run ?executor ctx =
  Numerics.Failpoint.with_failpoints ~seed:ctx.inject_seed ctx.inject
    (fun () -> base_run ?executor ctx.built)

let inject_contract ctx =
  if ctx.inject = [] then Skip "no failure sites configured"
  else begin
    let size = Faults.Dictionary.size ctx.built.Scenario.dictionary in
    let r = injected_run ctx in
    let n_results = List.length r.Engine.results in
    let n_failed = List.length r.Engine.failed_faults in
    let dict_ids =
      List.map
        (fun e -> e.Faults.Dictionary.fault_id)
        (Faults.Dictionary.entries ctx.built.Scenario.dictionary)
    in
    let failed_ids =
      List.map (fun d -> d.Resilience.diag_fault_id) r.Engine.failed_faults
    in
    if List.length r.Engine.reports <> size then
      fail "%d reports for %d dictionary faults" (List.length r.Engine.reports) size
    else if n_results + n_failed <> size then
      fail "results (%d) + quarantined (%d) != dictionary size (%d)" n_results
        n_failed size
    else if List.exists (fun id -> not (List.mem id dict_ids)) failed_ids then
      Fail "quarantine names a fault outside the dictionary"
    else if List.sort_uniq compare failed_ids <> List.sort compare failed_ids
    then Fail "duplicate quarantine reports"
    else begin
      let expected = if n_failed = 0 then 0 else Engine.exit_quarantined in
      if Engine.exit_status r <> expected then
        fail "exit status %d, expected %d (quarantined %d)"
          (Engine.exit_status r) expected n_failed
      else Pass
    end
  end

(* -- inject-parity ------------------------------------------------------ *)

let inject_parity ctx =
  if ctx.inject = [] then Skip "no failure sites configured"
  else begin
    let jobs = if ctx.jobs > 1 then ctx.jobs else 2 in
    let seq = injected_run ctx in
    let par = injected_run ~executor:(Parallel.executor ~jobs) ctx in
    runs_agree (Printf.sprintf "injected jobs=%d vs sequential" jobs) seq par
  end

(* -- crash-safety ------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "atpg_fuzz" ".session" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

(* Kill-mid-write campaign: run with a checkpoint that tears (via the
   session.torn_write failpoint) while appending block [tear_at], recover
   with checkpoint_resume, finish the dictionary, and require the
   recovered file to be byte-identical to an uninterrupted run's. *)
let crash_safety ctx =
  let size = Faults.Dictionary.size ctx.built.Scenario.dictionary in
  (* vary the tear point across scenarios, deterministically *)
  let tear_rng =
    Numerics.Rng.of_key
      ~seed:(Int64.of_int ctx.built.Scenario.spec.Scenario.value_seed)
      ~key:"fuzz.tear"
  in
  let tear_at = Numerics.Rng.int tear_rng ~bound:(size + 1) in
  with_temp_file (fun ref_path ->
      with_temp_file (fun torn_path ->
          (* uninterrupted reference *)
          let reference =
            match Session.checkpoint_create ~path:ref_path with
            | Error m -> Error m
            | Ok ck ->
                let _run =
                  base_run ~checkpoint:(Session.checkpoint_append ck) ctx.built
                in
                Session.checkpoint_close ck;
                Ok (read_file ref_path)
          in
          match reference with
          | Error m -> fail "reference checkpoint failed: %s" m
          | Ok reference -> begin
              (* torn run: arm the failpoint just before block [tear_at] *)
              match Session.checkpoint_create ~path:torn_path with
              | Error m -> fail "torn checkpoint create failed: %s" m
              | Ok ck -> begin
                  let count = ref 0 in
                  let checkpoint r =
                    if !count = tear_at then
                      Numerics.Failpoint.configure_local ~seed:ctx.inject_seed
                        [ Numerics.Failpoint.fail_always "session.torn_write" ];
                    incr count;
                    Session.checkpoint_append ck r
                  in
                  let torn =
                    match base_run ~checkpoint ctx.built with
                    | (_ : Engine.run) -> false
                    | exception Session.Torn_write -> true
                  in
                  Numerics.Failpoint.disable_local ();
                  if torn then Session.checkpoint_abort ck
                  else Session.checkpoint_close ck;
                  if (not torn) && tear_at < size then
                    fail "torn_write failpoint armed at block %d never fired"
                      tear_at
                  else begin
                    (* recover and finish *)
                    match Session.checkpoint_resume ~path:torn_path with
                    | Error m -> fail "resume after tear failed: %s" m
                    | Ok (ck, salvaged) ->
                        if List.length salvaged <> min tear_at size then begin
                          Session.checkpoint_close ck;
                          fail "salvaged %d blocks, expected %d"
                            (List.length salvaged) (min tear_at size)
                        end
                        else begin
                          let (_ : Engine.run) =
                            base_run ~resume:salvaged
                              ~checkpoint:(Session.checkpoint_append ck)
                              ctx.built
                          in
                          Session.checkpoint_close ck;
                          let recovered = read_file torn_path in
                          if String.equal recovered reference then Pass
                          else
                            fail
                              "recovered checkpoint differs from the \
                               uninterrupted run (tear at block %d: %d vs %d \
                               bytes)"
                              tear_at
                              (String.length recovered)
                              (String.length reference)
                        end
                  end
                end
            end))

(* -- continuation-compat ------------------------------------------------ *)

let continuation_compat ctx =
  let cont_built = Scenario.build ~continuation:true ctx.built.Scenario.spec in
  let crun = base_run cont_built in
  let pair =
    try
      Some
        (List.combine ctx.run.Engine.results crun.Engine.results)
    with Invalid_argument _ -> None
  in
  match pair with
  | None ->
      fail "continuation run produced %d results, baseline %d"
        (List.length crun.Engine.results)
        (List.length ctx.run.Engine.results)
  | Some pairs ->
      let bad =
        List.filter_map
          (fun (a, b) ->
            if not (String.equal a.Generate.fault_id b.Generate.fault_id) then
              Some (a.Generate.fault_id ^ ": fault order differs")
            else
              match (a.Generate.outcome, b.Generate.outcome) with
              | ( Generate.Unique { config_id = ca; critical_impact = ia; _ },
                  Generate.Unique { config_id = cb; critical_impact = ib; _ } )
                ->
                  if ca <> cb then
                    Some
                      (Printf.sprintf "%s: winner #%d vs #%d" a.Generate.fault_id
                         ca cb)
                  else
                    let ratio = Float.max (ia /. ib) (ib /. ia) in
                    if ratio > 1.25 then
                      Some
                        (Printf.sprintf "%s: critical impact ratio %.3f"
                           a.Generate.fault_id ratio)
                    else None
              | Generate.Undetectable _, Generate.Undetectable _ -> None
              | Generate.Unique _, Generate.Undetectable _
              | Generate.Undetectable _, Generate.Unique _ ->
                  Some (a.Generate.fault_id ^ ": outcome flavour differs"))
          pairs
      in
      if bad = [] then Pass
      else fail "continuation incompatible: %s" (String.concat "; " bad)

(* -- self-test ----------------------------------------------------------- *)

(* A deliberately planted violation: fails on every scenario with more
   than one fault.  Campaigns run it only in self-test mode, to prove
   end-to-end that a violated invariant is caught and shrunk to the
   minimal scenario that still trips it (fault_count = 2, everything
   else at its floor). *)
let self_test ctx =
  let s = ctx.built.Scenario.spec in
  if s.Scenario.fault_count >= 2 then
    fail "planted violation: fault_count = %d >= 2" s.Scenario.fault_count
  else Pass

type t = { name : string; check : ctx -> outcome }

let all =
  [
    { name = "session-roundtrip"; check = session_roundtrip };
    { name = "parallel-merge"; check = parallel_merge };
    { name = "compaction-no-loss"; check = compaction_no_loss };
    { name = "coverage-monotone"; check = coverage_monotone };
    { name = "inject-contract"; check = inject_contract };
    { name = "inject-parity"; check = inject_parity };
    { name = "crash-safety"; check = crash_safety };
    { name = "continuation-compat"; check = continuation_compat };
  ]

let self_test_invariant = { name = "self-test"; check = self_test }

let names = List.map (fun i -> i.name) all
