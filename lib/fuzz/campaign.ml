type options = {
  campaigns : int;
  seed : int64;
  jobs : int;
  inject : Numerics.Failpoint.spec list;
  checks : string list option;
  self_test : bool;
}

let default_inject =
  [
    { Numerics.Failpoint.point = "dc.no_convergence"; probability = 0.05; max_triggers = Some 4 };
    { Numerics.Failpoint.point = "execute.observables"; probability = 0.02; max_triggers = Some 4 };
  ]

let default_options =
  {
    campaigns = 20;
    seed = 0L;
    jobs = 0;
    inject = default_inject;
    checks = None;
    self_test = false;
  }

type violation = {
  v_campaign : int;
  v_invariant : string;
  v_spec : Scenario.spec;
  v_shrunk : Scenario.spec;
  v_shrink_steps : int;
  v_detail : string;
}

type tally = { t_name : string; t_pass : int; t_skip : int; t_fail : int }

type report = {
  r_options : options;
  r_scenarios : int;
  r_dense_scenarios : int;
  r_sparse_scenarios : int;
  r_dense_guard_notes : int;
  r_build_failures : int;
  r_checks_run : int;
  r_checks_passed : int;
  r_checks_skipped : int;
  r_tallies : tally list;
  r_violations : violation list;
}

(* The planted self-test invariant rides along whenever [self_test] is
   set, even under a [checks] filter: the filter selects which production
   invariants run, never whether the find-and-shrink pipeline is probed. *)
let invariants_of options =
  let selected =
    match options.checks with
    | None -> Result.Ok Invariants.all
    | Some names -> (
        match
          List.find_opt
            (fun n ->
              not (List.exists (fun i -> i.Invariants.name = n) Invariants.all))
            names
        with
        | Some bad ->
            Result.Error
              (Printf.sprintf "unknown invariant %S (known: %s)" bad
                 (String.concat ", " (List.map (fun i -> i.Invariants.name) Invariants.all)))
        | None ->
            Result.Ok
              (List.filter (fun i -> List.mem i.Invariants.name names) Invariants.all))
  in
  if not options.self_test then selected
  else
    Result.map (fun invs -> invs @ [ Invariants.self_test_invariant ]) selected

let resolve_jobs options =
  if options.jobs > 0 then options.jobs else Testgen.Parallel.default_jobs ()

let spec_of_campaign options i =
  Scenario.gen
    (Numerics.Rng.of_key ~seed:options.seed
       ~key:(Printf.sprintf "fuzz.campaign.%04d" i))

(* Check one invariant against one spec, building the scenario (and its
   base run) from scratch — the replay primitive the shrinker uses.
   Scenario builds are deterministic, so a crash during the build or the
   base run is itself reported as a failure of the invariant under
   test. *)
let check_spec ~jobs ~inject ~inject_seed inv spec =
  match Invariants.make_ctx ~jobs ~inject ~inject_seed spec with
  | ctx -> (
      try inv.Invariants.check ctx
      with e ->
        Invariants.Fail
          (Printf.sprintf "invariant raised %s" (Printexc.to_string e)))
  | exception e ->
      Invariants.Fail
        (Printf.sprintf "scenario build/run raised %s" (Printexc.to_string e))

(* Greedy shrink: walk to the smallest candidate that still fails the
   same invariant, retrying until no candidate fails. *)
let shrink_failure ~jobs ~inject ~inject_seed inv spec detail =
  let rec go spec detail steps =
    let next =
      List.find_map
        (fun c ->
          match check_spec ~jobs ~inject ~inject_seed inv c with
          | Invariants.Fail d -> Some (c, d)
          | Invariants.Pass | Invariants.Skip _ -> None)
        (Scenario.shrink spec)
    in
    match next with
    | Some (c, d) -> go c d (steps + 1)
    | None -> (spec, detail, steps)
  in
  go spec detail 0

let run ?(progress = fun ~campaign:_ ~total:_ -> ())
    ?(note = fun (_ : string) -> ()) options =
  match invariants_of options with
  | Result.Error m -> Result.Error m
  | Result.Ok invariants ->
      let jobs = resolve_jobs options in
      let inject = options.inject in
      let tallies =
        List.map
          (fun i ->
            ref { t_name = i.Invariants.name; t_pass = 0; t_skip = 0; t_fail = 0 })
          invariants
      in
      let tally_of name =
        List.find (fun t -> !t.t_name = name) tallies
      in
      let violations = ref [] in
      let build_failures = ref 0 in
      let checks_run = ref 0 and checks_passed = ref 0 and checks_skipped = ref 0 in
      let dense = ref 0 and sparse = ref 0 in
      let guard_notes = ref 0 in
      for i = 0 to options.campaigns - 1 do
        progress ~campaign:i ~total:options.campaigns;
        let spec = spec_of_campaign options i in
        (match spec.Scenario.backend with
        | Circuit.Mna.Dense -> incr dense
        | Circuit.Mna.Sparse -> incr sparse);
        let inject_seed = Int64.add options.seed (Int64.of_int i) in
        match Invariants.make_ctx ~jobs ~inject ~inject_seed spec with
        | exception _ -> incr build_failures
        | ctx ->
            (* fuzz draws its own backend per scenario, so it is an entry
               path for the dense-size advisory like any CLI route *)
            (match
               Circuit.Mna.dense_guard_note ~backend:spec.Scenario.backend
                 (Macros.Macro.nominal_netlist ctx.Invariants.built.Scenario.macro)
             with
            | Some n ->
                incr guard_notes;
                note (Printf.sprintf "campaign %d (%s): %s" i
                        (Scenario.to_string spec) n)
            | None -> ());
            List.iter
              (fun inv ->
                incr checks_run;
                let t = tally_of inv.Invariants.name in
                let outcome =
                  try inv.Invariants.check ctx
                  with e ->
                    Invariants.Fail
                      (Printf.sprintf "invariant raised %s"
                         (Printexc.to_string e))
                in
                match outcome with
                | Invariants.Pass ->
                    incr checks_passed;
                    t := { !t with t_pass = !t.t_pass + 1 }
                | Invariants.Skip _ ->
                    incr checks_skipped;
                    t := { !t with t_skip = !t.t_skip + 1 }
                | Invariants.Fail detail ->
                    t := { !t with t_fail = !t.t_fail + 1 };
                    let shrunk, detail, steps =
                      shrink_failure ~jobs ~inject ~inject_seed inv spec detail
                    in
                    violations :=
                      {
                        v_campaign = i;
                        v_invariant = inv.Invariants.name;
                        v_spec = spec;
                        v_shrunk = shrunk;
                        v_shrink_steps = steps;
                        v_detail = detail;
                      }
                      :: !violations)
              invariants
      done;
      Result.Ok
        {
          r_options = options;
          r_scenarios = options.campaigns;
          r_dense_scenarios = !dense;
          r_sparse_scenarios = !sparse;
          r_dense_guard_notes = !guard_notes;
          r_build_failures = !build_failures;
          r_checks_run = !checks_run;
          r_checks_passed = !checks_passed;
          r_checks_skipped = !checks_skipped;
          r_tallies = List.map (fun t -> !t) tallies;
          r_violations = List.rev !violations;
        }

let clean report = report.r_violations = [] && report.r_build_failures = 0

(* Deterministic JSON: a pure function of the report (no timing, no
   hostnames), so two runs with the same options produce identical
   bytes — the property the bench determinism check pins. *)
let report_json report =
  let b = Buffer.create 2048 in
  let opts = report.r_options in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"options\": {\"campaigns\": %d, \"seed\": %Ld, \"self_test\": %b, \
        \"inject\": [%s]},\n"
       opts.campaigns opts.seed opts.self_test
       (String.concat ", "
          (List.map
             (fun s ->
               Printf.sprintf "%S" (Numerics.Failpoint.spec_to_string s))
             opts.inject)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"scenarios\": %d,\n  \"backends\": {\"dense\": %d, \"sparse\": \
        %d},\n  \"dense_guard_notes\": %d,\n  \"build_failures\": %d,\n  \
        \"checks_run\": %d,\n  \"checks_passed\": %d,\n  \
        \"checks_skipped\": %d,\n"
       report.r_scenarios report.r_dense_scenarios report.r_sparse_scenarios
       report.r_dense_guard_notes report.r_build_failures report.r_checks_run
       report.r_checks_passed report.r_checks_skipped);
  Buffer.add_string b "  \"invariants\": {\n";
  List.iteri
    (fun i t ->
      Buffer.add_string b
        (Printf.sprintf "    %S: {\"pass\": %d, \"skip\": %d, \"fail\": %d}%s\n"
           t.t_name t.t_pass t.t_skip t.t_fail
           (if i = List.length report.r_tallies - 1 then "" else ",")))
    report.r_tallies;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"violations\": [";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"campaign\": %d, \"invariant\": %S, \"spec\": %S, \
            \"shrunk\": %S, \"shrink_steps\": %d, \"detail\": %S}"
           v.v_campaign v.v_invariant
           (Scenario.to_string v.v_spec)
           (Scenario.to_string v.v_shrunk)
           v.v_shrink_steps v.v_detail))
    report.r_violations;
  if report.r_violations <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Buffer.contents b

let pp_report ppf report =
  Format.fprintf ppf
    "fuzz: %d scenario(s) (%d dense, %d sparse), %d check(s): %d passed, %d \
     skipped@."
    report.r_scenarios report.r_dense_scenarios report.r_sparse_scenarios
    report.r_checks_run report.r_checks_passed report.r_checks_skipped;
  if report.r_build_failures > 0 then
    Format.fprintf ppf "  %d scenario(s) failed to build@."
      report.r_build_failures;
  List.iter
    (fun t ->
      Format.fprintf ppf "  %-20s pass %-4d skip %-4d fail %d@." t.t_name
        t.t_pass t.t_skip t.t_fail)
    report.r_tallies;
  List.iter
    (fun v ->
      Format.fprintf ppf
        "  VIOLATION %s (campaign %d)@.    spec    %s@.    shrunk  %s (%d \
         step(s))@.    detail  %s@."
        v.v_invariant v.v_campaign
        (Scenario.to_string v.v_spec)
        (Scenario.to_string v.v_shrunk)
        v.v_shrink_steps v.v_detail)
    report.r_violations
