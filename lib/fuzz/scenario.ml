open Testgen

type topology =
  | Rc_ladder of int
  | Ota
  | Sallen_key
  | Sk_chain of int
  | Ota_cascade of int

type spec = {
  topology : topology;
  backend : Circuit.Mna.backend;
  fault_count : int;
  bridge_weight : int;
  config_count : int;
  levels : int;
  floor_exp : int;
  value_seed : int;
}

let minimal =
  {
    topology = Rc_ladder 1;
    backend = Circuit.Mna.Dense;
    fault_count = 1;
    bridge_weight = 100;
    config_count = 1;
    levels = 1;
    floor_exp = 2;
    value_seed = 0;
  }

let topology_to_string = function
  | Rc_ladder n -> Printf.sprintf "rc%d" n
  | Ota -> "ota"
  | Sallen_key -> "sk"
  | Sk_chain n -> Printf.sprintf "skc%d" n
  | Ota_cascade n -> Printf.sprintf "otac%d" n

(* The dense suffix is empty so pre-backend spec strings (and the pinned
   shrink fixed points) render unchanged. *)
let backend_to_string = function
  | Circuit.Mna.Dense -> ""
  | Circuit.Mna.Sparse -> "/sp"

let to_string s =
  Printf.sprintf "%s/f%d/bw%d/c%d/l%d/e%d/v%d%s"
    (topology_to_string s.topology)
    s.fault_count s.bridge_weight s.config_count s.levels s.floor_exp
    s.value_seed
    (backend_to_string s.backend)

let pp ppf s = Format.pp_print_string ppf (to_string s)

(* The spec's contribution to scenario cost, used to order shrink
   candidates and guarantee shrink termination (every candidate is
   strictly smaller). *)
let size s =
  let topo =
    match s.topology with
    | Rc_ladder n -> n
    | Ota -> 10
    | Sallen_key -> 14
    | Sk_chain n -> 16 + (4 * n)
    | Ota_cascade n -> 16 + (2 * n)
  in
  topo + (4 * s.fault_count) + s.config_count + s.levels + s.floor_exp
  + (if s.backend = Circuit.Mna.Sparse then 1 else 0)
  + (if s.bridge_weight < 100 then 2 else 0)
  + if s.value_seed <> 0 then 1 else 0

let macro_of_topology = function
  | Rc_ladder n -> Macros.Rc_ladder.macro ~sections:n
  | Ota -> Macros.Ota.macro
  | Sallen_key -> Macros.Sallen_key.macro
  | Sk_chain n -> Macros.Filter_chain.sk_chain ~stages:n
  | Ota_cascade n -> Macros.Filter_chain.ota_cascade ~stages:n

(* Stimulus range the macro accepts at its control node (input
   common-mode range for the active macros; the linear chains pass DC
   straight through, so any range works). *)
let stimulus_range = function
  | Rc_ladder _ | Sk_chain _ | Ota_cascade _ -> (1.0, 4.0)
  | Ota -> (1.2, 3.8)
  | Sallen_key -> (1.5, 3.5)

(* -- deterministic build ------------------------------------------------ *)

(* Everything below is a pure function of the spec: value draws come from
   Rng streams keyed by the spec's own value_seed, never by the campaign
   seed, so a shrunk spec reproduces its scenario exactly. *)

let value_rng s key = Numerics.Rng.of_key ~seed:(Int64.of_int s.value_seed) ~key

let configs_of_spec s macro =
  let lo, hi = stimulus_range s.topology in
  let control_node = match s.topology with Ota -> "inp" | _ -> "in" in
  List.init s.config_count (fun j ->
      let rng = value_rng s (Printf.sprintf "config.%d" j) in
      (* a sub-range of the stimulus window, wide enough for Brent *)
      let a = Numerics.Rng.uniform rng ~lo ~hi in
      let b = Numerics.Rng.uniform rng ~lo ~hi in
      let plo = Float.min a b and phi = Float.max a b in
      let plo, phi =
        if phi -. plo < 0.5 *. (hi -. lo) then
          let mid = 0.5 *. (plo +. phi) in
          let half = 0.25 *. (hi -. lo) in
          (Float.max lo (mid -. half), Float.min hi (mid +. half))
        else (plo, phi)
      in
      let seed_v = 0.5 *. (plo +. phi) in
      let step = (phi -. plo) /. float_of_int (s.levels + 1) in
      let floor_v = 10. ** float_of_int (-s.floor_exp) in
      Test_config.create ~id:(900 + j)
        ~name:(Printf.sprintf "Fuzz DC sweep %d" j)
        ~macro_type:macro.Macros.Macro.macro_type
        ~control_node
        ~params:
          [
            Test_param.create ~name:"v" ~units:"V" ~lower:plo ~upper:phi
              ~seed:seed_v;
          ]
        ~analysis:
          (Test_config.Dc_levels
             (fun v ->
               List.init s.levels (fun k ->
                   let lvl =
                     Float.min phi (v.(0) +. (float_of_int k *. step))
                   in
                   Circuit.Waveform.Dc lvl)))
        ~returns:Test_config.Per_component
        ~return_names:(List.init s.levels (Printf.sprintf "V(out)@%d"))
        ~accuracy_floor:(List.init s.levels (fun _ -> floor_v))
        ~summary:"fuzzed dc levels at the control node")

let dictionary_of_spec s macro =
  let universe = Macros.Macro.fault_universe macro in
  let bridges, pinholes =
    List.partition
      (fun f -> Faults.Fault.kind f = `Bridge)
      universe
  in
  let rng = value_rng s "faults" in
  let pick pool =
    match !pool with
    | [] -> None
    | l ->
        let i = Numerics.Rng.int rng ~bound:(List.length l) in
        let f = List.nth l i in
        pool := List.filteri (fun j _ -> j <> i) l;
        Some f
  in
  let bridges = ref bridges and pinholes = ref pinholes in
  let rec draw acc n =
    if n = 0 then List.rev acc
    else
      let want_bridge = Numerics.Rng.int rng ~bound:100 < s.bridge_weight in
      let first, second =
        if want_bridge then (bridges, pinholes) else (pinholes, bridges)
      in
      match pick first with
      | Some f -> draw (f :: acc) (n - 1)
      | None -> (
          match pick second with
          | Some f -> draw (f :: acc) (n - 1)
          | None -> List.rev acc)
  in
  (* dictionary order is universe order, not draw order, so the engine's
     fault ordering stays stable under shrinking *)
  let chosen = draw [] s.fault_count in
  let in_chosen f = List.exists (Faults.Fault.equal_site f) chosen in
  Faults.Dictionary.of_faults (List.filter in_chosen universe)

type built = {
  spec : spec;
  macro : Macros.Macro.t;
  configs : Test_config.t list;
  dictionary : Faults.Dictionary.t;
  evaluators : Evaluator.t list;
}

let evaluators_of ?(continuation = false) ?backend macro configs =
  let nominal =
    Experiments.Setup.target_of_macro macro Macros.Process.nominal
  in
  List.map
    (fun config ->
      Evaluator.create ~profile:Execute.fast_profile ~continuation ?backend
        config ~nominal
        ~box_model:(Tolerance.floor_only config))
    configs

let build ?continuation s =
  let macro = macro_of_topology s.topology in
  let configs = configs_of_spec s macro in
  let dictionary = dictionary_of_spec s macro in
  let evaluators =
    evaluators_of ?continuation ~backend:s.backend macro configs
  in
  { spec = s; macro; configs; dictionary; evaluators }

(* Reduced optimizer budgets: fuzz campaigns trade optimality for
   scenario throughput — the invariants under test do not depend on how
   tight the optimum is. *)
let generate_options =
  {
    Generate.default_options with
    Generate.bracket_points = 4;
    optimizer_tol = 1e-2;
    powell_max_iter = 2;
    max_impact_steps = 16;
  }

(* -- generation --------------------------------------------------------- *)

let gen rng =
  let topology =
    (* RC ladders dominate: they solve fast, so campaigns spend most of
       their budget on scenario diversity rather than Newton iterations.
       The filter chains reach 64+ node netlists (Sk_chain 16 is a
       49-node/66-unknown system, Ota_cascade 32 a 65-node one). *)
    let d = Numerics.Rng.int rng ~bound:12 in
    if d < 7 then Rc_ladder (1 + Numerics.Rng.int rng ~bound:4)
    else if d < 8 then Sk_chain (1 + Numerics.Rng.int rng ~bound:16)
    else if d < 9 then Ota_cascade (1 + Numerics.Rng.int rng ~bound:32)
    else if d < 11 then Ota
    else Sallen_key
  in
  let backend =
    (* large linear chains mostly exercise the sparse engine; the small
       topologies mostly stay on the dense baseline *)
    let d = Numerics.Rng.int rng ~bound:4 in
    match topology with
    | Sk_chain _ | Ota_cascade _ ->
        if d < 3 then Circuit.Mna.Sparse else Circuit.Mna.Dense
    | Rc_ladder _ | Ota | Sallen_key ->
        if d < 1 then Circuit.Mna.Sparse else Circuit.Mna.Dense
  in
  {
    topology;
    backend;
    fault_count = 1 + Numerics.Rng.int rng ~bound:4;
    bridge_weight = 25 * Numerics.Rng.int rng ~bound:5;
    config_count = 1 + Numerics.Rng.int rng ~bound:2;
    levels = 1 + Numerics.Rng.int rng ~bound:2;
    floor_exp = 2 + Numerics.Rng.int rng ~bound:3;
    value_seed = Numerics.Rng.int rng ~bound:10_000;
  }

(* -- shrinking ---------------------------------------------------------- *)

let shrink s =
  let candidates =
    (match s.topology with
    | Sallen_key -> [ { s with topology = Ota }; { s with topology = Rc_ladder 1 } ]
    | Ota -> [ { s with topology = Rc_ladder 1 } ]
    | Sk_chain n | Ota_cascade n ->
        { s with topology = Rc_ladder 1 }
        ::
        (if n > 1 then
           let smaller k =
             match s.topology with
             | Sk_chain _ -> Sk_chain k
             | _ -> Ota_cascade k
           in
           [
             { s with topology = smaller 1 };
             { s with topology = smaller (n / 2) };
             { s with topology = smaller (n - 1) };
           ]
         else [])
    | Rc_ladder n when n > 1 ->
        [ { s with topology = Rc_ladder 1 }; { s with topology = Rc_ladder (n - 1) } ]
    | Rc_ladder _ -> [])
    @ (if s.backend = Circuit.Mna.Sparse then
         [ { s with backend = Circuit.Mna.Dense } ]
       else [])
    @ (if s.fault_count > 1 then
         [
           { s with fault_count = 1 };
           { s with fault_count = s.fault_count / 2 };
           { s with fault_count = s.fault_count - 1 };
         ]
       else [])
    @ (if s.bridge_weight < 100 then [ { s with bridge_weight = 100 } ] else [])
    @ (if s.config_count > 1 then [ { s with config_count = 1 } ] else [])
    @ (if s.levels > 1 then [ { s with levels = 1 } ] else [])
    @ (if s.floor_exp > 2 then [ { s with floor_exp = 2 } ] else [])
    @ if s.value_seed <> 0 then [ { s with value_seed = 0 } ] else []
  in
  (* strictly decreasing size, deduplicated, smallest first *)
  List.sort_uniq compare candidates
  |> List.filter (fun c -> size c < size s)
  |> List.sort (fun a b -> compare (size a) (size b))

(* -- QCheck integration ------------------------------------------------- *)

let qcheck_gen =
  QCheck.Gen.map
    (fun i ->
      gen (Numerics.Rng.of_key ~seed:(Int64.of_int i) ~key:"fuzz.qcheck"))
    (QCheck.Gen.int_bound 1_000_000)

let arbitrary =
  QCheck.make ~print:to_string
    ~shrink:(fun s -> QCheck.Iter.of_list (shrink s))
    qcheck_gen
