open Circuit

let max_stages = 40
let max_ota_stages = 64

let stage_r = 10e3
let stage_c1 = 200e-12
let stage_c2 = 100e-12
let ota_gm = 1e-4
let ota_r = 10e3
let ota_c = 1e-9

(* -- Sallen-Key chain ---------------------------------------------------- *)

(* Stage s of the chain: input node [p] (the previous stage's output),
   internal nodes [a] and [b], buffered output [o].  The unity buffer is
   an ideal VCVS, keeping the whole chain linear: the batched DC-levels
   solver applies, and the stage still has the Sallen-Key shape (series
   R1-R2, feedback C1 to the buffered output, C2 to ground). *)

let sk_out ~stages s = if s = stages then "out" else Printf.sprintf "s%do" s

let sk_stage_nodes ~stages s =
  let a = Printf.sprintf "s%da" s and b = Printf.sprintf "s%db" s in
  (a, b, sk_out ~stages s)

let sk_fault_nodes ~stages =
  "0" :: "in" :: List.init stages (fun i -> sk_out ~stages (i + 1))

let sk_build ~stages (p : Process.point) =
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let devices =
    Device.Vsource
      { name = "vin_src"; plus = "in"; minus = "0"; wave = Waveform.Dc 2.5 }
    :: List.concat
         (List.init stages (fun i ->
              let s = i + 1 in
              let input = if s = 1 then "in" else sk_out ~stages (s - 1) in
              let a, b, o = sk_stage_nodes ~stages s in
              [
                Device.Resistor
                  { name = Printf.sprintf "r%da" s; a = input; b = a;
                    ohms = r stage_r };
                Device.Resistor
                  { name = Printf.sprintf "r%db" s; a; b; ohms = r stage_r };
                Device.Capacitor
                  { name = Printf.sprintf "c%da" s; a; b = o;
                    farads = c stage_c1 };
                Device.Capacitor
                  { name = Printf.sprintf "c%db" s; a = b; b = "0";
                    farads = c stage_c2 };
                Device.Vcvs
                  { name = Printf.sprintf "buf%d" s; plus = o; minus = "0";
                    ctrl_plus = b; ctrl_minus = "0"; gain = 1.0 };
              ]))
  in
  Netlist.empty
    ~title:(Printf.sprintf "Sallen-Key filter chain (%d stages)" stages)
  |> Fun.flip Netlist.add_all devices

let sk_chain ~stages =
  if stages < 1 || stages > max_stages then
    invalid_arg
      (Printf.sprintf "Filter_chain.sk_chain: stages %d outside [1, %d]"
         stages max_stages);
  {
    Macro.macro_name = Printf.sprintf "sk_chain%d" stages;
    macro_type = "SK-filter-chain";
    description =
      Printf.sprintf
        "%d-stage Sallen-Key low-pass chain with ideal unity buffers \
         (R = 10 kOhm, C1 = 200 pF, C2 = 100 pF per stage)"
        stages;
    build = sk_build ~stages;
    fault_nodes = sk_fault_nodes ~stages;
    stimulus_source = "vin_src";
    observe_node = "out";
  }

(* -- OTA cascade --------------------------------------------------------- *)

(* Stage s: a transconductor (VCCS, gm = 100 uS) from the previous
   stage's output into a 10 kOhm load at node [g<s>], then an RC
   post-filter to the stage output [f<s>].  gm * R = 1, so the DC gain
   magnitude is 1 per stage and the cascaded operating point stays in
   range at any depth. *)

let ota_out ~stages s = if s = stages then "out" else Printf.sprintf "f%d" s

(* Bridges grow quadratically in the fault-node list, so deep cascades
   subsample their stage outputs — about thirty sites keeps the
   exhaustive universe in the hundreds rather than the thousands. *)
let ota_fault_nodes ~stages =
  let stride = max 1 ((stages + 29) / 30) in
  let picks =
    List.filteri (fun i _ -> (i + 1) mod stride = 0 || i + 1 = stages)
      (List.init stages (fun i -> ota_out ~stages (i + 1)))
  in
  "0" :: "in" :: List.sort_uniq compare picks

let ota_build ~stages (p : Process.point) =
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let devices =
    Device.Vsource
      { name = "vin_src"; plus = "in"; minus = "0"; wave = Waveform.Dc 2.5 }
    :: List.concat
         (List.init stages (fun i ->
              let s = i + 1 in
              let input = if s = 1 then "in" else ota_out ~stages (s - 1) in
              let g = Printf.sprintf "g%d" s in
              let f = ota_out ~stages s in
              [
                Device.Vccs
                  { name = Printf.sprintf "gm%d" s; plus = g; minus = "0";
                    ctrl_plus = input; ctrl_minus = "0"; gm = ota_gm };
                Device.Resistor
                  { name = Printf.sprintf "rl%d" s; a = g; b = "0";
                    ohms = r ota_r };
                Device.Resistor
                  { name = Printf.sprintf "rf%d" s; a = g; b = f;
                    ohms = r ota_r };
                Device.Capacitor
                  { name = Printf.sprintf "cf%d" s; a = f; b = "0";
                    farads = c ota_c };
              ]))
  in
  Netlist.empty ~title:(Printf.sprintf "OTA cascade (%d stages)" stages)
  |> Fun.flip Netlist.add_all devices

let ota_cascade ~stages =
  if stages < 1 || stages > max_ota_stages then
    invalid_arg
      (Printf.sprintf "Filter_chain.ota_cascade: stages %d outside [1, %d]"
         stages max_ota_stages);
  {
    Macro.macro_name = Printf.sprintf "ota_cascade%d" stages;
    macro_type = "OTA-cascade";
    description =
      Printf.sprintf
        "%d-stage gm-RC cascade (gm = 100 uS into 10 kOhm, unity DC gain \
         per stage, RC post-filter)"
        stages;
    build = ota_build ~stages;
    fault_nodes = ota_fault_nodes ~stages;
    stimulus_source = "vin_src";
    observe_node = "out";
  }
