open Circuit

(* Ladders beyond ~46 sections cross the dense-backend size guard
   (Mna.dense_guard_nodes); the sparse backend handles them well, so the
   cap only bounds the quadratic fault-dictionary growth. *)
let max_sections = 64

let node i = if i = 0 then "in" else Printf.sprintf "n%d" i

let section_r = 10e3
let section_c = 1e-9

let cutoff_hz ~sections =
  ignore sections;
  1. /. (2. *. Float.pi *. section_r *. section_c)

let fault_nodes ~sections =
  "0" :: List.init sections (fun i -> node i) @ [ "out" ]

let build ~sections (p : Process.point) =
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let devices =
    Device.Vsource
      { name = "vin_src"; plus = "in"; minus = "0"; wave = Waveform.Dc 2.5 }
    :: List.concat
         (List.init sections (fun i ->
              let a = node i in
              let b = if i = sections - 1 then "out" else node (i + 1) in
              [
                Device.Resistor
                  { name = Printf.sprintf "r%d" (i + 1); a; b; ohms = r section_r };
                Device.Capacitor
                  {
                    name = Printf.sprintf "c%d" (i + 1);
                    a = b;
                    b = "0";
                    farads = c section_c;
                  };
              ]))
  in
  Netlist.empty ~title:(Printf.sprintf "RC ladder (%d sections)" sections)
  |> Fun.flip Netlist.add_all devices

let macro ~sections =
  if sections < 1 || sections > max_sections then
    invalid_arg
      (Printf.sprintf "Rc_ladder.macro: sections %d outside [1, %d]" sections
         max_sections);
  {
    Macro.macro_name = Printf.sprintf "rc_ladder%d" sections;
    macro_type = "RC-ladder";
    description =
      Printf.sprintf
        "Passive %d-section RC low-pass ladder (R = 10 kOhm, C = 1 nF per \
         section)"
        sections;
    build = build ~sections;
    fault_nodes = fault_nodes ~sections;
    stimulus_source = "vin_src";
    observe_node = "out";
  }
