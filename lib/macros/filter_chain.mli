(** Large parametric filter-chain macro families.

    Two linear (MOSFET-free) chains sized for the sparse MNA backend:
    cascades deep enough to produce 100+-node netlists and bridge
    universes in the hundreds, while staying exactly solvable in one
    factorization — the family the batched multi-fault DC-levels path
    ({!Core.Execute.compiled_dc_levels_batch}) accepts.

    Unknown counts: a Sallen-Key chain contributes 4 unknowns per stage
    (three nodes plus the buffer's branch current), an OTA cascade 2
    nodes per stage; both add the ["in"] node and the stimulus source's
    branch on top.  The DC transfer of either chain is unity in
    magnitude, so operating points remain in the stimulus range at any
    depth. *)

val max_stages : int
(** Upper bound on Sallen-Key [stages] (40 — a 162-unknown system). *)

val max_ota_stages : int
(** Upper bound on OTA-cascade [stages] (64 — a 130-unknown system). *)

val sk_fault_nodes : stages:int -> string list
(** Ground, ["in"], and every stage's buffered output. *)

val sk_build : stages:int -> Process.point -> Circuit.Netlist.t

val sk_chain : stages:int -> Macro.t
(** [macro_type = "SK-filter-chain"], stimulus ["vin_src"] at ["in"],
    observation ["out"]: [stages] second-order R-R-C1-C2 sections, each
    buffered by an ideal unity VCVS.
    @raise Invalid_argument when [stages] is outside [1, max_stages]. *)

val ota_fault_nodes : stages:int -> string list
(** Ground, ["in"], and stage outputs subsampled to about thirty sites
    (the final ["out"] always included), keeping the quadratic bridge
    universe in the hundreds at full depth. *)

val ota_build : stages:int -> Process.point -> Circuit.Netlist.t

val ota_cascade : stages:int -> Macro.t
(** [macro_type = "OTA-cascade"], stimulus ["vin_src"] at ["in"],
    observation ["out"]: [stages] transconductor stages (VCCS into a
    resistive load, RC post-filter), unity DC gain magnitude per stage.
    @raise Invalid_argument when [stages] is outside
    [1, max_ota_stages]. *)
