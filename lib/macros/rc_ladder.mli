(** Parametric passive RC low-pass ladder macro.

    A chain of [sections] identical R-C sections (R = 10 kOhm, C = 1 nF,
    per-section pole ~ 15.9 kHz) between the stimulus at ["in"] and the
    observation node ["out"].  Purely passive, so it solves fast and
    scales linearly in node count — the size knob the fuzz harness turns
    to sweep scenario complexity, and a macro whose fault universe
    (bridges over every ladder node) grows quadratically with
    [sections]. *)

val max_sections : int
(** Upper bound on [sections] (64), keeping fault universes tractable —
    the quadratic bridge dictionary, not the linear solve, is the cost
    that grows. *)

val cutoff_hz : sections:int -> float
(** Per-section pole frequency, [1 / (2 pi R C)]. *)

val fault_nodes : sections:int -> string list

val build : sections:int -> Process.point -> Circuit.Netlist.t

val macro : sections:int -> Macro.t
(** [macro_type = "RC-ladder"], stimulus ["vin_src"] at node ["in"],
    observation ["out"].
    @raise Invalid_argument when [sections] is outside [1, max_sections]. *)
