(* Name-to-macro resolution shared by every front end (CLI subcommands,
   the serve daemon, tests), so "rc10" means the same circuit on every
   route. *)

let parametric name ~prefix ~make =
  let n = String.length prefix in
  if String.length name > n && String.sub name 0 n = prefix then
    match int_of_string_opt (String.sub name n (String.length name - n)) with
    | Some k -> (
        try Some (Ok (make k)) with Invalid_argument e -> Some (Error e))
    | None -> None
  else None

let find name =
  match name with
  | "iv" -> Ok Iv_converter.macro
  | "ota" -> Ok Ota.macro
  | "sk" -> Ok Sallen_key.macro
  | other -> (
      let families =
        [
          parametric other ~prefix:"rc" ~make:(fun n ->
              Rc_ladder.macro ~sections:n);
          parametric other ~prefix:"skc" ~make:(fun n ->
              Filter_chain.sk_chain ~stages:n);
          parametric other ~prefix:"otac" ~make:(fun n ->
              Filter_chain.ota_cascade ~stages:n);
        ]
      in
      match List.find_map Fun.id families with
      | Some r -> r
      | None ->
          Error
            (Printf.sprintf
               "unknown macro %S (try iv, ota, sk, rc<N>, skc<N> or otac<N>)"
               other))
