(** Macro lookup by CLI name.

    One registry resolves the macro vocabulary everywhere a name crosses
    a process boundary — CLI flags, serve-protocol requests, test
    scripts — so ["rc10"] denotes the same circuit on every route. *)

val find : string -> (Macro.t, string) result
(** Fixed names [iv] / [ota] / [sk], plus the parametric families
    [rc<N>] (RC ladder), [skc<N>] (Sallen-Key filter chain) and
    [otac<N>] (OTA cascade).  [Error] carries a user-facing diagnostic
    for unknown names or out-of-range family sizes. *)
