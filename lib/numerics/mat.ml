type t = { r : int; c : int; a : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Mat.create";
  { r; c; a = Array.make (r * c) 0. }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.a.((i * n) + i) <- 1.
  done;
  m

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then create 0 0
  else begin
    let c = Array.length rows.(0) in
    let m = create r c in
    Array.iteri
      (fun i row ->
        if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows";
        Array.blit row 0 m.a (i * c) c)
      rows;
    m
  end

let rows m = m.r
let cols m = m.c
let get m i j = m.a.((i * m.c) + j)
let set m i j x = m.a.((i * m.c) + j) <- x
let add_to m i j x = m.a.((i * m.c) + j) <- m.a.((i * m.c) + j) +. x
let copy m = { m with a = Array.copy m.a }
let fill m x = Array.fill m.a 0 (Array.length m.a) x

let mul_vec m v =
  if Vec.dim v <> m.c then invalid_arg "Mat.mul_vec: dimension mismatch";
  Vec.init m.r (fun i ->
      let s = ref 0. in
      for j = 0 to m.c - 1 do
        s := !s +. (m.a.((i * m.c) + j) *. v.(j))
      done;
      !s)

let mul x y =
  if x.c <> y.r then invalid_arg "Mat.mul: dimension mismatch";
  let z = create x.r y.c in
  for i = 0 to x.r - 1 do
    for k = 0 to x.c - 1 do
      let xik = x.a.((i * x.c) + k) in
      if xik <> 0. then
        for j = 0 to y.c - 1 do
          z.a.((i * z.c) + j) <- z.a.((i * z.c) + j) +. (xik *. y.a.((k * y.c) + j))
        done
    done
  done;
  z

let transpose m =
  let t = create m.c m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      t.a.((j * t.c) + i) <- m.a.((i * m.c) + j)
    done
  done;
  t

exception Singular of int

type lu = {
  n : int;
  lu : float array;
  piv : int array;
  mutable sign : float;
  mutable factored : bool;
}

(* Crout-style in-place LU with partial pivoting. *)
let lu_factor m =
  if m.r <> m.c then invalid_arg "Mat.lu_factor: not square";
  let n = m.r in
  let a = Array.copy m.a in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* pivot search in column k *)
    let p = ref k in
    let best = ref (Float.abs a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs a.((i * n) + k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !p <> k then begin
      for j = 0 to n - 1 do
        let t = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- t;
      sign := -. !sign
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let lik = a.((i * n) + k) /. akk in
      a.((i * n) + k) <- lik;
      if lik <> 0. then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (lik *. a.((k * n) + j))
        done
    done
  done;
  { n; lu = a; piv; sign = !sign; factored = true }

(* Caller-owned factorization workspace for the restamp-many hot path:
   [factor_in_place] overwrites it without allocating, so one workspace
   serves every Newton iteration of an analysis.  The elimination is the
   same partial-pivoting Crout sweep as {!lu_factor} — identical
   arithmetic, identical pivot choices, identical [Singular] payloads —
   a contract pinned by the QCheck parity properties in the test suite. *)
let lu_workspace n =
  if n < 0 then invalid_arg "Mat.lu_workspace";
  {
    n;
    lu = Array.make (n * n) 0.;
    piv = Array.init n (fun i -> i);
    sign = 1.;
    factored = false;
  }

let lu_size ws = ws.n

let lu_pivots ws =
  if not ws.factored then invalid_arg "Mat.lu_pivots: workspace not factored";
  Array.copy ws.piv

let factor_in_place m ws =
  if m.r <> m.c then invalid_arg "Mat.factor_in_place: not square";
  if m.r <> ws.n then invalid_arg "Mat.factor_in_place: size mismatch";
  let n = ws.n in
  let a = ws.lu in
  Array.blit m.a 0 a 0 (n * n);
  let piv = ws.piv in
  for i = 0 to n - 1 do
    piv.(i) <- i
  done;
  ws.sign <- 1.;
  ws.factored <- false;
  for k = 0 to n - 1 do
    let p = ref k in
    let best = ref (Float.abs a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs a.((i * n) + k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !p <> k then begin
      for j = 0 to n - 1 do
        let t = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- t;
      ws.sign <- -.ws.sign
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let lik = a.((i * n) + k) /. akk in
      a.((i * n) + k) <- lik;
      if lik <> 0. then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (lik *. a.((k * n) + j))
        done
    done
  done;
  ws.factored <- true

let solve_into ws b x =
  if not ws.factored then invalid_arg "Mat.solve_into: workspace not factored";
  let { n; lu = a; piv; _ } = ws in
  if Vec.dim b <> n then invalid_arg "Mat.solve_into: dimension mismatch";
  if Vec.dim x <> n then invalid_arg "Mat.solve_into: bad output dimension";
  if b == x then invalid_arg "Mat.solve_into: aliased input and output";
  for i = 0 to n - 1 do
    x.(i) <- b.(piv.(i))
  done;
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* backward substitution *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. a.((i * n) + i)
  done

(* Transpose solve against the same held factorization: with PA = LU,
   A^T x = b  ⇔  U^T (L^T (P x)) = b — forward-substitute through U^T
   (divided diagonal), back-substitute through L^T (unit diagonal), then
   undo the row permutation.  One temporary vector is allocated: the
   adjoint solve runs once per gradient, not once per Newton iteration,
   so the allocation never sits on the hot path. *)
let solve_transpose_into ws b x =
  if not ws.factored then
    invalid_arg "Mat.solve_transpose_into: workspace not factored";
  let { n; lu = a; piv; _ } = ws in
  if Vec.dim b <> n then
    invalid_arg "Mat.solve_transpose_into: dimension mismatch";
  if Vec.dim x <> n then
    invalid_arg "Mat.solve_transpose_into: bad output dimension";
  if b == x then
    invalid_arg "Mat.solve_transpose_into: aliased input and output";
  let y = Array.make n 0. in
  (* forward substitution through U^T (lower triangular, divided diagonal) *)
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (a.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !s /. a.((i * n) + i)
  done;
  (* backward substitution through L^T (upper triangular, unit diagonal) *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !s
  done;
  (* P x = y, so row piv.(i) of x receives component i *)
  for i = 0 to n - 1 do
    x.(piv.(i)) <- y.(i)
  done

let lu_blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Mat.lu_blit: size mismatch";
  if not src.factored then invalid_arg "Mat.lu_blit: source not factored";
  Array.blit src.lu 0 dst.lu 0 (src.n * src.n);
  Array.blit src.piv 0 dst.piv 0 src.n;
  dst.sign <- src.sign;
  dst.factored <- true

type rank1 = { r1_n : int; r1_y : float array; r1_w : float array }

let rank1_workspace n =
  if n < 0 then invalid_arg "Mat.rank1_workspace";
  { r1_n = n; r1_y = Array.make n 0.; r1_w = Array.make n 0. }

let rank1_solve ws r1 ~u ~v ~dg ~b ~x =
  if not ws.factored then invalid_arg "Mat.rank1_solve: workspace not factored";
  let n = ws.n in
  if r1.r1_n <> n then invalid_arg "Mat.rank1_solve: scratch size mismatch";
  if Vec.dim u <> n || Vec.dim v <> n || Vec.dim b <> n || Vec.dim x <> n then
    invalid_arg "Mat.rank1_solve: dimension mismatch";
  if b == x then invalid_arg "Mat.rank1_solve: aliased input and output";
  solve_into ws b r1.r1_y;
  solve_into ws u r1.r1_w;
  let vty = Vec.dot v r1.r1_y in
  let vtw = Vec.dot v r1.r1_w in
  let denom = 1. +. (dg *. vtw) in
  (* Guard against catastrophic cancellation: when dg*vtw ~ -1 the
     denominator loses all its significant digits and the update would
     amplify rounding error unboundedly.  The relative test compares the
     surviving magnitude against the magnitude of the terms that cancelled. *)
  if
    (not (Float.is_finite denom))
    || Float.abs denom <= 1e-10 *. (1. +. Float.abs (dg *. vtw))
  then false
  else begin
    let coef = dg *. vty /. denom in
    for i = 0 to n - 1 do
      x.(i) <- r1.r1_y.(i) -. (coef *. r1.r1_w.(i))
    done;
    true
  end

let lu_solve { n; lu = a; piv; _ } b =
  if Vec.dim b <> n then invalid_arg "Mat.lu_solve: dimension mismatch";
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* backward substitution *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. a.((i * n) + i)
  done;
  x

let solve m b = lu_solve (lu_factor m) b

let det m =
  match lu_factor m with
  | exception Singular _ -> 0.
  | { n; lu; sign; _ } ->
      let d = ref sign in
      for i = 0 to n - 1 do
        d := !d *. lu.((i * n) + i)
      done;
      !d

let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.r - 1 do
    let s = ref 0. in
    for j = 0 to m.c - 1 do
      s := !s +. Float.abs m.a.((i * m.c) + j)
    done;
    best := Float.max !best !s
  done;
  !best

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
