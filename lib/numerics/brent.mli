(** One-dimensional minimization without derivatives.

    The paper optimizes single-parameter test configurations with Brent's
    method (Brent 1973, ch. 7) and uses it as the line search inside
    Powell's method.  Both routines search a closed interval and never
    evaluate the objective outside it. *)

type result = {
  xmin : float;  (** abscissa of the located minimum *)
  fmin : float;  (** objective value at [xmin] *)
  iterations : int;
      (** loop iterations of the search — the quantity [max_iter] bounds.
          A degenerate interval ([b -. a < 1e-300]) reports 0. *)
  evals : int;  (** objective evaluations spent (≥ [iterations]) *)
}

val golden : ?tol:float -> ?max_iter:int -> f:(float -> float) ->
  a:float -> b:float -> unit -> result
(** Golden-section search on [\[a, b\]].  Robust, linearly convergent;
    used as a cross-check for Brent and in tests.  Spends two seed
    evaluations plus one per iteration: [evals = iterations + 2].
    @raise Invalid_argument if [a > b]. *)

val minimize : ?tol:float -> ?max_iter:int -> f:(float -> float) ->
  a:float -> b:float -> unit -> result
(** Brent's method on [\[a, b\]]: golden-section bracketing combined with
    successive parabolic interpolation.  [tol] is the relative abscissa
    tolerance (default [1e-6]); [max_iter] defaults to 100 and bounds
    [iterations] (one seed evaluation, then at most one per iteration).
    @raise Invalid_argument if [a > b]. *)

val bracket_scan : f:(float -> float) -> a:float -> b:float -> n:int ->
  float * float
(** [bracket_scan ~f ~a ~b ~n] coarsely samples [n+1] equispaced points and
    returns the sub-interval around the best sample — a cheap global phase
    that guards Brent against landing in a secondary local minimum.
    @raise Invalid_argument if [n < 2] or [a > b]. *)
