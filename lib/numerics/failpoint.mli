(** Named failure-injection points.

    The solver stack (DC Newton, transient stepping, test execution)
    queries registered failure points by name; a test configures a set of
    points with trigger probabilities and a seed, then drives the code
    under test and asserts that the recovery layer absorbs the injected
    failures.  In production nothing is configured and every query is two
    atomic loads of false/zero values.

    {b Domain safety.}  An installed configuration is an immutable value;
    the process-global one is published through an [Atomic], and a domain
    may additionally carry a {e local} override ({!with_config},
    {!configure_local}) that shadows the global value for that domain
    only.  Every domain materializes its own site table (per-point {!Rng}
    stream plus query/trigger counters) from its effective configuration
    on first use.  There is no shared mutable state, so concurrent
    queries from different domains are safe, and the draw sequence one
    domain sees is never perturbed by another domain's query traffic.
    Counters reported by {!query_count} / {!trigger_count} are those of
    the calling domain (and, inside {!with_scope}, of the active scope).

    {b Sessions.}  A server running several injected sessions in one
    process gives each session its own domain and brackets its work in
    {!with_config}: the sessions' failure schedules are then fully
    independent, with no cross-talk through the global slot.  Worker
    domains spawned on behalf of a session inherit its override by
    carrying a {!snapshot} across the spawn ({!with_snapshot}).

    {b Determinism.}  Trigger decisions are drawn from per-point {!Rng}
    streams derived from the configuration seed and the point name —
    bit-reproducible for a fixed seed, and independent across points.
    Inside a {!with_scope} bracket the streams (and trigger caps) are
    additionally keyed by the scope, so the failure pattern seen by one
    unit of work (e.g. one fault's generation) is a pure function of
    [(seed, scope key, point, query index)] — the same under sequential
    and parallel execution, whatever the scheduling. *)

type spec = {
  point : string;  (** failure-point name, e.g. ["dc.no_convergence"] *)
  probability : float;  (** chance each query trips, in [\[0, 1\]] *)
  max_triggers : int option;
      (** stop firing after this many trips ([None] = unlimited) *)
}

val fail_always : ?max_triggers:int -> string -> spec
(** Probability-1 spec, the common unit-test shape. *)

val known_points : string list
(** Every failure point instrumented across the solver and session
    stack — the universe the CLI documents and fuzz campaigns draw
    injection sites from. *)

val spec_of_string : string -> (spec, string) result
(** Parse the CLI syntax [NAME[=PROB][@MAX]], e.g.
    ["dc.no_convergence=0.2@3"].  Probabilities outside [\[0, 1\]] and
    malformed numbers are rejected with a diagnostic. *)

val spec_to_string : spec -> string
(** Inverse of {!spec_of_string} (canonical form). *)

val configure : ?seed:int64 -> spec list -> unit
(** Install the given failure points, replacing any previous
    configuration (on every domain).  An empty list is equivalent to
    {!disable}. *)

val disable : unit -> unit
(** Remove all failure points (the initial state). *)

val configure_local : ?seed:int64 -> spec list -> unit
(** Like {!configure}, but installs the configuration as the calling
    domain's local override: other domains keep seeing the global
    configuration.  Imperative form for call sites that arm injection
    mid-flight (the crash-safety invariant arms [session.torn_write]
    from inside a checkpoint callback); prefer {!with_config} where a
    bracket fits. *)

val disable_local : unit -> unit
(** Remove the calling domain's local override, if any, reverting it to
    the process-global configuration. *)

val with_config : ?seed:int64 -> spec list -> (unit -> 'a) -> 'a
(** [with_config specs f] runs [f] with [specs] installed as the calling
    domain's local override, restoring the previous override state
    (including any inner {!configure_local}) on exit.  The bracket other
    sessions cannot observe. *)

type snapshot
(** The calling domain's effective injection configuration, as a value
    that can cross a [Domain.spawn]. *)

val snapshot : unit -> snapshot

val with_snapshot : snapshot -> (unit -> 'a) -> 'a
(** [with_snapshot snap f] runs [f] under the configuration captured by
    [snapshot].  When the captured domain had no local override this is
    exactly [f ()] (workers read the global slot themselves); otherwise
    the override is installed locally for the duration.  Used by the
    parallel executor so worker domains obey the session that spawned
    them. *)

val active : unit -> bool
(** [true] iff at least one failure point is configured for the calling
    domain (its local override when present, the global configuration
    otherwise). *)

val should_fail : string -> bool
(** Called by instrumented code.  [true] when the named point is
    configured, its trigger cap is not exhausted, and this query's random
    draw falls below the probability.  Unconfigured names never fail. *)

val without : (unit -> 'a) -> 'a
(** [without f] runs [f] with failure injection masked on the calling
    domain: every {!should_fail} query inside answers [false] without
    consuming a random draw or counting.  Used around {e nominal}-circuit
    simulation, whose per-fault occurrence depends on memoization-cache
    state (cold per-worker caches in parallel, one warm cache
    sequentially): masking it keeps the injected failure pattern of each
    fault's scope a pure function of the fault, identical at every job
    count.  Nestable; a no-op when nothing is configured. *)

val epoch : unit -> int
(** Number of injections that have fired on the calling domain since it
    started.  Sample it around a call whose genuine failures must be
    absorbed (e.g. a faulty circuit that cannot converge counts as
    detected): when the epoch moved across the call, the failure was
    injected and should be re-raised to the recovery layer instead of
    being interpreted as a result.  Monotone; scope brackets do not reset
    it. *)

val with_scope : key:string -> (unit -> 'a) -> 'a
(** [with_scope ~key f] runs [f] with fresh per-point streams and trigger
    caps derived from the configuration seed {e and} [key].  Decisions
    inside the bracket depend only on [(seed, key, point, query index)],
    never on work done outside it — the seam that keeps failure injection
    per-fault-deterministic under any execution order.  The previous
    streams and counters are restored on exit.  A no-op when nothing is
    configured.  Scopes are per-domain; brackets on different domains do
    not interact. *)

val query_count : string -> int
(** Queries seen by the named point since {!configure}, on the calling
    domain and in the active scope (0 if unknown). *)

val trigger_count : string -> int
(** Failures injected at the named point since {!configure}, on the
    calling domain and in the active scope. *)

val with_failpoints : ?seed:int64 -> spec list -> (unit -> 'a) -> 'a
(** [with_failpoints specs f] runs [f] under [specs] and always restores
    the previous state — the exception-safe shape for tests.  Alias of
    {!with_config}: the installation is domain-local, so concurrent
    brackets on different domains do not interact. *)
