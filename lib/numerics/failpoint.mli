(** Named failure-injection points.

    The solver stack (DC Newton, transient stepping, test execution)
    queries registered failure points by name; a test configures a set of
    points with trigger probabilities and a seed, then drives the code
    under test and asserts that the recovery layer absorbs the injected
    failures.  In production nothing is configured and every query is a
    single branch on a false flag.

    Trigger decisions are drawn from per-point {!Rng} streams derived
    from the configuration seed and the point name, so the pattern of
    failures at one point is independent of how often any other point is
    queried — and bit-reproducible for a fixed seed. *)

type spec = {
  point : string;  (** failure-point name, e.g. ["dc.no_convergence"] *)
  probability : float;  (** chance each query trips, in [\[0, 1\]] *)
  max_triggers : int option;
      (** stop firing after this many trips ([None] = unlimited) *)
}

val fail_always : ?max_triggers:int -> string -> spec
(** Probability-1 spec, the common unit-test shape. *)

val configure : ?seed:int64 -> spec list -> unit
(** Install the given failure points, replacing any previous
    configuration.  An empty list is equivalent to {!disable}. *)

val disable : unit -> unit
(** Remove all failure points (the initial state). *)

val active : unit -> bool
(** [true] iff at least one failure point is configured. *)

val should_fail : string -> bool
(** Called by instrumented code.  [true] when the named point is
    configured, its trigger cap is not exhausted, and this query's random
    draw falls below the probability.  Unconfigured names never fail. *)

val query_count : string -> int
(** Queries seen by the named point since {!configure} (0 if unknown). *)

val trigger_count : string -> int
(** Failures injected at the named point since {!configure}. *)

val with_failpoints : ?seed:int64 -> spec list -> (unit -> 'a) -> 'a
(** [with_failpoints specs f] configures, runs [f], and always restores
    the disabled state — the exception-safe shape for tests. *)
