open Complex

type t = { r : int; c : int; a : Complex.t array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Cmat.create";
  { r; c; a = Array.make (r * c) Complex.zero }

let rows m = m.r
let cols m = m.c
let get m i j = m.a.((i * m.c) + j)
let set m i j x = m.a.((i * m.c) + j) <- x
let add_to m i j x = m.a.((i * m.c) + j) <- Complex.add m.a.((i * m.c) + j) x
let fill m x = Array.fill m.a 0 (Array.length m.a) x

let mul_vec m v =
  if Array.length v <> m.c then invalid_arg "Cmat.mul_vec";
  Array.init m.r (fun i ->
      let s = ref Complex.zero in
      for j = 0 to m.c - 1 do
        s := add !s (mul m.a.((i * m.c) + j) v.(j))
      done;
      !s)

let transpose m =
  let t = create m.c m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      t.a.((j * t.c) + i) <- m.a.((i * m.c) + j)
    done
  done;
  t

(* The fault-impact view of a bridge/pinhole resistor: a symmetric
   conductance delta between two nodes, i.e. the rank-1 stamp
   dg * (e_i - e_j)(e_i - e_j)^T with the ground row/column (index -1)
   dropped.  Applying it in place turns "reassemble the whole AC matrix
   for a new impact resistance" into four element updates. *)
let rank1_update m ~i ~j ~dg =
  if m.r <> m.c then invalid_arg "Cmat.rank1_update: not square";
  if i >= m.r || j >= m.r then invalid_arg "Cmat.rank1_update: index out of range";
  if i >= 0 then add_to m i i dg;
  if j >= 0 then add_to m j j dg;
  if i >= 0 && j >= 0 then begin
    let ndg = Complex.neg dg in
    add_to m i j ndg;
    add_to m j i ndg
  end

exception Singular of int

let solve m b =
  if m.r <> m.c then invalid_arg "Cmat.solve: not square";
  if Array.length b <> m.r then invalid_arg "Cmat.solve: dimension mismatch";
  let n = m.r in
  let a = Array.copy m.a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let p = ref k in
    let best = ref (norm a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = norm a.((i * n) + k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !p <> k then begin
      for j = 0 to n - 1 do
        let t = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- t
      done;
      let t = x.(k) in
      x.(k) <- x.(!p);
      x.(!p) <- t
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let lik = div a.((i * n) + k) akk in
      if norm lik > 0. then begin
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- sub a.((i * n) + j) (mul lik a.((k * n) + j))
        done;
        x.(i) <- sub x.(i) (mul lik x.(k))
      end;
      a.((i * n) + k) <- Complex.zero
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := sub !s (mul a.((i * n) + j) x.(j))
    done;
    x.(i) <- div !s a.((i * n) + i)
  done;
  x

(* Transpose solve for adjoint small-signal sensitivities.  Unlike
   {!solve}, which folds the right-hand side into the elimination sweep,
   the transpose system needs the multipliers after the factorization
   finishes, so this variant keeps a true packed LU (multipliers stored
   in the strictly lower triangle, pivot permutation recorded) and then
   runs the transposed triangular sweeps: with [P A = L U],
   [A^T x = b  ⇔  U^T (L^T (P x)) = b].  Plain transpose, no
   conjugation — the adjoint of the MNA system matrix, matching
   {!transpose}. *)
let solve_transpose m b =
  if m.r <> m.c then invalid_arg "Cmat.solve_transpose: not square";
  if Array.length b <> m.r then
    invalid_arg "Cmat.solve_transpose: dimension mismatch";
  let n = m.r in
  let a = Array.copy m.a in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let p = ref k in
    let best = ref (norm a.((k * n) + k)) in
    for i = k + 1 to n - 1 do
      let v = norm a.((i * n) + k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !p <> k then begin
      for j = 0 to n - 1 do
        let t = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- t
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- t
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let lik = div a.((i * n) + k) akk in
      a.((i * n) + k) <- lik;
      if norm lik > 0. then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- sub a.((i * n) + j) (mul lik a.((k * n) + j))
        done
    done
  done;
  let y = Array.make n Complex.zero in
  (* forward substitution through U^T (divided diagonal) *)
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := sub !s (mul a.((j * n) + i) y.(j))
    done;
    y.(i) <- div !s a.((i * n) + i)
  done;
  (* backward substitution through L^T (unit diagonal) *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := sub !s (mul a.((j * n) + i) y.(j))
    done;
    y.(i) <- !s
  done;
  let x = Array.make n Complex.zero in
  for i = 0 to n - 1 do
    x.(piv.(i)) <- y.(i)
  done;
  x
