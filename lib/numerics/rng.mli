(** Deterministic pseudo-random numbers (splitmix64).

    All stochastic parts of the reproduction (process-variation sampling,
    Monte-Carlo tolerance estimation) draw from explicit generator states so
    every report is bit-reproducible. *)

type t

val create : int64 -> t
(** Seeded generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val hash_key : string -> int64
(** Stable FNV-1a hash of a stream name.  Pure (no generator state is
    read or advanced), so it is safe to call from any domain. *)

val of_key : seed:int64 -> key:string -> t
(** Named stream derivation: a generator seeded from [seed] and the
    hashed [key].  Distinct keys yield independent streams for any
    seed; equal [(seed, key)] pairs yield equal streams.  Because the
    derivation is pure, per-item streams (one per fault, one per
    failure point) are reproducible under any evaluation order and any
    number of domains. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, cached pair). *)

val normal : t -> mu:float -> sigma:float -> float
(** Normal with the given mean and standard deviation. *)

val int : t -> bound:int -> int
(** Uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
