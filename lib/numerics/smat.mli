(** Sparse real matrices with a fixed stamp pattern and sparse LU.

    The sparse counterpart of {!Mat} for modified-nodal-analysis systems
    beyond a few tens of unknowns.  A matrix is created once from the
    union of every index pair its stamps can touch (the compile phase of
    the compile-once/restamp-many hot path); {!add_to} then hits a
    precompiled CSR slot by binary search, and {!clear} resets the values
    without touching the pattern.

    The factorization is a right-looking row-major LU with partial
    pivoting that performs the {e same pivot choices and the same
    per-entry update sequence} as {!Mat.factor_in_place}, merely skipping
    the structurally-zero work — so factors, solves and transpose solves
    are bit-identical to the dense path on any pattern.  That is the
    contract that lets the dense and sparse backends produce identical
    detect verdicts and session bytes; it is pinned by the QCheck parity
    suite.

    Two further layers ride on the factorization:
    {ul
    {- {!refactor} — numeric-only refactorization reusing the row
       pattern, fill and pivot order held from a previous
       {!factor_in_place} on the same matrix.  A max-pivot guard verifies
       the held pivot sequence is still what a fresh factorization would
       choose, so a successful refactor is bit-identical to a fresh
       factor (and therefore history-independent); a guard miss returns
       [false] and the caller pays the full symbolic+numeric pass.}
    {- {!min_degree} / {!permute_sym} — fill-reducing minimum-degree
       ordering on the symmetrized pattern.  The default solve path keeps
       the natural MNA ordering (chain-structured macros are already
       near-banded, and reordering would break cross-backend
       bit-identity); the ordering layer serves patterns whose natural
       order fills in catastrophically, and the bench reports its fill
       savings.}} *)

type t
(** A square sparse matrix: fixed CSR pattern, mutable values. *)

val create : int -> (int * int) list -> t
(** [create n entries] is the [n*n] zero matrix whose pattern is the
    given index pairs (duplicates ignored).
    @raise Invalid_argument on a negative size or out-of-range pair. *)

val of_dense : Mat.t -> t
(** Pattern = nonzero entries plus the full diagonal; values copied.
    @raise Invalid_argument if the matrix is not square. *)

val size : t -> int

val nnz : t -> int
(** Number of pattern slots (stored entries, zero or not). *)

val clear : t -> unit
(** Zero all values; the pattern is untouched. *)

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] increments slot [(i,j)] — the MNA stamp primitive.
    @raise Invalid_argument if [(i,j)] is outside the pattern. *)

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument if [(i,j)] is outside the pattern. *)

val get : t -> int -> int -> float
(** [0.] for an in-range index pair outside the pattern. *)

val mul_vec : t -> Vec.t -> Vec.t

val to_dense : t -> Mat.t

val min_degree : t -> int array
(** A fill-reducing elimination order of the symmetrized pattern
    (pattern of [A + A^T]) by the classic greedy minimum-degree rule,
    smallest index winning ties — deterministic.  [perm.(k)] is the
    unknown eliminated at step [k]; feed it to {!permute_sym} to factor
    in that order. *)

val permute_sym : t -> perm:int array -> t
(** [permute_sym a ~perm] is the symmetrically permuted matrix [b] with
    [b(i,j) = a(perm.(i), perm.(j))] — pattern and values.  Factoring
    [b] in natural order factors [a] in the order [perm].
    @raise Invalid_argument if [perm] is not a permutation of the size. *)

type lu
(** A sparse LU workspace: packed row-major L\U factor with its pivot
    permutation, plus the held pattern, fill and column views that
    {!refactor} and {!solve_transpose_into} replay. *)

val lu_workspace : int -> lu
(** Preallocates an (unfactored, pattern-less) workspace.  Row storage
    grows on first factorization and is reused afterwards, so the
    restamp-many loop settles into zero allocation. *)

val lu_size : lu -> int

val lu_pivots : lu -> int array
(** The pivot permutation (copied) — same convention as
    {!Mat.lu_pivots}.  @raise Invalid_argument if unfactored. *)

val factor_in_place : t -> lu -> unit
(** Full symbolic + numeric factorization: discovers fill, chooses
    pivots by the dense partial-pivoting rule, and leaves the pattern
    held for {!refactor}.  Pivot choices, [Singular] payloads and every
    float of the factor are bit-identical to {!Mat.factor_in_place} on
    the dense expansion of the matrix.  After a raise the workspace is
    left unfactored and pattern-less.
    @raise Mat.Singular if the matrix is numerically singular.
    @raise Invalid_argument on a size mismatch. *)

val refactor : t -> lu -> bool
(** [refactor a ws] redoes the numeric factorization on the pattern,
    fill and pivot order held from a previous {!factor_in_place} —
    the restamp-many fast path, skipping symbolic analysis and all fill
    bookkeeping.  The guard re-runs the pivot scan at every step: if the
    held pivot row is still the one fresh partial pivoting would select,
    the replay is bit-identical to {!factor_in_place}; otherwise (or on
    a numerically singular column, or when no pattern is held) it
    returns [false] without raising, and the caller must fall back to
    {!factor_in_place}.  Either way the result observable through the
    solve API is exactly the fresh factorization's — refactorization is
    a pure optimization, invisible to results. *)

val solve_into : lu -> Vec.t -> Vec.t -> unit
(** Bit-identical to {!Mat.solve_into} against the dense factorization
    of the same matrix.
    @raise Invalid_argument on dimension mismatch, aliasing, or an
    unfactored workspace. *)

val solve_transpose_into : lu -> Vec.t -> Vec.t -> unit
(** Bit-identical to {!Mat.solve_transpose_into} — the adjoint
    primitive, solved through the held column views of L and U.
    @raise Invalid_argument on dimension mismatch, aliasing, or an
    unfactored workspace. *)

val lu_blit : src:lu -> dst:lu -> unit
(** Copy a factorization (values, pattern, pivots, column views) into
    another workspace of the same size — the continuation hot path's
    held-factor retention.  Destination storage is grown as needed.
    @raise Invalid_argument on size mismatch or an unfactored source. *)

type block = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t
(** A dense block of right-hand sides / solutions: dimensions
    [n * m] where column [r] is one system.  C layout keeps each
    unknown's row contiguous across the [m] systems, which is the axis
    the blocked solve streams over. *)

val solve_block : lu -> b:block -> x:block -> unit
(** [solve_block ws ~b ~x] solves [A x.(:,r) = b.(:,r)] for every
    column — one triangular-sweep pass over the factor amortized across
    all right-hand sides (the batched multi-fault primitive).  Each
    column's float sequence is identical to {!solve_into} on that
    column, so blocking is invisible to results.  [b] is untouched.
    @raise Invalid_argument on dimension mismatch, aliasing, or an
    unfactored workspace. *)

type stats = {
  full_factorizations : int;  (** symbolic+numeric passes *)
  pattern_reuses : int;  (** successful {!refactor} replays *)
  factor_nnz : int;  (** stored entries of the held L\U factor *)
}

val stats : lu -> stats
(** Lifetime counters and current fill of a workspace — the bench and
    the observability layer read these. *)
