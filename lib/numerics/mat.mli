(** Dense real matrices with LU decomposition.

    Row-major storage.  Sized for modified-nodal-analysis systems of a few
    tens of unknowns, where dense partial-pivoting LU is both simplest and
    fastest. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t

val of_rows : float array array -> t
(** Builds from an array of equal-length rows (copied). *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] increments element [(i,j)] by [x] — the MNA "stamp"
    primitive. *)

val copy : t -> t
val fill : t -> float -> unit

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val mul : t -> t -> t
(** Matrix-matrix product. *)

val transpose : t -> t

exception Singular of int
(** Raised by factorization when a pivot column is numerically zero; the
    payload is the offending elimination step. *)

type lu
(** A packed LU factorization with its pivot permutation. *)

val lu_factor : t -> lu
(** Factor a square matrix.  The input is not modified.
    @raise Singular if the matrix is numerically singular.
    @raise Invalid_argument if the matrix is not square. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve [A x = b] using a previous factorization of [A]. *)

val lu_workspace : int -> lu
(** [lu_workspace n] preallocates a factorization workspace for [n*n]
    systems.  The hot-path pattern is one workspace per analysis,
    refactored in place on every Newton iteration.  The workspace starts
    unfactored; {!solve_into} and {!lu_pivots} reject it until
    {!factor_in_place} succeeds. *)

val factor_in_place : t -> lu -> unit
(** [factor_in_place a ws] factors [a] into [ws] without allocating.
    The input matrix is not modified.  Arithmetic, pivot order and
    {!Singular} payloads are bit-identical to {!lu_factor}.  After a
    {!Singular} raise the workspace is left unfactored.
    @raise Singular if the matrix is numerically singular.
    @raise Invalid_argument on a non-square matrix or size mismatch. *)

val solve_into : lu -> Vec.t -> Vec.t -> unit
(** [solve_into ws b x] solves [A x = b] writing into caller-owned [x]
    ([b] is untouched; [b] and [x] must not alias).  Bit-identical to
    {!lu_solve}.
    @raise Invalid_argument on dimension mismatch, aliasing, or an
    unfactored workspace. *)

val solve_transpose_into : lu -> Vec.t -> Vec.t -> unit
(** [solve_transpose_into ws b x] solves [A^T x = b] against the same
    held factorization that {!solve_into} uses for [A x = b] — the
    adjoint-sensitivity primitive: one extra pair of triangular sweeps
    per gradient instead of one full re-simulation per parameter.  With
    [P A = L U] the transpose system factors as
    [U^T (L^T (P x)) = b]; the routine forward-substitutes through
    [U^T], back-substitutes through the unit-diagonal [L^T], and undoes
    the row permutation.  [b] is untouched; allocates one scratch
    vector (the adjoint path is once-per-gradient, not once-per-Newton).
    @raise Invalid_argument on dimension mismatch, aliasing, or an
    unfactored workspace. *)

val lu_blit : src:lu -> dst:lu -> unit
(** [lu_blit ~src ~dst] copies a factorization into another workspace of
    the same size without allocating — the continuation hot path uses it
    to retain a held factorization across Newton solves that overwrite
    the shared workspace.
    @raise Invalid_argument on size mismatch or an unfactored source. *)

type rank1
(** Scratch vectors for {!rank1_solve} — one per solver, reused across
    calls. *)

val rank1_workspace : int -> rank1
(** [rank1_workspace n] preallocates rank-1 scratch for [n]-dimensional
    systems. *)

val rank1_solve :
  lu -> rank1 -> u:Vec.t -> v:Vec.t -> dg:float -> b:Vec.t -> x:Vec.t -> bool
(** [rank1_solve ws r1 ~u ~v ~dg ~b ~x] solves
    [(A + dg * u * v^T) x = b] in O(n^2) by Sherman–Morrison against the
    held factorization [ws] of [A]: with [y = A^-1 b] and [w = A^-1 u],
    [x = y - (dg * (v.y) / (1 + dg * (v.w))) * w].  Returns [true] on
    success with [x] written; returns [false] without touching [x] when
    the denominator [1 + dg * (v.w)] fails the conditioning guard
    (catastrophic cancellation, i.e. the update is near-singular) — the
    caller must then fall back to a full refactorization, which is
    bit-exact with the ordinary {!factor_in_place}/{!solve_into} path.
    @raise Invalid_argument on dimension mismatch, aliasing of [b] and
    [x], or an unfactored workspace. *)

val lu_size : lu -> int

val lu_pivots : lu -> int array
(** The pivot permutation of a factorization (copied) — row [i] of the
    permuted system came from row [lu_pivots.(i)] of the input. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] factors and solves in one step. *)

val det : t -> float
(** Determinant via LU; [0.] for singular matrices. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val pp : Format.formatter -> t -> unit
