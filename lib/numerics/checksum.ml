(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   The table is built once at module initialization; lookups and the
   per-byte fold use int32 arithmetic only, so results are identical on
   32- and 64-bit platforms. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_sub ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Checksum.crc32_sub";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc32 ?crc s = crc32_sub ?crc s ~pos:0 ~len:(String.length s)
