(* Sparse MNA matrices: fixed CSR pattern with precompiled stamp slots,
   and a right-looking row-major sparse LU whose pivot choices and
   per-entry update sequence replicate the dense Crout sweep of
   [Mat.factor_in_place] exactly.  Skipping structurally-zero work is a
   bitwise no-op (subtracting an exact zero product never changes a
   finite accumulator), so factors and solves are bit-identical to the
   dense backend — the property that lets the two backends produce
   identical verdicts and session bytes, pinned by the parity suite. *)

type t = {
  n : int;
  rp : int array;  (* row pointers, n+1 *)
  ci : int array;  (* column indices, sorted within each row *)
  vx : float array;  (* values, one per pattern slot *)
}

let create n entries =
  if n < 0 then invalid_arg "Smat.create";
  List.iter
    (fun (i, j) ->
      if i < 0 || j < 0 || i >= n || j >= n then
        invalid_arg "Smat.create: entry out of range")
    entries;
  let sorted =
    List.sort_uniq
      (fun (a1, b1) (a2, b2) ->
        if a1 <> a2 then compare a1 a2 else compare b1 b2)
      entries
  in
  let nnz = List.length sorted in
  let rp = Array.make (n + 1) 0 in
  List.iter (fun (i, _) -> rp.(i + 1) <- rp.(i + 1) + 1) sorted;
  for i = 1 to n do
    rp.(i) <- rp.(i) + rp.(i - 1)
  done;
  let ci = Array.make nnz 0 in
  (* row-major sorted order lays entries out exactly in CSR order *)
  List.iteri (fun s (_, j) -> ci.(s) <- j) sorted;
  { n; rp; ci; vx = Array.make nnz 0. }

let size a = a.n
let nnz a = Array.length a.ci
let clear a = Array.fill a.vx 0 (Array.length a.vx) 0.

(* Binary search for (i, j) within row i's sorted column segment. *)
let slot a i j =
  let lo = ref a.rp.(i) and hi = ref (a.rp.(i + 1) - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.ci.(mid) in
    if c = j then res := mid else if c < j then lo := mid + 1 else hi := mid - 1
  done;
  !res

let add_to a i j x =
  if i < 0 || j < 0 || i >= a.n || j >= a.n then
    invalid_arg "Smat.add_to: index out of range";
  let s = slot a i j in
  if s < 0 then invalid_arg "Smat.add_to: entry outside the pattern";
  a.vx.(s) <- a.vx.(s) +. x

let set a i j x =
  if i < 0 || j < 0 || i >= a.n || j >= a.n then
    invalid_arg "Smat.set: index out of range";
  let s = slot a i j in
  if s < 0 then invalid_arg "Smat.set: entry outside the pattern";
  a.vx.(s) <- x

let get a i j =
  if i < 0 || j < 0 || i >= a.n || j >= a.n then
    invalid_arg "Smat.get: index out of range";
  let s = slot a i j in
  if s < 0 then 0. else a.vx.(s)

let mul_vec a v =
  if Vec.dim v <> a.n then invalid_arg "Smat.mul_vec: dimension mismatch";
  Vec.init a.n (fun i ->
      let s = ref 0. in
      for t = a.rp.(i) to a.rp.(i + 1) - 1 do
        s := !s +. (a.vx.(t) *. v.(a.ci.(t)))
      done;
      !s)

let to_dense a =
  let m = Mat.create a.n a.n in
  for i = 0 to a.n - 1 do
    for t = a.rp.(i) to a.rp.(i + 1) - 1 do
      Mat.set m i a.ci.(t) a.vx.(t)
    done
  done;
  m

let of_dense m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Smat.of_dense: not square";
  let n = Mat.rows m in
  let entries = ref [] in
  for i = 0 to n - 1 do
    entries := (i, i) :: !entries;
    for j = 0 to n - 1 do
      if Mat.get m i j <> 0. then entries := (i, j) :: !entries
    done
  done;
  let a = create n !entries in
  for i = 0 to n - 1 do
    for t = a.rp.(i) to a.rp.(i + 1) - 1 do
      a.vx.(t) <- Mat.get m i a.ci.(t)
    done
  done;
  a

(* Greedy minimum degree on the elimination graph of the symmetrized
   pattern, smallest index winning ties — deterministic.  The quadratic
   adjacency representation is deliberate: MNA systems top out in the
   hundreds of unknowns, where simplicity beats a quotient graph. *)
let min_degree a =
  let n = a.n in
  let adj = Array.make_matrix n n false in
  let deg = Array.make n 0 in
  let connect i j =
    if i <> j && not adj.(i).(j) then begin
      adj.(i).(j) <- true;
      adj.(j).(i) <- true;
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1
    end
  in
  for i = 0 to n - 1 do
    for t = a.rp.(i) to a.rp.(i + 1) - 1 do
      connect i a.ci.(t)
    done
  done;
  let alive = Array.make n true in
  let order = Array.make n 0 in
  let nbrs = Array.make n 0 in
  for step = 0 to n - 1 do
    let v = ref (-1) in
    for i = n - 1 downto 0 do
      if alive.(i) && (!v < 0 || deg.(i) <= deg.(!v)) then v := i
    done;
    let v = !v in
    order.(step) <- v;
    alive.(v) <- false;
    let m = ref 0 in
    for i = 0 to n - 1 do
      if alive.(i) && adj.(v).(i) then begin
        adj.(i).(v) <- false;
        deg.(i) <- deg.(i) - 1;
        nbrs.(!m) <- i;
        incr m
      end
    done;
    for p = 0 to !m - 1 do
      for q = p + 1 to !m - 1 do
        connect nbrs.(p) nbrs.(q)
      done
    done
  done;
  order

let permute_sym a ~perm =
  let n = a.n in
  if Array.length perm <> n then invalid_arg "Smat.permute_sym: bad length";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Smat.permute_sym: not a permutation";
      seen.(p) <- true)
    perm;
  let ip = Array.make n 0 in
  Array.iteri (fun k p -> ip.(p) <- k) perm;
  let entries = ref [] in
  for i = 0 to n - 1 do
    for t = a.rp.(i) to a.rp.(i + 1) - 1 do
      entries := (ip.(i), ip.(a.ci.(t))) :: !entries
    done
  done;
  let b = create n !entries in
  for i = 0 to n - 1 do
    for t = a.rp.(i) to a.rp.(i + 1) - 1 do
      set b ip.(i) ip.(a.ci.(t)) a.vx.(t)
    done
  done;
  b

(* The factor workspace holds one packed L\U row per pivot position:
   sorted column indices, the slot of the diagonal, and the row's
   current length.  Row storage grows on demand and is reused across
   factorizations, so the restamp-many loop settles into steady state
   with no allocation.  [cl_*]/[cu_*] are column views over the same
   slots (L below the diagonal, U above), rebuilt per fresh factor and
   replayed by [refactor] and the transpose solve. *)
type lu = {
  ln : int;
  mutable factored : bool;
  mutable has_pattern : bool;
  piv : int array;
  r_len : int array;
  r_ci : int array array;
  r_vx : float array array;
  r_diag : int array;
  mutable cl_ptr : int array;
  mutable cl_row : int array;
  mutable cl_slot : int array;
  mutable cu_ptr : int array;
  mutable cu_row : int array;
  mutable cu_slot : int array;
  mutable sign : float;
  cur : int array;  (* per-row cursor of the fresh elimination *)
  s_ci : int array;  (* merge scratch *)
  s_vx : float array;
  (* Replay schedule compiled against one A pattern (identified
     physically by [pat_rp]/[pat_ci]): per factor row the source slot in
     [a.vx] of each entry (-1 = fill), and per L column entry the row
     slots its U-suffix update lands in.  Turns [refactor] into a flat
     arithmetic replay with no merge scans — the same operations in the
     same order, so still bit-identical to the fresh factorization. *)
  mutable pat_rp : int array;
  mutable pat_ci : int array;
  mutable scat_src : int array array;
  mutable upd : int array array;
  mutable sched_valid : bool;
  mutable n_full : int;
  mutable n_reuse : int;
}

let lu_workspace n =
  if n < 0 then invalid_arg "Smat.lu_workspace";
  {
    ln = n;
    factored = false;
    has_pattern = false;
    piv = Array.init n (fun i -> i);
    r_len = Array.make n 0;
    r_ci = Array.init n (fun _ -> [||]);
    r_vx = Array.init n (fun _ -> [||]);
    r_diag = Array.make n 0;
    cl_ptr = Array.make (n + 1) 0;
    cl_row = [||];
    cl_slot = [||];
    cu_ptr = Array.make (n + 1) 0;
    cu_row = [||];
    cu_slot = [||];
    sign = 1.;
    cur = Array.make n 0;
    s_ci = Array.make n 0;
    s_vx = Array.make n 0.;
    pat_rp = [||];
    pat_ci = [||];
    scat_src = [||];
    upd = [||];
    sched_valid = false;
    n_full = 0;
    n_reuse = 0;
  }

let lu_size ws = ws.ln

let lu_pivots ws =
  if not ws.factored then invalid_arg "Smat.lu_pivots: workspace not factored";
  Array.copy ws.piv

(* Grow row [i] to at least [cap] slots, preserving the first [keep]. *)
let ensure_row ws i cap ~keep =
  if Array.length ws.r_ci.(i) < cap then begin
    let nc = max cap ((2 * Array.length ws.r_ci.(i)) + 8) in
    let nci = Array.make nc 0 and nvx = Array.make nc 0. in
    if keep > 0 then begin
      Array.blit ws.r_ci.(i) 0 nci 0 keep;
      Array.blit ws.r_vx.(i) 0 nvx 0 keep
    end;
    ws.r_ci.(i) <- nci;
    ws.r_vx.(i) <- nvx
  end

let build_columns ws =
  let n = ws.ln in
  let lp = Array.make (n + 1) 0 and up = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let ci_ = ws.r_ci.(i) and d = ws.r_diag.(i) in
    for s = 0 to d - 1 do
      lp.(ci_.(s) + 1) <- lp.(ci_.(s) + 1) + 1
    done;
    for s = d + 1 to ws.r_len.(i) - 1 do
      up.(ci_.(s) + 1) <- up.(ci_.(s) + 1) + 1
    done
  done;
  for c = 1 to n do
    lp.(c) <- lp.(c) + lp.(c - 1);
    up.(c) <- up.(c) + up.(c - 1)
  done;
  let ltot = lp.(n) and utot = up.(n) in
  if Array.length ws.cl_row < ltot then begin
    ws.cl_row <- Array.make ltot 0;
    ws.cl_slot <- Array.make ltot 0
  end;
  if Array.length ws.cu_row < utot then begin
    ws.cu_row <- Array.make utot 0;
    ws.cu_slot <- Array.make utot 0
  end;
  let lpos = Array.copy lp and upos = Array.copy up in
  for i = 0 to n - 1 do
    let ci_ = ws.r_ci.(i) and d = ws.r_diag.(i) in
    for s = 0 to d - 1 do
      let c = ci_.(s) in
      ws.cl_row.(lpos.(c)) <- i;
      ws.cl_slot.(lpos.(c)) <- s;
      lpos.(c) <- lpos.(c) + 1
    done;
    for s = d + 1 to ws.r_len.(i) - 1 do
      let c = ci_.(s) in
      ws.cu_row.(upos.(c)) <- i;
      ws.cu_slot.(upos.(c)) <- s;
      upos.(c) <- upos.(c) + 1
    done
  done;
  ws.cl_ptr <- lp;
  ws.cu_ptr <- up

(* Compile the replay schedule for [refactor]'s fast path against the
   pattern of [a].  Every entry of pivoted row [piv i] of A appears in
   factor row [i] (elimination only adds entries), so the scatter walk
   always consumes the whole A row. *)
let compile_schedule a ws =
  let n = ws.ln in
  let ok = ref true in
  ws.scat_src <-
    Array.init n (fun i ->
        let r = ws.piv.(i) in
        let ci_ = ws.r_ci.(i) and len = ws.r_len.(i) in
        let map = Array.make len (-1) in
        let sa = ref a.rp.(r) in
        let stop = a.rp.(r + 1) in
        for s = 0 to len - 1 do
          if !sa < stop && a.ci.(!sa) = ci_.(s) then begin
            map.(s) <- !sa;
            incr sa
          end
        done;
        if !sa <> stop then ok := false;
        map);
  if !ok then begin
    let total = ws.cl_ptr.(n) in
    let upd = Array.make total [||] in
    for k = 0 to n - 1 do
      let dk = ws.r_diag.(k) in
      let kci = ws.r_ci.(k) and klen = ws.r_len.(k) in
      for s = ws.cl_ptr.(k) to ws.cl_ptr.(k + 1) - 1 do
        let i = ws.cl_row.(s) and c0 = ws.cl_slot.(s) in
        let ci_ = ws.r_ci.(i) in
        let m = klen - dk - 1 in
        let slots = Array.make m 0 in
        let sa = ref (c0 + 1) in
        for t = 0 to m - 1 do
          let cb = kci.(dk + 1 + t) in
          while ci_.(!sa) < cb do
            incr sa
          done;
          slots.(t) <- !sa
        done;
        upd.(s) <- slots
      done
    done;
    ws.upd <- upd;
    ws.pat_rp <- a.rp;
    ws.pat_ci <- a.ci;
    ws.sched_valid <- true
  end
  else ws.sched_valid <- false

(* Full symbolic + numeric factorization.  At step k the candidate
   value of row i is its structural col-k entry (rows without one hold
   an exact zero there, which strict-max pivoting can never select), so
   the pivot scan makes the same choices as the dense sweep.  Fill is
   purely structural: every pivot-row U column is merged into every
   candidate row even when the multiplier is an exact zero — the extra
   subtractions are bitwise no-ops, and they guarantee the held pattern
   depends only on the stamp pattern and the pivot sequence, which is
   what makes [refactor]'s replay exact. *)
let factor_in_place a ws =
  if a.n <> ws.ln then invalid_arg "Smat.factor_in_place: size mismatch";
  let n = a.n in
  ws.factored <- false;
  ws.has_pattern <- false;
  ws.sign <- 1.;
  for i = 0 to n - 1 do
    ws.piv.(i) <- i;
    ws.cur.(i) <- 0;
    let len = a.rp.(i + 1) - a.rp.(i) in
    ensure_row ws i len ~keep:0;
    Array.blit a.ci a.rp.(i) ws.r_ci.(i) 0 len;
    Array.blit a.vx a.rp.(i) ws.r_vx.(i) 0 len;
    ws.r_len.(i) <- len
  done;
  let cand i k =
    if ws.cur.(i) < ws.r_len.(i) && ws.r_ci.(i).(ws.cur.(i)) = k then
      ws.r_vx.(i).(ws.cur.(i))
    else 0.
  in
  for k = 0 to n - 1 do
    let p = ref k in
    let best = ref (Float.abs (cand k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (cand i k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Mat.Singular k);
    if !p <> k then begin
      let p = !p in
      let tc = ws.r_ci.(k) in
      ws.r_ci.(k) <- ws.r_ci.(p);
      ws.r_ci.(p) <- tc;
      let tv = ws.r_vx.(k) in
      ws.r_vx.(k) <- ws.r_vx.(p);
      ws.r_vx.(p) <- tv;
      let t = ws.r_len.(k) in
      ws.r_len.(k) <- ws.r_len.(p);
      ws.r_len.(p) <- t;
      let t = ws.cur.(k) in
      ws.cur.(k) <- ws.cur.(p);
      ws.cur.(p) <- t;
      let t = ws.piv.(k) in
      ws.piv.(k) <- ws.piv.(p);
      ws.piv.(p) <- t;
      ws.sign <- -.ws.sign
    end;
    let dk = ws.cur.(k) in
    ws.r_diag.(k) <- dk;
    let akk = ws.r_vx.(k).(dk) in
    let kci = ws.r_ci.(k) and kvx = ws.r_vx.(k) and klen = ws.r_len.(k) in
    for i = k + 1 to n - 1 do
      if ws.cur.(i) < ws.r_len.(i) && ws.r_ci.(i).(ws.cur.(i)) = k then begin
        let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) and ilen = ws.r_len.(i) in
        let c0 = ws.cur.(i) in
        let lik = vx_.(c0) /. akk in
        vx_.(c0) <- lik;
        (* merge the two sorted suffixes into scratch; fill entries
           compute [0. -. lik *. u] so they match the dense
           [a_ij -. lik *. a_kj] with [a_ij = 0.] bit for bit *)
        let sci = ws.s_ci and svx = ws.s_vx in
        let sa = ref (c0 + 1) and sb = ref (dk + 1) and m = ref 0 in
        while !sa < ilen && !sb < klen do
          let ca = ci_.(!sa) and cb = kci.(!sb) in
          if ca < cb then begin
            sci.(!m) <- ca;
            svx.(!m) <- vx_.(!sa);
            incr sa;
            incr m
          end
          else if ca > cb then begin
            sci.(!m) <- cb;
            svx.(!m) <- 0. -. (lik *. kvx.(!sb));
            incr sb;
            incr m
          end
          else begin
            sci.(!m) <- ca;
            svx.(!m) <- vx_.(!sa) -. (lik *. kvx.(!sb));
            incr sa;
            incr sb;
            incr m
          end
        done;
        while !sa < ilen do
          sci.(!m) <- ci_.(!sa);
          svx.(!m) <- vx_.(!sa);
          incr sa;
          incr m
        done;
        while !sb < klen do
          sci.(!m) <- kci.(!sb);
          svx.(!m) <- 0. -. (lik *. kvx.(!sb));
          incr sb;
          incr m
        done;
        let new_len = c0 + 1 + !m in
        ensure_row ws i new_len ~keep:(c0 + 1);
        Array.blit sci 0 ws.r_ci.(i) (c0 + 1) !m;
        Array.blit svx 0 ws.r_vx.(i) (c0 + 1) !m;
        ws.r_len.(i) <- new_len;
        ws.cur.(i) <- c0 + 1
      end
    done
  done;
  build_columns ws;
  compile_schedule a ws;
  ws.factored <- true;
  ws.has_pattern <- true;
  ws.n_full <- ws.n_full + 1

(* Numeric-only replay on the held pattern and pivot order.  The guard
   re-runs the dense pivot scan against the current values at every
   step: success means fresh partial pivoting would have made exactly
   the held choices, so the replay's arithmetic is the fresh
   factorization's arithmetic — refactorization can never change a
   result, only skip the symbolic bookkeeping. *)
(* Fast replay path: scatter through the precompiled source map, then
   per pivot run the guard scan and the scheduled updates.  Operation
   order and arithmetic are exactly the slow path's (hence the fresh
   factorization's); only the index bookkeeping is precomputed. *)
let refactor_scheduled a ws =
  let n = a.n in
  for i = 0 to n - 1 do
    let map = Array.unsafe_get ws.scat_src i in
    let vx_ = Array.unsafe_get ws.r_vx i in
    let len = Array.unsafe_get ws.r_len i in
    for s = 0 to len - 1 do
      let src = Array.unsafe_get map s in
      Array.unsafe_set vx_ s
        (if src >= 0 then Array.unsafe_get a.vx src else 0.)
    done
  done;
  let guard_ok = ref true in
  let k = ref 0 in
  while !guard_ok && !k < n do
    let kk = !k in
    let dk = Array.unsafe_get ws.r_diag kk in
    let kvx = Array.unsafe_get ws.r_vx kk in
    let best = ref (Float.abs (Array.unsafe_get kvx dk)) in
    let p = ref kk in
    let cl0 = Array.unsafe_get ws.cl_ptr kk in
    let cl1 = Array.unsafe_get ws.cl_ptr (kk + 1) in
    for s = cl0 to cl1 - 1 do
      let row = Array.unsafe_get ws.cl_row s in
      let v =
        Float.abs
          (Array.unsafe_get
             (Array.unsafe_get ws.r_vx row)
             (Array.unsafe_get ws.cl_slot s))
      in
      if v > !best then begin
        best := v;
        p := row
      end
    done;
    if !p <> kk || !best < 1e-300 then guard_ok := false
    else begin
      let akk = Array.unsafe_get kvx dk in
      for s = cl0 to cl1 - 1 do
        let i = Array.unsafe_get ws.cl_row s in
        let c0 = Array.unsafe_get ws.cl_slot s in
        let vx_ = Array.unsafe_get ws.r_vx i in
        let lik = Array.unsafe_get vx_ c0 /. akk in
        Array.unsafe_set vx_ c0 lik;
        let slots = Array.unsafe_get ws.upd s in
        let m = Array.length slots in
        for t = 0 to m - 1 do
          let dst = Array.unsafe_get slots t in
          Array.unsafe_set vx_ dst
            (Array.unsafe_get vx_ dst
            -. (lik *. Array.unsafe_get kvx (dk + 1 + t)))
        done
      done
    end;
    incr k
  done;
  if !guard_ok then begin
    ws.factored <- true;
    ws.n_reuse <- ws.n_reuse + 1;
    true
  end
  else begin
    ws.has_pattern <- false;
    ws.sched_valid <- false;
    false
  end

let refactor a ws =
  if a.n <> ws.ln then invalid_arg "Smat.refactor: size mismatch";
  if not ws.has_pattern then false
  else if ws.sched_valid && a.rp == ws.pat_rp && a.ci == ws.pat_ci then begin
    ws.factored <- false;
    refactor_scheduled a ws
  end
  else begin
    let n = a.n in
    ws.factored <- false;
    (* scatter A's values into the held row patterns (fill restarts at
       zero); bail out if A has an entry the pattern lacks *)
    let compatible = ref true in
    for i = 0 to n - 1 do
      let r = ws.piv.(i) in
      let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) and len = ws.r_len.(i) in
      let sa = ref a.rp.(r) in
      let stop = a.rp.(r + 1) in
      for s = 0 to len - 1 do
        if !sa < stop && a.ci.(!sa) = ci_.(s) then begin
          vx_.(s) <- a.vx.(!sa);
          incr sa
        end
        else vx_.(s) <- 0.
      done;
      if !sa <> stop then compatible := false
    done;
    if not !compatible then begin
      ws.has_pattern <- false;
      false
    end
    else begin
      let guard_ok = ref true in
      let k = ref 0 in
      while !guard_ok && !k < n do
        let kk = !k in
        let dk = ws.r_diag.(kk) in
        let best = ref (Float.abs ws.r_vx.(kk).(dk)) in
        let p = ref kk in
        for s = ws.cl_ptr.(kk) to ws.cl_ptr.(kk + 1) - 1 do
          let v = Float.abs ws.r_vx.(ws.cl_row.(s)).(ws.cl_slot.(s)) in
          if v > !best then begin
            best := v;
            p := ws.cl_row.(s)
          end
        done;
        if !p <> kk || !best < 1e-300 then guard_ok := false
        else begin
          let akk = ws.r_vx.(kk).(dk) in
          let kci = ws.r_ci.(kk) and kvx = ws.r_vx.(kk) in
          let klen = ws.r_len.(kk) in
          for s = ws.cl_ptr.(kk) to ws.cl_ptr.(kk + 1) - 1 do
            let i = ws.cl_row.(s) and c0 = ws.cl_slot.(s) in
            let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) in
            let lik = vx_.(c0) /. akk in
            vx_.(c0) <- lik;
            (* every pivot U column is structurally present in row i:
               the fill guarantee of the fresh pass *)
            let sa = ref (c0 + 1) in
            for sb = dk + 1 to klen - 1 do
              let cb = kci.(sb) in
              while ci_.(!sa) < cb do
                incr sa
              done;
              vx_.(!sa) <- vx_.(!sa) -. (lik *. kvx.(sb))
            done
          done
        end;
        incr k
      done;
      if !guard_ok then begin
        ws.factored <- true;
        ws.n_reuse <- ws.n_reuse + 1;
        true
      end
      else begin
        (* values partially overwritten: the held numeric state is
           garbage, but the structure would still be valid only if the
           pivot order held — it did not, so discard the pattern *)
        ws.has_pattern <- false;
        false
      end
    end
  end

let solve_into ws b x =
  if not ws.factored then invalid_arg "Smat.solve_into: workspace not factored";
  let n = ws.ln in
  if Vec.dim b <> n then invalid_arg "Smat.solve_into: dimension mismatch";
  if Vec.dim x <> n then invalid_arg "Smat.solve_into: bad output dimension";
  if b == x then invalid_arg "Smat.solve_into: aliased input and output";
  for i = 0 to n - 1 do
    x.(i) <- b.(ws.piv.(i))
  done;
  (* forward substitution, unit lower triangle *)
  for i = 1 to n - 1 do
    let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) in
    let s = ref x.(i) in
    for t = 0 to ws.r_diag.(i) - 1 do
      s := !s -. (vx_.(t) *. x.(ci_.(t)))
    done;
    x.(i) <- !s
  done;
  (* backward substitution *)
  for i = n - 1 downto 0 do
    let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) in
    let d = ws.r_diag.(i) in
    let s = ref x.(i) in
    for t = d + 1 to ws.r_len.(i) - 1 do
      s := !s -. (vx_.(t) *. x.(ci_.(t)))
    done;
    x.(i) <- !s /. vx_.(d)
  done

let solve_transpose_into ws b x =
  if not ws.factored then
    invalid_arg "Smat.solve_transpose_into: workspace not factored";
  let n = ws.ln in
  if Vec.dim b <> n then
    invalid_arg "Smat.solve_transpose_into: dimension mismatch";
  if Vec.dim x <> n then
    invalid_arg "Smat.solve_transpose_into: bad output dimension";
  if b == x then
    invalid_arg "Smat.solve_transpose_into: aliased input and output";
  let y = Array.make n 0. in
  (* forward substitution through U^T via the U column view *)
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for t = ws.cu_ptr.(i) to ws.cu_ptr.(i + 1) - 1 do
      let j = ws.cu_row.(t) in
      s := !s -. (ws.r_vx.(j).(ws.cu_slot.(t)) *. y.(j))
    done;
    y.(i) <- !s /. ws.r_vx.(i).(ws.r_diag.(i))
  done;
  (* backward substitution through L^T via the L column view *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for t = ws.cl_ptr.(i) to ws.cl_ptr.(i + 1) - 1 do
      let j = ws.cl_row.(t) in
      s := !s -. (ws.r_vx.(j).(ws.cl_slot.(t)) *. y.(j))
    done;
    y.(i) <- !s
  done;
  for i = 0 to n - 1 do
    x.(ws.piv.(i)) <- y.(i)
  done

let lu_blit ~src ~dst =
  if src.ln <> dst.ln then invalid_arg "Smat.lu_blit: size mismatch";
  if not src.factored then invalid_arg "Smat.lu_blit: source not factored";
  let n = src.ln in
  Array.blit src.piv 0 dst.piv 0 n;
  Array.blit src.r_len 0 dst.r_len 0 n;
  Array.blit src.r_diag 0 dst.r_diag 0 n;
  for i = 0 to n - 1 do
    let len = src.r_len.(i) in
    ensure_row dst i len ~keep:0;
    Array.blit src.r_ci.(i) 0 dst.r_ci.(i) 0 len;
    Array.blit src.r_vx.(i) 0 dst.r_vx.(i) 0 len
  done;
  dst.cl_ptr <- Array.copy src.cl_ptr;
  dst.cl_row <- Array.sub src.cl_row 0 src.cl_ptr.(n);
  dst.cl_slot <- Array.sub src.cl_slot 0 src.cl_ptr.(n);
  dst.cu_ptr <- Array.copy src.cu_ptr;
  dst.cu_row <- Array.sub src.cu_row 0 src.cu_ptr.(n);
  dst.cu_slot <- Array.sub src.cu_slot 0 src.cu_ptr.(n);
  dst.sign <- src.sign;
  dst.factored <- true;
  dst.has_pattern <- true;
  (* the schedule is tied to the source's A pattern; the copy serves
     solves and replays the slow path if ever refactored directly *)
  dst.sched_valid <- false

type block = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t

(* The [block] annotations matter: they monomorphize the element kind
   and layout so every access below compiles to a direct unboxed float
   load/store instead of the polymorphic bigarray primitive. *)
let solve_block ws ~(b : block) ~(x : block) =
  if not ws.factored then
    invalid_arg "Smat.solve_block: workspace not factored";
  let n = ws.ln in
  let m = Bigarray.Array2.dim2 b in
  if Bigarray.Array2.dim1 b <> n || Bigarray.Array2.dim1 x <> n then
    invalid_arg "Smat.solve_block: dimension mismatch";
  if Bigarray.Array2.dim2 x <> m then
    invalid_arg "Smat.solve_block: right-hand-side count mismatch";
  if b == x then invalid_arg "Smat.solve_block: aliased input and output";
  (* Flat views over the c_layout panels: row [i] is the contiguous
     slice [i*m .. i*m+m-1].  All indices below are derived from [n], [m]
     and the factor's own row structure, so the unchecked accesses stay
     in bounds; the per-element arithmetic (and its order) is exactly
     the checked 2-D version's, only the address computation changes. *)
  let xf = Bigarray.reshape_1 (Bigarray.genarray_of_array2 x) (n * m) in
  let bf = Bigarray.reshape_1 (Bigarray.genarray_of_array2 b) (n * m) in
  for i = 0 to n - 1 do
    let src = ws.piv.(i) * m and dst = i * m in
    for r = 0 to m - 1 do
      Bigarray.Array1.unsafe_set xf (dst + r)
        (Bigarray.Array1.unsafe_get bf (src + r))
    done
  done;
  (* same per-column op order as [solve_into], streamed across the
     right-hand sides along the contiguous axis *)
  for i = 1 to n - 1 do
    let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) in
    let xi = i * m in
    for t = 0 to ws.r_diag.(i) - 1 do
      let v = vx_.(t) in
      let xc = ci_.(t) * m in
      for r = 0 to m - 1 do
        Bigarray.Array1.unsafe_set xf (xi + r)
          (Bigarray.Array1.unsafe_get xf (xi + r)
          -. (v *. Bigarray.Array1.unsafe_get xf (xc + r)))
      done
    done
  done;
  for i = n - 1 downto 0 do
    let ci_ = ws.r_ci.(i) and vx_ = ws.r_vx.(i) in
    let d = ws.r_diag.(i) in
    let xi = i * m in
    for t = d + 1 to ws.r_len.(i) - 1 do
      let v = vx_.(t) in
      let xc = ci_.(t) * m in
      for r = 0 to m - 1 do
        Bigarray.Array1.unsafe_set xf (xi + r)
          (Bigarray.Array1.unsafe_get xf (xi + r)
          -. (v *. Bigarray.Array1.unsafe_get xf (xc + r)))
      done
    done;
    let dv = vx_.(d) in
    for r = 0 to m - 1 do
      Bigarray.Array1.unsafe_set xf (xi + r)
        (Bigarray.Array1.unsafe_get xf (xi + r) /. dv)
    done
  done

type stats = {
  full_factorizations : int;
  pattern_reuses : int;
  factor_nnz : int;
}

let stats ws =
  let fill = ref 0 in
  if ws.has_pattern then
    for i = 0 to ws.ln - 1 do
      fill := !fill + ws.r_len.(i)
    done;
  {
    full_factorizations = ws.n_full;
    pattern_reuses = ws.n_reuse;
    factor_nnz = !fill;
  }
