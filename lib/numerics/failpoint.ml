type spec = {
  point : string;
  probability : float;
  max_triggers : int option;
}

let fail_always ?max_triggers point = { point; probability = 1.; max_triggers }

(* The failure points instrumented across the solver stack, kept here so
   the CLI help, the fuzz campaign generator and the documentation all
   name the same set. *)
let known_points =
  [
    "dc.no_convergence";
    "dc.singular";
    "dc.nan_solution";
    "tran.step_failure";
    "execute.observables";
    "session.torn_write";
  ]

(* NAME[=PROB][@MAX], e.g. dc.no_convergence=0.2@3 *)
let spec_of_string s =
  let split c str =
    match String.index_opt str c with
    | None -> (str, None)
    | Some i ->
        ( String.sub str 0 i,
          Some (String.sub str (i + 1) (String.length str - i - 1)) )
  in
  let name_prob, max_s = split '@' s in
  let name, prob_s = split '=' name_prob in
  if String.equal name "" then Error (Printf.sprintf "bad inject spec %S" s)
  else
    match
      ( (match prob_s with None -> Some 1. | Some p -> float_of_string_opt p),
        match max_s with
        | None -> Some None
        | Some m -> Option.map Option.some (int_of_string_opt m) )
    with
    | Some p, Some mt when p >= 0. && p <= 1. ->
        Ok { point = name; probability = p; max_triggers = mt }
    | _ -> Error (Printf.sprintf "bad inject spec %S" s)

let spec_to_string spec =
  Printf.sprintf "%s=%g%s" spec.point spec.probability
    (match spec.max_triggers with
    | None -> ""
    | Some m -> Printf.sprintf "@%d" m)

(* The installed configuration is an immutable value published through an
   Atomic: domains never share mutable site state.  Each domain lazily
   materializes its own site table (per-point Rng stream + counters) from
   the configuration, so query traffic on one domain cannot perturb the
   draws seen by another. *)
type config = { seed : int64; specs : spec list; generation : int }

let root_config = { seed = 0L; specs = []; generation = 0 }
let current : config Atomic.t = Atomic.make root_config
let enabled = Atomic.make false

(* Number of domains currently carrying a local (session-scoped) config
   override.  The production fast path checks [enabled] and this counter
   — two atomic loads — before touching any domain-local state, so a
   process that never injects pays nothing for session scoping. *)
let local_overrides = Atomic.make 0
let generations = Atomic.make 1

type site = {
  spec : spec;
  rng : Rng.t;
  mutable queries : int;
  mutable triggers : int;
}

type state = {
  mutable st_generation : int;
  mutable st_scope : string option;
  mutable st_sites : (string, site) Hashtbl.t;
  mutable st_local : config option;
      (* session-scoped override: when set, this domain ignores the
         process-global configuration entirely *)
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        st_generation = -1;
        st_scope = None;
        st_sites = Hashtbl.create 8;
        st_local = None;
      })

(* Distinct points get distinct Rng streams for any seed; inside a scope
   the stream additionally depends on the scope key, so the failure
   pattern seen by one unit of work (one fault) is a pure function of
   (seed, scope key, point, query index) — independent of every other
   unit of work and of any scheduling. *)
let stream_key ~scope point =
  match scope with None -> point | Some key -> key ^ "\x00" ^ point

let build_sites cfg scope =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let rng = Rng.of_key ~seed:cfg.seed ~key:(stream_key ~scope spec.point) in
      Hashtbl.replace tbl spec.point { spec; rng; queries = 0; triggers = 0 })
    cfg.specs;
  tbl

(* The configuration this domain obeys: its local override when one is
   installed, the process-global value otherwise. *)
let effective_config st =
  match st.st_local with Some cfg -> cfg | None -> Atomic.get current

let refresh () =
  let st = Domain.DLS.get dls in
  let cfg = effective_config st in
  if st.st_generation <> cfg.generation then begin
    st.st_generation <- cfg.generation;
    st.st_sites <- build_sites cfg st.st_scope
  end;
  st

let validate_specs who specs =
  List.iter
    (fun spec ->
      if spec.probability < 0. || spec.probability > 1. then
        invalid_arg
          (Printf.sprintf "Failpoint.%s: %s: probability %g outside [0, 1]"
             who spec.point spec.probability))
    specs

let configure ?(seed = 0L) specs =
  validate_specs "configure" specs;
  let generation = Atomic.fetch_and_add generations 1 in
  Atomic.set current { seed; specs; generation };
  Atomic.set enabled (specs <> [])

let disable () = configure []

(* Install / remove this domain's local override.  The bracket
   [with_config] below saves and restores the whole override slot, so an
   inner [configure_local] is undone at bracket exit. *)
let install_local st cfg =
  (match st.st_local with
  | None -> ignore (Atomic.fetch_and_add local_overrides 1)
  | Some _ -> ());
  st.st_local <- Some cfg;
  st.st_generation <- cfg.generation;
  st.st_scope <- None;
  st.st_sites <- build_sites cfg None

let remove_local st =
  match st.st_local with
  | None -> ()
  | Some _ ->
      ignore (Atomic.fetch_and_add local_overrides (-1));
      st.st_local <- None;
      (* force a rebuild from the global configuration on next use *)
      st.st_generation <- -1;
      st.st_scope <- None;
      st.st_sites <- Hashtbl.create 8

let configure_local ?(seed = 0L) specs =
  validate_specs "configure_local" specs;
  let generation = Atomic.fetch_and_add generations 1 in
  install_local (Domain.DLS.get dls) { seed; specs; generation }

let disable_local () = remove_local (Domain.DLS.get dls)

(* Save/restore of the full override slot, not just push/pop: an inner
   [configure_local]/[disable_local] pair inside the bracket cannot leak
   past it. *)
let with_config ?(seed = 0L) specs f =
  validate_specs "with_config" specs;
  let st = Domain.DLS.get dls in
  let saved_local = st.st_local
  and saved_gen = st.st_generation
  and saved_scope = st.st_scope
  and saved_sites = st.st_sites in
  let generation = Atomic.fetch_and_add generations 1 in
  install_local st { seed; specs; generation };
  Fun.protect
    ~finally:(fun () ->
      (match (st.st_local, saved_local) with
      | Some _, None -> ignore (Atomic.fetch_and_add local_overrides (-1))
      | None, Some _ -> ignore (Atomic.fetch_and_add local_overrides 1)
      | Some _, Some _ | None, None -> ());
      st.st_local <- saved_local;
      st.st_generation <- saved_gen;
      st.st_scope <- saved_scope;
      st.st_sites <- saved_sites)
    f

type snapshot = Inherit_global | Local of config

let snapshot () =
  if Atomic.get local_overrides = 0 then Inherit_global
  else
    match (Domain.DLS.get dls).st_local with
    | None -> Inherit_global
    | Some cfg -> Local cfg

let with_snapshot snap f =
  match snap with
  | Inherit_global -> f ()
  | Local cfg ->
      let st = Domain.DLS.get dls in
      let saved_local = st.st_local
      and saved_gen = st.st_generation
      and saved_scope = st.st_scope
      and saved_sites = st.st_sites in
      install_local st cfg;
      Fun.protect
        ~finally:(fun () ->
          (match saved_local with
          | None -> ignore (Atomic.fetch_and_add local_overrides (-1))
          | Some _ -> ());
          st.st_local <- saved_local;
          st.st_generation <- saved_gen;
          st.st_scope <- saved_scope;
          st.st_sites <- saved_sites)
        f

(* Any injection might be configured anywhere in the process: the guard
   every query checks before touching domain-local state. *)
let maybe_active () = Atomic.get enabled || Atomic.get local_overrides > 0

let active () =
  maybe_active ()
  &&
  let st = Domain.DLS.get dls in
  (effective_config st).specs <> []

(* Per-domain injection mask: queries inside [without] never fail and
   never consume draws, so the draw sequence seen by surrounding scopes
   is independent of how often (or whether) masked work runs — the seam
   that keeps cache-dependent nominal simulations out of the injection
   budget. *)
let masked : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let without f =
  let m = Domain.DLS.get masked in
  if !m then f ()
  else begin
    m := true;
    Fun.protect ~finally:(fun () -> m := false) f
  end

(* Per-domain count of injections that actually fired.  Callers that must
   swallow genuine failures (a faulty circuit that cannot converge is
   trivially detected) sample the epoch around the risky call and
   re-raise when it moved: an injected failure is an infrastructure
   event for the recovery ladder, never evidence of detection. *)
let epoch_cell : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let epoch () = !(Domain.DLS.get epoch_cell)

let should_fail point =
  maybe_active ()
  && (not !(Domain.DLS.get masked))
  &&
  let st = refresh () in
  match Hashtbl.find_opt st.st_sites point with
  | None -> false
  | Some s ->
      s.queries <- s.queries + 1;
      (* always draw, so the decision at query [n] does not depend on how
         many earlier queries were capped away *)
      let draw = Rng.float s.rng in
      let capped =
        match s.spec.max_triggers with
        | Some m -> s.triggers >= m
        | None -> false
      in
      if (not capped) && draw < s.spec.probability then begin
        s.triggers <- s.triggers + 1;
        incr (Domain.DLS.get epoch_cell);
        true
      end
      else false

let with_scope ~key f =
  if not (maybe_active ()) then f ()
  else begin
    let st = refresh () in
    let saved_scope = st.st_scope and saved_sites = st.st_sites in
    st.st_scope <- Some key;
    st.st_sites <- build_sites (effective_config st) (Some key);
    Fun.protect
      ~finally:(fun () ->
        st.st_scope <- saved_scope;
        st.st_sites <- saved_sites)
      f
  end

let find_site point =
  let st = refresh () in
  Hashtbl.find_opt st.st_sites point

let query_count point =
  match find_site point with Some s -> s.queries | None -> 0

let trigger_count point =
  match find_site point with Some s -> s.triggers | None -> 0

let with_failpoints ?seed specs f = with_config ?seed specs f
