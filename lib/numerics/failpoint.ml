type spec = {
  point : string;
  probability : float;
  max_triggers : int option;
}

let fail_always ?max_triggers point = { point; probability = 1.; max_triggers }

type site = {
  spec : spec;
  rng : Rng.t;
  mutable queries : int;
  mutable triggers : int;
}

let sites : (string, site) Hashtbl.t = Hashtbl.create 8
let enabled = ref false

(* FNV-1a over the point name: distinct points get distinct Rng streams
   for any seed, so query traffic at one point cannot shift the failure
   pattern of another. *)
let name_hash name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let disable () =
  Hashtbl.reset sites;
  enabled := false

let configure ?(seed = 0L) specs =
  disable ();
  List.iter
    (fun spec ->
      if spec.probability < 0. || spec.probability > 1. then
        invalid_arg
          (Printf.sprintf "Failpoint.configure: %s: probability %g outside [0, 1]"
             spec.point spec.probability);
      let rng = Rng.create (Int64.add seed (name_hash spec.point)) in
      Hashtbl.replace sites spec.point { spec; rng; queries = 0; triggers = 0 })
    specs;
  enabled := Hashtbl.length sites > 0

let active () = !enabled

let should_fail point =
  !enabled
  &&
  match Hashtbl.find_opt sites point with
  | None -> false
  | Some s ->
      s.queries <- s.queries + 1;
      (* always draw, so the decision at query [n] does not depend on how
         many earlier queries were capped away *)
      let draw = Rng.float s.rng in
      let capped =
        match s.spec.max_triggers with
        | Some m -> s.triggers >= m
        | None -> false
      in
      if (not capped) && draw < s.spec.probability then begin
        s.triggers <- s.triggers + 1;
        true
      end
      else false

let query_count point =
  match Hashtbl.find_opt sites point with Some s -> s.queries | None -> 0

let trigger_count point =
  match Hashtbl.find_opt sites point with Some s -> s.triggers | None -> 0

let with_failpoints ?seed specs f =
  configure ?seed specs;
  Fun.protect ~finally:disable f
