type spec = {
  point : string;
  probability : float;
  max_triggers : int option;
}

let fail_always ?max_triggers point = { point; probability = 1.; max_triggers }

(* The installed configuration is an immutable value published through an
   Atomic: domains never share mutable site state.  Each domain lazily
   materializes its own site table (per-point Rng stream + counters) from
   the configuration, so query traffic on one domain cannot perturb the
   draws seen by another. *)
type config = { seed : int64; specs : spec list; generation : int }

let root_config = { seed = 0L; specs = []; generation = 0 }
let current : config Atomic.t = Atomic.make root_config
let enabled = Atomic.make false
let generations = Atomic.make 1

type site = {
  spec : spec;
  rng : Rng.t;
  mutable queries : int;
  mutable triggers : int;
}

type state = {
  mutable st_generation : int;
  mutable st_scope : string option;
  mutable st_sites : (string, site) Hashtbl.t;
}

let dls : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st_generation = -1; st_scope = None; st_sites = Hashtbl.create 8 })

(* Distinct points get distinct Rng streams for any seed; inside a scope
   the stream additionally depends on the scope key, so the failure
   pattern seen by one unit of work (one fault) is a pure function of
   (seed, scope key, point, query index) — independent of every other
   unit of work and of any scheduling. *)
let stream_key ~scope point =
  match scope with None -> point | Some key -> key ^ "\x00" ^ point

let build_sites cfg scope =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun spec ->
      let rng = Rng.of_key ~seed:cfg.seed ~key:(stream_key ~scope spec.point) in
      Hashtbl.replace tbl spec.point { spec; rng; queries = 0; triggers = 0 })
    cfg.specs;
  tbl

let refresh () =
  let st = Domain.DLS.get dls in
  let cfg = Atomic.get current in
  if st.st_generation <> cfg.generation then begin
    st.st_generation <- cfg.generation;
    st.st_sites <- build_sites cfg st.st_scope
  end;
  st

let configure ?(seed = 0L) specs =
  List.iter
    (fun spec ->
      if spec.probability < 0. || spec.probability > 1. then
        invalid_arg
          (Printf.sprintf "Failpoint.configure: %s: probability %g outside [0, 1]"
             spec.point spec.probability))
    specs;
  let generation = Atomic.fetch_and_add generations 1 in
  Atomic.set current { seed; specs; generation };
  Atomic.set enabled (specs <> [])

let disable () = configure []

let active () = Atomic.get enabled

let should_fail point =
  Atomic.get enabled
  &&
  let st = refresh () in
  match Hashtbl.find_opt st.st_sites point with
  | None -> false
  | Some s ->
      s.queries <- s.queries + 1;
      (* always draw, so the decision at query [n] does not depend on how
         many earlier queries were capped away *)
      let draw = Rng.float s.rng in
      let capped =
        match s.spec.max_triggers with
        | Some m -> s.triggers >= m
        | None -> false
      in
      if (not capped) && draw < s.spec.probability then begin
        s.triggers <- s.triggers + 1;
        true
      end
      else false

let with_scope ~key f =
  if not (Atomic.get enabled) then f ()
  else begin
    let st = refresh () in
    let saved_scope = st.st_scope and saved_sites = st.st_sites in
    st.st_scope <- Some key;
    st.st_sites <- build_sites (Atomic.get current) (Some key);
    Fun.protect
      ~finally:(fun () ->
        st.st_scope <- saved_scope;
        st.st_sites <- saved_sites)
      f
  end

let find_site point =
  let st = refresh () in
  Hashtbl.find_opt st.st_sites point

let query_count point =
  match find_site point with Some s -> s.queries | None -> 0

let trigger_count point =
  match find_site point with Some s -> s.triggers | None -> 0

let with_failpoints ?seed specs f =
  configure ?seed specs;
  Fun.protect ~finally:disable f
