type result = { xmin : float; fmin : float; iterations : int; evals : int }

let golden_ratio = 0.381966011250105  (* 2 - phi *)

let golden ?(tol = 1e-6) ?(max_iter = 200) ~f ~a ~b () =
  if a > b then invalid_arg "Brent.golden: a > b";
  let evals = ref 0 in
  let eval x = incr evals; f x in
  let rec loop a b x1 x2 f1 f2 n =
    if n >= max_iter || b -. a <= tol *. (Float.abs x1 +. Float.abs x2 +. 1e-12) then
      if f1 < f2 then { xmin = x1; fmin = f1; iterations = n; evals = !evals }
      else { xmin = x2; fmin = f2; iterations = n; evals = !evals }
    else if f1 < f2 then
      let x1' = a +. (golden_ratio *. (x2 -. a)) in
      loop a x2 x1' x1 (eval x1') f1 (n + 1)
    else
      let x2' = b -. (golden_ratio *. (b -. x1)) in
      loop x1 b x2 x2' f2 (eval x2') (n + 1)
  in
  if b -. a < 1e-300 then begin
    (* Evaluate before building the record: record-field evaluation order
       is unspecified, so [{ fmin = eval a; evals = !evals }] could read
       [!evals] either before or after the increment. *)
    let fa = eval a in
    { xmin = a; fmin = fa; iterations = 0; evals = !evals }
  end
  else begin
    let x1 = a +. (golden_ratio *. (b -. a)) in
    let x2 = b -. (golden_ratio *. (b -. a)) in
    loop a b x1 x2 (eval x1) (eval x2) 0
  end

(* Brent's method, following the classic ZEROIN-style formulation. *)
let minimize ?(tol = 1e-6) ?(max_iter = 100) ~f ~a ~b () =
  if a > b then invalid_arg "Brent.minimize: a > b";
  let evals = ref 0 in
  let eval x = incr evals; f x in
  if b -. a < 1e-300 then begin
    let fa = eval a in
    { xmin = a; fmin = fa; iterations = 0; evals = !evals }
  end
  else begin
    let cgold = golden_ratio in
    let eps = 1e-12 in
    let a = ref a and b = ref b in
    let x = ref (!a +. (cgold *. (!b -. !a))) in
    let w = ref !x and v = ref !x in
    let fx = ref (eval !x) in
    let fw = ref !fx and fv = ref !fx in
    let d = ref 0. and e = ref 0. in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      let xm = 0.5 *. (!a +. !b) in
      let tol1 = (tol *. Float.abs !x) +. eps in
      let tol2 = 2. *. tol1 in
      if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then
        result := Some { xmin = !x; fmin = !fx; iterations = !iter; evals = !evals }
      else begin
        let use_golden = ref true in
        if Float.abs !e > tol1 then begin
          (* parabolic fit through x, v, w *)
          let r = (!x -. !w) *. (!fx -. !fv) in
          let q = (!x -. !v) *. (!fx -. !fw) in
          let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
          let q2 = 2. *. (q -. r) in
          let p = if q2 > 0. then -.p else p in
          let q2 = Float.abs q2 in
          let etemp = !e in
          e := !d;
          if
            Float.abs p < Float.abs (0.5 *. q2 *. etemp)
            && p > q2 *. (!a -. !x)
            && p < q2 *. (!b -. !x)
          then begin
            d := p /. q2;
            let u = !x +. !d in
            if u -. !a < tol2 || !b -. u < tol2 then
              d := if xm >= !x then tol1 else -.tol1;
            use_golden := false
          end
        end;
        if !use_golden then begin
          e := (if !x >= xm then !a else !b) -. !x;
          d := cgold *. !e
        end;
        let u =
          if Float.abs !d >= tol1 then !x +. !d
          else !x +. (if !d >= 0. then tol1 else -.tol1)
        in
        let fu = eval u in
        if fu <= !fx then begin
          if u >= !x then a := !x else b := !x;
          v := !w; fv := !fw;
          w := !x; fw := !fx;
          x := u; fx := fu
        end else begin
          if u < !x then a := u else b := u;
          if fu <= !fw || !w = !x then begin
            v := !w; fv := !fw;
            w := u; fw := fu
          end
          else if fu <= !fv || !v = !x || !v = !w then begin
            v := u; fv := fu
          end
        end
      end
    done;
    match !result with
    | Some r -> r
    | None -> { xmin = !x; fmin = !fx; iterations = !iter; evals = !evals }
  end

let bracket_scan ~f ~a ~b ~n =
  if n < 2 then invalid_arg "Brent.bracket_scan: n < 2";
  if a > b then invalid_arg "Brent.bracket_scan: a > b";
  let h = (b -. a) /. float_of_int n in
  let best_i = ref 0 and best_f = ref infinity in
  for i = 0 to n do
    let x = a +. (h *. float_of_int i) in
    let fx = f x in
    if fx < !best_f then begin
      best_f := fx;
      best_i := i
    end
  done;
  let lo = Float.max a (a +. (h *. float_of_int (!best_i - 1))) in
  let hi = Float.min b (a +. (h *. float_of_int (!best_i + 1))) in
  (lo, hi)
