type t = { mutable state : int64; mutable cached : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; cached = None }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

(* FNV-1a: a stable, platform-independent string hash used to derive
   named streams.  Distinct keys land on distinct splitmix64 seeds for
   any base seed, and the derivation is pure — no generator state is
   consumed, so two domains deriving streams from the same base seed
   cannot perturb each other. *)
let hash_key name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let of_key ~seed ~key = create (mix (Int64.add seed (hash_key key)))

let float t =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let gaussian t =
  match t.cached with
  | Some g ->
      t.cached <- None;
      g
  | None ->
      (* Box-Muller; u1 bounded away from zero to keep log finite. *)
      let u1 = Float.max 1e-300 (float t) in
      let u2 = float t in
      let r = sqrt (-2. *. log u1) in
      let theta = 2. *. Float.pi *. u2 in
      t.cached <- Some (r *. sin theta);
      r *. cos theta

let normal t ~mu ~sigma = mu +. (sigma *. gaussian t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* keep 62 bits so the value always fits OCaml's native int non-negatively *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  x mod bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
