(** Dense complex matrices with LU decomposition, for small-signal AC
    analysis.  Mirrors the {!Mat} API for [Complex.t] elements. *)

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit
(** Stamp primitive: increment element [(i,j)]. *)

val fill : t -> Complex.t -> unit
(** Overwrite every element — [fill m Complex.zero] resets a reused
    small-signal workspace before restamping. *)

val mul_vec : t -> Complex.t array -> Complex.t array

val transpose : t -> t
(** Plain transpose (no conjugation) — used by adjoint noise analysis. *)

val rank1_update : t -> i:int -> j:int -> dg:Complex.t -> unit
(** [rank1_update m ~i ~j ~dg] applies the symmetric two-terminal
    conductance delta [dg * (e_i - e_j)(e_i - e_j)^T] in place:
    [+dg] at [(i,i)] and [(j,j)], [-dg] at [(i,j)] and [(j,i)].  A
    negative index means the grounded terminal and its row/column are
    skipped — the same convention as the MNA stamp plans.  This is the
    complex-matrix half of the fault-impact rank-1 view: restamping a
    bridge/pinhole resistance from [r0] to [r1] is exactly
    [rank1_update ~dg:(1/r1 - 1/r0)] on the assembled system.
    @raise Invalid_argument on a non-square matrix or an index out of
    range. *)

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** Solve [A x = b] by partial-pivoting LU (pivot on modulus).
    @raise Singular when a pivot vanishes. *)

val solve_transpose : t -> Complex.t array -> Complex.t array
(** Solve [A^T x = b] (plain transpose, no conjugation) — the AC
    analogue of {!Mat.solve_transpose_into} for adjoint small-signal
    sensitivities.  Factors once with the same pivoting rule as
    {!solve}, then runs the transposed triangular sweeps.
    @raise Singular when a pivot vanishes. *)
