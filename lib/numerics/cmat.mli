(** Dense complex matrices with LU decomposition, for small-signal AC
    analysis.  Mirrors the {!Mat} API for [Complex.t] elements. *)

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit
(** Stamp primitive: increment element [(i,j)]. *)

val fill : t -> Complex.t -> unit
(** Overwrite every element — [fill m Complex.zero] resets a reused
    small-signal workspace before restamping. *)

val mul_vec : t -> Complex.t array -> Complex.t array

val transpose : t -> t
(** Plain transpose (no conjugation) — used by adjoint noise analysis. *)

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** Solve [A x = b] by partial-pivoting LU (pivot on modulus).
    @raise Singular when a pivot vanishes. *)
