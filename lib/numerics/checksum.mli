(** Data-integrity checksums.

    Used by the session layer's crash-safe checkpoints: every appended
    record carries a length/CRC trailer so a torn write (power loss,
    [kill -9] mid-[write]) is detected on recovery instead of being
    parsed as garbage.  The implementation is the standard CRC-32
    (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) — stable
    across platforms and OCaml versions, so trailers written by one
    build verify under any other. *)

val crc32 : ?crc:int32 -> string -> int32
(** CRC-32 of the whole string.  [crc] seeds an incremental computation:
    [crc32 ~crc:(crc32 a) b = crc32 (a ^ b)]. *)

val crc32_sub : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** CRC-32 of the substring [pos .. pos+len-1].
    @raise Invalid_argument on an out-of-bounds range. *)
