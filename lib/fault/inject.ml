open Circuit

let drain_fraction = 0.25

let bridge_device_name = "FAULT_bridge"

let pinhole_subcircuit dev ~r_shunt ~internal_node =
  match dev with
  | Device.Mosfet { name; drain; gate; source; model; w; l } ->
      [
        Device.Mosfet
          {
            name = name ^ "_drainseg";
            drain;
            gate;
            source = internal_node;
            model;
            w;
            l = l *. drain_fraction;
          };
        Device.Mosfet
          {
            name = name ^ "_srcseg";
            drain = internal_node;
            gate;
            source;
            model;
            w;
            l = l *. (1. -. drain_fraction);
          };
        Device.Resistor
          { name = name ^ "_pinhole"; a = gate; b = internal_node; ohms = r_shunt };
      ]
  | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
  | Device.Vsource _ | Device.Isource _ | Device.Vcvs _ | Device.Vccs _ ->
      invalid_arg "Inject.pinhole_subcircuit: device is not a MOSFET"

let impact_device = function
  | Fault.Bridge _ -> bridge_device_name
  | Fault.Pinhole { mosfet; _ } -> mosfet ^ "_pinhole"

let impact_override fault =
  (impact_device fault, Fault.impact_resistance fault)

let apply nl fault =
  match fault with
  | Fault.Bridge { node_a; node_b; resistance } ->
      let known = Netlist.all_nodes nl in
      let check n =
        if
          (not (Device.is_ground n))
          && not (List.exists (String.equal n) known)
        then
          invalid_arg
            (Printf.sprintf "Inject.apply: bridge references unknown node %S" n)
      in
      check node_a;
      check node_b;
      Netlist.add nl
        (Device.Resistor
           { name = bridge_device_name; a = node_a; b = node_b; ohms = resistance })
  | Fault.Pinhole { mosfet; r_shunt } -> begin
      match Netlist.find nl mosfet with
      | None ->
          invalid_arg
            (Printf.sprintf "Inject.apply: pinhole references unknown device %S"
               mosfet)
      | Some dev ->
          let internal_node = Netlist.fresh_node nl ~prefix:(mosfet ^ "_ph") in
          Netlist.replace nl mosfet
            (pinhole_subcircuit dev ~r_shunt ~internal_node)
    end
