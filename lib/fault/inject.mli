(** Fault injection as netlist transformation.

    A faulty circuit is the nominal netlist plus a structural edit:
    bridges add a resistor; pinholes replace one MOSFET by the Fig. 7
    subcircuit (two series channel segments with a gate-to-channel shunt
    resistor at 25 % of the channel length from the drain). *)

val drain_fraction : float
(** Position of the pinhole defect, as the fraction of the channel length
    measured from the drain (0.25, per the paper's choice to avoid
    undersized-channel modelling issues). *)

val bridge_device_name : string
(** Name given to the injected bridge resistor (["FAULT_bridge"]). *)

val impact_device : Fault.t -> string
(** Name of the injected resistor that carries the fault's impact
    resistance: the bridge resistor for bridges, the gate-to-channel
    shunt for pinholes. *)

val impact_override : Fault.t -> string * float
(** [(impact_device f, Fault.impact_resistance f)] — the value-phase
    override for a compiled faulty topology: two faults at the same site
    share one topology (same nodes, same injected device names), so
    changing the impact resistance restamps a value instead of
    re-injecting and re-indexing the netlist. *)

val apply : Circuit.Netlist.t -> Fault.t -> Circuit.Netlist.t
(** Produce the faulty netlist.
    @raise Invalid_argument if a bridge references an unknown node, if a
    pinhole references a device that is not a MOSFET, or if the fault's
    device/node names collide with injected names. *)

val pinhole_subcircuit :
  Circuit.Device.t -> r_shunt:float -> internal_node:string ->
  Circuit.Device.t list
(** The expansion used for a pinhole on the given MOSFET: drain-side
    segment (L/4), source-side segment (3L/4) and the shunt resistor.
    Exposed separately so reports can print the Fig. 7 model.
    @raise Invalid_argument if the device is not a MOSFET. *)
