open Testgen
open Circuit

let ua = 1e-6
let sine_amplitude = 10. *. ua
let step_sample_rate = 100e6
let step_test_time = 7.5e-6
let step_rise_time = 10e-9
let step_delay = 100e-9

let param = Test_param.create

let config1 =
  Test_config.create ~id:1 ~name:"DC level" ~macro_type:"IV-converter"
    ~control_node:"Iin"
    ~params:
      [ param ~name:"lev" ~units:"A" ~lower:(-50. *. ua) ~upper:(50. *. ua)
          ~seed:(10. *. ua) ]
    ~analysis:(Test_config.Dc_levels (fun v -> [ Waveform.Dc v.(0) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(Vout)" ]
    ~accuracy_floor:[ 1e-3 ]
    ~summary:"I(Iin) = lev (dc current value)"

let config2 =
  Test_config.create ~id:2 ~name:"DC pair" ~macro_type:"IV-converter"
    ~control_node:"Iin"
    ~params:
      [
        param ~name:"base" ~units:"A" ~lower:(-40. *. ua) ~upper:(40. *. ua)
          ~seed:0.;
        param ~name:"elev" ~units:"A" ~lower:(5. *. ua) ~upper:(50. *. ua)
          ~seed:(20. *. ua);
      ]
    ~analysis:
      (Test_config.Dc_levels
         (fun v -> [ Waveform.Dc v.(0); Waveform.Dc (v.(0) +. v.(1)) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(Vout)@base"; "V(Vout)@base+elev" ]
    ~accuracy_floor:[ 1e-3; 1e-3 ]
    ~summary:"I(Iin) = base, then base+elev (two dc current values)"

let config3 =
  Test_config.create ~id:3 ~name:"THD" ~macro_type:"IV-converter"
    ~control_node:"Iin"
    ~params:
      [
        param ~name:"Iin_dc" ~units:"A" ~lower:0. ~upper:(40. *. ua)
          ~seed:(20. *. ua);
        param ~name:"freq" ~units:"Hz" ~lower:1e3 ~upper:100e3 ~seed:10e3;
      ]
    ~analysis:
      (Test_config.Tran_thd
         {
           stimulus =
             (fun v ->
               Waveform.Sine
                 { offset = v.(0); ampl = sine_amplitude; freq = v.(1); phase = 0. });
           fundamental = (fun v -> v.(1));
         })
    ~returns:Test_config.Per_component
    ~return_names:[ "THD(Vout) [%]" ]
    ~accuracy_floor:[ 0.01 ]
    ~summary:"I(Iin) = sine(Iin_dc, 10uA, freq); THD measurement"

let config4 =
  Test_config.create ~id:4 ~name:"Step response (max deviation)"
    ~macro_type:"IV-converter" ~control_node:"Iin"
    ~params:
      [ param ~name:"elev" ~units:"A" ~lower:(5. *. ua) ~upper:(50. *. ua)
          ~seed:(25. *. ua) ]
    ~analysis:
      (Test_config.Tran_samples
         {
           stimulus =
             (fun v ->
               Waveform.Step
                 { base = 0.; elev = v.(0); delay = step_delay; rise = step_rise_time });
           sample_rate = step_sample_rate;
           test_time = step_test_time;
         })
    ~returns:Test_config.Max_abs_delta
    ~return_names:[ "Max_k |dV(Vout,t_k)|" ]
    ~accuracy_floor:[ 2e-3 ]
    ~summary:"I(Iin) = step(0, elev, slew-rate=sl); Vout sampled at 100MHz for 7.5us"

let config5 =
  Test_config.create ~id:5 ~name:"Step response (accumulated)"
    ~macro_type:"IV-converter" ~control_node:"Iin"
    ~params:
      [
        param ~name:"base" ~units:"A" ~lower:(-40. *. ua) ~upper:(40. *. ua)
          ~seed:0.;
        param ~name:"elev" ~units:"A" ~lower:(5. *. ua) ~upper:(50. *. ua)
          ~seed:(25. *. ua);
      ]
    ~analysis:
      (Test_config.Tran_samples
         {
           stimulus =
             (fun v ->
               Waveform.Step
                 { base = v.(0); elev = v.(1); delay = step_delay; rise = step_rise_time });
           sample_rate = step_sample_rate;
           test_time = step_test_time;
         })
    ~returns:Test_config.Sum_abs_delta
    ~return_names:[ "|d Sum_k V(Vout,t_k)|" ]
    ~accuracy_floor:[ 0.4 ]
    ~summary:"I(Iin) = step(base, elev, slew-rate=sl); return Sum V(Vout); \
              sample-rate=s test-time=t"

let all = [ config1; config2; config3; config4; config5 ]

let by_id id =
  match List.find_opt (fun c -> c.Test_config.config_id = id) all with
  | Some c -> c
  | None -> raise Not_found
