(** Extensions beyond the paper's Table 1.

    The paper's framework is explicitly open ("sets of test configuration
    descriptions are shared by macro types"); this module adds a sixth,
    AC-based configuration and shows that it catches exactly the faults
    the five baseline configurations cannot see — the ones the feedback
    loop hides at DC and in large-signal transients. *)

val config6_ac : Testgen.Test_config.t
(** Configuration #6: closed-loop small-signal transimpedance gain and
    phase of the IV-converter at a bias level [Iin_dc] and frequency
    [freq] (p = 2 return values: gain in dB, phase in degrees). *)

val config7_imd : Testgen.Test_config.t
(** Configuration #7: two-tone intermodulation (tones at 5 f0 and 6 f0,
    15 uA each, around a DC bias) — IMD3 of Vout in percent. *)

val config8_noise : Testgen.Test_config.t
(** Configuration #8: output noise density at [freq] under a DC bias
    [Iin_dc] — the square-root PSD of Vout in nV per root-hertz.
    Resistive defects change the noise signature even where the transfer
    function barely moves. *)

val iv_with_ac :
  ?profile:Testgen.Execute.profile -> ?grid:int -> unit -> Setup.t
(** The paper's context extended with configuration #6. *)

val xac_report : ?ctx:Setup.t -> unit -> string
(** The XAC experiment: per-fault sensitivity of configuration #6 for the
    faults that are undetectable with configurations #1..#5 (e.g. the
    n2-vout bridge that the output follower's feedback hides), plus the
    critical impacts the AC configuration achieves on them. *)

val xifa_report :
  Setup.t -> Testgen.Engine.run -> Testgen.Compactor.result -> string
(** The XIFA experiment: structural IFA-style fault weights over the
    dictionary, the compact set's likelihood-weighted coverage, and a
    cost-aware greedy production schedule of the compact tests. *)

val xeq_report : Setup.t -> Testgen.Engine.run -> string
(** The XEQ experiment: fault-equivalence classes over the generation
    results — the paper's "collapsing of dictionaries" enabled by
    targeting fault types instead of exact models. *)

val xq_report :
  ?samples:int -> ?seed:int64 -> Setup.t -> Testgen.Compactor.result -> string
(** The XQ experiment: overkill / test-escape estimate of the compact
    test set over Monte-Carlo fault-free process samples (default 60,
    deterministic seed), with IFA-weighted escape. *)

val ximd_report : Setup.t -> string
(** The XIMD experiment: the two-tone IMD configuration #7 — nominal
    IMD3 of the macro, seed sensitivities for representative faults, and
    an optimized IMD test for the virtual-ground bridge. *)
