open Testgen

let ua = 1e-6

let config6_ac =
  Test_config.create ~id:6 ~name:"AC closed-loop gain" ~macro_type:"IV-converter"
    ~control_node:"Iin"
    ~params:
      [
        Test_param.create ~name:"Iin_dc" ~units:"A" ~lower:(-40. *. ua)
          ~upper:(40. *. ua) ~seed:0.;
        Test_param.create ~name:"freq" ~units:"Hz" ~lower:10e3 ~upper:10e6
          ~seed:1e6;
      ]
    ~analysis:
      (Test_config.Ac_gain
         {
           bias = (fun v -> Circuit.Waveform.Dc v.(0));
           freq = (fun v -> v.(1));
         })
    ~returns:Test_config.Per_component
    ~return_names:[ "gain(Vout/Iin) [dB]"; "phase [deg]" ]
    ~accuracy_floor:[ 0.1; 1.0 ]
    ~summary:"I(Iin) = Iin_dc + small-signal; network-analyzer gain/phase at freq"

let config7_imd =
  Test_config.create ~id:7 ~name:"Two-tone IMD" ~macro_type:"IV-converter"
    ~control_node:"Iin"
    ~params:
      [
        Test_param.create ~name:"Iin_dc" ~units:"A" ~lower:0.
          ~upper:(40. *. ua) ~seed:(20. *. ua);
        Test_param.create ~name:"f0" ~units:"Hz" ~lower:1e3 ~upper:10e3
          ~seed:2e3;
      ]
    ~analysis:
      (Test_config.Tran_imd
         {
           stimulus =
             (fun v ->
               Circuit.Waveform.Multi_sine
                 {
                   offset = v.(0);
                   tones = [ (15. *. ua, 5. *. v.(1)); (15. *. ua, 6. *. v.(1)) ];
                 });
           base_freq = (fun v -> v.(1));
           k1 = 5;
           k2 = 6;
         })
    ~returns:Test_config.Per_component
    ~return_names:[ "IMD3(Vout) [%]" ]
    ~accuracy_floor:[ 0.05 ]
    ~summary:"I(Iin) = Iin_dc + 15uA@5f0 + 15uA@6f0; IMD3 measurement"

let config8_noise =
  Test_config.create ~id:8 ~name:"Output noise density"
    ~macro_type:"IV-converter" ~control_node:"Iin"
    ~params:
      [
        Test_param.create ~name:"Iin_dc" ~units:"A" ~lower:(-40. *. ua)
          ~upper:(40. *. ua) ~seed:0.;
        Test_param.create ~name:"freq" ~units:"Hz" ~lower:1e3 ~upper:10e6
          ~seed:100e3;
      ]
    ~analysis:
      (Test_config.Noise_psd
         {
           bias = (fun v -> Circuit.Waveform.Dc v.(0));
           freq = (fun v -> v.(1));
         })
    ~returns:Test_config.Per_component
    ~return_names:[ "sqrt-PSD(Vout) [nV/rtHz]" ]
    ~accuracy_floor:[ 1.0 ]
    ~summary:"I(Iin) = Iin_dc; output noise density at freq"

let iv_with_ac ?profile ?grid () =
  Setup.create ?profile ?grid ~macro:Macros.Iv_converter.macro
    ~configs:(Iv_configs.all @ [ config6_ac ])
    ()

let xac_report ?ctx () =
  let ctx = match ctx with Some c -> c | None -> iv_with_ac () in
  let ev6 = Setup.evaluator ctx 6 in
  let seeds = Test_config.param_values_of_seed config6_ac in
  let blind_spots = [ "bridge:n2-vout"; "pinhole:m9"; "bridge:n1-n2" ] in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "XAC -- extension: an AC (network-analyzer) configuration for the\n\
     faults the paper's five configurations see barely or not at all.\n\
     The feedback loop regulates Vout straight through a degraded output\n\
     follower, so bridges and pinholes around it are nearly invisible at\n\
     DC -- but they move the loop dynamics, which the gain/phase\n\
     measurement exposes once its parameters are optimized.\n\n";
  Buffer.add_string b (Test_config.describe config6_ac);
  Buffer.add_string b "\nper-fault view at the seed parameters:\n";
  List.iter
    (fun fid ->
      match Faults.Dictionary.find ctx.Setup.dictionary fid with
      | None -> ()
      | Some entry ->
          let fault = entry.Faults.Dictionary.fault in
          let s6, dev = Evaluator.sensitivity_and_deviation ev6 fault seeds in
          (* how do the paper's five configurations do at their seeds? *)
          let best5 =
            List.fold_left
              (fun best ev ->
                if Evaluator.config_id ev = 6 then best
                else
                  let s =
                    Evaluator.sensitivity ev fault
                      (Test_config.param_values_of_seed (Evaluator.config ev))
                  in
                  Float.min best s)
              infinity ctx.Setup.evaluators
          in
          Buffer.add_string b
            (Printf.sprintf
               "  %-18s best S over #1..#5 seeds: %8.3f   S of #6: %9.3f%s\n"
               fid best5 s6
               (if Array.length dev = 2 then
                  Printf.sprintf "  (dGain=%.2fdB dPhase=%.1fdeg)" dev.(0)
                    dev.(1)
                else ""))
    )
    blind_spots;
  (* generate the optimal #6 test for each blind-spot fault: the paper's
     point exactly — fixed tests miss what tailored optimization finds *)
  Buffer.add_string b "\noptimized #6 tests:\n";
  List.iter
    (fun fid ->
      match Faults.Dictionary.find ctx.Setup.dictionary fid with
      | None -> ()
      | Some entry ->
          let r = Generate.generate ~evaluators:[ ev6 ] entry in
          (match r.Generate.outcome with
          | Generate.Unique { params; critical_impact; _ } ->
              Buffer.add_string b
                (Printf.sprintf
                   "  %-18s [%s] detects down to %s\n" fid
                   (String.concat "; "
                      (Array.to_list
                         (Array.map Circuit.Units.format_eng params)))
                   (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact))
          | Generate.Undetectable { best_sensitivity; strongest_impact; _ } ->
              Buffer.add_string b
                (Printf.sprintf
                   "  %-18s stays undetectable for #6 too (best S=%.3f at %s)\n"
                   fid best_sensitivity
                   (Circuit.Units.format_eng ~unit_symbol:"Ohm" strongest_impact))))
    blind_spots;
  Buffer.contents b

let xifa_report ctx run (compaction : Compactor.result) =
  let nl =
    Macros.Macro.nominal_netlist ctx.Setup.macro
  in
  let weighted = Faults.Ifa.weigh nl ctx.Setup.dictionary in
  let detections =
    List.map
      (fun (d : Coverage.detection) ->
        (d.Coverage.det_fault_id, d.Coverage.detected_by))
      compaction.Compactor.coverage.Coverage.detections
  in
  let detected fid =
    match List.assoc_opt fid detections with
    | Some (_ :: _) -> true
    | Some [] | None -> false
  in
  let weighted_cov = Faults.Ifa.weighted_coverage weighted ~detected in
  let plain_cov = Coverage.percent compaction.Compactor.coverage in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "XIFA -- extension: IFA-style structural fault weights (cf. the paper's\n\
     sec. 1: dictionaries 'can be generated by IFA').  Bridges between nodes\n\
     sharing devices and pinholes in large-gate transistors are likelier.\n\n";
  Buffer.add_string b "heaviest faults:\n";
  List.iteri
    (fun i { Faults.Ifa.entry; weight } ->
      if i < 8 then
        Buffer.add_string b
          (Printf.sprintf "  %-22s weight %.3f  %s\n"
             entry.Faults.Dictionary.fault_id weight
             (if detected entry.Faults.Dictionary.fault_id then "covered"
              else "MISSED")))
    (Faults.Ifa.sort_by_weight weighted);
  Buffer.add_string b
    (Printf.sprintf
       "\ncompact-set coverage: %.1f%% unweighted, %.1f%% defect-likelihood \
        weighted\n"
       plain_cov weighted_cov);
  (* cost-aware production schedule of the compact set *)
  let weights =
    List.map
      (fun { Faults.Ifa.entry; weight } ->
        (entry.Faults.Dictionary.fault_id, weight))
      weighted
  in
  let tests = compaction.Compactor.coverage.Coverage.tests in
  let configs = List.map Evaluator.config ctx.Setup.evaluators in
  let schedule =
    Schedule.order ~cost_model:Schedule.default_cost_model ~configs ~weights
      ~detections tests
  in
  Buffer.add_string b
    "\ngreedy production schedule (likelihood caught per tester-second):\n";
  List.iteri
    (fun i (t : Coverage.test) ->
      let cov = List.nth schedule.Schedule.cumulative_coverage i in
      let cost = List.nth schedule.Schedule.cumulative_cost i in
      Buffer.add_string b
        (Printf.sprintf
           "  %2d. %-10s cumulative weighted coverage %6.2f%%  cost %s s\n"
           (i + 1) t.Coverage.test_label cov
           (Printf.sprintf "%.4f" cost)))
    schedule.Schedule.order;
  Buffer.add_string b
    (Printf.sprintf
       "expected tester time to first fail on a defective part: %.4f s\n"
       schedule.Schedule.expected_detection_cost);
  ignore run;
  Buffer.contents b

let xq_report ?(samples = 60) ?(seed = 424242L) ctx
    (compaction : Compactor.result) =
  let rng = Numerics.Rng.create seed in
  let fault_free =
    List.map
      (Setup.target_of_macro ctx.Setup.macro)
      (Macros.Process.monte_carlo rng ~n:samples)
  in
  let weights =
    Faults.Ifa.weigh
      (Macros.Macro.nominal_netlist ctx.Setup.macro)
      ctx.Setup.dictionary
    |> List.map (fun w ->
           (w.Faults.Ifa.entry.Faults.Dictionary.fault_id, w.Faults.Ifa.weight))
  in
  let e =
    Quality.estimate ~evaluators:ctx.Setup.evaluators
      ~tests:compaction.Compactor.coverage.Coverage.tests ~fault_free
      ~dictionary:ctx.Setup.dictionary ~weights ()
  in
  "XQ -- extension: production-quality estimate of the compact test set\n\
   (the overkill/escape trade-off the tolerance-box guardband controls,\n\
   cf. sec. 2.2's tester-accuracy discussion).\n\n"
  ^ Quality.report e

let ximd_report ctx =
  let nominal = Setup.target_of_macro ctx.Setup.macro Macros.Process.nominal in
  let config = config7_imd in
  let ev =
    Evaluator.create ~profile:ctx.Setup.profile config ~nominal
      ~box_model:(Tolerance.floor_only config)
  in
  let seeds = Test_config.param_values_of_seed config in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "XIMD -- extension: two-tone intermodulation configuration #7.\n\
     IMD3 exposes odd-order nonlinearity that a clipping-free THD sweep\n\
     can understate; the framework absorbs the new family unchanged.\n\n";
  Buffer.add_string b (Test_config.describe config);
  let nominal_obs = Evaluator.nominal_observables ev seeds in
  Buffer.add_string b
    (Printf.sprintf "\nnominal IMD3 at seed parameters: %.5f %%\n"
       nominal_obs.(0));
  Buffer.add_string b "\nseed-parameter sensitivities:\n";
  List.iter
    (fun fid ->
      match Faults.Dictionary.find ctx.Setup.dictionary fid with
      | None -> ()
      | Some entry ->
          let s = Evaluator.sensitivity ev entry.Faults.Dictionary.fault seeds in
          Buffer.add_string b (Printf.sprintf "  %-18s S = %10.3f\n" fid s))
    [ "bridge:n1-vout"; "bridge:iin-vref"; "bridge:n2-vout" ];
  (* optimize the IMD test for the virtual-ground bridge *)
  (match Faults.Dictionary.find ctx.Setup.dictionary "bridge:iin-vref" with
  | None -> ()
  | Some entry ->
      let r = Generate.generate ~evaluators:[ ev ] entry in
      (match r.Generate.outcome with
      | Generate.Unique { params; critical_impact; _ } ->
          Buffer.add_string b
            (Printf.sprintf
               "\noptimized #7 test for bridge:iin-vref: [%s], detects down \
                to %s\n"
               (String.concat "; "
                  (Array.to_list (Array.map Circuit.Units.format_eng params)))
               (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact))
      | Generate.Undetectable { best_sensitivity; strongest_impact; _ } ->
          Buffer.add_string b
            (Printf.sprintf
               "\nbridge:iin-vref needs impact %s before #7 sees it (best \
                S=%.3f)\n"
               (Circuit.Units.format_eng ~unit_symbol:"Ohm" strongest_impact)
               best_sensitivity)));
  Buffer.contents b

let xeq_report ctx run =
  let configs = List.map Evaluator.config ctx.Setup.evaluators in
  let classes = Equivalence.classes ~configs run.Engine.results in
  let multi = List.filter (fun c -> List.length c.Equivalence.members > 1) classes in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "XEQ -- extension: fault equivalence ('this enables collapsing of\n\
     dictionaries', sec. 2.2): faults whose optimal tests coincide are\n\
     indistinguishable to the tester and share one representative.\n\n";
  Buffer.add_string b
    (Printf.sprintf "%d faults fall into %d equivalence classes (%.2fx)\n\n"
       (List.length run.Engine.results)
       (List.length classes)
       (Equivalence.collapse_ratio classes));
  Buffer.add_string b "multi-member classes:\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "  tc%d [%s]  rep %s <- {%s}\n"
           c.Equivalence.class_config_id
           (String.concat "; "
              (Array.to_list
                 (Array.map Circuit.Units.format_eng c.Equivalence.class_params)))
           c.Equivalence.representative
           (String.concat ", " c.Equivalence.members)))
    multi;
  Buffer.contents b
