(** The five IV-converter test configurations (paper Table 1).

    The original table is partially illegible in the available scan; the
    configurations are reconstructed from the prose constraints (see
    DESIGN.md §5): two single-parameter and three two-parameter
    configurations; #3 is the THD measurement of Figs. 2–4; #4 and #5
    sample Vout at 100 MHz during 7.5 us; the step-response description
    of Fig. 1 (accumulated sum of V(Vout)) is configuration #5.

    All stimuli drive the standardized node ["Iin"] of IV-converter-type
    macros with a current waveform. *)

val sine_amplitude : float
(** Fixed 10 uA amplitude of configuration #3's sine stimulus. *)

val step_sample_rate : float
(** 100 MHz. *)

val step_test_time : float
(** 7.5 us. *)

val config1 : Testgen.Test_config.t
(** DC level [lev] in [-50, 50] uA; return value V(Vout). *)

val config2 : Testgen.Test_config.t
(** Two DC levels [base], [base+elev]; p = 2 return values. *)

val config3 : Testgen.Test_config.t
(** THD of Vout for a sine of DC offset [Iin_dc] in [0, 40] uA and
    frequency [freq] in [1, 100] kHz. *)

val config4 : Testgen.Test_config.t
(** Current step 0 -> [elev]; return Max_k |dV(Vout, t_k)|. *)

val config5 : Testgen.Test_config.t
(** Current step [base] -> [base+elev]; return |d sum_k V(Vout, t_k)|. *)

val all : Testgen.Test_config.t list
(** Configurations #1..#5 in order. *)

val by_id : int -> Testgen.Test_config.t
(** @raise Not_found for ids outside 1..5. *)
