lib/experiments/setup.mli: Faults Macros Testgen
