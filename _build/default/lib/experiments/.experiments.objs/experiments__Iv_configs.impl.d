lib/experiments/iv_configs.ml: Array Circuit List Test_config Test_param Testgen Waveform
