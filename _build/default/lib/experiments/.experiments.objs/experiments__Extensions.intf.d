lib/experiments/extensions.mli: Setup Testgen
