lib/experiments/setup.ml: Evaluator Execute Faults Iv_configs List Macros Test_config Testgen Tolerance
