lib/experiments/iv_configs.mli: Testgen
