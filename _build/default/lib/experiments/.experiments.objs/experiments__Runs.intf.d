lib/experiments/runs.mli: Faults Setup Testgen
