(** Plain-text tables for the experiment reports. *)

type align = Left | Right

type t

val create : headers:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the headers. *)

val add_rule : t -> unit
(** Horizontal separator at this position. *)

val render : t -> string
(** Box-drawing-free ASCII rendering with padded columns. *)

val of_rows : headers:(string * align) list -> string list list -> string
(** One-shot convenience. *)
