type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : (string * align) list;
  mutable lines : line list;  (* reversed *)
}

let create ~headers = { headers; lines = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell))
      row
  in
  measure (List.map fst t.headers);
  List.iter (function Row r -> measure r | Rule -> ()) t.lines;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = List.map snd t.headers in
  let render_row row =
    List.mapi
      (fun i cell -> pad (List.nth aligns i) widths.(i) cell)
      row
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (render_row (List.map fst t.headers));
  Buffer.add_char b '\n';
  Buffer.add_string b rule;
  Buffer.add_char b '\n';
  List.iter
    (fun l ->
      (match l with
      | Row r -> Buffer.add_string b (render_row r)
      | Rule -> Buffer.add_string b rule);
      Buffer.add_char b '\n')
    (List.rev t.lines);
  Buffer.contents b

let of_rows ~headers rows =
  let t = create ~headers in
  List.iter (add_row t) rows;
  render t
