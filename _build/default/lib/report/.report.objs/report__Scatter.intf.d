lib/report/scatter.mli:
