lib/report/table.mli:
