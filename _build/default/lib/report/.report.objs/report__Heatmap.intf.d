lib/report/heatmap.mli:
