lib/report/scatter.ml: Array Buffer Char Float List Printf String
