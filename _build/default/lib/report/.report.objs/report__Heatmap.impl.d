lib/report/heatmap.ml: Array Buffer Float List Numerics Printf String
