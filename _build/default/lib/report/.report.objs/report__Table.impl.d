lib/report/table.ml: Array Buffer Int List String
