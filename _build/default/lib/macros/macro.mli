(** Analog macro abstraction.

    A macro couples a circuit generator (parameterized by a process
    point) with the standardized node names the paper's test
    configuration descriptions rely on ("Node names should however be
    standardized"): the stimulus source to override and the observation
    node, plus the list of layout nodes that defines the bridging-fault
    universe. *)

type t = {
  macro_name : string;
  macro_type : string;  (** e.g. ["IV-converter"] — keys configuration reuse *)
  description : string;
  build : Process.point -> Circuit.Netlist.t;
  fault_nodes : string list;
      (** layout nodes over which exhaustive bridges are generated *)
  stimulus_source : string;
      (** device name of the input source replaced by test configurations *)
  observe_node : string;  (** standardized output node *)
}

val nominal_netlist : t -> Circuit.Netlist.t

val validate : t -> (unit, string) result
(** Checks that the nominal netlist builds, passes connectivity, contains
    the stimulus source, and that the fault nodes and observation node
    exist. *)

val fault_universe :
  ?bridge_resistance:float -> ?pinhole_r_shunt:float -> t ->
  Faults.Fault.t list
(** The exhaustive bridge + pinhole universe of the macro (see
    {!Faults.Universe.exhaustive}). *)

val dictionary :
  ?bridge_resistance:float -> ?pinhole_r_shunt:float -> t ->
  Faults.Dictionary.t
