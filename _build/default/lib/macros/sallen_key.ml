open Circuit

let r1 = 100e3
let r2 = 100e3
let c1 = 200e-12
let c2 = 100e-12

let cutoff_hz = 1. /. (2. *. Float.pi *. sqrt (r1 *. r2 *. c1 *. c2))

let fault_nodes = [ "0"; "a"; "b"; "in"; "nbias"; "nmir"; "ntail"; "out"; "vdd" ]

let build (p : Process.point) =
  let nmos = Process.apply_nmos p Mos_model.nmos_default in
  let pmos = Process.apply_pmos p Mos_model.pmos_default in
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let um = 1e-6 in
  let nmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = nmos; w = w *. um; l = l *. um }
  in
  let pmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = pmos; w = w *. um; l = l *. um }
  in
  Netlist.empty ~title:"Sallen-Key low-pass (unity-gain OTA buffer)"
  |> Fun.flip Netlist.add_all
       [
         Device.Vsource
           { name = "vdd_src"; plus = "vdd_ext"; minus = "0"; wave = Waveform.Dc 5. };
         Device.Resistor { name = "rsup"; a = "vdd_ext"; b = "vdd"; ohms = r 2. };
         (* signal path: in -R1- a -R2- b -(buffer)- out, C1 a->out, C2 b->0 *)
         Device.Vsource
           { name = "vin_src"; plus = "in"; minus = "0"; wave = Waveform.Dc 2.5 };
         Device.Resistor { name = "r1"; a = "in"; b = "a"; ohms = r r1 };
         Device.Resistor { name = "r2"; a = "a"; b = "b"; ohms = r r2 };
         Device.Capacitor { name = "c1"; a = "a"; b = "out"; farads = c c1 };
         Device.Capacitor { name = "c2"; a = "b"; b = "0"; farads = c c2 };
         (* the unity-gain buffer: non-inverting input at b, output at out *)
         nmosfet "m1" "nmir" "b" "ntail" 50. 1.;
         nmosfet "m2" "out" "out" "ntail" 50. 1.;
         pmosfet "m3" "nmir" "nmir" "vdd" 25. 1.;
         pmosfet "m4" "out" "nmir" "vdd" 25. 1.;
         nmosfet "m5" "ntail" "nbias" "0" 20. 2.;
         Device.Resistor { name = "rbias"; a = "vdd"; b = "nbias"; ohms = r 100e3 };
         nmosfet "m8" "nbias" "nbias" "0" 20. 2.;
         Device.Capacitor { name = "cl"; a = "out"; b = "0"; farads = c 2e-12 };
       ]

let macro =
  {
    Macro.macro_name = "sallen_key";
    macro_type = "SK-lowpass";
    description =
      "Unity-gain Sallen-Key Butterworth low-pass (fc ~ 11.25 kHz) around \
       the 5T OTA buffer";
    build;
    fault_nodes;
    stimulus_source = "vin_src";
    observe_node = "out";
  }
