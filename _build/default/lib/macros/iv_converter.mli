(** The CMOS IV-converter macro.

    A two-stage transimpedance amplifier standing in for the
    photo-detector IV-converter the paper evaluates (Kimmels 1995, MESA
    report; schematic unpublished).  It is designed so that the exhaustive
    fault universe matches the paper exactly: {b 10 layout nodes} give
    C(10,2) = 45 bridging faults and {b 10 MOSFETs} give 10 pinhole
    faults — the paper's 55-fault dictionary.

    Topology: five-transistor NMOS-input OTA (M1/M2 differential pair,
    M3/M4 PMOS mirror load, M5 tail source), PMOS common-source second
    stage (M6) with NMOS current-source load (M7), resistor-biased diode
    reference (M8), NMOS source follower output (M9) over a current sink
    (M10).  A 20 kOhm feedback resistor from [vout] to the current input
    [iin] closes the transimpedance loop:
    [Vout = Vref - Iin * Rf], Vref = 2.5 V at a 5 V supply.

    Standardized nodes: stimulus current source ["iin_src"] drives
    ["iin"]; the observation node is ["vout"]. *)

val supply_voltage : float
(** 5 V. *)

val feedback_resistance : float
(** 20 kOhm: the transimpedance gain. *)

val fault_nodes : string list
(** The 10 layout nodes:
    ["0"; "iin"; "n1"; "n2"; "nbias"; "nmir"; "ntail"; "vdd"; "vref";
    "vout"]. *)

val build : Process.point -> Circuit.Netlist.t
(** Netlist at a process point. *)

val macro : Macro.t
(** The packaged macro ([macro_type = "IV-converter"]). *)

val transimpedance : unit -> float
(** Measured nominal DC transimpedance dVout/dIin (ohms, negative),
    obtained by finite difference — used by tests to confirm the
    closed loop sits near [-feedback_resistance]. *)
