(** Sallen-Key active low-pass macro.

    A unity-gain Sallen-Key biquad (Butterworth, Q = 0.707) built around
    the 5-transistor OTA buffer: R1 = R2 = 100 kOhm, C1 = 200 pF,
    C2 = 100 pF, cutoff ~ 11.25 kHz.  The network impedance is kept well
    above the buffer's output impedance so the response stays close to
    the ideal biquad (-3 dB and -90 deg at fc, -40 dB/decade stopband).  Frequency-domain behaviour is the
    whole point of this macro, so it exercises the AC test-configuration
    family; its fault universe spans both the passive network and the
    buffer's transistors. *)

val cutoff_hz : float
(** Nominal -3 dB cutoff, [1 / (2 pi sqrt (R1 R2 C1 C2))]. *)

val fault_nodes : string list

val build : Process.point -> Circuit.Netlist.t

val macro : Macro.t
(** [macro_type = "SK-lowpass"], stimulus ["vin_src"] at node ["in"],
    observation ["out"]. *)
