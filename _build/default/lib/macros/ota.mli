(** A five-transistor OTA voltage buffer — the second example macro.

    Demonstrates that the test-generation flow is macro-generic: a
    unity-gain-connected NMOS-input OTA (7 layout nodes including the
    rails, 6 MOSFETs including the bias diode) whose stimulus is a
    voltage source at the non-inverting input and whose observation node
    is the buffered output.  Its exhaustive universe is C(7,2) = 21
    bridges + 6 pinholes = 27 faults. *)

val fault_nodes : string list

val build : Process.point -> Circuit.Netlist.t

val macro : Macro.t
(** [macro_type = "OTA-buffer"], stimulus ["vin_src"], observation
    ["out"]. *)
