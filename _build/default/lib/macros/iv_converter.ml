open Circuit

let supply_voltage = 5.
let feedback_resistance = 20e3

let fault_nodes =
  [ "0"; "iin"; "n1"; "n2"; "nbias"; "nmir"; "ntail"; "vdd"; "vref"; "vout" ]

let build (p : Process.point) =
  let nmos = Process.apply_nmos p Mos_model.nmos_default in
  let pmos = Process.apply_pmos p Mos_model.pmos_default in
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let um = 1e-6 in
  let nmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = nmos; w = w *. um; l = l *. um }
  in
  let pmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = pmos; w = w *. um; l = l *. um }
  in
  Netlist.empty ~title:"CMOS IV-converter macro"
  |> Fun.flip Netlist.add_all
       [
         (* supply with a small source resistance so supply bridges load it *)
         Device.Vsource
           { name = "vdd_src"; plus = "vdd_ext"; minus = "0";
             wave = Waveform.Dc supply_voltage };
         Device.Resistor { name = "rsup"; a = "vdd_ext"; b = "vdd"; ohms = r 2. };
         (* stimulus: test configurations replace this device's waveform *)
         Device.Isource
           { name = "iin_src"; from_node = "0"; to_node = "iin";
             wave = Waveform.Dc 0. };
         (* input stage: differential pair with PMOS mirror load *)
         nmosfet "m1" "nmir" "iin" "ntail" 50. 1.;
         nmosfet "m2" "n1" "vref" "ntail" 50. 1.;
         pmosfet "m3" "nmir" "nmir" "vdd" 25. 1.;
         pmosfet "m4" "n1" "nmir" "vdd" 25. 1.;
         nmosfet "m5" "ntail" "nbias" "0" 20. 2.;
         (* second stage *)
         pmosfet "m6" "n2" "n1" "vdd" 100. 1.;
         nmosfet "m7" "n2" "nbias" "0" 40. 2.;
         (* bias chain *)
         nmosfet "m8" "nbias" "nbias" "0" 20. 2.;
         Device.Resistor { name = "rbias"; a = "vdd"; b = "nbias"; ohms = r 100e3 };
         (* output follower *)
         nmosfet "m9" "vdd" "n2" "vout" 50. 1.;
         nmosfet "m10" "vout" "nbias" "0" 40. 2.;
         (* reference divider *)
         Device.Resistor { name = "rref1"; a = "vdd"; b = "vref"; ohms = r 50e3 };
         Device.Resistor { name = "rref2"; a = "vref"; b = "0"; ohms = r 50e3 };
         (* transimpedance feedback *)
         Device.Resistor
           { name = "rf"; a = "vout"; b = "iin"; ohms = r feedback_resistance };
         (* compensation and load *)
         Device.Capacitor { name = "cc"; a = "n1"; b = "n2"; farads = c 10e-12 };
         Device.Capacitor { name = "cl"; a = "vout"; b = "0"; farads = c 20e-12 };
         Device.Capacitor { name = "cin"; a = "iin"; b = "0"; farads = c 5e-12 };
       ]

let macro =
  {
    Macro.macro_name = "iv_converter";
    macro_type = "IV-converter";
    description =
      "Two-stage CMOS transimpedance amplifier (10 nodes, 10 MOSFETs); \
       Vout = Vref - Iin*Rf with Rf = 20k at a 5 V supply";
    build;
    fault_nodes;
    stimulus_source = "iin_src";
    observe_node = "vout";
  }

let vout_at iin =
  let nl = build Process.nominal in
  let nl =
    Netlist.replace nl "iin_src"
      [
        Device.Isource
          { name = "iin_src"; from_node = "0"; to_node = "iin";
            wave = Waveform.Dc iin };
      ]
  in
  let sys = Mna.build nl in
  Mna.voltage sys (Dc.operating_point sys ~time:`Dc) "vout"

let transimpedance () =
  let di = 1e-6 in
  (vout_at di -. vout_at (-.di)) /. (2. *. di)
