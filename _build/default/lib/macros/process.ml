type point = {
  label : string;
  dvt_n : float;
  dkp_n : float;
  dlambda_n : float;
  dvt_p : float;
  dkp_p : float;
  dlambda_p : float;
  dres : float;
  dcap : float;
}

let nominal =
  {
    label = "nominal";
    dvt_n = 0.;
    dkp_n = 0.;
    dlambda_n = 0.;
    dvt_p = 0.;
    dkp_p = 0.;
    dlambda_p = 0.;
    dres = 0.;
    dcap = 0.;
  }

type tolerances = {
  vt_tol : float;
  kp_tol : float;
  lambda_tol : float;
  res_tol : float;
  cap_tol : float;
}

let default_tolerances =
  { vt_tol = 0.05; kp_tol = 0.10; lambda_tol = 0.20; res_tol = 0.15; cap_tol = 0.10 }

type axis = {
  axis_name : string;
  magnitude : tolerances -> float;
  set : point -> float -> point;
}

let axes =
  [
    { axis_name = "vt_n"; magnitude = (fun t -> t.vt_tol);
      set = (fun p v -> { p with dvt_n = v }) };
    { axis_name = "kp_n"; magnitude = (fun t -> t.kp_tol);
      set = (fun p v -> { p with dkp_n = v }) };
    { axis_name = "lambda_n"; magnitude = (fun t -> t.lambda_tol);
      set = (fun p v -> { p with dlambda_n = v }) };
    { axis_name = "vt_p"; magnitude = (fun t -> t.vt_tol);
      set = (fun p v -> { p with dvt_p = v }) };
    { axis_name = "kp_p"; magnitude = (fun t -> t.kp_tol);
      set = (fun p v -> { p with dkp_p = v }) };
    { axis_name = "lambda_p"; magnitude = (fun t -> t.lambda_tol);
      set = (fun p v -> { p with dlambda_p = v }) };
    { axis_name = "res"; magnitude = (fun t -> t.res_tol);
      set = (fun p v -> { p with dres = v }) };
    { axis_name = "cap"; magnitude = (fun t -> t.cap_tol);
      set = (fun p v -> { p with dcap = v }) };
  ]

let corners ?(tolerances = default_tolerances) () =
  let single =
    List.concat_map
      (fun axis ->
        let m = axis.magnitude tolerances in
        [
          axis.set { nominal with label = axis.axis_name ^ "+" } m;
          axis.set { nominal with label = axis.axis_name ^ "-" } (-.m);
        ])
      axes
  in
  let all sign label =
    List.fold_left
      (fun p axis -> axis.set p (sign *. axis.magnitude tolerances))
      { nominal with label } axes
  in
  single @ [ all 1. "all+"; all (-1.) "all-" ]

let monte_carlo ?(tolerances = default_tolerances) rng ~n =
  List.init n (fun i ->
      let draw tol = Numerics.Rng.normal rng ~mu:0. ~sigma:(tol /. 3.) in
      List.fold_left
        (fun p axis -> axis.set p (draw (axis.magnitude tolerances)))
        { nominal with label = Printf.sprintf "mc%d" i }
        axes)

let apply_nmos p (m : Circuit.Mos_model.t) =
  Circuit.Mos_model.with_variation m ~dvt0:p.dvt_n ~dkp:p.dkp_n
    ~dlambda:p.dlambda_n

let apply_pmos p (m : Circuit.Mos_model.t) =
  Circuit.Mos_model.with_variation m ~dvt0:p.dvt_p ~dkp:p.dkp_p
    ~dlambda:p.dlambda_p

let scale_res p r = r *. (1. +. p.dres)
let scale_cap p c = c *. (1. +. p.dcap)
