open Circuit

type t = {
  macro_name : string;
  macro_type : string;
  description : string;
  build : Process.point -> Netlist.t;
  fault_nodes : string list;
  stimulus_source : string;
  observe_node : string;
}

let nominal_netlist m = m.build Process.nominal

let validate m =
  match nominal_netlist m with
  | exception Invalid_argument msg -> Error ("netlist build failed: " ^ msg)
  | nl -> begin
      match Netlist.connectivity_check nl with
      | Error e -> Error e
      | Ok () ->
          if not (Netlist.mem nl m.stimulus_source) then
            Error
              (Printf.sprintf "stimulus source %S not in netlist"
                 m.stimulus_source)
          else begin
            let known = Netlist.all_nodes nl in
            let missing =
              List.filter
                (fun n -> not (List.exists (String.equal n) known))
                (m.observe_node :: m.fault_nodes)
            in
            match missing with
            | [] -> Ok ()
            | n :: _ -> Error (Printf.sprintf "unknown macro node %S" n)
          end
    end

let fault_universe ?bridge_resistance ?pinhole_r_shunt m =
  Faults.Universe.exhaustive ?bridge_resistance ?pinhole_r_shunt
    ~nodes:m.fault_nodes (nominal_netlist m)

let dictionary ?bridge_resistance ?pinhole_r_shunt m =
  Faults.Dictionary.of_faults
    (fault_universe ?bridge_resistance ?pinhole_r_shunt m)
