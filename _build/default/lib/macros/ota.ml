open Circuit

let fault_nodes = [ "0"; "inp"; "nbias"; "nmir"; "ntail"; "out"; "vdd" ]

let build (p : Process.point) =
  let nmos = Process.apply_nmos p Mos_model.nmos_default in
  let pmos = Process.apply_pmos p Mos_model.pmos_default in
  let r = Process.scale_res p in
  let c = Process.scale_cap p in
  let um = 1e-6 in
  let nmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = nmos; w = w *. um; l = l *. um }
  in
  let pmosfet name drain gate source w l =
    Device.Mosfet { name; drain; gate; source; model = pmos; w = w *. um; l = l *. um }
  in
  Netlist.empty ~title:"5T OTA unity-gain buffer"
  |> Fun.flip Netlist.add_all
       [
         Device.Vsource
           { name = "vdd_src"; plus = "vdd_ext"; minus = "0"; wave = Waveform.Dc 5. };
         Device.Resistor { name = "rsup"; a = "vdd_ext"; b = "vdd"; ohms = r 2. };
         (* stimulus at the non-inverting input *)
         Device.Vsource
           { name = "vin_src"; plus = "inp"; minus = "0"; wave = Waveform.Dc 2.5 };
         (* the inverting input is the output: unity-gain buffer *)
         nmosfet "m1" "nmir" "inp" "ntail" 50. 1.;
         nmosfet "m2" "out" "out" "ntail" 50. 1.;
         pmosfet "m3" "nmir" "nmir" "vdd" 25. 1.;
         pmosfet "m4" "out" "nmir" "vdd" 25. 1.;
         nmosfet "m5" "ntail" "nbias" "0" 20. 2.;
         (* bias chain shared form with the IV-converter *)
         Device.Resistor { name = "rbias"; a = "vdd"; b = "nbias"; ohms = r 100e3 };
         nmosfet "m8" "nbias" "nbias" "0" 20. 2.;
         Device.Capacitor { name = "cl"; a = "out"; b = "0"; farads = c 5e-12 };
       ]

let macro =
  {
    Macro.macro_name = "ota_buffer";
    macro_type = "OTA-buffer";
    description =
      "Five-transistor OTA in unity-gain connection (7 nodes incl. rails, \
       6 MOSFETs incl. bias)";
    build;
    fault_nodes;
    stimulus_source = "vin_src";
    observe_node = "out";
  }
