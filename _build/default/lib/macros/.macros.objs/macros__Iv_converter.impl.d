lib/macros/iv_converter.ml: Circuit Dc Device Fun Macro Mna Mos_model Netlist Process Waveform
