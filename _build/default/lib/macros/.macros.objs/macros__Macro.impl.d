lib/macros/macro.ml: Circuit Faults List Netlist Printf Process String
