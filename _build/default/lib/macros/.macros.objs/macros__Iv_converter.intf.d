lib/macros/iv_converter.mli: Circuit Macro Process
