lib/macros/macro.mli: Circuit Faults Process
