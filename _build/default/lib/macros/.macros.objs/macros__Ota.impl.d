lib/macros/ota.ml: Circuit Device Fun Macro Mos_model Netlist Process Waveform
