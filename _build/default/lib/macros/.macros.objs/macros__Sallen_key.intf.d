lib/macros/sallen_key.mli: Circuit Macro Process
