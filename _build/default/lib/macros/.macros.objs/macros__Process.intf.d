lib/macros/process.mli: Circuit Numerics
