lib/macros/sallen_key.ml: Circuit Device Float Fun Macro Mos_model Netlist Process Waveform
