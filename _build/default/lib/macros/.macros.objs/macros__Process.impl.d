lib/macros/process.ml: Circuit List Numerics Printf
