lib/macros/ota.mli: Circuit Macro Process
