(** Process-variation model.

    The paper's tolerance boxes "safely box in expectable response values
    based on known variations on process parameters".  We model the
    process as relative shifts of the MOS model parameters and of the
    passive component values, sampled either as deterministic corners
    (for box calibration) or Monte-Carlo (for verification). *)

type point = {
  label : string;
  dvt_n : float;  (** relative shift of NMOS Vt0 *)
  dkp_n : float;
  dlambda_n : float;
  dvt_p : float;  (** relative shift of PMOS |Vt0| *)
  dkp_p : float;
  dlambda_p : float;
  dres : float;  (** relative shift of every resistor *)
  dcap : float;  (** relative shift of every capacitor *)
}

val nominal : point
(** All shifts zero. *)

type tolerances = {
  vt_tol : float;  (** default 0.05 *)
  kp_tol : float;  (** default 0.10 *)
  lambda_tol : float;  (** default 0.20 *)
  res_tol : float;  (** default 0.15 *)
  cap_tol : float;  (** default 0.10 *)
}

val default_tolerances : tolerances

val corners : ?tolerances:tolerances -> unit -> point list
(** Deterministic corner set: one-factor-at-a-time plus/minus for each of
    the eight axes, plus the two all-extreme corners — 18 points, labelled. *)

val monte_carlo :
  ?tolerances:tolerances -> Numerics.Rng.t -> n:int -> point list
(** [n] Gaussian samples with the tolerance as the 3-sigma bound. *)

val apply_nmos : point -> Circuit.Mos_model.t -> Circuit.Mos_model.t
val apply_pmos : point -> Circuit.Mos_model.t -> Circuit.Mos_model.t

val scale_res : point -> float -> float
val scale_cap : point -> float -> float
