type analysis = {
  fundamental : float;
  harmonics : float array;
  thd_percent : float;
}

let analyze ?(harmonics = 5) ~samples ~sample_rate ~fundamental_hz () =
  if harmonics < 2 then invalid_arg "Thd.analyze: harmonics < 2";
  let fund =
    Goertzel.amplitude_at ~samples ~sample_rate ~freq:fundamental_hz
  in
  let nyquist = sample_rate /. 2. in
  let orders =
    List.filter
      (fun k -> float_of_int k *. fundamental_hz < nyquist)
      (List.init (harmonics - 1) (fun i -> i + 2))
  in
  let amps =
    List.map
      (fun k ->
        Goertzel.amplitude_at ~samples ~sample_rate
          ~freq:(float_of_int k *. fundamental_hz))
      orders
    |> Array.of_list
  in
  let power = Array.fold_left (fun acc a -> acc +. (a *. a)) 0. amps in
  let thd =
    if fund <= 1e-300 then infinity else 100. *. sqrt power /. fund
  in
  { fundamental = fund; harmonics = amps; thd_percent = thd }

let thd_percent ?harmonics ~samples ~sample_rate ~fundamental_hz () =
  (analyze ?harmonics ~samples ~sample_rate ~fundamental_hz ()).thd_percent
