(** Single-bin discrete Fourier transform (Goertzel algorithm).

    The THD return value needs the amplitude of a handful of harmonics of
    a known fundamental; Goertzel computes one bin in O(n) without a full
    FFT and is exact when the analysis window spans an integer number of
    periods — which the test configurations guarantee by construction. *)

val bin : samples:float array -> k:int -> Complex.t
(** DFT coefficient [X_k] of the sample array (no window, no scaling).
    @raise Invalid_argument if the array is empty or [k] is outside
    [0 .. n-1]. *)

val amplitude : samples:float array -> k:int -> float
(** Single-sided amplitude of bin [k]: [2|X_k|/n] for [0 < k < n/2],
    [|X_0|/n] for the DC bin. *)

val amplitude_at :
  samples:float array -> sample_rate:float -> freq:float -> float
(** Amplitude at an arbitrary frequency: rounds to the nearest integer
    bin of the window.
    @raise Invalid_argument if [freq] is not resolvable (below one cycle
    per window or above Nyquist). *)
