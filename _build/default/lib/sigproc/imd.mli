(** Two-tone intermodulation distortion.

    Drive a circuit with two closely spaced tones [f1 = k1 f0] and
    [f2 = k2 f0] (both integer multiples of a base frequency [f0], so an
    integer number of base periods gives leakage-free bins), and measure
    the third-order products at [2 f1 - f2] and [2 f2 - f1] — the classic
    linearity figure that often exposes soft defects a single-tone THD
    measurement misses. *)

type analysis = {
  tone1 : float;  (** amplitude at f1 *)
  tone2 : float;  (** amplitude at f2 *)
  imd3_low : float;  (** amplitude at 2 f1 - f2 *)
  imd3_high : float;  (** amplitude at 2 f2 - f1 *)
  imd3_percent : float;
      (** worst third-order product relative to the smaller tone, in
          percent *)
}

val analyze :
  samples:float array ->
  sample_rate:float ->
  base_freq:float ->
  k1:int ->
  k2:int ->
  unit ->
  analysis
(** The window must span an integer number of base periods (the caller
    guarantees this by construction, as with THD).
    @raise Invalid_argument unless [0 < k1 < k2], the products stay
    above DC and below Nyquist, and the window resolves [base_freq]. *)

val imd3_percent :
  samples:float array -> sample_rate:float -> base_freq:float ->
  k1:int -> k2:int -> unit -> float
