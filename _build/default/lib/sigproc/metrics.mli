(** Scalar metrics over sampled waveforms.

    These implement the post-processing column of Table 1: maximum
    sample-wise deviation (configurations #4), accumulated samples
    (Fig. 1 / configuration #5), plus settling-time and RMS helpers used
    by the examples. *)

val max_abs_delta : float array -> float array -> float
(** [max_k |a_k - b_k|].  @raise Invalid_argument on length mismatch or
    empty arrays. *)

val accumulate : float array -> float
(** Sum of samples — the paper's "sampled and accumulated during the test
    time" return value. *)

val rms : float array -> float
(** @raise Invalid_argument on an empty array. *)

val peak_to_peak : float array -> float
(** @raise Invalid_argument on an empty array. *)

val settling_time :
  times:float array -> values:float array -> target:float -> band:float ->
  float option
(** First time after which every sample stays within [band] of [target];
    [None] if it never settles.  @raise Invalid_argument on mismatch or
    non-positive band. *)

val decimate : float array -> every:int -> float array
(** Keep indices 0, every, 2*every, ...
    @raise Invalid_argument if [every <= 0]. *)
