type analysis = {
  tone1 : float;
  tone2 : float;
  imd3_low : float;
  imd3_high : float;
  imd3_percent : float;
}

let analyze ~samples ~sample_rate ~base_freq ~k1 ~k2 () =
  if k1 <= 0 || k2 <= k1 then invalid_arg "Imd.analyze: need 0 < k1 < k2";
  let low = (2 * k1) - k2 in
  let high = (2 * k2) - k1 in
  if low <= 0 then invalid_arg "Imd.analyze: 2 f1 - f2 is at or below DC";
  let amp k =
    Goertzel.amplitude_at ~samples ~sample_rate
      ~freq:(float_of_int k *. base_freq)
  in
  let tone1 = amp k1 and tone2 = amp k2 in
  let imd3_low = amp low and imd3_high = amp high in
  let reference = Float.min tone1 tone2 in
  let imd3_percent =
    if reference <= 1e-300 then infinity
    else 100. *. Float.max imd3_low imd3_high /. reference
  in
  { tone1; tone2; imd3_low; imd3_high; imd3_percent }

let imd3_percent ~samples ~sample_rate ~base_freq ~k1 ~k2 () =
  (analyze ~samples ~sample_rate ~base_freq ~k1 ~k2 ()).imd3_percent
