lib/sigproc/metrics.ml: Array Float Numerics
