lib/sigproc/goertzel.mli: Complex
