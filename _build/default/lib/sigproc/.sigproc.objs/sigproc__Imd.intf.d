lib/sigproc/imd.mli:
