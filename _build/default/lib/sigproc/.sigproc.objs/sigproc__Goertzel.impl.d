lib/sigproc/goertzel.ml: Array Complex Float
