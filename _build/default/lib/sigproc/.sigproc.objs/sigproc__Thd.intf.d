lib/sigproc/thd.mli:
