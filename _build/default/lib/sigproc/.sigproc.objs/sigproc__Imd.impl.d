lib/sigproc/imd.ml: Float Goertzel
