lib/sigproc/thd.ml: Array Goertzel List
