lib/sigproc/metrics.mli:
