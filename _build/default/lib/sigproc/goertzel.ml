let bin ~samples ~k =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Goertzel.bin: empty samples";
  if k < 0 || k >= n then invalid_arg "Goertzel.bin: k out of range";
  let w = 2. *. Float.pi *. float_of_int k /. float_of_int n in
  let coeff = 2. *. cos w in
  let s_prev = ref 0. and s_prev2 = ref 0. in
  for i = 0 to n - 1 do
    let s = samples.(i) +. (coeff *. !s_prev) -. !s_prev2 in
    s_prev2 := !s_prev;
    s_prev := s
  done;
  (* X_k = s_prev * e^{jw} - s_prev2 *)
  {
    Complex.re = (!s_prev *. cos w) -. !s_prev2;
    im = !s_prev *. sin w;
  }

let amplitude ~samples ~k =
  let n = Array.length samples in
  let x = bin ~samples ~k in
  let mag = Complex.norm x /. float_of_int n in
  if k = 0 || (n mod 2 = 0 && k = n / 2) then mag else 2. *. mag

let amplitude_at ~samples ~sample_rate ~freq =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Goertzel.amplitude_at: empty samples";
  if sample_rate <= 0. then invalid_arg "Goertzel.amplitude_at: sample_rate";
  let window = float_of_int n /. sample_rate in
  let k = int_of_float (Float.round (freq *. window)) in
  if k < 1 || k > n / 2 then
    invalid_arg "Goertzel.amplitude_at: frequency not resolvable";
  amplitude ~samples ~k
