(** Total harmonic distortion.

    The paper's test configuration #3 returns a THD measurement of the
    IV-converter output under a sine-wave input (Figs. 2–4).  THD is
    computed from an integer number of fundamental periods as the RMS of
    harmonics 2..[harmonics] relative to the fundamental amplitude,
    expressed in percent. *)

type analysis = {
  fundamental : float;  (** amplitude of the fundamental *)
  harmonics : float array;  (** amplitudes of harmonics 2, 3, ... *)
  thd_percent : float;
}

val analyze :
  ?harmonics:int ->
  samples:float array ->
  sample_rate:float ->
  fundamental_hz:float ->
  unit ->
  analysis
(** [harmonics] (default 5) is the highest harmonic order included.
    Harmonics beyond Nyquist are skipped.  The fundamental must be
    resolvable in the window.
    @raise Invalid_argument on an empty window or unresolvable
    fundamental. *)

val thd_percent :
  ?harmonics:int ->
  samples:float array ->
  sample_rate:float ->
  fundamental_hz:float ->
  unit ->
  float
(** Shorthand for [(analyze ...).thd_percent]. *)
