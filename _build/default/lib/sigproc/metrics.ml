let max_abs_delta a b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Metrics.max_abs_delta: empty arrays";
  if Array.length b <> n then
    invalid_arg "Metrics.max_abs_delta: length mismatch";
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let accumulate = Array.fold_left ( +. ) 0.

let rms xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Metrics.rms: empty array";
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs /. float_of_int n)

let peak_to_peak xs =
  if Array.length xs = 0 then invalid_arg "Metrics.peak_to_peak: empty array";
  let lo, hi = Numerics.Stats.min_max xs in
  hi -. lo

let settling_time ~times ~values ~target ~band =
  let n = Array.length values in
  if Array.length times <> n then
    invalid_arg "Metrics.settling_time: length mismatch";
  if band <= 0. then invalid_arg "Metrics.settling_time: band <= 0";
  (* walk backwards: find the last out-of-band sample *)
  let last_violation = ref (-1) in
  for i = n - 1 downto 0 do
    if !last_violation = -1 && Float.abs (values.(i) -. target) > band then
      last_violation := i
  done;
  if !last_violation = -1 then if n = 0 then None else Some times.(0)
  else if !last_violation = n - 1 then None
  else Some times.(!last_violation + 1)

let decimate xs ~every =
  if every <= 0 then invalid_arg "Metrics.decimate: every <= 0";
  let n = Array.length xs in
  let m = ((n - 1) / every) + (if n = 0 then 0 else 1) in
  Array.init m (fun i -> xs.(i * every))
