(** Test-parameter sensitivity graphs (paper §3.1, Figs. 2–4).

    A tps-graph samples [S_f(T)] on a regular grid of the configuration's
    parameter space.  Positive regions mean the fault model is classified
    undetectable there; negative regions mean detection.  Sweeping the
    same fault at decreasing impact exposes the paper's hard-fault /
    soft-fault region dichotomy (§3.2): below some impact the landscape
    shape — and with it the argmin — stabilizes. *)

type graph = {
  config_id : int;
  fault : Faults.Fault.t;
  axes : (string * float array) list;
      (** per parameter: name and grid coordinates *)
  values : float array;
      (** sensitivities, row-major over the axes in order *)
}

val sweep : Evaluator.t -> Faults.Fault.t -> ?grid:int -> unit -> graph
(** Sample the sensitivity on a [grid]-per-axis lattice (default 11).
    @raise Invalid_argument if [grid < 2]. *)

val value_at : graph -> int array -> float
(** Grid value by per-axis indices.  @raise Invalid_argument on rank or
    range errors. *)

val argmin : graph -> Numerics.Vec.t * float
(** Best (most detecting) grid point and its sensitivity. *)

val detection_fraction : graph -> float
(** Fraction of grid points with negative sensitivity. *)

val normalized_argmin_shift : graph -> graph -> float
(** Distance (infinity norm in bound-normalized coordinates) between two
    graphs' argmin locations — the soft-region stability measure.
    @raise Invalid_argument if the graphs have different axes. *)

type region_classification = {
  weakened_impacts : float array;  (** impacts compared, ascending *)
  shifts : float array;  (** consecutive normalized argmin shifts *)
  region : [ `Soft | `Hard ];
}

val classify_region :
  Evaluator.t ->
  Faults.Fault.t ->
  ?factors:float array ->
  ?grid:int ->
  ?stability_threshold:float ->
  unit ->
  region_classification
(** Sweep the fault at its own impact and at weakened impacts (default
    factors [|2.; 4.|]), compare argmin locations; [`Soft] iff every
    consecutive shift is below [stability_threshold] (default 0.2). *)
