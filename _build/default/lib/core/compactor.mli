(** End-to-end compaction (paper §4): from per-fault generation results
    to the final compact high-quality test set. *)

type compact_test = {
  ct_label : string;  (** e.g. ["tc1-g2"] *)
  ct_config_id : int;
  ct_params : Numerics.Vec.t;
  ct_fault_ids : string list;  (** faults whose best test collapsed here *)
}

type result = {
  compact_tests : compact_test list;
  groups : Collapse.group list;
  stats : Collapse.stats;
  original_test_count : int;
      (** one optimized test per dictionary fault (undetectable faults
          carry their most sensitive test, per the paper's fault-impact
          extension) *)
  coverage : Coverage.report;
      (** final set scored against the full dictionary at dictionary
          impacts *)
}

val members_of_run :
  Engine.run -> config_id:int -> Collapse.member list
(** Collapse members for one configuration: every fault whose best test
    uses it, carried at its critical impact with its recorded optimal
    sensitivity.  Undetectable faults are carried at the strongest
    impact tried. *)

val compact :
  ?delta:float ->
  ?threshold:float ->
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  Engine.run ->
  result
(** Collapse every configuration's tests ([delta] defaults to 0.1,
    see {!Collapse}), assemble the compact set, and evaluate its
    coverage. *)

val compaction_ratio : result -> float
(** [original tests / compact tests]. *)
