type t = {
  param_name : string;
  units : string;
  lower : float;
  upper : float;
  seed : float;
}

let create ~name ~units ~lower ~upper ~seed =
  if lower >= upper then
    invalid_arg (Printf.sprintf "Test_param.create %s: lower >= upper" name);
  if seed < lower || seed > upper then
    invalid_arg (Printf.sprintf "Test_param.create %s: seed out of bounds" name);
  { param_name = name; units; lower; upper; seed }

let normalize p v =
  let n = (v -. p.lower) /. (p.upper -. p.lower) in
  Float.min 1. (Float.max 0. n)

let denormalize p n = p.lower +. (n *. (p.upper -. p.lower))

let clamp p v = Float.min p.upper (Float.max p.lower v)

let bounds_of params =
  let arr = Array.of_list params in
  (Array.map (fun p -> p.lower) arr, Array.map (fun p -> p.upper) arr)

let seeds_of params = Array.of_list (List.map (fun p -> p.seed) params)

let pp_value p ppf v = Format.fprintf ppf "%s%s" (Circuit.Units.format_eng v) p.units

let pp ppf p =
  Format.fprintf ppf "%s in [%a, %a] seed %a" p.param_name (pp_value p) p.lower
    (pp_value p) p.upper (pp_value p) p.seed
