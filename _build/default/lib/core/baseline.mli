(** Selection-only baseline (the strategy the paper argues against).

    §2.2: "test generation by using a fixed predefined set of possible
    tests to select from, and detection of fault models as plain
    evaluation criterion, will not result in the most sensitive test
    set".  The baseline freezes every configuration at its designer seed
    parameters and merely {e selects} among those fixed tests.  Comparing
    the baseline's weakest-detectable impact per fault with the optimized
    flow's critical impact quantifies the value of parameter tailoring. *)

type fault_comparison = {
  cmp_fault_id : string;
  seed_detects : bool;  (** any seed test detects at dictionary impact *)
  seed_best_sensitivity : float;  (** over the seed tests *)
  seed_critical_impact : float option;
      (** weakest impact any seed test still detects; [None] if not even
          the strongest impact is detected *)
  optimized_critical_impact : float option;
      (** from the generation run; [None] for undetectable faults *)
}

type summary = {
  comparisons : fault_comparison list;
  seed_covered : int;
  optimized_covered : int;
  total : int;
  median_impact_gain : float;
      (** median over faults of optimized/seed critical impact — how much
          weaker a defect the tailored tests catch (>1 means better) *)
}

val seed_tests : Test_config.t list -> Coverage.test list
(** One test per configuration, at the seed parameter values. *)

val critical_impact_of_tests :
  evaluators:Evaluator.t list ->
  tests:Coverage.test list ->
  Faults.Fault.t ->
  ?span:float ->
  ?steps:int ->
  unit ->
  float option
(** Weakest model resistance at which {e some} test of the set still
    detects the fault: geometric walk + log bisection over
    [R/span, R*span] (span default 1e3). *)

val compare :
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  Engine.run ->
  summary
(** Full XBASE comparison against the run's optimized results. *)
