(** The test-set collapse algorithm (paper §4.1).

    Fault-specific best tests [T_f1 .. T_fn] of one configuration are
    replaced by a single test [T_c] at the average of their parameters,
    provided that for {e every} member fault the sensitivity loss stays
    within the acceptance level [delta]:

    [S_fi(T_c) <= S_fi(T_opt,fi) + delta * (1 - S_fi(T_opt,fi))]

    i.e. [delta] is "the maximal allowed percentile shift of S_f at
    T_tc,c upwards to the level of insensitivity" (cost 1).  Rejected
    proposals are split around their farthest pair and retried, so the
    algorithm always terminates (singletons accept trivially). *)

type member = {
  member_fault_id : string;
  member_fault : Faults.Fault.t;
      (** evaluated at this impact (the critical impact of the fault, so
          the screen protects exactly the quality the generation step
          achieved) *)
  member_params : Numerics.Vec.t;  (** the fault's optimized test *)
  member_opt_sensitivity : float;  (** [S_f(T_opt)] at that impact *)
}

type group = {
  group_config_id : int;
  members : member list;
  group_params : Numerics.Vec.t;  (** collapsed test parameters *)
  screened_sensitivities : (string * float) list;
      (** per member fault: [S_f(T_c)] *)
}

type stats = { proposals : int; accepted : int; splits : int }

val screen :
  Evaluator.t -> delta:float -> member list -> Numerics.Vec.t ->
  (string * float) list option
(** Evaluate the §4.1 inequality for every member at the candidate
    collapsed parameters; [Some sensitivities] iff all pass. *)

val collapse_config :
  Evaluator.t ->
  delta:float ->
  ?threshold:float ->
  member list ->
  group list * stats
(** Cluster the members of one configuration (see {!Cluster.group}),
    then collapse every cluster with screening and recursive splitting.
    @raise Invalid_argument if [delta] is outside [\[0, 1\]]. *)
