(** Production quality estimation for a test set.

    The tolerance-box construction (paper §2.2) trades two production
    risks: {e overkill} (a fault-free die outside the guardbanded box
    fails the test) and {e test escape} (a defective die whose response
    stays inside every box ships).  This module estimates both for a
    concrete test set: overkill by Monte-Carlo over fault-free process
    samples, escape from the dictionary detection results, optionally
    defect-likelihood weighted. *)

type estimate = {
  overkill_rate : float;
      (** fraction of fault-free samples failing at least one test *)
  escape_rate : float;
      (** (weighted) fraction of dictionary faults passing every test *)
  fault_free_samples : int;
  worst_sample_margin : float;
      (** max over samples and tests of |deviation|/box — how close the
          healthiest process corner comes to failing (1 = at the limit) *)
}

val estimate :
  evaluators:Evaluator.t list ->
  tests:Coverage.test list ->
  fault_free:Execute.target list ->
  dictionary:Faults.Dictionary.t ->
  ?weights:(string * float) list ->
  unit ->
  estimate
(** [fault_free] are targets built at Monte-Carlo process points;
    [weights] default to uniform over the dictionary.
    @raise Invalid_argument on an empty test or sample list, or a test
    referencing an unknown configuration. *)

val report : estimate -> string
(** Short human-readable summary. *)
