type equivalence_class = {
  representative : string;
  members : string list;
  class_config_id : int;
  class_params : Numerics.Vec.t;
}

type item = {
  fault_id : string;
  config_id : int;
  normalized : Numerics.Vec.t;
  params : Numerics.Vec.t;
  critical : float option;
}

let item_of_result configs (r : Generate.result) =
  let config_id = Generate.best_config_id r in
  let params = Generate.best_params r in
  let config =
    List.find (fun c -> c.Test_config.config_id = config_id) configs
  in
  {
    fault_id = r.Generate.fault_id;
    config_id;
    normalized = Cluster.normalize config.Test_config.params params;
    params;
    critical =
      (match r.Generate.outcome with
      | Generate.Unique { critical_impact; _ } -> Some critical_impact
      | Generate.Undetectable _ -> None);
  }

let equivalent ~tolerance ~impact_ratio a b =
  a.config_id = b.config_id
  && Numerics.Vec.dist_inf a.normalized b.normalized <= tolerance
  &&
  match (a.critical, b.critical) with
  | Some ra, Some rb ->
      let hi = Float.max ra rb and lo = Float.min ra rb in
      hi /. lo <= impact_ratio
  | None, None -> true
  | Some _, None | None, Some _ -> false

let classes ?(tolerance = 0.05) ?(impact_ratio = 2.) ~configs results =
  let items = List.map (item_of_result configs) results in
  (* greedy single-pass partition: deterministic, order-preserving *)
  let classes = ref [] in
  List.iter
    (fun it ->
      let placed = ref false in
      classes :=
        List.map
          (fun (rep, members) ->
            if (not !placed) && equivalent ~tolerance ~impact_ratio rep it
            then begin
              placed := true;
              (rep, it :: members)
            end
            else (rep, members))
          !classes;
      if not !placed then classes := !classes @ [ (it, []) ])
    items;
  List.map
    (fun (rep, members) ->
      let all = rep :: List.rev members in
      (* representative: the member detecting the weakest impact *)
      let best =
        List.fold_left
          (fun best it ->
            match (best.critical, it.critical) with
            | Some rb, Some ri when ri > rb -> it
            | _ -> best)
          rep all
      in
      {
        representative = best.fault_id;
        members = List.map (fun it -> it.fault_id) all;
        class_config_id = best.config_id;
        class_params = best.params;
      })
    !classes

let collapse_ratio cls =
  let members =
    List.fold_left (fun n c -> n + List.length c.members) 0 cls
  in
  if cls = [] then 1.
  else float_of_int members /. float_of_int (List.length cls)
