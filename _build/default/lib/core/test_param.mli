(** Test parameters.

    A test configuration carries named parameters (DC level, frequency,
    step elevation, ...) with constraint bounds "determined by the
    specifications of the macro and the test equipment" and a seed value
    provided by the designer.  The optimizer works in physical units and
    the compaction clustering in bound-normalized coordinates. *)

type t = {
  param_name : string;
  units : string;  (** e.g. ["uA"], ["kHz"] — display only *)
  lower : float;
  upper : float;
  seed : float;
}

val create :
  name:string -> units:string -> lower:float -> upper:float -> seed:float -> t
(** @raise Invalid_argument unless [lower < upper] and the seed lies
    within the bounds. *)

val normalize : t -> float -> float
(** Map a physical value to [\[0, 1\]] (clamped). *)

val denormalize : t -> float -> float
(** Inverse of {!normalize} for values in [\[0, 1\]]. *)

val clamp : t -> float -> float

val bounds_of : t list -> Numerics.Vec.t * Numerics.Vec.t
(** [(lowers, uppers)] for an optimizer box. *)

val seeds_of : t list -> Numerics.Vec.t

val pp : Format.formatter -> t -> unit
(** e.g. [freq in [1kHz, 100kHz] seed 10kHz]. *)

val pp_value : t -> Format.formatter -> float -> unit
(** Value with the parameter's display unit. *)
