type cost_model = {
  dc_point_cost : float;
  transient_cost_per_sample : float;
  thd_cost : float;
  ac_point_cost : float;
}

let default_cost_model =
  {
    dc_point_cost = 1e-3;
    transient_cost_per_sample = 1e-8;
    thd_cost = 5e-3;
    ac_point_cost = 2e-3;
  }

let test_cost model (config : Test_config.t) =
  match config.Test_config.analysis with
  | Test_config.Dc_levels waves ->
      let n =
        List.length (waves (Test_param.seeds_of config.Test_config.params))
      in
      float_of_int n *. model.dc_point_cost
  | Test_config.Tran_thd _ | Test_config.Tran_imd _ -> model.thd_cost
  | Test_config.Tran_samples { sample_rate; test_time; _ } ->
      sample_rate *. test_time *. model.transient_cost_per_sample
  | Test_config.Ac_gain _ | Test_config.Noise_psd _ -> model.ac_point_cost

type scheduled = {
  order : Coverage.test list;
  cumulative_coverage : float list;
  cumulative_cost : float list;
  expected_detection_cost : float;
}

let order ~cost_model ~configs ~weights ~detections tests =
  let config_of cid =
    match
      List.find_opt (fun c -> c.Test_config.config_id = cid) configs
    with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf "Schedule.order: unknown configuration #%d" cid)
  in
  let cost_of (t : Coverage.test) =
    test_cost cost_model (config_of t.Coverage.test_config_id)
  in
  let total_weight =
    Float.max 1e-300 (List.fold_left (fun acc (_, w) -> acc +. w) 0. weights)
  in
  let weight_of fid =
    Option.value ~default:0. (List.assoc_opt fid weights) /. total_weight
  in
  (* faults each test detects *)
  let faults_of (t : Coverage.test) =
    List.filter_map
      (fun (fid, labels) ->
        if List.exists (String.equal t.Coverage.test_label) labels then
          Some fid
        else None)
      detections
  in
  let remaining = ref tests in
  let caught = Hashtbl.create 64 in
  let ordered = ref [] in
  let coverage = ref 0. in
  let cost = ref 0. in
  let cum_cov = ref [] and cum_cost = ref [] in
  let expected = ref 0. in
  while !remaining <> [] do
    let gain_of t =
      List.fold_left
        (fun acc fid ->
          if Hashtbl.mem caught fid then acc else acc +. weight_of fid)
        0. (faults_of t)
    in
    (* pick the best gain/cost ratio; stable for ties *)
    let best =
      List.fold_left
        (fun best t ->
          let ratio = gain_of t /. Float.max 1e-12 (cost_of t) in
          match best with
          | Some (_, best_ratio) when best_ratio >= ratio -> best
          | Some _ | None -> Some (t, ratio))
        None !remaining
    in
    match best with
    | None -> remaining := []
    | Some (t, _) ->
        let gain = gain_of t in
        List.iter
          (fun fid ->
            if not (Hashtbl.mem caught fid) then Hashtbl.replace caught fid ())
          (faults_of t);
        cost := !cost +. cost_of t;
        coverage := !coverage +. (100. *. gain);
        (* a defect caught first by this test pays the cost so far *)
        expected := !expected +. (gain *. !cost);
        ordered := t :: !ordered;
        cum_cov := !coverage :: !cum_cov;
        cum_cost := !cost :: !cum_cost;
        remaining :=
          List.filter
            (fun t' ->
              not (String.equal t'.Coverage.test_label t.Coverage.test_label))
            !remaining
  done;
  {
    order = List.rev !ordered;
    cumulative_coverage = List.rev !cum_cov;
    cumulative_cost = List.rev !cum_cost;
    expected_detection_cost = !expected;
  }
