(** Fault-coverage evaluation of a concrete test set. *)

type test = {
  test_label : string;  (** e.g. ["tc3-g1"] or a fault id *)
  test_config_id : int;
  test_params : Numerics.Vec.t;
}

type detection = {
  det_fault_id : string;
  detected_by : string list;  (** labels of detecting tests *)
  best_sensitivity : float;  (** most negative sensitivity over the set *)
}

type report = {
  tests : test list;
  detections : detection list;
  covered : int;
  total : int;
}

val percent : report -> float

val missed : report -> string list
(** Fault ids not detected by any test of the set. *)

val evaluate :
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  test list ->
  report
(** Score every dictionary fault (at its dictionary impact) against
    every test.  Tests referencing a configuration with no evaluator are
    rejected.
    @raise Invalid_argument on an unknown configuration id. *)

val essential_tests : report -> string list
(** Labels of tests that uniquely detect at least one fault (dropping
    them would lose coverage). *)
