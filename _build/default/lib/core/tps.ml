
type graph = {
  config_id : int;
  fault : Faults.Fault.t;
  axes : (string * float array) list;
  values : float array;
}

let sweep evaluator fault ?(grid = 11) () =
  if grid < 2 then invalid_arg "Tps.sweep: grid < 2";
  let config = Evaluator.config evaluator in
  let params = Array.of_list config.Test_config.params in
  let axes =
    Array.map
      (fun (p : Test_param.t) ->
        ( p.Test_param.param_name,
          Array.init grid (fun i ->
              p.Test_param.lower
              +. ((p.Test_param.upper -. p.Test_param.lower)
                  *. float_of_int i
                  /. float_of_int (grid - 1))) ))
      params
  in
  let dims = Array.map (fun (_, a) -> Array.length a) axes in
  let total = Array.fold_left ( * ) 1 dims in
  let values =
    Array.init total (fun flat ->
        let idx = Array.make (Array.length dims) 0 in
        let rem = ref flat in
        for d = Array.length dims - 1 downto 0 do
          idx.(d) <- !rem mod dims.(d);
          rem := !rem / dims.(d)
        done;
        let point = Array.mapi (fun d i -> snd axes.(d) |> fun a -> a.(i)) idx in
        Evaluator.sensitivity evaluator fault point)
  in
  {
    config_id = Evaluator.config_id evaluator;
    fault;
    axes = Array.to_list axes;
    values;
  }

let dims g = List.map (fun (_, a) -> Array.length a) g.axes |> Array.of_list

let value_at g idx =
  let d = dims g in
  if Array.length idx <> Array.length d then
    invalid_arg "Tps.value_at: rank mismatch";
  let flat = ref 0 in
  Array.iteri
    (fun i k ->
      if k < 0 || k >= d.(i) then invalid_arg "Tps.value_at: index range";
      flat := (!flat * d.(i)) + k)
    idx;
  g.values.(!flat)

let argmin g =
  let d = dims g in
  let best = ref 0 in
  Array.iteri (fun i v -> if v < g.values.(!best) then best := i) g.values;
  let idx = Array.make (Array.length d) 0 in
  let rem = ref !best in
  for k = Array.length d - 1 downto 0 do
    idx.(k) <- !rem mod d.(k);
    rem := !rem / d.(k)
  done;
  let axes = Array.of_list g.axes in
  (Array.mapi (fun k i -> (snd axes.(k)).(i)) idx, g.values.(!best))

let detection_fraction g =
  let neg = Array.fold_left (fun n v -> if v < 0. then n + 1 else n) 0 g.values in
  float_of_int neg /. float_of_int (Array.length g.values)

let normalized_argmin_shift g1 g2 =
  if
    List.length g1.axes <> List.length g2.axes
    || not
         (List.for_all2
            (fun (n1, a1) (n2, a2) ->
              String.equal n1 n2 && Array.length a1 = Array.length a2)
            g1.axes g2.axes)
  then invalid_arg "Tps.normalized_argmin_shift: incompatible graphs";
  let p1, _ = argmin g1 and p2, _ = argmin g2 in
  let shift = ref 0. in
  List.iteri
    (fun d (_, axis) ->
      let span = axis.(Array.length axis - 1) -. axis.(0) in
      if span > 0. then
        shift := Float.max !shift (Float.abs (p1.(d) -. p2.(d)) /. span))
    g1.axes;
  !shift

type region_classification = {
  weakened_impacts : float array;
  shifts : float array;
  region : [ `Soft | `Hard ];
}

let classify_region evaluator fault ?(factors = [| 2.; 4. |]) ?grid
    ?(stability_threshold = 0.2) () =
  let impacts =
    Array.append [| 1. |] factors
    |> Array.map (fun f -> Faults.Fault.impact_resistance fault *. f)
  in
  let graphs =
    Array.map
      (fun r -> sweep evaluator (Faults.Fault.with_impact fault r) ?grid ())
      impacts
  in
  let shifts =
    Array.init
      (Array.length graphs - 1)
      (fun i -> normalized_argmin_shift graphs.(i) graphs.(i + 1))
  in
  let stable = Array.for_all (fun s -> s <= stability_threshold) shifts in
  {
    weakened_impacts = impacts;
    shifts;
    region = (if stable then `Soft else `Hard);
  }
