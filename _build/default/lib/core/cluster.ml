open Numerics

type item = { item_id : string; location : Vec.t }

let normalize params v =
  let arr = Array.of_list params in
  if Vec.dim v <> Array.length arr then
    invalid_arg "Cluster.normalize: dimension mismatch";
  Array.mapi (fun i p -> Test_param.normalize p v.(i)) arr

let distance = Vec.dist_inf

(* complete linkage: distance between clusters = max pairwise distance *)
let cluster_distance a b =
  List.fold_left
    (fun acc (x : item) ->
      List.fold_left
        (fun acc (y : item) -> Float.max acc (distance x.location y.location))
        acc b)
    0. a

let group ~params ?(threshold = 0.15) items =
  let normalized =
    List.map
      (fun it -> { it with location = normalize params it.location })
      items
  in
  let clusters = ref (List.map (fun it -> [ it ]) normalized) in
  let merged = ref true in
  while !merged do
    merged := false;
    let arr = Array.of_list !clusters in
    (* find the closest admissible pair under complete linkage *)
    let best = ref None in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let d = cluster_distance arr.(i) arr.(j) in
        if d <= threshold then
          match !best with
          | Some (_, _, d') when d' <= d -> ()
          | Some _ | None -> best := Some (i, j, d)
      done
    done;
    match !best with
    | Some (i, j, _) ->
        clusters :=
          Array.to_list arr
          |> List.filteri (fun k _ -> k <> j)
          |> List.mapi (fun k c -> if k = i then arr.(i) @ arr.(j) else c);
        merged := true
    | None -> ()
  done;
  let arr_params = Array.of_list params in
  let denormalize (it : item) =
    {
      it with
      location =
        Array.mapi (fun i n -> Test_param.denormalize arr_params.(i) n)
          it.location;
    }
  in
  List.map (List.map denormalize) !clusters

let centroid members =
  match members with
  | [] -> invalid_arg "Cluster.centroid: empty group"
  | first :: _ ->
      let dim = Vec.dim first.location in
      let acc = Vec.create dim 0. in
      List.iter
        (fun (it : item) ->
          if Vec.dim it.location <> dim then
            invalid_arg "Cluster.centroid: ragged dimensions";
          for i = 0 to dim - 1 do
            acc.(i) <- acc.(i) +. it.location.(i)
          done)
        members;
      let n = float_of_int (List.length members) in
      Array.map (fun x -> x /. n) acc

let split members =
  match members with
  | [] | [ _ ] -> invalid_arg "Cluster.split: group too small"
  | _ ->
      let arr = Array.of_list members in
      let n = Array.length arr in
      let best = ref (0, 1) and best_d = ref neg_infinity in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let d = distance arr.(i).location arr.(j).location in
          if d > !best_d then begin
            best_d := d;
            best := (i, j)
          end
        done
      done;
      let pa, pb = !best in
      let a = ref [] and b = ref [] in
      Array.iteri
        (fun k it ->
          if k = pa then a := it :: !a
          else if k = pb then b := it :: !b
          else begin
            let da = distance it.location arr.(pa).location in
            let db = distance it.location arr.(pb).location in
            if da <= db then a := it :: !a else b := it :: !b
          end)
        arr;
      (List.rev !a, List.rev !b)
