type run = {
  results : Generate.result list;
  evaluators : Evaluator.t list;
  wall_seconds : float;
  total_fault_simulations : int;
}

let run ?options ?progress ~evaluators dictionary =
  let entries = Faults.Dictionary.entries dictionary in
  let total = List.length entries in
  let started = Sys.time () in
  let before =
    List.fold_left (fun acc ev -> acc + Evaluator.evaluation_count ev) 0
      evaluators
  in
  let results =
    List.mapi
      (fun i entry ->
        let r = Generate.generate ?options ~evaluators entry in
        (match progress with
        | Some f ->
            f ~done_:(i + 1) ~total ~fault_id:entry.Faults.Dictionary.fault_id
        | None -> ());
        r)
      entries
  in
  let after =
    List.fold_left (fun acc ev -> acc + Evaluator.evaluation_count ev) 0
      evaluators
  in
  {
    results;
    evaluators;
    wall_seconds = Sys.time () -. started;
    total_fault_simulations = after - before;
  }

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

let distribution run =
  let config_ids =
    List.map Evaluator.config_id run.evaluators |> List.sort_uniq Int.compare
  in
  List.map
    (fun cid ->
      let mine =
        List.filter (fun r -> Generate.best_config_id r = cid) run.results
      in
      let bridges, pinholes =
        List.fold_left
          (fun (b, p) r ->
            match Faults.Fault.kind r.Generate.dictionary_fault with
            | `Bridge -> (b + 1, p)
            | `Pinhole -> (b, p + 1))
          (0, 0) mine
      in
      { dist_config_id = cid; bridge_count = bridges; pinhole_count = pinholes })
    config_ids

let undetectable_faults run =
  List.filter
    (fun r ->
      match r.Generate.outcome with
      | Generate.Undetectable _ -> true
      | Generate.Unique _ -> false)
    run.results

let results_for_config run ~config_id =
  List.filter (fun r -> Generate.best_config_id r = config_id) run.results

let critical_impacts run =
  List.filter_map
    (fun r ->
      match r.Generate.outcome with
      | Generate.Unique { critical_impact; _ } ->
          Some (r.Generate.fault_id, critical_impact)
      | Generate.Undetectable _ -> None)
    run.results
