type analysis =
  | Dc_levels of (Numerics.Vec.t -> Circuit.Waveform.t list)
  | Tran_thd of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
      fundamental : Numerics.Vec.t -> float;
    }
  | Tran_samples of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
      sample_rate : float;
      test_time : float;
    }
  | Ac_gain of {
      bias : Numerics.Vec.t -> Circuit.Waveform.t;
      freq : Numerics.Vec.t -> float;
    }
  | Tran_imd of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
      base_freq : Numerics.Vec.t -> float;
      k1 : int;
      k2 : int;
    }
  | Noise_psd of {
      bias : Numerics.Vec.t -> Circuit.Waveform.t;
      freq : Numerics.Vec.t -> float;
    }

type returns = Per_component | Max_abs_delta | Sum_abs_delta

type t = {
  config_id : int;
  config_name : string;
  macro_type : string;
  control_node : string;
  params : Test_param.t list;
  analysis : analysis;
  returns : returns;
  return_names : string list;
  accuracy_floor : float list;
  summary : string;
}

let create ~id ~name ~macro_type ~control_node ~params ~analysis ~returns
    ~return_names ~accuracy_floor ~summary =
  if params = [] then invalid_arg "Test_config.create: no parameters";
  if List.length return_names <> List.length accuracy_floor then
    invalid_arg "Test_config.create: return_names / accuracy_floor mismatch";
  if return_names = [] then invalid_arg "Test_config.create: no return values";
  (match (returns, analysis) with
  | (Max_abs_delta | Sum_abs_delta), _ when List.length return_names <> 1 ->
      invalid_arg "Test_config.create: delta returns are single-valued"
  | Per_component, (Tran_thd _ | Tran_imd _ | Noise_psd _)
    when List.length return_names <> 1 ->
      invalid_arg
        "Test_config.create: THD/IMD/noise analyses have one return value"
  | (Max_abs_delta | Sum_abs_delta), Noise_psd _ ->
      invalid_arg "Test_config.create: noise needs Per_component returns"
  | Per_component, Tran_imd { k1; k2; _ }
    when k1 <= 0 || k2 <= k1 || (2 * k1) - k2 <= 0 ->
      invalid_arg "Test_config.create: IMD needs 0 < k1 < k2 < 2 k1"
  | (Max_abs_delta | Sum_abs_delta), Tran_imd _ ->
      invalid_arg "Test_config.create: IMD needs Per_component returns"
  | Per_component, Tran_samples _ ->
      invalid_arg
        "Test_config.create: sample-train analyses need a delta return mode"
  | Per_component, Ac_gain _ when List.length return_names <> 2 ->
      invalid_arg
        "Test_config.create: AC analysis returns gain and phase (p = 2)"
  | (Max_abs_delta | Sum_abs_delta), Ac_gain _ ->
      invalid_arg "Test_config.create: AC analysis needs Per_component returns"
  | (Per_component | Max_abs_delta | Sum_abs_delta), _ -> ());
  List.iter
    (fun f ->
      if f <= 0. then
        invalid_arg "Test_config.create: accuracy floors must be positive")
    accuracy_floor;
  {
    config_id = id;
    config_name = name;
    macro_type;
    control_node;
    params;
    analysis;
    returns;
    return_names;
    accuracy_floor;
    summary;
  }

let n_params t = List.length t.params

let return_count t = List.length t.return_names

let param_values_of_seed t = Test_param.seeds_of t.params

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "Macro type: %s\n" t.macro_type);
  Buffer.add_string b
    (Printf.sprintf "Test configuration #%d: %s\n" t.config_id t.config_name);
  Buffer.add_string b (Printf.sprintf "  control node: %s\n" t.control_node);
  Buffer.add_string b (Printf.sprintf "  stimulus:     %s\n" t.summary);
  List.iter
    (fun p ->
      Buffer.add_string b
        (Format.asprintf "  parameter:    %a\n" Test_param.pp p))
    t.params;
  (match t.analysis with
  | Dc_levels _ -> ()
  | Tran_thd _ ->
      Buffer.add_string b "  analysis:     transient, period-locked window\n"
  | Tran_samples { sample_rate; test_time; _ } ->
      Buffer.add_string b
        (Printf.sprintf "  analysis:     transient; sample-rate=%sHz test-time=%ss\n"
           (Circuit.Units.format_eng sample_rate)
           (Circuit.Units.format_eng test_time))
  | Ac_gain _ ->
      Buffer.add_string b
        "  analysis:     small-signal AC at the operating point\n"
  | Tran_imd { k1; k2; _ } ->
      Buffer.add_string b
        (Printf.sprintf
           "  analysis:     two-tone transient (f1 = %d f0, f2 = %d f0), \
            period-locked window\n"
           k1 k2)
  | Noise_psd _ ->
      Buffer.add_string b
        "  analysis:     output noise density at the operating point\n");
  List.iteri
    (fun i rn ->
      Buffer.add_string b
        (Printf.sprintf "  return value: %s (tester accuracy %.4g)\n" rn
           (List.nth t.accuracy_floor i)))
    t.return_names;
  Buffer.contents b
