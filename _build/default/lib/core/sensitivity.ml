let of_deviation ~deviation ~box =
  if box <= 0. then invalid_arg "Sensitivity.of_deviation: box <= 0";
  1. -. (Float.abs deviation /. box)

let combine per_return =
  if Array.length per_return = 0 then
    invalid_arg "Sensitivity.combine: no return values";
  Array.fold_left Float.min per_return.(0) per_return

let compute config ~box ~nominal ~faulty =
  let dev = Execute.deviations config ~nominal ~faulty in
  if Array.length dev <> Array.length box then
    invalid_arg "Sensitivity.compute: box length mismatch";
  combine
    (Array.mapi (fun i d -> of_deviation ~deviation:d ~box:box.(i)) dev)

let detects s = s < 0.
