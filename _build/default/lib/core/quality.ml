type estimate = {
  overkill_rate : float;
  escape_rate : float;
  fault_free_samples : int;
  worst_sample_margin : float;
}

let evaluator_for evaluators cid =
  match List.find_opt (fun ev -> Evaluator.config_id ev = cid) evaluators with
  | Some ev -> ev
  | None ->
      invalid_arg (Printf.sprintf "Quality: no evaluator for config #%d" cid)

let estimate ~evaluators ~tests ~fault_free ~dictionary ?weights () =
  if tests = [] then invalid_arg "Quality.estimate: no tests";
  if fault_free = [] then invalid_arg "Quality.estimate: no samples";
  (* overkill: a fault-free sample fails if any test flags it *)
  let failures = ref 0 in
  let worst = ref 0. in
  List.iter
    (fun target ->
      let fails =
        List.exists
          (fun (t : Coverage.test) ->
            let ev = evaluator_for evaluators t.Coverage.test_config_id in
            let s =
              Evaluator.sensitivity_of_target ev target t.Coverage.test_params
            in
            (* margin |dev|/box = 1 - S *)
            worst := Float.max !worst (1. -. s);
            Sensitivity.detects s)
          tests
      in
      if fails then incr failures)
    fault_free;
  (* escape: dictionary faults no test detects, weighted *)
  let detections = Coverage.evaluate ~evaluators dictionary tests in
  let weight_of =
    match weights with
    | None -> fun _ -> 1.
    | Some ws -> fun fid -> Option.value ~default:0. (List.assoc_opt fid ws)
  in
  let total_w = ref 0. and escaped_w = ref 0. in
  List.iter
    (fun (d : Coverage.detection) ->
      let w = weight_of d.Coverage.det_fault_id in
      total_w := !total_w +. w;
      if d.Coverage.detected_by = [] then escaped_w := !escaped_w +. w)
    detections.Coverage.detections;
  {
    overkill_rate =
      float_of_int !failures /. float_of_int (List.length fault_free);
    escape_rate = (if !total_w <= 0. then 0. else !escaped_w /. !total_w);
    fault_free_samples = List.length fault_free;
    worst_sample_margin = !worst;
  }

let report e =
  Printf.sprintf
    "quality estimate over %d fault-free process samples:\n\
    \  overkill (good die failing):   %.2f%%\n\
    \  test escape (defect shipping): %.2f%% of modelled-defect likelihood\n\
    \  worst fault-free margin:       %.2f of the box (1.0 = at the limit)\n"
    e.fault_free_samples
    (100. *. e.overkill_rate)
    (100. *. e.escape_rate)
    e.worst_sample_margin
