type test = {
  test_label : string;
  test_config_id : int;
  test_params : Numerics.Vec.t;
}

type detection = {
  det_fault_id : string;
  detected_by : string list;
  best_sensitivity : float;
}

type report = {
  tests : test list;
  detections : detection list;
  covered : int;
  total : int;
}

let percent r =
  if r.total = 0 then 100.
  else 100. *. float_of_int r.covered /. float_of_int r.total

let missed r =
  List.filter_map
    (fun d -> if d.detected_by = [] then Some d.det_fault_id else None)
    r.detections

let evaluate ~evaluators dictionary tests =
  let evaluator_for cid =
    match
      List.find_opt (fun ev -> Evaluator.config_id ev = cid) evaluators
    with
    | Some ev -> ev
    | None ->
        invalid_arg
          (Printf.sprintf "Coverage.evaluate: no evaluator for config #%d" cid)
  in
  let detections =
    List.map
      (fun entry ->
        let fault = entry.Faults.Dictionary.fault in
        let hits, best =
          List.fold_left
            (fun (hits, best) test ->
              let ev = evaluator_for test.test_config_id in
              let s = Evaluator.sensitivity ev fault test.test_params in
              let hits =
                if Sensitivity.detects s then test.test_label :: hits else hits
              in
              (hits, Float.min best s))
            ([], infinity) tests
        in
        {
          det_fault_id = entry.Faults.Dictionary.fault_id;
          detected_by = List.rev hits;
          best_sensitivity = best;
        })
      (Faults.Dictionary.entries dictionary)
  in
  let covered =
    List.length (List.filter (fun d -> d.detected_by <> []) detections)
  in
  {
    tests;
    detections;
    covered;
    total = Faults.Dictionary.size dictionary;
  }

let essential_tests r =
  List.filter_map
    (fun d ->
      match d.detected_by with [ only ] -> Some only | [] | _ :: _ :: _ -> None)
    r.detections
  |> List.sort_uniq String.compare
