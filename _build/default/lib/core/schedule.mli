(** Production test scheduling.

    A compact test set still has a free ordering degree: production
    testers abort on the first failing measurement, so tests should be
    ordered to catch likely defects as early (and as cheaply) as
    possible.  This module orders tests greedily by incremental
    weighted-coverage per unit application cost — a standard companion
    step to the paper's compaction. *)

type cost_model = {
  dc_point_cost : float;  (** seconds per DC measurement (default 1e-3) *)
  transient_cost_per_sample : float;  (** default 1e-8 *)
  thd_cost : float;  (** seconds per THD measurement (default 5e-3) *)
  ac_point_cost : float;  (** seconds per AC point (default 2e-3) *)
}

val default_cost_model : cost_model

val test_cost : cost_model -> Test_config.t -> float
(** Estimated tester time to apply one test of this configuration. *)

type scheduled = {
  order : Coverage.test list;  (** application order *)
  cumulative_coverage : float list;
      (** weighted coverage (percent) after each test *)
  cumulative_cost : float list;  (** seconds after each test *)
  expected_detection_cost : float;
      (** expected tester time to the first failing measurement for a
          defective part, under the fault weights *)
}

val order :
  cost_model:cost_model ->
  configs:Test_config.t list ->
  weights:(string * float) list ->
  detections:(string * string list) list ->
  Coverage.test list ->
  scheduled
(** Greedy ordering: repeatedly pick the test with the best
    (incremental likelihood caught) / cost ratio; ties and zero-gain
    tests keep their input order at the tail.

    [weights] maps fault ids to likelihoods (need not be normalized);
    [detections] maps fault ids to the labels of the tests detecting them
    (as produced by {!Coverage.evaluate}).
    @raise Invalid_argument if a test references an unknown
    configuration id. *)
