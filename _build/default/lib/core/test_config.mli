(** Test configuration descriptions and implementations.

    A {e test configuration description} (paper §2.1, Fig. 1) dictates
    which node is controlled with which parameterized waveform, which
    node is observed, and which post-processing turns the observation
    into the test's {e return value(s)}.  An {e implementation} adds
    parameter bounds and seed values for a specific macro.  A {e test}
    is an implementation plus concrete parameter values. *)

type analysis =
  | Dc_levels of (Numerics.Vec.t -> Circuit.Waveform.t list)
      (** One DC solve per waveform; the observable vector is the
          observation-node voltage at each level. *)
  | Tran_thd of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
      fundamental : Numerics.Vec.t -> float;
    }
      (** Sine-driven transient; the observable is the single THD value
          (percent) of the observation node. *)
  | Tran_samples of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
      sample_rate : float;
      test_time : float;
    }
      (** Transient sampled at [sample_rate] for [test_time]; the
          observable vector is the raw sample train. *)
  | Ac_gain of {
      bias : Numerics.Vec.t -> Circuit.Waveform.t;
          (** DC bias applied to the stimulus source before linearization *)
      freq : Numerics.Vec.t -> float;
    }
      (** Small-signal transfer from the stimulus source to the
          observation node at one frequency; the observable vector is
          [| gain_db; phase_deg |].  An extension beyond the paper's
          Table 1 (the framework the paper proposes is explicitly open to
          new configuration families). *)
  | Tran_imd of {
      stimulus : Numerics.Vec.t -> Circuit.Waveform.t;
          (** must contain the two tones [k1 f0] and [k2 f0] *)
      base_freq : Numerics.Vec.t -> float;
      k1 : int;
      k2 : int;
    }
      (** Two-tone transient; the observable is the single IMD3 value
          (percent) of the observation node — another extension family. *)
  | Noise_psd of {
      bias : Numerics.Vec.t -> Circuit.Waveform.t;
      freq : Numerics.Vec.t -> float;
    }
      (** Output noise spectral density at one frequency (adjoint
          small-signal analysis); the observable is the square-root PSD
          in nV per root-hertz.  A defect that adds or shifts resistive
          paths changes the noise signature even when the transfer
          function barely moves — a further extension family. *)

type returns =
  | Per_component
      (** Every observable component is a return value; its deviation is
          the component-wise faulty-minus-nominal difference. *)
  | Max_abs_delta
      (** Single return value: [max_k |obs_f(k) - obs_nom(k)|]
          (Table 1's [Max(dV)] post-processing). *)
  | Sum_abs_delta
      (** Single return value: [|sum_k obs_f(k) - sum_k obs_nom(k)|]
          (Fig. 1's accumulated [sum V(Vout)] post-processing). *)

type t = {
  config_id : int;
  config_name : string;
  macro_type : string;
      (** description sharing: configurations apply to all macros of this
          type (paper §2.1) *)
  control_node : string;  (** standardized name of the driven node *)
  params : Test_param.t list;
  analysis : analysis;
  returns : returns;
  return_names : string list;  (** display names, one per return value *)
  accuracy_floor : float list;
      (** tester accuracy per return value — the minimum tolerance-box
          half-width the test equipment can guarantee *)
  summary : string;  (** one-line stimulus/return description for Table 1 *)
}

val create :
  id:int ->
  name:string ->
  macro_type:string ->
  control_node:string ->
  params:Test_param.t list ->
  analysis:analysis ->
  returns:returns ->
  return_names:string list ->
  accuracy_floor:float list ->
  summary:string ->
  t
(** @raise Invalid_argument on empty parameter lists, mismatched
    return-name/floor lengths, or a multi-component [returns] combined
    with single-value analyses (Tran_thd is always one component). *)

val n_params : t -> int

val return_count : t -> int
(** Number of return values ([p] in the paper): the length of
    [return_names]. *)

val param_values_of_seed : t -> Numerics.Vec.t

val describe : t -> string
(** Multi-line Fig. 1-style configuration description. *)
