(** Fault-equivalence analysis ("collapsing of dictionaries", paper
    §2.2).

    Because generation targets the fault {e type at a location} rather
    than the exact dictionary model, faults whose optimal tests coincide
    are equivalent from the tester's point of view: one representative
    per class is enough for future re-generation runs.  Two generation
    results are equivalent when they selected the same configuration with
    (bound-normalized) parameters within [tolerance], and their critical
    impacts agree within [impact_ratio]. *)

type equivalence_class = {
  representative : string;  (** fault id with the strongest (weakest-R
                                detectable) critical impact *)
  members : string list;  (** all fault ids in the class, incl. the rep *)
  class_config_id : int;
  class_params : Numerics.Vec.t;  (** the representative's parameters *)
}

val classes :
  ?tolerance:float ->
  ?impact_ratio:float ->
  configs:Test_config.t list ->
  Generate.result list ->
  equivalence_class list
(** Partition results into equivalence classes ([tolerance] in
    normalized parameter space, default 0.05; [impact_ratio] default 2).
    Undetectable faults always form singleton classes. *)

val collapse_ratio : equivalence_class list -> float
(** [faults / classes]. *)
