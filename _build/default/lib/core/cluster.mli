(** Grouping of optimized tests in parameter space (paper §4.1).

    The collapse algorithm first identifies groups of fault-specific best
    tests that sit close together in the test configuration's parameter
    space (Fig. 8 shows the groups for configurations #1–#3).  We use
    complete-linkage agglomerative clustering in bound-normalized
    coordinates, so a single threshold works across parameters of very
    different physical scales. *)

type item = {
  item_id : string;  (** fault id the optimized test belongs to *)
  location : Numerics.Vec.t;  (** parameter values, physical units *)
}

val normalize : Test_param.t list -> Numerics.Vec.t -> Numerics.Vec.t
(** Bound-normalize a parameter vector to the unit cube. *)

val distance : Numerics.Vec.t -> Numerics.Vec.t -> float
(** Infinity-norm distance used by the linkage. *)

val group :
  params:Test_param.t list ->
  ?threshold:float ->
  item list ->
  item list list
(** Complete-linkage clusters: any two members of a group lie within
    [threshold] (default 0.15) of each other in normalized coordinates.
    Groups and members keep deterministic order (by first appearance).
    @raise Invalid_argument if an item's dimension differs from the
    parameter list. *)

val centroid : item list -> Numerics.Vec.t
(** Component-wise mean of the member locations — the collapsed test's
    parameter values ("determined by the average of the parameters of
    the group-members").
    @raise Invalid_argument on an empty group. *)

val split : item list -> item list * item list
(** Partition a group in two around its farthest pair — the refinement
    used when a collapse proposal fails the sensitivity screen.
    @raise Invalid_argument on groups smaller than two. *)
