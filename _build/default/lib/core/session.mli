(** Persistence of generation results.

    A whole-dictionary generation run costs minutes of simulation; this
    module saves its results in a line-oriented text format so compaction,
    scheduling and reporting can be re-run (or run with different
    parameters such as [delta]) without regenerating.  The format is
    versioned, human-readable and stable under round-trips. *)

val format_version : int

val to_string : Generate.result list -> string
(** Serialize results (candidates, outcome, impact trace). *)

val of_string : string -> (Generate.result list, string) result
(** Parse a serialized session.  Fails with a diagnostic on version
    mismatch or malformed input. *)

val save : path:string -> Generate.result list -> (unit, string) result

val load : path:string -> (Generate.result list, string) result
