(** Whole-dictionary test generation (the producer of Table 2 and
    Fig. 8). *)

type run = {
  results : Generate.result list;  (** one per dictionary entry, in order *)
  evaluators : Evaluator.t list;
  wall_seconds : float;
  total_fault_simulations : int;
}

val run :
  ?options:Generate.options ->
  ?progress:(done_:int -> total:int -> fault_id:string -> unit) ->
  evaluators:Evaluator.t list ->
  Faults.Dictionary.t ->
  run
(** Generate the optimal test for every fault of the dictionary.
    [progress] is invoked after each fault (CLI feedback). *)

type distribution_row = {
  dist_config_id : int;
  bridge_count : int;
  pinhole_count : int;
}

val distribution : run -> distribution_row list
(** Per-configuration counts of best tests, split by fault kind — the
    paper's Table 2.  Rows are sorted by configuration id and include
    zero rows for configurations that won no fault. *)

val undetectable_faults : run -> Generate.result list

val results_for_config : run -> config_id:int -> Generate.result list
(** Results whose best test uses the given configuration (Fig. 8 and
    Table 3 inputs). *)

val critical_impacts : run -> (string * float) list
(** [(fault_id, critical impact)] for every uniquely solved fault. *)
