lib/core/collapse.ml: Cluster Evaluator Faults List Numerics Test_config Vec
