lib/core/test_config.ml: Buffer Circuit Format List Numerics Printf Test_param
