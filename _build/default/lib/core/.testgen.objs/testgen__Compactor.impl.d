lib/core/compactor.ml: Collapse Coverage Engine Evaluator Faults Generate Hashtbl List Numerics Option Printf
