lib/core/sensitivity.mli: Test_config
