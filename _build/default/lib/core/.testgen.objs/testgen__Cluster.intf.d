lib/core/cluster.mli: Numerics Test_param
