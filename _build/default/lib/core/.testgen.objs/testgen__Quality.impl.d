lib/core/quality.ml: Coverage Evaluator Float List Option Printf Sensitivity
