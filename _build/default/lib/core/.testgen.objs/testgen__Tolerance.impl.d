lib/core/tolerance.ml: Array Execute Float List Numerics Test_config Test_param Vec
