lib/core/schedule.ml: Coverage Float Hashtbl List Option Printf String Test_config Test_param
