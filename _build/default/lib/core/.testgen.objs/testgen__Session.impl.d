lib/core/session.ml: Array Buffer Faults Generate List Printf String
