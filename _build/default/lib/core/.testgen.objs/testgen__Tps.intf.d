lib/core/tps.mli: Evaluator Faults Numerics
