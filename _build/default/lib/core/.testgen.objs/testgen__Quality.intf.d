lib/core/quality.mli: Coverage Evaluator Execute Faults
