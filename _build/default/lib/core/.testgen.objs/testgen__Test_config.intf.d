lib/core/test_config.mli: Circuit Numerics Test_param
