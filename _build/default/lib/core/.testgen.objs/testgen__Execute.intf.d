lib/core/execute.mli: Circuit Numerics Test_config
