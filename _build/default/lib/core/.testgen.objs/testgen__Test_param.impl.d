lib/core/test_param.ml: Array Circuit Float Format List Printf
