lib/core/test_param.mli: Format Numerics
