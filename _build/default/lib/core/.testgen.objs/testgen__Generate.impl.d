lib/core/generate.ml: Brent Evaluator Faults Float Hashtbl List Numerics Powell Sensitivity Test_config Test_param Vec
