lib/core/evaluator.mli: Execute Faults Numerics Test_config Tolerance
