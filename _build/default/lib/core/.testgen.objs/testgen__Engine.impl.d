lib/core/engine.ml: Evaluator Faults Generate Int List Sys
