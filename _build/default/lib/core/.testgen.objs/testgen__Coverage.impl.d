lib/core/coverage.ml: Evaluator Faults Float List Numerics Printf Sensitivity String
