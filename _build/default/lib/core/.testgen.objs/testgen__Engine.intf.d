lib/core/engine.mli: Evaluator Faults Generate
