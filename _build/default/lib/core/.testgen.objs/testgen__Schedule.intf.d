lib/core/schedule.mli: Coverage Test_config
