lib/core/compactor.mli: Collapse Coverage Engine Evaluator Faults Numerics
