lib/core/equivalence.mli: Generate Numerics Test_config
