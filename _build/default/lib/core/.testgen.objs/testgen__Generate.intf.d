lib/core/generate.mli: Evaluator Faults Numerics
