lib/core/sensitivity.ml: Array Execute Float
