lib/core/equivalence.ml: Cluster Float Generate List Numerics Test_config
