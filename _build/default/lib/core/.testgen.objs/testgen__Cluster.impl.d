lib/core/cluster.ml: Array Float List Numerics Test_param Vec
