lib/core/tps.ml: Array Evaluator Faults Float List String Test_config Test_param
