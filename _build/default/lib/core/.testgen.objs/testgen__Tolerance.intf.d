lib/core/tolerance.mli: Execute Numerics Test_config
