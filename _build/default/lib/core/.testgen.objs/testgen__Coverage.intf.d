lib/core/coverage.mli: Evaluator Faults Numerics
