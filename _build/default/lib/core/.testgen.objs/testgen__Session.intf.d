lib/core/session.mli: Generate
