lib/core/baseline.ml: Array Coverage Engine Evaluator Faults Float Generate List Numerics Option Printf Sensitivity Test_config
