lib/core/execute.ml: Ac Array Circuit Dc Device Float List Mna Netlist Noise Numerics Printf Sigproc Test_config Tran
