lib/core/evaluator.ml: Array Execute Faults Hashtbl Printf Sensitivity String Test_config Tolerance
