lib/core/baseline.mli: Coverage Engine Evaluator Faults Test_config
