lib/core/collapse.mli: Evaluator Faults Numerics
