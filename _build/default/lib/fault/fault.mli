(** Structural fault models for analog macros.

    The paper's experiment uses two layout-caused defect classes:

    - {b bridging} faults — a resistive short between two circuit nodes,
      modelled by a resistor;
    - {b pinhole} faults — a gate-oxide defect, modelled after Eckersall
      et al. (Fig. 7): the transistor is split in two series segments and
      a shunt resistor connects the gate to the channel point at 25 % of
      the channel length from the drain.

    Both models carry a resistance that tunes the {e impact} of the fault:
    decreasing the resistance intensifies the defect, increasing it
    weakens it.  Impact manipulation is the engine behind the paper's
    "critical impact level" notion of test optimality. *)

type t =
  | Bridge of { node_a : string; node_b : string; resistance : float }
  | Pinhole of { mosfet : string; r_shunt : float }

val bridge : string -> string -> resistance:float -> t
(** Normalizes node order so that [bridge a b] and [bridge b a] are equal.
    @raise Invalid_argument if the nodes are equal or the resistance is
    not positive. *)

val pinhole : string -> r_shunt:float -> t
(** @raise Invalid_argument if the resistance is not positive. *)

val id : t -> string
(** Stable identifier, e.g. ["bridge:n1-vout"] or ["pinhole:m3"]. *)

val kind : t -> [ `Bridge | `Pinhole ]

val kind_name : t -> string

val impact_resistance : t -> float
(** The model resistance (ohms). *)

val with_impact : t -> float -> t
(** Same fault with a different model resistance.
    @raise Invalid_argument if the resistance is not positive. *)

val weaken : t -> factor:float -> t
(** Multiply the model resistance by [factor > 1]: the defect gets less
    severe.  @raise Invalid_argument if [factor <= 1]. *)

val intensify : t -> factor:float -> t
(** Divide the model resistance by [factor > 1]: the defect gets more
    severe.  @raise Invalid_argument if [factor <= 1]. *)

val describe : t -> string
(** Human-readable one-liner including the impact value. *)

val equal_site : t -> t -> bool
(** Same defect location and type, ignoring the impact value. *)
