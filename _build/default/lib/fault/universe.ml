open Circuit

let default_bridge_resistance = 10e3
let default_pinhole_resistance = 2e3

let bridges ?(initial_resistance = default_bridge_resistance) ~nodes () =
  let sorted = List.sort String.compare nodes in
  let rec unique = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg "Universe.bridges: duplicate node names"
        else unique rest
    | [ _ ] | [] -> ()
  in
  unique sorted;
  let rec pairs = function
    | [] -> []
    | a :: rest ->
        List.map (fun b -> Fault.bridge a b ~resistance:initial_resistance) rest
        @ pairs rest
  in
  pairs sorted

let pinholes ?(initial_r_shunt = default_pinhole_resistance) nl =
  Netlist.devices nl
  |> List.filter_map (fun d ->
         match d with
         | Device.Mosfet { name; _ } ->
             Some (Fault.pinhole name ~r_shunt:initial_r_shunt)
         | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
         | Device.Vsource _ | Device.Isource _ | Device.Vcvs _
         | Device.Vccs _ -> None)

let exhaustive ?bridge_resistance ?pinhole_r_shunt ~nodes nl =
  bridges ?initial_resistance:bridge_resistance ~nodes ()
  @ pinholes ?initial_r_shunt:pinhole_r_shunt nl
