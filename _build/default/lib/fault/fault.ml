type t =
  | Bridge of { node_a : string; node_b : string; resistance : float }
  | Pinhole of { mosfet : string; r_shunt : float }

let bridge a b ~resistance =
  if String.equal a b then invalid_arg "Fault.bridge: identical nodes";
  if resistance <= 0. then invalid_arg "Fault.bridge: resistance <= 0";
  let node_a, node_b = if String.compare a b <= 0 then (a, b) else (b, a) in
  Bridge { node_a; node_b; resistance }

let pinhole mosfet ~r_shunt =
  if r_shunt <= 0. then invalid_arg "Fault.pinhole: resistance <= 0";
  Pinhole { mosfet; r_shunt }

let id = function
  | Bridge { node_a; node_b; _ } -> Printf.sprintf "bridge:%s-%s" node_a node_b
  | Pinhole { mosfet; _ } -> Printf.sprintf "pinhole:%s" mosfet

let kind = function Bridge _ -> `Bridge | Pinhole _ -> `Pinhole

let kind_name f = match kind f with `Bridge -> "bridge" | `Pinhole -> "pinhole"

let impact_resistance = function
  | Bridge { resistance; _ } -> resistance
  | Pinhole { r_shunt; _ } -> r_shunt

let with_impact f r =
  if r <= 0. then invalid_arg "Fault.with_impact: resistance <= 0";
  match f with
  | Bridge b -> Bridge { b with resistance = r }
  | Pinhole p -> Pinhole { p with r_shunt = r }

let weaken f ~factor =
  if factor <= 1. then invalid_arg "Fault.weaken: factor <= 1";
  with_impact f (impact_resistance f *. factor)

let intensify f ~factor =
  if factor <= 1. then invalid_arg "Fault.intensify: factor <= 1";
  with_impact f (impact_resistance f /. factor)

let describe f =
  match f with
  | Bridge { node_a; node_b; resistance } ->
      Printf.sprintf "bridge %s-%s (R=%s)" node_a node_b
        (Circuit.Units.format_eng ~unit_symbol:"Ohm" resistance)
  | Pinhole { mosfet; r_shunt } ->
      Printf.sprintf "pinhole in %s at 25%% from drain (Rp=%s)" mosfet
        (Circuit.Units.format_eng ~unit_symbol:"Ohm" r_shunt)

let equal_site f g =
  match (f, g) with
  | Bridge a, Bridge b ->
      String.equal a.node_a b.node_a && String.equal a.node_b b.node_b
  | Pinhole a, Pinhole b -> String.equal a.mosfet b.mosfet
  | Bridge _, Pinhole _ | Pinhole _, Bridge _ -> false
