type entry = { fault_id : string; fault : Fault.t }

type t = entry list

let of_faults faults =
  let entries = List.map (fun f -> { fault_id = Fault.id f; fault = f }) faults in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if Hashtbl.mem tbl e.fault_id then
        invalid_arg
          (Printf.sprintf "Dictionary.of_faults: duplicate fault %S" e.fault_id);
      Hashtbl.replace tbl e.fault_id ())
    entries;
  entries

let entries t = t

let size = List.length

let find t fid = List.find_opt (fun e -> String.equal e.fault_id fid) t

let count_by_kind t =
  List.fold_left
    (fun (b, p) e ->
      match Fault.kind e.fault with
      | `Bridge -> (b + 1, p)
      | `Pinhole -> (b, p + 1))
    (0, 0) t

let filter t pred = List.filter pred t

let take t n =
  let rec go acc i = function
    | [] -> List.rev acc
    | _ when i >= n -> List.rev acc
    | e :: rest -> go (e :: acc) (i + 1) rest
  in
  go [] 0 t

let pp_summary ppf t =
  let b, p = count_by_kind t in
  Format.fprintf ppf "%d faults (%d bridges, %d pinholes)" (size t) b p
