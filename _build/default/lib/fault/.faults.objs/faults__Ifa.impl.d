lib/fault/ifa.ml: Circuit Device Dictionary Fault Float List Netlist Printf
