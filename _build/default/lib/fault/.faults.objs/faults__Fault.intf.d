lib/fault/fault.mli:
