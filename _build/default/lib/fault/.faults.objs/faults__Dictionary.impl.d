lib/fault/dictionary.ml: Fault Format Hashtbl List Printf String
