lib/fault/universe.mli: Circuit Fault
