lib/fault/ifa.mli: Circuit Dictionary
