lib/fault/universe.ml: Circuit Device Fault List Netlist String
