lib/fault/inject.mli: Circuit Fault
