lib/fault/inject.ml: Circuit Device Fault List Netlist Printf String
