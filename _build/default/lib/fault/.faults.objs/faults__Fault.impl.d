lib/fault/fault.ml: Circuit Printf String
