lib/fault/dictionary.mli: Fault Format
