open Circuit

type weighted = { entry : Dictionary.entry; weight : float }

let shared_device_count nl a b =
  List.length
    (List.filter
       (fun d ->
         let nodes = Device.nodes d in
         let canon n = if Device.is_ground n then "0" else n in
         let canon_a = if Device.is_ground a then "0" else a in
         let canon_b = if Device.is_ground b then "0" else b in
         let touched = List.map canon nodes in
         List.mem canon_a touched && List.mem canon_b touched)
       (Netlist.devices nl))

let bridge_weight nl a b = 1. +. float_of_int (shared_device_count nl a b)

let pinhole_weight nl name =
  match Netlist.find nl name with
  | Some (Device.Mosfet { w; l; _ }) -> w *. l *. 1e12  (* um^2 *)
  | Some
      ( Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
      | Device.Vsource _ | Device.Isource _ | Device.Vcvs _ | Device.Vccs _ )
    ->
      invalid_arg (Printf.sprintf "Ifa.pinhole_weight: %S is not a MOSFET" name)
  | None ->
      invalid_arg (Printf.sprintf "Ifa.pinhole_weight: unknown device %S" name)

let raw_weight nl (entry : Dictionary.entry) =
  match entry.Dictionary.fault with
  | Fault.Bridge { node_a; node_b; _ } -> bridge_weight nl node_a node_b
  | Fault.Pinhole { mosfet; _ } -> pinhole_weight nl mosfet

let weigh nl dictionary =
  let entries = Dictionary.entries dictionary in
  let raws = List.map (fun e -> (e, raw_weight nl e)) entries in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. raws in
  if total <= 0. then invalid_arg "Ifa.weigh: zero total weight";
  List.map (fun (entry, w) -> { entry; weight = w /. total }) raws

let weighted_coverage weighted ~detected =
  if weighted = [] then invalid_arg "Ifa.weighted_coverage: empty list";
  100.
  *. List.fold_left
       (fun acc { entry; weight } ->
         if detected entry.Dictionary.fault_id then acc +. weight else acc)
       0. weighted

let sort_by_weight weighted =
  List.stable_sort (fun a b -> Float.compare b.weight a.weight) weighted
