(** Exhaustive fault-universe generation.

    The paper builds its dictionary "for simplicity" as the exhaustive
    list of bridging and pinhole faults of the macro: every unordered
    pair of layout nodes becomes a bridge, every MOSFET a pinhole.  For
    the 10-node, 10-transistor IV-converter this yields the paper's
    45 + 10 = 55 faults. *)

val default_bridge_resistance : float
(** 10 kOhm — the paper's initial bridge impact. *)

val default_pinhole_resistance : float
(** 2 kOhm — the paper's initial pinhole shunt. *)

val bridges :
  ?initial_resistance:float -> nodes:string list -> unit -> Fault.t list
(** All unordered pairs of the given nodes, in lexicographic order.
    @raise Invalid_argument on duplicate node names. *)

val pinholes :
  ?initial_r_shunt:float -> Circuit.Netlist.t -> Fault.t list
(** One pinhole per MOSFET of the netlist, in device order. *)

val exhaustive :
  ?bridge_resistance:float ->
  ?pinhole_r_shunt:float ->
  nodes:string list ->
  Circuit.Netlist.t ->
  Fault.t list
(** Bridges over [nodes] followed by pinholes of the netlist. *)
