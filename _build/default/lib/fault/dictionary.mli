(** Fault dictionaries.

    A dictionary is the ordered list of modelled faults the test
    generation run must cover, each with a stable identifier and its
    initial (dictionary) impact. *)

type entry = {
  fault_id : string;
  fault : Fault.t;  (** carries the dictionary impact *)
}

type t

val of_faults : Fault.t list -> t
(** @raise Invalid_argument on duplicate fault sites. *)

val entries : t -> entry list

val size : t -> int

val find : t -> string -> entry option
(** Look up by fault id. *)

val count_by_kind : t -> int * int
(** [(bridges, pinholes)]. *)

val filter : t -> (entry -> bool) -> t

val take : t -> int -> t
(** First [n] entries (or all if fewer) — used by reduced test runs. *)

val pp_summary : Format.formatter -> t -> unit
(** e.g. ["55 faults (45 bridges, 10 pinholes)"]. *)
