(** Dense real matrices with LU decomposition.

    Row-major storage.  Sized for modified-nodal-analysis systems of a few
    tens of unknowns, where dense partial-pivoting LU is both simplest and
    fastest. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t

val of_rows : float array array -> t
(** Builds from an array of equal-length rows (copied). *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] increments element [(i,j)] by [x] — the MNA "stamp"
    primitive. *)

val copy : t -> t
val fill : t -> float -> unit

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val mul : t -> t -> t
(** Matrix-matrix product. *)

val transpose : t -> t

exception Singular of int
(** Raised by factorization when a pivot column is numerically zero; the
    payload is the offending elimination step. *)

type lu
(** A packed LU factorization with its pivot permutation. *)

val lu_factor : t -> lu
(** Factor a square matrix.  The input is not modified.
    @raise Singular if the matrix is numerically singular.
    @raise Invalid_argument if the matrix is not square. *)

val lu_solve : lu -> Vec.t -> Vec.t
(** Solve [A x = b] using a previous factorization of [A]. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] factors and solves in one step. *)

val det : t -> float
(** Determinant via LU; [0.] for singular matrices. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val pp : Format.formatter -> t -> unit
