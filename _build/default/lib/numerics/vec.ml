type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec: dimension mismatch"

let map2 f a b =
  check_dims a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale k v = Array.map (fun x -> k *. x) v

let axpy a x y =
  check_dims x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let dot a b =
  check_dims a b;
  let s = ref 0. in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. v

let dist_inf a b =
  check_dims a b;
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let clamp ~lower ~upper v =
  check_dims lower v;
  check_dims upper v;
  Array.init (Array.length v) (fun i ->
      Float.min upper.(i) (Float.max lower.(i) v.(i)))

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    (Array.to_list v)
