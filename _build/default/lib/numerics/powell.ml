type result = {
  xmin : Vec.t;
  fmin : float;
  evaluations : int;
  iterations : int;
}

let line_range ~lower ~upper ~point ~dir =
  let n = Vec.dim point in
  if Vec.dim lower <> n || Vec.dim upper <> n || Vec.dim dir <> n then
    invalid_arg "Powell.line_range: dimension mismatch";
  let tmin = ref neg_infinity and tmax = ref infinity in
  for i = 0 to n - 1 do
    let d = dir.(i) in
    if Float.abs d > 1e-300 then begin
      let t1 = (lower.(i) -. point.(i)) /. d in
      let t2 = (upper.(i) -. point.(i)) /. d in
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      tmin := Float.max !tmin lo;
      tmax := Float.min !tmax hi
    end
  done;
  (!tmin, !tmax)

let check_box lower upper =
  let n = Vec.dim lower in
  if Vec.dim upper <> n then invalid_arg "Powell: box dimension mismatch";
  for i = 0 to n - 1 do
    if lower.(i) > upper.(i) then invalid_arg "Powell: inverted box"
  done

let minimize ?(tol = 1e-6) ?(max_iter = 60) ?(line_tol = 1e-5) ~f ~lower
    ~upper ~start () =
  check_box lower upper;
  let n = Vec.dim lower in
  if Vec.dim start <> n then invalid_arg "Powell.minimize: start dimension";
  let evals = ref 0 in
  let eval x = incr evals; f x in
  let p = ref (Vec.clamp ~lower ~upper start) in
  let fp = ref (eval !p) in
  (* initial direction set: coordinate axes *)
  let dirs = Array.init n (fun i -> Vec.init n (fun j -> if i = j then 1. else 0.)) in
  let line_minimize point dir =
    let tmin, tmax = line_range ~lower ~upper ~point ~dir in
    if tmin > tmax || tmax -. tmin < 1e-15 then (point, eval point)
    else begin
      let g t = eval (Vec.clamp ~lower ~upper (Vec.axpy t dir point)) in
      let lo, hi = Brent.bracket_scan ~f:g ~a:tmin ~b:tmax ~n:8 in
      let r = Brent.minimize ~tol:line_tol ~f:g ~a:lo ~b:hi () in
      (Vec.clamp ~lower ~upper (Vec.axpy r.xmin dir point), r.fmin)
    end
  in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let p0 = Vec.copy !p and f0 = !fp in
    let biggest_drop = ref 0. and biggest_i = ref 0 in
    for i = 0 to n - 1 do
      let before = !fp in
      let p', f' = line_minimize !p dirs.(i) in
      if before -. f' > !biggest_drop then begin
        biggest_drop := before -. f';
        biggest_i := i
      end;
      p := p';
      fp := f'
    done;
    let improvement = f0 -. !fp in
    if improvement <= tol *. (Float.abs f0 +. Float.abs !fp +. 1e-12) then
      converged := true
    else if n > 1 then begin
      (* Powell's update: try the average direction of the sweep. *)
      let new_dir = Vec.sub !p p0 in
      if Vec.norm_inf new_dir > 1e-15 then begin
        let extrapolated =
          Vec.clamp ~lower ~upper (Vec.axpy 2. new_dir p0)
        in
        let fe = eval extrapolated in
        if fe < f0 then begin
          let p', f' = line_minimize !p new_dir in
          p := p';
          fp := f';
          (* replace the direction of largest decrease *)
          dirs.(!biggest_i) <- dirs.(n - 1);
          dirs.(n - 1) <- new_dir
        end
      end
    end
  done;
  { xmin = !p; fmin = !fp; evaluations = !evals; iterations = !iter }

let minimize_scan ?(tol = 1e-6) ?(max_iter = 60) ?(grid = 5) ~f ~lower
    ~upper () =
  check_box lower upper;
  let n = Vec.dim lower in
  if grid < 2 then invalid_arg "Powell.minimize_scan: grid < 2";
  let scan_evals = ref 0 in
  let best = ref None in
  let point = Array.make n 0. in
  let rec enumerate dim =
    if dim = n then begin
      incr scan_evals;
      let x = Array.copy point in
      let fx = f x in
      match !best with
      | Some (_, fb) when fb <= fx -> ()
      | _ -> best := Some (x, fx)
    end
    else
      for i = 0 to grid - 1 do
        point.(dim) <-
          lower.(dim)
          +. ((upper.(dim) -. lower.(dim)) *. (float_of_int i +. 0.5)
              /. float_of_int grid);
        enumerate (dim + 1)
      done
  in
  enumerate 0;
  match !best with
  | None -> invalid_arg "Powell.minimize_scan: empty box"
  | Some (start, _) ->
      let r = minimize ~tol ~max_iter ~f ~lower ~upper ~start () in
      { r with evaluations = r.evaluations + !scan_evals }
