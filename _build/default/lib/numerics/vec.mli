(** Dense vectors of floats.

    Thin, allocation-explicit helpers over [float array] used by the
    linear-algebra and optimization code.  All binary operations require
    equal lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val copy : t -> t

val dim : t -> int

val add : t -> t -> t
(** Element-wise sum. *)

val sub : t -> t -> t
(** Element-wise difference. *)

val scale : float -> t -> t
(** [scale a v] multiplies every component by [a]. *)

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y], freshly allocated. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute component; [0.] for the empty vector. *)

val dist_inf : t -> t -> float
(** [dist_inf x y = norm_inf (sub x y)]. *)

val map2 : (float -> float -> float) -> t -> t -> t

val clamp : lower:t -> upper:t -> t -> t
(** Component-wise clamp of a point into a box. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[v0; v1; ...]] with short float formatting. *)
