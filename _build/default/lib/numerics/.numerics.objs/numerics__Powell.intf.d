lib/numerics/powell.mli: Vec
