lib/numerics/mat.mli: Format Vec
