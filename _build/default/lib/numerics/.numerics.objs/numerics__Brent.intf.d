lib/numerics/brent.mli:
