lib/numerics/mat.ml: Array Float Format Vec
