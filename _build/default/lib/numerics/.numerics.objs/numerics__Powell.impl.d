lib/numerics/powell.ml: Array Brent Float Vec
