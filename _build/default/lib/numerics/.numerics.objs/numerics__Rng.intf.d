lib/numerics/rng.mli:
