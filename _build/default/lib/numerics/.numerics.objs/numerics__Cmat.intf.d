lib/numerics/cmat.mli: Complex
