lib/numerics/brent.ml: Float
