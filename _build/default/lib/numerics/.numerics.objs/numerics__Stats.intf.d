lib/numerics/stats.mli:
