lib/numerics/cmat.ml: Array Complex
