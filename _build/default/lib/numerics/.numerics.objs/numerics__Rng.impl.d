lib/numerics/rng.ml: Array Float Int64
