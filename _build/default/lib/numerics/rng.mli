(** Deterministic pseudo-random numbers (splitmix64).

    All stochastic parts of the reproduction (process-variation sampling,
    Monte-Carlo tolerance estimation) draw from explicit generator states so
    every report is bit-reproducible. *)

type t

val create : int64 -> t
(** Seeded generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, cached pair). *)

val normal : t -> mu:float -> sigma:float -> float
(** Normal with the given mean and standard deviation. *)

val int : t -> bound:int -> int
(** Uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
