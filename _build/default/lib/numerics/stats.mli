(** Descriptive statistics and simple regression.

    Used by the tolerance-box calibration (deviation envelopes over process
    corners) and by the experiment reports. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Population variance.  @raise Invalid_argument on an empty array. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val median : float array -> float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array or [p]
    outside the range. *)

val max_abs : float array -> float
(** Largest absolute value; [0.] on an empty array. *)

type linreg = { slope : float; intercept : float; r2 : float }

val linear_regression : (float * float) array -> linreg
(** Least-squares line through [(x, y)] samples.
    @raise Invalid_argument with fewer than two samples or degenerate x. *)
