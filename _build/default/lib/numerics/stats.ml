let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let max_abs xs = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. xs

type linreg = { slope : float; intercept : float; r2 : float }

let linear_regression samples =
  let n = Array.length samples in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 samples";
  let xs = Array.map fst samples and ys = Array.map snd samples in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    samples;
  if !sxx < 1e-300 then
    invalid_arg "Stats.linear_regression: degenerate abscissae";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy < 1e-300 then 1. else !sxy *. !sxy /. (!sxx *. !syy)
  in
  { slope; intercept; r2 }
