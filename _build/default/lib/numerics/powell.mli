(** Powell's direction-set minimization with box constraints.

    Multi-parameter test configurations are optimized with Powell's method
    (Acton 1990, pp. 264–267), which explores one-dimensional search
    directions with Brent's method — exactly the combination the paper
    uses.  Every trial point stays inside the [lower]/[upper] box: the line
    search interval along each direction is clipped to the box before
    Brent runs. *)

type result = {
  xmin : Vec.t;  (** located minimizer, inside the box *)
  fmin : float;  (** objective value at [xmin] *)
  evaluations : int;  (** objective evaluations spent *)
  iterations : int;  (** outer direction-set sweeps *)
}

val line_range : lower:Vec.t -> upper:Vec.t -> point:Vec.t -> dir:Vec.t ->
  float * float
(** [line_range ~lower ~upper ~point ~dir] is the largest interval
    [(tmin, tmax)] such that [point + t*dir] stays inside the box for all
    [t] in it.  Components with a zero direction are ignored; if [point]
    violates the box the interval may be empty ([tmin > tmax]). *)

val minimize : ?tol:float -> ?max_iter:int -> ?line_tol:float ->
  f:(Vec.t -> float) -> lower:Vec.t -> upper:Vec.t -> start:Vec.t ->
  unit -> result
(** Minimize [f] within the box from [start] (clamped into the box).
    [tol] is the relative improvement threshold for convergence (default
    [1e-6]); [max_iter] bounds outer sweeps (default 60).
    @raise Invalid_argument on dimension mismatch or an inverted box. *)

val minimize_scan : ?tol:float -> ?max_iter:int -> ?grid:int ->
  f:(Vec.t -> float) -> lower:Vec.t -> upper:Vec.t ->
  unit -> result
(** Global-ish variant: coarsely scan a [grid]^n lattice (default 5) for
    the best starting point, then run {!minimize} from there.  This is the
    guard the paper alludes to when noting that Brent/Powell are local
    methods that "may end up in local minima". *)
