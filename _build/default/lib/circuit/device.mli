(** Circuit elements.

    Node names are free-form strings; ["0"] and ["gnd"] denote ground.
    Current-direction conventions:
    - a resistor/capacitor/inductor carries current from [a] to [b];
    - an independent current source drives current from [from_node]
      to [to_node] (it leaves [from_node] and enters [to_node]);
    - a voltage source's branch current flows from [plus] through the
      source to [minus];
    - a MOSFET's channel current [ids] flows from [drain] to [source]. *)

type t =
  | Resistor of { name : string; a : string; b : string; ohms : float }
  | Capacitor of { name : string; a : string; b : string; farads : float }
  | Inductor of { name : string; a : string; b : string; henries : float }
  | Vsource of {
      name : string;
      plus : string;
      minus : string;
      wave : Waveform.t;
    }
  | Isource of {
      name : string;
      from_node : string;
      to_node : string;
      wave : Waveform.t;
    }
  | Vcvs of {
      name : string;
      plus : string;
      minus : string;
      ctrl_plus : string;
      ctrl_minus : string;
      gain : float;
    }
  | Vccs of {
      name : string;
      plus : string;
      minus : string;
      ctrl_plus : string;
      ctrl_minus : string;
      gm : float;
    }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      model : Mos_model.t;
      w : float;
      l : float;
    }

val name : t -> string

val nodes : t -> string list
(** All node names the device touches (with duplicates removed). *)

val is_ground : string -> bool
(** ["0"] and ["gnd"] (case-insensitive) are ground. *)

val has_branch_current : t -> bool
(** True for elements that add a branch-current unknown to the MNA system
    (voltage sources, VCVS, inductors). *)

val validate : t -> (unit, string) result
(** Structural checks: positive R/C/L values, positive MOS geometry,
    well-formed waveforms. *)

val rename_node : old_name:string -> new_name:string -> t -> t
(** Substitute a node name everywhere it appears in the device. *)

val to_spice : t -> string
(** One SPICE-deck-style line describing the device. *)
