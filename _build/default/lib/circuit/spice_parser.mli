(** SPICE-style netlist parser — the inverse of {!Netlist.to_spice}.

    Supported deck format:
    - first line: title (becomes the netlist title);
    - element cards: [Rname n1 n2 value], [Cname n1 n2 value],
      [Lname n1 n2 value], [Vname n+ n- wave], [Iname n+ n- wave],
      [Ename n+ n- nc+ nc- gain], [Gname n+ n- nc+ nc- gm],
      [Mname nd ng ns model W=w L=l];
    - waveforms: a bare number (DC), [dc(v)],
      [step(base, elev, delay, rise)], [sine(offset, ampl, freq)],
      [pwl(t1:v1, t2:v2, ...)];
    - [.model name nmos|pmos [vt0=..] [kp=..] [lambda=..]] cards
      (defaults from {!Mos_model.nmos_default}/{!Mos_model.pmos_default});
    - [*] comment lines, [+] continuation lines, case-insensitive
      keywords, engineering suffixes on all numbers ([10k], [2.5u], ...);
    - terminated by [.end] (optional).

    The device-name prefix letter is part of the element name, matching
    what {!Netlist.to_spice} emits, so print -> parse -> print is a
    fixpoint. *)

type error = { line : int; message : string }

val parse : string -> (Netlist.t, error) result
(** Parse a whole deck from a string. *)

val parse_file : string -> (Netlist.t, error) result
(** Parse a deck from a file.  I/O errors are reported as [line = 0]. *)
