let tera = 1e12
let giga = 1e9
let mega = 1e6
let kilo = 1e3
let milli = 1e-3
let micro = 1e-6
let nano = 1e-9
let pico = 1e-12
let femto = 1e-15

let prefixes =
  [ (1e12, "T"); (1e9, "G"); (1e6, "Meg"); (1e3, "k"); (1., "");
    (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") ]

let format_eng ?(unit_symbol = "") x =
  if x = 0. then "0" ^ unit_symbol
  else begin
    let mag = Float.abs x in
    let scale, prefix =
      let rec pick = function
        | [] -> (1e-15, "f")
        | (s, p) :: rest -> if mag >= s *. 0.9999999 then (s, p) else pick rest
      in
      pick prefixes
    in
    let mantissa = x /. scale in
    let str =
      if Float.abs (mantissa -. Float.round mantissa) < 1e-9 then
        Printf.sprintf "%.0f" mantissa
      else Printf.sprintf "%.3g" mantissa
    in
    str ^ prefix ^ unit_symbol
  end

let parse_eng s =
  let s = String.lowercase_ascii (String.trim s) in
  let n = String.length s in
  if n = 0 then None
  else begin
    (* longest numeric prefix *)
    let is_num c =
      (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e'
    in
    (* treat 'e' as numeric only when followed by digit/sign *)
    let rec split i =
      if i >= n then i
      else
        let c = s.[i] in
        if c = 'e' && i + 1 < n
           && (let d = s.[i + 1] in (d >= '0' && d <= '9') || d = '-' || d = '+')
        then split (i + 2)
        else if is_num c && c <> 'e' then split (i + 1)
        else i
    in
    let cut = split 0 in
    if cut = 0 then None
    else
      match float_of_string_opt (String.sub s 0 cut) with
      | None -> None
      | Some base ->
          let suffix = String.sub s cut (n - cut) in
          let mult =
            if suffix = "" then Some 1.
            else if String.length suffix >= 3 && String.sub suffix 0 3 = "meg"
            then Some 1e6
            else
              match suffix.[0] with
              | 't' -> Some 1e12
              | 'g' -> Some 1e9
              | 'k' -> Some 1e3
              | 'm' -> Some 1e-3
              | 'u' -> Some 1e-6
              | 'n' -> Some 1e-9
              | 'p' -> Some 1e-12
              | 'f' -> Some 1e-15
              | _ -> None
          in
          Option.map (fun m -> base *. m) mult
  end
