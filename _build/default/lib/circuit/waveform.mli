(** Source waveform descriptors.

    These are the building blocks of the paper's test-configuration
    stimuli: DC levels, slew-limited steps (Fig. 1), DC-offset sine waves
    (the THD configuration of Figs. 2–4), and piecewise-linear segments. *)

type t =
  | Dc of float
      (** Constant level. *)
  | Step of { base : float; elev : float; delay : float; rise : float }
      (** Level [base] until [delay], then a linear ramp of duration
          [rise] up to [base +. elev].  [rise = 0.] is an ideal step. *)
  | Sine of { offset : float; ampl : float; freq : float; phase : float }
      (** [offset +. ampl *. sin (2 pi freq t +. phase)]. *)
  | Multi_sine of { offset : float; tones : (float * float) list }
      (** Sum of sines: [offset +. sum_i ampl_i sin (2 pi freq_i t)] —
          the two-tone intermodulation stimulus.  Each tone is
          [(ampl, freq)]. *)
  | Pwl of (float * float) list
      (** Piecewise-linear [(time, value)] corners; must be sorted by
          strictly increasing time.  Constant extrapolation outside. *)

val value : t -> float -> float
(** Waveform value at a given time (seconds). *)

val dc_value : t -> float
(** Value used by DC analyses: the level at [t = 0] except for [Sine],
    which contributes its [offset] (the average level). *)

val validate : t -> (unit, string) result
(** Checks structural invariants: non-negative delay/rise, positive sine
    frequency, sorted PWL corners. *)

val pp : Format.formatter -> t -> unit
(** Human-readable description, e.g. [step(base=0, elev=25uA, rise=10ns)]. *)
