(** SPICE level-1 (Shichman–Hodges) MOSFET model.

    Square-law drain current with channel-length modulation.  The body
    terminal is assumed tied to the appropriate rail; body effect is not
    modelled (the paper's methodology depends only on a qualitatively
    correct nonlinear macro, not on deep-submicron accuracy).  PMOS
    devices are handled by voltage mirroring, drain/source inversion by
    terminal swap, exactly as in SPICE. *)

type polarity = Nmos | Pmos

type t = {
  model_name : string;
  polarity : polarity;
  vt0 : float;  (** zero-bias threshold; positive for NMOS, negative for PMOS *)
  kp : float;   (** transconductance parameter mu*Cox, A/V^2 *)
  lambda : float;  (** channel-length modulation, 1/V *)
}

val nmos_default : t
(** Generic 1990s 1-um NMOS: Vt0 = 0.7 V, kp = 120 uA/V^2, lambda = 0.05. *)

val pmos_default : t
(** Generic PMOS counterpart: Vt0 = -0.8 V, kp = 40 uA/V^2, lambda = 0.08. *)

val with_variation : t -> dvt0:float -> dkp:float -> dlambda:float -> t
(** Relative process shifts: [dvt0] etc. are fractional deviations, e.g.
    [dvt0 = 0.1] raises |Vt0| by 10 %. *)

type operating_point = {
  ids : float;
      (** channel current flowing from the drain pin to the source pin *)
  d_gate : float;    (** d ids / d v(gate) *)
  d_drain : float;   (** d ids / d v(drain) *)
  d_source : float;  (** d ids / d v(source) *)
  region : [ `Cutoff | `Triode | `Saturation ];
}

val eval : t -> w:float -> l:float -> vg:float -> vd:float -> vs:float ->
  operating_point
(** Channel current and its partial derivatives at the given absolute
    terminal voltages.  Consistent for both polarities and both operation
    directions (vds of either sign); the derivatives form the exact
    Jacobian of [ids], which the Newton solver stamps directly.
    @raise Invalid_argument if [w] or [l] is not positive. *)
