module Smap = Map.Make (String)

type t = {
  title : string;
  devices : Device.t list;  (* reversed insertion order *)
  by_name : Device.t Smap.t;
}

let empty ~title = { title; devices = []; by_name = Smap.empty }

let title t = t.title

let add t d =
  let n = Device.name d in
  if Smap.mem n t.by_name then
    invalid_arg (Printf.sprintf "Netlist.add: duplicate device %S" n);
  (match Device.validate d with
  | Ok () -> ()
  | Error e -> invalid_arg ("Netlist.add: " ^ e));
  { t with devices = d :: t.devices; by_name = Smap.add n d t.by_name }

let add_all t ds = List.fold_left add t ds

let devices t = List.rev t.devices

let device_count t = List.length t.devices

let find t n = Smap.find_opt n t.by_name

let mem t n = Smap.mem n t.by_name

let remove t n =
  if not (Smap.mem n t.by_name) then raise Not_found;
  {
    t with
    devices = List.filter (fun d -> not (String.equal (Device.name d) n)) t.devices;
    by_name = Smap.remove n t.by_name;
  }

let replace t n ds = add_all (remove t n) ds

let nodes t =
  List.concat_map Device.nodes (devices t)
  |> List.filter (fun n -> not (Device.is_ground n))
  |> List.sort_uniq String.compare

let all_nodes t =
  let has_ground =
    List.exists
      (fun d -> List.exists Device.is_ground (Device.nodes d))
      t.devices
  in
  if has_ground then "0" :: nodes t else nodes t

let fresh_name used ~prefix =
  let rec go i =
    let candidate = Printf.sprintf "%s%d" prefix i in
    if used candidate then go (i + 1) else candidate
  in
  go 1

let fresh_node t ~prefix =
  let node_set = all_nodes t in
  fresh_name (fun c -> List.exists (String.equal c) node_set) ~prefix

let fresh_device_name t ~prefix = fresh_name (fun c -> mem t c) ~prefix

let to_spice t =
  let b = Buffer.create 512 in
  Buffer.add_string b ("* " ^ t.title ^ "\n");
  List.iter
    (fun d ->
      Buffer.add_string b (Device.to_spice d);
      Buffer.add_char b '\n')
    (devices t);
  Buffer.add_string b ".end\n";
  Buffer.contents b

let connectivity_check t =
  let tally = Hashtbl.create 16 in
  let ground_seen = ref false in
  List.iter
    (fun d ->
      List.iter
        (fun n ->
          if Device.is_ground n then ground_seen := true
          else
            Hashtbl.replace tally n
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally n)))
        (Device.nodes d))
    t.devices;
  if not !ground_seen then Error "netlist has no ground reference"
  else
    Hashtbl.fold
      (fun n count acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if count < 2 then
              Error (Printf.sprintf "node %S is connected to only one device" n)
            else acc)
      tally (Ok ())
