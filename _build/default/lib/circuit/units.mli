(** SI prefixes and engineering-notation formatting for circuit values. *)

val tera : float
val giga : float
val mega : float
val kilo : float
val milli : float
val micro : float
val nano : float
val pico : float
val femto : float

val format_eng : ?unit_symbol:string -> float -> string
(** [format_eng ~unit_symbol:"A" 2.5e-5] is ["25u A" → "25uA"]-style
    engineering notation: mantissa in [\[1, 1000)] with the closest SI
    prefix, e.g. ["25uA"], ["10kOhm"], ["0"] for zero. *)

val parse_eng : string -> float option
(** Parse ["10k"], ["2.5u"], ["100meg"], ["3n"] etc.; [None] on syntax
    errors.  Case-insensitive; ["meg"] disambiguates from milli as in
    SPICE. *)
