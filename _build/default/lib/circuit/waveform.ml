type t =
  | Dc of float
  | Step of { base : float; elev : float; delay : float; rise : float }
  | Sine of { offset : float; ampl : float; freq : float; phase : float }
  | Multi_sine of { offset : float; tones : (float * float) list }
  | Pwl of (float * float) list

let value w t =
  match w with
  | Dc v -> v
  | Step { base; elev; delay; rise } ->
      if t <= delay then base
      else if rise <= 0. || t >= delay +. rise then base +. elev
      else base +. (elev *. (t -. delay) /. rise)
  | Sine { offset; ampl; freq; phase } ->
      offset +. (ampl *. sin ((2. *. Float.pi *. freq *. t) +. phase))
  | Multi_sine { offset; tones } ->
      List.fold_left
        (fun acc (ampl, freq) ->
          acc +. (ampl *. sin (2. *. Float.pi *. freq *. t)))
        offset tones
  | Pwl corners -> begin
      match corners with
      | [] -> 0.
      | (t0, v0) :: _ ->
          if t <= t0 then v0
          else
            let rec walk = function
              | [ (_, v) ] -> v
              | (t1, v1) :: ((t2, v2) :: _ as rest) ->
                  if t <= t2 then
                    if t2 -. t1 <= 0. then v2
                    else v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
                  else walk rest
              | [] -> 0.
            in
            walk corners
    end

let dc_value = function
  | Dc v -> v
  | Sine { offset; _ } | Multi_sine { offset; _ } -> offset
  | (Step _ | Pwl _) as w -> value w 0.

let validate w =
  match w with
  | Dc _ -> Ok ()
  | Step { delay; rise; _ } ->
      if delay < 0. then Error "step: negative delay"
      else if rise < 0. then Error "step: negative rise time"
      else Ok ()
  | Sine { freq; _ } ->
      if freq <= 0. then Error "sine: frequency must be positive" else Ok ()
  | Multi_sine { tones; _ } ->
      if tones = [] then Error "multi_sine: no tones"
      else if List.exists (fun (_, f) -> f <= 0.) tones then
        Error "multi_sine: frequencies must be positive"
      else Ok ()
  | Pwl corners ->
      let rec sorted = function
        | (t1, _) :: ((t2, _) :: _ as rest) ->
            if t1 >= t2 then Error "pwl: corners not strictly increasing"
            else sorted rest
        | [ _ ] | [] -> Ok ()
      in
      sorted corners

let pp ppf = function
  | Dc v -> Format.fprintf ppf "dc(%s)" (Units.format_eng v)
  | Step { base; elev; delay; rise } ->
      Format.fprintf ppf "step(base=%s, elev=%s, delay=%s, rise=%s)"
        (Units.format_eng base) (Units.format_eng elev)
        (Units.format_eng delay) (Units.format_eng rise)
  | Sine { offset; ampl; freq; phase } ->
      Format.fprintf ppf "sine(offset=%s, ampl=%s, freq=%sHz, phase=%.3g)"
        (Units.format_eng offset) (Units.format_eng ampl)
        (Units.format_eng freq) phase
  | Multi_sine { offset; tones } ->
      Format.fprintf ppf "multisine(offset=%s, %a)" (Units.format_eng offset)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (a, f) ->
             Format.fprintf ppf "%s:%s" (Units.format_eng a)
               (Units.format_eng f)))
        tones
  | Pwl corners ->
      Format.fprintf ppf "pwl(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (t, v) ->
             Format.fprintf ppf "%s:%s" (Units.format_eng t)
               (Units.format_eng v)))
        corners
