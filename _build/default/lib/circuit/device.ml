type t =
  | Resistor of { name : string; a : string; b : string; ohms : float }
  | Capacitor of { name : string; a : string; b : string; farads : float }
  | Inductor of { name : string; a : string; b : string; henries : float }
  | Vsource of {
      name : string;
      plus : string;
      minus : string;
      wave : Waveform.t;
    }
  | Isource of {
      name : string;
      from_node : string;
      to_node : string;
      wave : Waveform.t;
    }
  | Vcvs of {
      name : string;
      plus : string;
      minus : string;
      ctrl_plus : string;
      ctrl_minus : string;
      gain : float;
    }
  | Vccs of {
      name : string;
      plus : string;
      minus : string;
      ctrl_plus : string;
      ctrl_minus : string;
      gm : float;
    }
  | Mosfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      model : Mos_model.t;
      w : float;
      l : float;
    }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Vccs { name; _ }
  | Mosfet { name; _ } -> name

let raw_nodes = function
  | Resistor { a; b; _ } | Capacitor { a; b; _ } | Inductor { a; b; _ } ->
      [ a; b ]
  | Vsource { plus; minus; _ } -> [ plus; minus ]
  | Isource { from_node; to_node; _ } -> [ from_node; to_node ]
  | Vcvs { plus; minus; ctrl_plus; ctrl_minus; _ }
  | Vccs { plus; minus; ctrl_plus; ctrl_minus; _ } ->
      [ plus; minus; ctrl_plus; ctrl_minus ]
  | Mosfet { drain; gate; source; _ } -> [ drain; gate; source ]

let nodes d = List.sort_uniq String.compare (raw_nodes d)

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

let has_branch_current = function
  | Vsource _ | Vcvs _ | Inductor _ -> true
  | Resistor _ | Capacitor _ | Isource _ | Vccs _ | Mosfet _ -> false

let validate d =
  match d with
  | Resistor { ohms; name; _ } ->
      if ohms <= 0. then Error (name ^ ": resistance must be > 0") else Ok ()
  | Capacitor { farads; name; _ } ->
      if farads <= 0. then Error (name ^ ": capacitance must be > 0") else Ok ()
  | Inductor { henries; name; _ } ->
      if henries <= 0. then Error (name ^ ": inductance must be > 0") else Ok ()
  | Vsource { wave; name; _ } | Isource { wave; name; _ } -> begin
      match Waveform.validate wave with
      | Ok () -> Ok ()
      | Error e -> Error (name ^ ": " ^ e)
    end
  | Vcvs _ | Vccs _ -> Ok ()
  | Mosfet { w; l; name; _ } ->
      if w <= 0. || l <= 0. then Error (name ^ ": W and L must be > 0")
      else Ok ()

let rename_node ~old_name ~new_name d =
  let s n = if String.equal n old_name then new_name else n in
  match d with
  | Resistor r -> Resistor { r with a = s r.a; b = s r.b }
  | Capacitor c -> Capacitor { c with a = s c.a; b = s c.b }
  | Inductor l -> Inductor { l with a = s l.a; b = s l.b }
  | Vsource v -> Vsource { v with plus = s v.plus; minus = s v.minus }
  | Isource i ->
      Isource { i with from_node = s i.from_node; to_node = s i.to_node }
  | Vcvs e ->
      Vcvs
        {
          e with
          plus = s e.plus;
          minus = s e.minus;
          ctrl_plus = s e.ctrl_plus;
          ctrl_minus = s e.ctrl_minus;
        }
  | Vccs g ->
      Vccs
        {
          g with
          plus = s g.plus;
          minus = s g.minus;
          ctrl_plus = s g.ctrl_plus;
          ctrl_minus = s g.ctrl_minus;
        }
  | Mosfet m ->
      Mosfet { m with drain = s m.drain; gate = s m.gate; source = s m.source }

let to_spice d =
  let wv w = Format.asprintf "%a" Waveform.pp w in
  match d with
  | Resistor { name; a; b; ohms } ->
      Printf.sprintf "R%s %s %s %s" name a b (Units.format_eng ohms)
  | Capacitor { name; a; b; farads } ->
      Printf.sprintf "C%s %s %s %s" name a b (Units.format_eng farads)
  | Inductor { name; a; b; henries } ->
      Printf.sprintf "L%s %s %s %s" name a b (Units.format_eng henries)
  | Vsource { name; plus; minus; wave } ->
      Printf.sprintf "V%s %s %s %s" name plus minus (wv wave)
  | Isource { name; from_node; to_node; wave } ->
      Printf.sprintf "I%s %s %s %s" name from_node to_node (wv wave)
  | Vcvs { name; plus; minus; ctrl_plus; ctrl_minus; gain } ->
      Printf.sprintf "E%s %s %s %s %s %g" name plus minus ctrl_plus ctrl_minus
        gain
  | Vccs { name; plus; minus; ctrl_plus; ctrl_minus; gm } ->
      Printf.sprintf "G%s %s %s %s %s %g" name plus minus ctrl_plus ctrl_minus
        gm
  | Mosfet { name; drain; gate; source; model; w; l } ->
      Printf.sprintf "M%s %s %s %s %s W=%s L=%s" name drain gate source
        model.Mos_model.model_name (Units.format_eng w) (Units.format_eng l)
