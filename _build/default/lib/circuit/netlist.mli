(** Immutable netlists.

    A netlist is an ordered collection of uniquely named devices.  Fault
    injection works by *transforming* netlists (adding a bridge resistor,
    splitting a MOSFET for the pinhole model), so all operations are
    persistent and return new netlists. *)

type t

val empty : title:string -> t

val title : t -> string

val add : t -> Device.t -> t
(** @raise Invalid_argument on a duplicate device name or invalid device. *)

val add_all : t -> Device.t list -> t

val devices : t -> Device.t list
(** In insertion order. *)

val device_count : t -> int

val find : t -> string -> Device.t option
(** Look up a device by name. *)

val mem : t -> string -> bool

val remove : t -> string -> t
(** @raise Not_found if no device has that name. *)

val replace : t -> string -> Device.t list -> t
(** [replace nl name devs] removes [name] and appends [devs] — the
    primitive used by the pinhole transistor split.
    @raise Not_found if [name] is absent.
    @raise Invalid_argument if a replacement name collides. *)

val nodes : t -> string list
(** All non-ground node names, sorted. *)

val all_nodes : t -> string list
(** Ground (canonicalized to ["0"]) first if present, then {!nodes}. *)

val fresh_node : t -> prefix:string -> string
(** A node name not yet used in the netlist. *)

val fresh_device_name : t -> prefix:string -> string
(** A device name not yet used in the netlist. *)

val to_spice : t -> string
(** Multi-line SPICE-style deck (title, devices, [.end]). *)

val connectivity_check : t -> (unit, string) result
(** Every non-ground node must connect at least two device terminals and
    the netlist must reference ground somewhere; returns a diagnostic
    message otherwise. *)
