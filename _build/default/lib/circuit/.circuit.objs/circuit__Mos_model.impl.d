lib/circuit/mos_model.ml:
