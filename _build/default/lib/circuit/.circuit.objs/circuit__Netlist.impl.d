lib/circuit/netlist.ml: Buffer Device Hashtbl List Map Option Printf String
