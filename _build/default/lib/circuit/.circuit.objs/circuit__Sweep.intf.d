lib/circuit/sweep.mli: Dc Netlist
