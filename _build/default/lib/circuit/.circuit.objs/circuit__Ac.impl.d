lib/circuit/ac.ml: Array Cmat Complex Device Float Hashtbl List Mna Mos_model Netlist Numerics Option
