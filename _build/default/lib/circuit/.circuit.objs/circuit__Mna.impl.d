lib/circuit/mna.ml: Array Device Hashtbl List Mat Mos_model Netlist Numerics Vec Waveform
