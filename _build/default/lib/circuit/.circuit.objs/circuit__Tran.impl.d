lib/circuit/tran.ml: Array Dc Device Float Hashtbl Int List Mna Netlist Option String
