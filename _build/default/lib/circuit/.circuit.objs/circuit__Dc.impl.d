lib/circuit/dc.ml: Array Float List Mat Mna Netlist Numerics Printf Vec
