lib/circuit/ac.mli: Complex Mna Numerics
