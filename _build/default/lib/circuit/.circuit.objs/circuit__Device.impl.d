lib/circuit/device.ml: Format List Mos_model Printf String Units Waveform
