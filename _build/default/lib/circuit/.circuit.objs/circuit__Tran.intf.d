lib/circuit/tran.mli: Dc Mna
