lib/circuit/noise.ml: Ac Array Cmat Complex Device Float List Mna Mos_model Netlist Numerics Option
