lib/circuit/units.mli:
