lib/circuit/mos_model.mli:
