lib/circuit/units.ml: Float Option Printf String
