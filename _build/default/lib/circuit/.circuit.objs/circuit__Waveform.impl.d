lib/circuit/waveform.ml: Float Format List Units
