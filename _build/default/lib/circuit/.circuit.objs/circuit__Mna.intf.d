lib/circuit/mna.mli: Hashtbl Mos_model Netlist Numerics
