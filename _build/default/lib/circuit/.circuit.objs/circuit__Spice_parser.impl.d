lib/circuit/spice_parser.ml: Buffer Char Device Hashtbl List Mos_model Netlist Printf String Units Waveform
