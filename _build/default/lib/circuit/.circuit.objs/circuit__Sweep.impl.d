lib/circuit/sweep.ml: Array Dc Device Float List Mna Netlist Printf Waveform
