lib/circuit/noise.mli: Mna Numerics
