lib/circuit/netlist.mli: Device
