lib/circuit/spice_parser.mli: Netlist
