lib/circuit/dc.mli: Hashtbl Mna Numerics
