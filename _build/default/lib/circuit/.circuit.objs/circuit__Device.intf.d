lib/circuit/device.mli: Mos_model Waveform
