open Numerics

type t = {
  netlist : Netlist.t;
  node_tbl : (string, int) Hashtbl.t;  (* non-ground nodes -> 0..n-1 *)
  branch_tbl : (string, int) Hashtbl.t;  (* device name -> absolute index *)
  n_nodes : int;
  size : int;
  device_array : Device.t array;
}

let build nl =
  (match Netlist.connectivity_check nl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mna.build: " ^ e));
  let node_tbl = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace node_tbl n i) (Netlist.nodes nl);
  let n_nodes = Hashtbl.length node_tbl in
  let branch_tbl = Hashtbl.create 8 in
  let next = ref n_nodes in
  List.iter
    (fun d ->
      if Device.has_branch_current d then begin
        Hashtbl.replace branch_tbl (Device.name d) !next;
        incr next
      end)
    (Netlist.devices nl);
  {
    netlist = nl;
    node_tbl;
    branch_tbl;
    n_nodes;
    size = !next;
    device_array = Array.of_list (Netlist.devices nl);
  }

let netlist t = t.netlist
let n_nodes t = t.n_nodes
let size t = t.size

let node_index t n =
  if Device.is_ground n then None
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> Some i
    | None -> raise Not_found

let voltage t x n =
  match node_index t n with None -> 0. | Some i -> x.(i)

let branch_current t x name =
  match Hashtbl.find_opt t.branch_tbl name with
  | Some i -> x.(i)
  | None -> raise Not_found

type companion =
  | Cap_companion of { geq : float; ieq : float }
  | Ind_companion of { req : float; veq : float }

type source_time = [ `Dc | `Time of float ]

let wave_value time w =
  match time with
  | `Dc -> Waveform.dc_value w
  | `Time t -> Waveform.value w t

(* index helpers: -1 encodes ground *)
let idx t n =
  if Device.is_ground n then -1
  else
    match Hashtbl.find_opt t.node_tbl n with
    | Some i -> i
    | None -> raise Not_found

let stamp a i j v = if i >= 0 && j >= 0 then Mat.add_to a i j v
let inject z i v = if i >= 0 then z.(i) <- z.(i) +. v

let stamp_conductance a i j g =
  stamp a i i g;
  stamp a j j g;
  stamp a i j (-.g);
  stamp a j i (-.g)

let volt x i = if i < 0 then 0. else x.(i)

let assemble t ~x ~time ?companions ?(source_scale = 1.) ~gmin () =
  if Vec.dim x <> t.size then invalid_arg "Mna.assemble: bad iterate size";
  let a = Mat.create t.size t.size in
  let z = Vec.create t.size 0. in
  for i = 0 to t.n_nodes - 1 do
    Mat.add_to a i i gmin
  done;
  let companion_of name =
    match companions with
    | None -> None
    | Some tbl -> Hashtbl.find_opt tbl name
  in
  Array.iter
    (fun d ->
      match d with
      | Device.Resistor { a = na; b = nb; ohms; _ } ->
          stamp_conductance a (idx t na) (idx t nb) (1. /. ohms)
      | Device.Capacitor { name; a = na; b = nb; _ } -> begin
          match companion_of name with
          | Some (Cap_companion { geq; ieq }) ->
              let i = idx t na and j = idx t nb in
              stamp_conductance a i j geq;
              inject z i ieq;
              inject z j (-.ieq)
          | Some (Ind_companion _) ->
              invalid_arg "Mna.assemble: inductor companion on a capacitor"
          | None -> ()  (* open in DC *)
        end
      | Device.Inductor { name; a = na; b = nb; _ } -> begin
          let i = idx t na and j = idx t nb in
          let br = Hashtbl.find t.branch_tbl name in
          (* branch current contribution to KCL *)
          stamp a i br 1.;
          stamp a j br (-1.);
          (* branch equation: va - vb - req*i = veq (req = 0 in DC) *)
          stamp a br i 1.;
          stamp a br j (-1.);
          match companion_of name with
          | Some (Ind_companion { req; veq }) ->
              Mat.add_to a br br (-.req);
              z.(br) <- z.(br) +. veq
          | Some (Cap_companion _) ->
              invalid_arg "Mna.assemble: capacitor companion on an inductor"
          | None -> ()
        end
      | Device.Vsource { name; plus; minus; wave } ->
          let i = idx t plus and j = idx t minus in
          let br = Hashtbl.find t.branch_tbl name in
          stamp a i br 1.;
          stamp a j br (-1.);
          stamp a br i 1.;
          stamp a br j (-1.);
          z.(br) <- z.(br) +. (source_scale *. wave_value time wave)
      | Device.Isource { from_node; to_node; wave; _ } ->
          let i = idx t from_node and j = idx t to_node in
          let value = source_scale *. wave_value time wave in
          inject z i (-.value);
          inject z j value
      | Device.Vcvs { name; plus; minus; ctrl_plus; ctrl_minus; gain } ->
          let i = idx t plus and j = idx t minus in
          let cp = idx t ctrl_plus and cn = idx t ctrl_minus in
          let br = Hashtbl.find t.branch_tbl name in
          stamp a i br 1.;
          stamp a j br (-1.);
          stamp a br i 1.;
          stamp a br j (-1.);
          stamp a br cp (-.gain);
          stamp a br cn gain
      | Device.Vccs { plus; minus; ctrl_plus; ctrl_minus; gm; _ } ->
          let i = idx t plus and j = idx t minus in
          let cp = idx t ctrl_plus and cn = idx t ctrl_minus in
          stamp a i cp gm;
          stamp a i cn (-.gm);
          stamp a j cp (-.gm);
          stamp a j cn gm
      | Device.Mosfet { drain; gate; source; model; w; l; _ } ->
          let di = idx t drain and gi = idx t gate and si = idx t source in
          let vd = volt x di and vg = volt x gi and vs = volt x si in
          let op = Mos_model.eval model ~w ~l ~vg ~vd ~vs in
          (* Newton companion: ids ~ i0 + dG*vg + dD*vd + dS*vs *)
          let i0 =
            op.ids -. (op.d_gate *. vg) -. (op.d_drain *. vd)
            -. (op.d_source *. vs)
          in
          stamp a di gi op.d_gate;
          stamp a di di op.d_drain;
          stamp a di si op.d_source;
          stamp a si gi (-.op.d_gate);
          stamp a si di (-.op.d_drain);
          stamp a si si (-.op.d_source);
          inject z di (-.i0);
          inject z si i0)
    t.device_array;
  (a, z)

let mosfet_operating_points t ~x =
  Array.to_list t.device_array
  |> List.filter_map (fun d ->
         match d with
         | Device.Mosfet { name; drain; gate; source; model; w; l } ->
             let vd = volt x (idx t drain)
             and vg = volt x (idx t gate)
             and vs = volt x (idx t source) in
             Some (name, Mos_model.eval model ~w ~l ~vg ~vd ~vs)
         | Device.Resistor _ | Device.Capacitor _ | Device.Inductor _
         | Device.Vsource _ | Device.Isource _ | Device.Vcvs _
         | Device.Vccs _ -> None)
