type error = { line : int; message : string }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* split a card into fields on whitespace, keeping parenthesized groups
   (waveforms contain spaces) together *)
let fields line =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ' ' | '\t' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  if !depth <> 0 then fail "unbalanced parentheses";
  flush ();
  List.rev !out

let number s =
  (* tolerate a trailing unit word after the engineering suffix (10kHz) *)
  match Units.parse_eng s with
  | Some v -> v
  | None -> fail "cannot parse number %S" s

(* value of an argument that may be written 'name=value' *)
let arg_value s =
  match String.index_opt s '=' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

let split_args inner =
  String.split_on_char ',' inner
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let waveform_of_string s =
  match String.index_opt s '(' with
  | None -> Waveform.Dc (number s)
  | Some i ->
      let kind = String.lowercase_ascii (String.sub s 0 i) in
      let close =
        match String.rindex_opt s ')' with
        | Some c when c > i -> c
        | Some _ | None -> fail "malformed waveform %S" s
      in
      let inner = String.sub s (i + 1) (close - i - 1) in
      let args = split_args inner in
      let num n =
        match List.nth_opt args n with
        | Some a -> number (arg_value a)
        | None -> fail "waveform %S: missing argument %d" s (n + 1)
      in
      let opt n default =
        match List.nth_opt args n with
        | Some a -> number (arg_value a)
        | None -> default
      in
      (match kind with
      | "dc" -> Waveform.Dc (num 0)
      | "step" ->
          Waveform.Step
            { base = num 0; elev = num 1; delay = opt 2 0.; rise = opt 3 0. }
      | "sine" | "sin" ->
          Waveform.Sine
            { offset = num 0; ampl = num 1; freq = num 2; phase = opt 3 0. }
      | "pwl" ->
          let corner a =
            match String.split_on_char ':' (arg_value a) with
            | [ t; v ] -> (number t, number v)
            | _ -> fail "pwl corner %S must be time:value" a
          in
          Waveform.Pwl (List.map corner args)
      | "multisine" -> begin
          match args with
          | offset :: tones ->
              let tone a =
                match String.split_on_char ':' (arg_value a) with
                | [ ampl; freq ] -> (number ampl, number freq)
                | _ -> fail "multisine tone %S must be ampl:freq" a
              in
              Waveform.Multi_sine
                { offset = number (arg_value offset);
                  tones = List.map tone tones }
          | [] -> fail "multisine needs an offset and tones"
        end
      | other -> fail "unknown waveform kind %S" other)

(* key=value lookup in a field list *)
let keyed fields key =
  List.find_map
    (fun f ->
      match String.index_opt f '=' with
      | Some i when String.lowercase_ascii (String.sub f 0 i) = key ->
          Some (String.sub f (i + 1) (String.length f - i - 1))
      | Some _ | None -> None)
    fields

let parse_model_card fields models =
  match fields with
  | _ :: name :: polarity :: rest ->
      let base =
        match String.lowercase_ascii polarity with
        | "nmos" -> Mos_model.nmos_default
        | "pmos" -> Mos_model.pmos_default
        | other -> fail ".model: unknown polarity %S" other
      in
      let get key default =
        match keyed rest key with Some v -> number v | None -> default
      in
      let model =
        {
          base with
          Mos_model.model_name = name;
          vt0 = get "vt0" base.Mos_model.vt0;
          kp = get "kp" base.Mos_model.kp;
          lambda = get "lambda" base.Mos_model.lambda;
        }
      in
      Hashtbl.replace models name model
  | _ -> fail ".model: expected '.model name nmos|pmos [params]'"

let parse_element card models =
  match fields card with
  | [] -> None
  | name :: rest -> begin
      let kind = Char.lowercase_ascii name.[0] in
      let dev_name = String.sub name 1 (String.length name - 1) in
      let dev_name = if dev_name = "" then name else dev_name in
      let two_nodes_value make =
        match rest with
        | [ a; b; v ] -> make a b (number v)
        | _ -> fail "%s: expected two nodes and a value" name
      in
      match kind with
      | 'r' ->
          Some
            (two_nodes_value (fun a b v ->
                 Device.Resistor { name = dev_name; a; b; ohms = v }))
      | 'c' ->
          Some
            (two_nodes_value (fun a b v ->
                 Device.Capacitor { name = dev_name; a; b; farads = v }))
      | 'l' ->
          Some
            (two_nodes_value (fun a b v ->
                 Device.Inductor { name = dev_name; a; b; henries = v }))
      | 'v' -> begin
          match rest with
          | [ plus; minus; w ] ->
              Some
                (Device.Vsource
                   { name = dev_name; plus; minus; wave = waveform_of_string w })
          | _ -> fail "%s: expected 'V n+ n- wave'" name
        end
      | 'i' -> begin
          match rest with
          | [ from_node; to_node; w ] ->
              Some
                (Device.Isource
                   {
                     name = dev_name;
                     from_node;
                     to_node;
                     wave = waveform_of_string w;
                   })
          | _ -> fail "%s: expected 'I nfrom nto wave'" name
        end
      | 'e' | 'g' -> begin
          match rest with
          | [ plus; minus; cp; cn; v ] ->
              let x = number v in
              if kind = 'e' then
                Some
                  (Device.Vcvs
                     { name = dev_name; plus; minus; ctrl_plus = cp;
                       ctrl_minus = cn; gain = x })
              else
                Some
                  (Device.Vccs
                     { name = dev_name; plus; minus; ctrl_plus = cp;
                       ctrl_minus = cn; gm = x })
          | _ -> fail "%s: expected four nodes and a value" name
        end
      | 'm' -> begin
          match rest with
          | drain :: gate :: source :: model_name :: params ->
              let model =
                match Hashtbl.find_opt models model_name with
                | Some m -> m
                | None -> fail "%s: unknown model %S" name model_name
              in
              let geom key =
                match keyed params key with
                | Some v -> number v
                | None -> fail "%s: missing %s=" name (String.uppercase_ascii key)
              in
              Some
                (Device.Mosfet
                   {
                     name = dev_name;
                     drain;
                     gate;
                     source;
                     model;
                     w = geom "w";
                     l = geom "l";
                   })
          | _ -> fail "%s: expected 'M nd ng ns model W= L='" name
        end
      | other -> fail "unknown element type %C" other
    end

let logical_lines text =
  (* join continuation lines, keep (original line number, content) *)
  let raw =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
  in
  let rec join acc = function
    | [] -> List.rev acc
    | (n, l) :: rest when String.length l > 0 && l.[0] = '+' -> begin
        match acc with
        | (n0, prev) :: acc' ->
            join ((n0, prev ^ " " ^ String.sub l 1 (String.length l - 1)) :: acc')
              rest
        | [] -> join [ (n, String.sub l 1 (String.length l - 1)) ] rest
      end
    | (n, l) :: rest -> join ((n, l) :: acc) rest
  in
  join [] raw

let default_models () =
  let models = Hashtbl.create 4 in
  Hashtbl.replace models Mos_model.nmos_default.Mos_model.model_name
    Mos_model.nmos_default;
  Hashtbl.replace models Mos_model.pmos_default.Mos_model.model_name
    Mos_model.pmos_default;
  models

let parse text =
  let models = default_models () in
  match logical_lines text with
  | [] -> Error { line = 0; message = "empty deck" }
  | (_, first) :: rest -> begin
      let title =
        if String.length first > 0 && first.[0] = '*' then
          String.trim (String.sub first 1 (String.length first - 1))
        else first
      in
      let netlist = ref (Netlist.empty ~title) in
      let result = ref None in
      List.iter
        (fun (line, l) ->
          if !result = None && l <> "" && l.[0] <> '*' then begin
            let lower = String.lowercase_ascii l in
            try
              if lower = ".end" then ()
              else if String.length lower >= 6 && String.sub lower 0 6 = ".model"
              then parse_model_card (fields l) models
              else if l.[0] = '.' then fail "unknown directive %S" l
              else
                match parse_element l models with
                | Some d -> netlist := Netlist.add !netlist d
                | None -> ()
            with
            | Parse_error message -> result := Some { line; message }
            | Invalid_argument message -> result := Some { line; message }
          end)
        rest;
      match !result with
      | Some e -> Error e
      | None -> Ok !netlist
    end

let parse_file path =
  match open_in path with
  | exception Sys_error message -> Error { line = 0; message }
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      parse text
