type polarity = Nmos | Pmos

type t = {
  model_name : string;
  polarity : polarity;
  vt0 : float;
  kp : float;
  lambda : float;
}

let nmos_default =
  { model_name = "nmos1"; polarity = Nmos; vt0 = 0.7; kp = 120e-6; lambda = 0.05 }

let pmos_default =
  { model_name = "pmos1"; polarity = Pmos; vt0 = -0.8; kp = 40e-6; lambda = 0.08 }

let with_variation m ~dvt0 ~dkp ~dlambda =
  {
    m with
    vt0 = m.vt0 *. (1. +. dvt0);
    kp = m.kp *. (1. +. dkp);
    lambda = m.lambda *. (1. +. dlambda);
  }

type operating_point = {
  ids : float;
  d_gate : float;
  d_drain : float;
  d_source : float;
  region : [ `Cutoff | `Triode | `Saturation ];
}

(* NMOS square law in the normal frame: vds >= 0.
   Returns (id, d id/d vgs, d id/d vds, region). *)
let nmos_normal ~beta ~vt ~lambda ~vgs ~vds =
  let vgst = vgs -. vt in
  if vgst <= 0. then (0., 0., 0., `Cutoff)
  else begin
    let clm = 1. +. (lambda *. vds) in
    if vds < vgst then begin
      (* triode *)
      let core = (vgst *. vds) -. (0.5 *. vds *. vds) in
      let id = beta *. core *. clm in
      let gm = beta *. vds *. clm in
      let gds = beta *. (((vgst -. vds) *. clm) +. (core *. lambda)) in
      (id, gm, gds, `Triode)
    end
    else begin
      let core = 0.5 *. vgst *. vgst in
      let id = beta *. core *. clm in
      let gm = beta *. vgst *. clm in
      let gds = beta *. core *. lambda in
      (id, gm, gds, `Saturation)
    end
  end

(* NMOS channel current from pin D to pin S at absolute voltages,
   handling drain/source inversion.  Returns current and its partials
   with respect to (vg, vd, vs). *)
let nmos_channel ~beta ~vt ~lambda ~vg ~vd ~vs =
  if vd >= vs then begin
    let id, gm, gds, region =
      nmos_normal ~beta ~vt ~lambda ~vgs:(vg -. vs) ~vds:(vd -. vs)
    in
    (id, gm, gds, -.gm -. gds, region)
  end
  else begin
    (* inverted: physical source is the D pin *)
    let id, gm, gds, region =
      nmos_normal ~beta ~vt ~lambda ~vgs:(vg -. vd) ~vds:(vs -. vd)
    in
    (* current from pin D to pin S is -id; partials by the chain rule *)
    (-.id, -.gm, gm +. gds, -.gds, region)
  end

let eval m ~w ~l ~vg ~vd ~vs =
  if w <= 0. || l <= 0. then invalid_arg "Mos_model.eval: w, l must be > 0";
  let beta = m.kp *. w /. l in
  match m.polarity with
  | Nmos ->
      let ids, d_gate, d_drain, d_source, region =
        nmos_channel ~beta ~vt:m.vt0 ~lambda:m.lambda ~vg ~vd ~vs
      in
      { ids; d_gate; d_drain; d_source; region }
  | Pmos ->
      (* mirror: I_p(vg, vd, vs) = -I_n(-vg, -vd, -vs) with vt_n = -vt0.
         The partials keep their sign through the double negation. *)
      let ids_n, dg, dd, ds, region =
        nmos_channel ~beta ~vt:(-.m.vt0) ~lambda:m.lambda ~vg:(-.vg)
          ~vd:(-.vd) ~vs:(-.vs)
      in
      { ids = -.ids_n; d_gate = dg; d_drain = dd; d_source = ds; region }
