(** Modified nodal analysis: unknown ordering and system assembly.

    The unknown vector [x] is the non-ground node voltages followed by one
    branch current per voltage source, VCVS and inductor.  {!assemble}
    produces the linearized system [A x = z] at a given iterate — for
    linear elements this is the exact system; for MOSFETs it is the
    Newton companion linearization, so a fixed point of
    [x = solve (assemble x)] is an exact operating point. *)

type t

val build : Netlist.t -> t
(** Index the netlist.  @raise Invalid_argument if the netlist fails
    {!Netlist.connectivity_check}. *)

val netlist : t -> Netlist.t
val n_nodes : t -> int
val size : t -> int
(** Total unknown count (nodes + branches). *)

val node_index : t -> string -> int option
(** [None] for ground.  @raise Not_found for an unknown node name. *)

val voltage : t -> Numerics.Vec.t -> string -> float
(** Voltage of a node in a solution vector; [0.] for ground.
    @raise Not_found for an unknown node name. *)

val branch_current : t -> Numerics.Vec.t -> string -> float
(** Branch current of a voltage source / VCVS / inductor by device name.
    @raise Not_found if the device has no branch unknown. *)

type companion =
  | Cap_companion of { geq : float; ieq : float }
      (** capacitor replaced by [geq] in parallel with a current source:
          device current (a to b) equals [geq*(va - vb) - ieq] *)
  | Ind_companion of { req : float; veq : float }
      (** inductor branch equation becomes [va - vb - req*i = veq] *)

type source_time = [ `Dc | `Time of float ]
(** [`Dc] evaluates waveforms with {!Waveform.dc_value}; [`Time t] with
    {!Waveform.value}. *)

val assemble :
  t ->
  x:Numerics.Vec.t ->
  time:source_time ->
  ?companions:(string, companion) Hashtbl.t ->
  ?source_scale:float ->
  gmin:float ->
  unit ->
  Numerics.Mat.t * Numerics.Vec.t
(** Build the linearized MNA system at iterate [x].  [gmin] is added from
    every node to ground.  [source_scale] (default 1) multiplies all
    independent source values — the knob used by source stepping.
    Without [companions], capacitors are open and inductors are shorts
    (DC treatment). *)

val mosfet_operating_points :
  t -> x:Numerics.Vec.t -> (string * Mos_model.operating_point) list
(** Per-MOSFET bias details at a solution — used by AC analysis and by
    diagnostics. *)
