(** DC transfer sweeps.

    Sweep the DC value of one independent source over a grid, solving the
    operating point at each step with warm-started Newton (the previous
    solution seeds the next solve) — the standard continuation trick that
    keeps strongly nonlinear transfer curves cheap and convergent. *)

type result = {
  sweep_values : float array;  (** the swept source values *)
  traces : (string * float array) list;
      (** per observed node, in the order of [observe] *)
}

val trace : result -> string -> float array
(** @raise Not_found if the node was not observed. *)

val dc_transfer :
  ?options:Dc.options ->
  Netlist.t ->
  source:string ->
  sweep_values:float array ->
  observe:string list ->
  result
(** Replace the waveform of [source] by each DC value in turn.
    @raise Invalid_argument if [source] is not an independent V or I
    source or [sweep_values] is empty.
    @raise Dc.No_convergence if some point cannot be solved. *)

val linspace : lo:float -> hi:float -> points:int -> float array
(** Evenly spaced inclusive grid.
    @raise Invalid_argument if [points < 2]. *)

val slope_at :
  result -> node:string -> at:float -> float
(** Central-difference derivative d(observed)/d(swept) at the grid point
    nearest [at] — e.g. the transimpedance of the IV-converter.
    @raise Not_found on an unknown node.
    @raise Invalid_argument with fewer than three sweep points. *)
