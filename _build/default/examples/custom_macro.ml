(* Authoring a new macro + test configuration from scratch: the OTA
   buffer macro with a hand-written DC-transfer configuration, run through
   the same generation machinery as the paper's IV-converter.  This is the
   "reusability of the work of a test engineer" workflow of sec. 2.1.

   Run with:  dune exec examples/custom_macro.exe *)

open Testgen

(* A test configuration authored for OTA-buffer-type macros: drive the
   buffer input with a DC level and observe the buffered output. *)
let ota_dc_config =
  Test_config.create ~id:101 ~name:"Buffer DC transfer"
    ~macro_type:"OTA-buffer" ~control_node:"inp"
    ~params:
      [
        Test_param.create ~name:"vin" ~units:"V" ~lower:1.2 ~upper:3.8
          ~seed:2.5;
      ]
    ~analysis:(Test_config.Dc_levels (fun v -> [ Circuit.Waveform.Dc v.(0) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(out)" ]
    ~accuracy_floor:[ 1e-3 ]
    ~summary:"V(inp) = vin (dc voltage value)"

(* A second configuration with two return values: offset at two levels. *)
let ota_pair_config =
  Test_config.create ~id:102 ~name:"Buffer DC pair" ~macro_type:"OTA-buffer"
    ~control_node:"inp"
    ~params:
      [
        Test_param.create ~name:"lo" ~units:"V" ~lower:1.2 ~upper:3. ~seed:2.;
        Test_param.create ~name:"hi" ~units:"V" ~lower:2.5 ~upper:3.8 ~seed:3.;
      ]
    ~analysis:
      (Test_config.Dc_levels
         (fun v -> [ Circuit.Waveform.Dc v.(0); Circuit.Waveform.Dc v.(1) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(out)@lo"; "V(out)@hi" ]
    ~accuracy_floor:[ 1e-3; 1e-3 ]
    ~summary:"V(inp) = lo, then hi (two dc voltage values)"

let () =
  let macro = Macros.Ota.macro in
  (match Macros.Macro.validate macro with
  | Ok () -> Printf.printf "macro %s validates\n" macro.Macros.Macro.macro_name
  | Error e -> failwith e);

  prerr_endline "calibrating tolerance boxes...";
  let ctx =
    Experiments.Setup.create ~macro
      ~configs:[ ota_dc_config; ota_pair_config ]
      ()
  in
  Format.printf "fault universe: %a@." Faults.Dictionary.pp_summary
    ctx.Experiments.Setup.dictionary;

  (* generate optimal tests for a handful of interesting faults *)
  let interesting =
    [ "bridge:inp-out"; "bridge:nmir-out"; "bridge:0-ntail"; "pinhole:m1";
      "pinhole:m4" ]
  in
  List.iter
    (fun fid ->
      match Faults.Dictionary.find ctx.Experiments.Setup.dictionary fid with
      | None -> Printf.printf "  %-18s (not in universe)\n" fid
      | Some entry ->
          let r =
            Generate.generate ~evaluators:ctx.Experiments.Setup.evaluators
              entry
          in
          (match r.Generate.outcome with
          | Generate.Unique { config_id; params; critical_impact; _ } ->
              Printf.printf
                "  %-18s -> #%d at [%s], critical impact %s\n" fid config_id
                (String.concat "; "
                   (Array.to_list
                      (Array.map Circuit.Units.format_eng params)))
                (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact)
          | Generate.Undetectable { most_sensitive_config; best_sensitivity; _ } ->
              Printf.printf "  %-18s -> undetectable (best #%d, S=%.2f)\n" fid
                most_sensitive_config best_sensitivity))
    interesting;

  (* the description framework is macro-type generic: print it *)
  print_newline ();
  print_string (Test_config.describe ota_dc_config)
