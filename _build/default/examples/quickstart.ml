(* Quickstart: simulate the IV-converter macro, inject one fault, and ask
   whether a test configuration detects it.

   Run with:  dune exec examples/quickstart.exe *)

open Testgen

let () =
  (* 1. The macro under test: the paper's CMOS IV-converter. *)
  let macro = Macros.Iv_converter.macro in
  print_endline macro.Macros.Macro.description;
  print_newline ();

  (* 2. Its nominal operating point, straight from the DC solver. *)
  let nl = Macros.Macro.nominal_netlist macro in
  let sys = Circuit.Mna.build nl in
  let op = Circuit.Dc.operating_point sys ~time:`Dc in
  Printf.printf "nominal operating point: Vout = %.4f V (Iin node at %.4f V)\n"
    (Circuit.Mna.voltage sys op "vout")
    (Circuit.Mna.voltage sys op "iin");

  (* 3. A test: configuration #1 (DC level) at 25 uA. *)
  let config = Experiments.Iv_configs.config1 in
  let params = [| 25e-6 |] in
  let target =
    Experiments.Setup.target_of_macro macro Macros.Process.nominal
  in
  let nominal_obs = Execute.observables config target params in
  Printf.printf "test: %s at lev = 25uA -> nominal V(Vout) = %.4f V\n"
    config.Test_config.config_name nominal_obs.(0);

  (* 4. Inject a bridging fault and measure again. *)
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  Printf.printf "\ninjecting: %s\n" (Faults.Fault.describe fault);
  let faulty_target =
    { target with Execute.netlist = Faults.Inject.apply nl fault }
  in
  let faulty_obs = Execute.observables config faulty_target params in
  Printf.printf "faulty V(Vout) = %.4f V (deviation %.4f V)\n" faulty_obs.(0)
    (faulty_obs.(0) -. nominal_obs.(0));

  (* 5. Score it: a fault is detected when the response leaves the
     tolerance box (process spread + tester accuracy). *)
  let box_model =
    Tolerance.calibrate config ~nominal:target
      ~corners:
        (List.map
           (Experiments.Setup.target_of_macro macro)
           (Macros.Process.corners ()))
      ()
  in
  let evaluator = Evaluator.create config ~nominal:target ~box_model in
  let s = Evaluator.sensitivity evaluator fault params in
  Printf.printf "box half-width at this test: %.4f V\n"
    (Evaluator.box evaluator params).(0);
  Printf.printf "sensitivity S_f(T) = %.2f -> %s\n" s
    (if Sensitivity.detects s then "DETECTED" else "not detected");

  (* 6. And the same question for a much weaker version of the defect. *)
  let weak = Faults.Fault.with_impact fault 10e6 in
  let s_weak = Evaluator.sensitivity evaluator weak params in
  Printf.printf "weakened to %s: S = %.3f -> %s\n"
    (Circuit.Units.format_eng ~unit_symbol:"Ohm" 10e6)
    s_weak
    (if Sensitivity.detects s_weak then "DETECTED" else "not detected")
