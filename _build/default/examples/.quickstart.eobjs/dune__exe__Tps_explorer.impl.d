examples/tps_explorer.ml: Array Circuit Experiments Faults List Printf Report Sys Testgen Tps
