examples/quickstart.ml: Array Circuit Evaluator Execute Experiments Faults List Macros Printf Sensitivity Test_config Testgen Tolerance
