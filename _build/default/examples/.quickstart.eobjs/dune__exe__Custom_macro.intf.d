examples/custom_macro.mli:
