examples/compaction_flow.ml: Array Circuit Compactor Coverage Engine Experiments Faults Format Generate List Macros Printf String Testgen
