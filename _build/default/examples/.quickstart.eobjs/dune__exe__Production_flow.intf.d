examples/production_flow.mli:
