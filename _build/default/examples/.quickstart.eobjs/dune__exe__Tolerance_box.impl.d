examples/tolerance_box.ml: Array Execute Experiments Faults Float List Macros Numerics Printf Sensitivity Test_config Testgen Tolerance
