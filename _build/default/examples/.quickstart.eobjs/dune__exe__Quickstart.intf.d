examples/quickstart.mli:
