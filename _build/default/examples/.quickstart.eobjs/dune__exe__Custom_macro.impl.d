examples/custom_macro.ml: Array Circuit Experiments Faults Format Generate List Macros Printf String Test_config Test_param Testgen
