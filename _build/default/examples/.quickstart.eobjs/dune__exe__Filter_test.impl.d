examples/filter_test.ml: Array Circuit Experiments Faults Format Generate List Macros Printf Report String Test_config Test_param Testgen Tps
