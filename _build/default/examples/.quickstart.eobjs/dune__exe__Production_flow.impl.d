examples/production_flow.ml: Compactor Coverage Engine Experiments Faults Filename List Macros Numerics Printf Quality Schedule Session Sys Testgen
