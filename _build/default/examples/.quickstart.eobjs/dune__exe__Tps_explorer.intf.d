examples/tps_explorer.mli:
