examples/compaction_flow.mli:
