examples/filter_test.mli:
