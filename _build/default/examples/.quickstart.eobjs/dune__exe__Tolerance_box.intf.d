examples/tolerance_box.mli:
