(* Test-parameter sensitivity explorer: renders tps-graphs (paper
   Figs. 2-4) for a chosen fault under the THD configuration and shows
   the hard-fault / soft-fault region dichotomy of sec. 3.2.

   Run with:  dune exec examples/tps_explorer.exe [-- fault-id [impacts...]]
   e.g.       dune exec examples/tps_explorer.exe -- bridge:iin-vref 500 2000 4000 *)

open Testgen

let default_fault = "bridge:n1-vout"
let default_impacts = [ 10e3; 75e3; 150e3 ]

let () =
  let args = Array.to_list Sys.argv in
  let fault_id, impacts =
    match args with
    | _ :: fid :: (_ :: _ as rest) ->
        (fid, List.filter_map float_of_string_opt rest)
    | _ :: fid :: [] -> (fid, default_impacts)
    | _ -> (default_fault, default_impacts)
  in
  prerr_endline "calibrating tolerance boxes (a few seconds)...";
  let ctx = Experiments.Setup.iv () in
  let entry =
    match Faults.Dictionary.find ctx.Experiments.Setup.dictionary fault_id with
    | Some e -> e
    | None ->
        Printf.eprintf "unknown fault %S -- try e.g. %s\n" fault_id default_fault;
        exit 1
  in
  let ev = Experiments.Setup.evaluator ctx 3 in
  let graphs =
    List.map
      (fun r ->
        let fault =
          Faults.Fault.with_impact entry.Faults.Dictionary.fault r
        in
        (r, Tps.sweep ev fault ~grid:9 ()))
      impacts
  in
  List.iter
    (fun (r, g) ->
      let arg, s = Tps.argmin g in
      Printf.printf "\n--- %s at impact %s ---\n" fault_id
        (Circuit.Units.format_eng ~unit_symbol:"Ohm" r);
      Printf.printf "argmin: Iin_dc=%s freq=%s   S=%.4g   detected %.0f%% of the plane\n"
        (Circuit.Units.format_eng ~unit_symbol:"A" arg.(0))
        (Circuit.Units.format_eng ~unit_symbol:"Hz" arg.(1))
        s
        (100. *. Tps.detection_fraction g);
      match g.Tps.axes with
      | [ (xn, xs); (yn, ys) ] ->
          print_string
            (Report.Heatmap.render ~x_axis:(xn, xs) ~y_axis:(yn, ys)
               ~values:(fun xi yi -> g.Tps.values.((xi * Array.length ys) + yi))
               ())
      | _ -> ())
    graphs;
  (* quantify the sec. 3.2 claim over consecutive impact pairs *)
  let rec pairs = function
    | (r1, g1) :: ((r2, g2) :: _ as rest) ->
        Printf.printf "argmin shift %s -> %s: %.2f\n"
          (Circuit.Units.format_eng r1) (Circuit.Units.format_eng r2)
          (Tps.normalized_argmin_shift g1 g2);
        pairs rest
    | [ _ ] | [] -> ()
  in
  print_newline ();
  pairs graphs
