(* End-to-end generation + compaction on a reduced dictionary: the whole
   paper pipeline in miniature, fast enough to watch.

   Run with:  dune exec examples/compaction_flow.exe *)

open Testgen

let () =
  prerr_endline "calibrating tolerance boxes...";
  (* DC configurations only: every step is a pair of operating points, so
     the full flow finishes in seconds. *)
  let ctx =
    Experiments.Setup.create
      ~macro:Macros.Iv_converter.macro
      ~configs:[ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]
      ()
  in
  let dictionary =
    Faults.Dictionary.filter ctx.Experiments.Setup.dictionary (fun e ->
        List.mem e.Faults.Dictionary.fault_id
          [
            "bridge:n1-vout"; "bridge:iin-n1"; "bridge:iin-vout";
            "bridge:ntail-vout"; "bridge:nmir-vout"; "bridge:nbias-ntail";
            "pinhole:m1"; "pinhole:m2"; "pinhole:m6"; "pinhole:m8";
          ])
  in
  Format.printf "dictionary: %a@." Faults.Dictionary.pp_summary dictionary;

  (* step 1+2: fault-specific generation with impact convergence *)
  let run =
    Engine.run
      ~progress:(fun ~done_ ~total ~fault_id ->
        Printf.printf "  [%2d/%2d] %s\n%!" done_ total fault_id)
      ~evaluators:ctx.Experiments.Setup.evaluators dictionary
  in
  print_newline ();
  List.iter
    (fun r ->
      match r.Generate.outcome with
      | Generate.Unique { config_id; params; critical_impact; _ } ->
          Printf.printf "  %-20s -> tc%d [%s]  detects down to %s\n"
            r.Generate.fault_id config_id
            (String.concat "; "
               (Array.to_list (Array.map Circuit.Units.format_eng params)))
            (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact)
      | Generate.Undetectable { most_sensitive_config; _ } ->
          Printf.printf "  %-20s -> undetectable (best: tc%d)\n"
            r.Generate.fault_id most_sensitive_config)
    run.Engine.results;

  (* step 3: collapse the per-fault tests onto a compact set *)
  let result =
    Compactor.compact ~delta:0.1 ~evaluators:ctx.Experiments.Setup.evaluators
      dictionary run
  in
  Printf.printf "\ncompacted %d fault-specific tests onto %d tests (%.1fx):\n"
    result.Compactor.original_test_count
    (List.length result.Compactor.compact_tests)
    (Compactor.compaction_ratio result);
  List.iter
    (fun ct ->
      Printf.printf "  %-8s tc%d [%s] <- {%s}\n" ct.Compactor.ct_label
        ct.Compactor.ct_config_id
        (String.concat "; "
           (Array.to_list (Array.map Circuit.Units.format_eng ct.Compactor.ct_params)))
        (String.concat ", " ct.Compactor.ct_fault_ids))
    result.Compactor.compact_tests;
  Printf.printf "\nfinal coverage at dictionary impacts: %d/%d (%.1f%%)\n"
    result.Compactor.coverage.Coverage.covered
    result.Compactor.coverage.Coverage.total
    (Coverage.percent result.Compactor.coverage)
