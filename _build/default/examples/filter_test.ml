(* Frequency-domain testing of the Sallen-Key macro with the AC
   test-configuration family (an extension of the paper's Table 1): author
   two AC configurations, generate optimal tests for passive and active
   faults, and show where in the frequency axis each defect is easiest to
   see.

   Run with:  dune exec examples/filter_test.exe *)

open Testgen

let fc = Macros.Sallen_key.cutoff_hz

(* configuration A: gain/phase at a parameterized frequency *)
let sk_ac_config =
  Test_config.create ~id:201 ~name:"Filter gain/phase" ~macro_type:"SK-lowpass"
    ~control_node:"in"
    ~params:
      [
        Test_param.create ~name:"freq" ~units:"Hz" ~lower:(fc /. 30.)
          ~upper:(fc *. 30.) ~seed:fc;
      ]
    ~analysis:
      (Test_config.Ac_gain
         {
           bias = (fun _ -> Circuit.Waveform.Dc 2.5);
           freq = (fun v -> v.(0));
         })
    ~returns:Test_config.Per_component
    ~return_names:[ "gain [dB]"; "phase [deg]" ]
    ~accuracy_floor:[ 0.1; 1.0 ]
    ~summary:"network-analyzer gain/phase at freq, input biased at mid-rail"

(* configuration B: DC level through the filter (catches bias faults) *)
let sk_dc_config =
  Test_config.create ~id:202 ~name:"Filter DC transfer" ~macro_type:"SK-lowpass"
    ~control_node:"in"
    ~params:
      [
        Test_param.create ~name:"vin" ~units:"V" ~lower:1.5 ~upper:3.5
          ~seed:2.5;
      ]
    ~analysis:(Test_config.Dc_levels (fun v -> [ Circuit.Waveform.Dc v.(0) ]))
    ~returns:Test_config.Per_component
    ~return_names:[ "V(out)" ]
    ~accuracy_floor:[ 1e-3 ]
    ~summary:"V(in) = vin (dc voltage value)"

let () =
  Printf.printf "%s\nnominal cutoff: %.1f Hz\n\n"
    Macros.Sallen_key.macro.Macros.Macro.description fc;
  prerr_endline "calibrating tolerance boxes...";
  let ctx =
    Experiments.Setup.create ~macro:Macros.Sallen_key.macro
      ~configs:[ sk_ac_config; sk_dc_config ]
      ()
  in
  Format.printf "fault universe: %a@." Faults.Dictionary.pp_summary
    ctx.Experiments.Setup.dictionary;
  print_newline ();

  let interesting =
    [
      ("bridge:a-b", "shorts R2: shifts the cutoff upward");
      ("bridge:b-out", "shorts the C1 feedback loop");
      ("bridge:0-ntail", "kills the buffer tail current");
      ("pinhole:m1", "buffer input device defect");
      ("bridge:a-out", "shorts C1: turns the biquad into a first-order RC");
    ]
  in
  List.iter
    (fun (fid, what) ->
      match Faults.Dictionary.find ctx.Experiments.Setup.dictionary fid with
      | None -> Printf.printf "  %-16s (not in universe)\n" fid
      | Some entry ->
          let r =
            Generate.generate ~evaluators:ctx.Experiments.Setup.evaluators
              entry
          in
          (match r.Generate.outcome with
          | Generate.Unique { config_id; params; critical_impact; _ } ->
              Printf.printf "  %-16s %-52s -> #%d at [%s], critical %s\n" fid
                what config_id
                (String.concat "; "
                   (Array.to_list (Array.map Circuit.Units.format_eng params)))
                (Circuit.Units.format_eng ~unit_symbol:"Ohm" critical_impact)
          | Generate.Undetectable { best_sensitivity; _ } ->
              Printf.printf "  %-16s %-52s -> undetectable (best S=%.2f)\n"
                fid what best_sensitivity))
    interesting;

  (* where on the frequency axis is the a-b bridge easiest to see? *)
  print_newline ();
  let ev = Experiments.Setup.evaluator ctx 201 in
  let fault = Faults.Fault.bridge "a" "b" ~resistance:10e3 in
  let g = Tps.sweep ev fault ~grid:13 () in
  (match g.Tps.axes with
  | [ (xn, xs) ] ->
      Printf.printf "tps of bridge:a-b over the frequency axis:\n";
      print_string
        (Report.Heatmap.render_1d ~x_axis:(xn, xs) ~values:g.Tps.values
           ~height:10)
  | _ -> ());
  let arg, s = Tps.argmin g in
  Printf.printf "most sensitive frequency: %s (S = %.1f)\n"
    (Circuit.Units.format_eng ~unit_symbol:"Hz" arg.(0))
    s
