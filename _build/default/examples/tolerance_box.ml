(* Tolerance boxes under the microscope (paper Fig. 5 and sec. 2.2):
   calibrate the p = 2 box of configuration #2, then verify by Monte-Carlo
   that fault-free process samples stay inside it -- the "safely boxes in
   expectable response values" property.

   Run with:  dune exec examples/tolerance_box.exe *)

open Testgen

let () =
  let macro = Macros.Iv_converter.macro in
  let config = Experiments.Iv_configs.config2 in
  let nominal = Experiments.Setup.target_of_macro macro Macros.Process.nominal in
  let corners =
    List.map (Experiments.Setup.target_of_macro macro) (Macros.Process.corners ())
  in
  prerr_endline "calibrating...";
  let box_model = Tolerance.calibrate config ~nominal ~corners () in
  let seeds = Test_config.param_values_of_seed config in
  let box = Tolerance.box box_model seeds in
  let nominal_obs = Execute.observables config nominal seeds in
  Printf.printf "configuration #2 at seed parameters (base=0, elev=20uA):\n";
  Printf.printf "  nominal return values: r1 = %.4f V, r2 = %.4f V\n"
    nominal_obs.(0) nominal_obs.(1);
  Printf.printf "  tolerance box: +/- %.4f V and +/- %.4f V\n" box.(0) box.(1);

  (* Monte-Carlo verification: fault-free samples must stay inside *)
  let rng = Numerics.Rng.create 2001L in
  let n = 200 in
  let escaped = ref 0 in
  let worst = ref 0. in
  List.iter
    (fun point ->
      let target = Experiments.Setup.target_of_macro macro point in
      match Execute.observables config target seeds with
      | obs ->
          let dev = Execute.deviations config ~nominal:nominal_obs ~faulty:obs in
          let inside =
            Array.for_all2 (fun d b -> Float.abs d <= b) dev box
          in
          Array.iteri
            (fun i d -> worst := Float.max !worst (Float.abs d /. box.(i)))
            dev;
          if not inside then incr escaped
      | exception Execute.Execution_failure _ -> ())
    (Macros.Process.monte_carlo rng ~n);
  Printf.printf
    "\nMonte-Carlo check (%d fault-free 3-sigma process samples):\n\
    \  escaped the box: %d (each would be overkill: a good die failing test)\n\
    \  worst |deviation| / box: %.2f -- the guardband trades this residual\n\
    \  overkill risk against test escape risk\n"
    n !escaped !worst;

  (* contrast: a genuinely faulty circuit leaves the box *)
  let fault = Faults.Fault.bridge "nmir" "vout" ~resistance:10e3 in
  let target =
    { nominal with Execute.netlist = Faults.Inject.apply nominal.Execute.netlist fault }
  in
  let obs = Execute.observables config target seeds in
  let dev = Execute.deviations config ~nominal:nominal_obs ~faulty:obs in
  Printf.printf
    "\nfaulty circuit (%s):\n  deviations %.4f V / %.4f V -> %s\n"
    (Faults.Fault.describe fault) dev.(0) dev.(1)
    (if Array.exists2 (fun d b -> Float.abs d > b) dev box then
       "outside the box: only a faulty macro can produce this response"
     else "inside the box");
  Printf.printf "  sensitivity: %.2f\n"
    (Sensitivity.compute config ~box ~nominal:nominal_obs ~faulty:obs)
