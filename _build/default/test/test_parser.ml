(* Tests for the SPICE-style deck parser. *)

open Circuit

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

let ok deck =
  match Spice_parser.parse deck with
  | Ok nl -> nl
  | Error e -> Alcotest.fail (Printf.sprintf "line %d: %s" e.Spice_parser.line e.Spice_parser.message)

let err deck =
  match Spice_parser.parse deck with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let find nl name =
  match Netlist.find nl name with
  | Some d -> d
  | None -> Alcotest.fail ("device missing: " ^ name)

(* ----------------------------------------------------------------- basics *)

let test_title_and_end () =
  let nl = ok "* my circuit\nRr1 a 0 1k\nRr2 a 0 1k\n.end\n" in
  Alcotest.(check string) "title" "my circuit" (Netlist.title nl);
  Alcotest.(check int) "devices" 2 (Netlist.device_count nl)

let test_title_without_star () =
  let nl = ok "plain title\nRr1 a 0 1k\nRr2 a 0 2k\n" in
  Alcotest.(check string) "title" "plain title" (Netlist.title nl)

let test_passives () =
  let nl = ok "t\nRr1 a 0 10k\nCc1 a 0 2.5u\nLl1 a 0 1m\n" in
  (match find nl "r1" with
  | Device.Resistor { ohms; a; b; _ } ->
      check_float "ohms" 10e3 ohms;
      Alcotest.(check string) "a" "a" a;
      Alcotest.(check string) "b" "0" b
  | _ -> Alcotest.fail "r1 not a resistor");
  (match find nl "c1" with
  | Device.Capacitor { farads; _ } -> check_float "farads" 2.5e-6 farads
  | _ -> Alcotest.fail "c1 not a capacitor");
  match find nl "l1" with
  | Device.Inductor { henries; _ } -> check_float "henries" 1e-3 henries
  | _ -> Alcotest.fail "l1 not an inductor"

let test_sources_and_waveforms () =
  let nl =
    ok
      "t\n\
       Vv1 p 0 5\n\
       Vv2 p 0 dc(3.3)\n\
       Ii1 0 p step(0, 25u, 100n, 10n)\n\
       Ii2 0 p sine(20u, 10u, 10k)\n\
       Vv3 p 0 pwl(0:0, 1m:5, 2m:5)\n"
  in
  (match find nl "v1" with
  | Device.Vsource { wave = Waveform.Dc v; _ } -> check_float "bare dc" 5. v
  | _ -> Alcotest.fail "v1");
  (match find nl "v2" with
  | Device.Vsource { wave = Waveform.Dc v; _ } -> check_float "dc()" 3.3 v
  | _ -> Alcotest.fail "v2");
  (match find nl "i1" with
  | Device.Isource { wave = Waveform.Step { base; elev; delay; rise }; _ } ->
      check_float "base" 0. base;
      check_float "elev" 25e-6 elev;
      check_float "delay" 100e-9 delay;
      check_float "rise" 10e-9 rise
  | _ -> Alcotest.fail "i1");
  (match find nl "i2" with
  | Device.Isource { wave = Waveform.Sine { offset; ampl; freq; phase }; _ } ->
      check_float "offset" 20e-6 offset;
      check_float "ampl" 10e-6 ampl;
      check_float "freq" 10e3 freq;
      check_float "default phase" 0. phase
  | _ -> Alcotest.fail "i2");
  match find nl "v3" with
  | Device.Vsource { wave = Waveform.Pwl corners; _ } ->
      Alcotest.(check int) "pwl corners" 3 (List.length corners)
  | _ -> Alcotest.fail "v3"

let test_named_waveform_args () =
  (* our own printer emits named arguments *)
  let nl = ok "t\nVv1 p 0 step(base=1, elev=2, delay=0, rise=0)\nRr p 0 1k\n" in
  match find nl "v1" with
  | Device.Vsource { wave = Waveform.Step { base; elev; _ }; _ } ->
      check_float "base" 1. base;
      check_float "elev" 2. elev
  | _ -> Alcotest.fail "v1"

let test_controlled_sources () =
  let nl = ok "t\nEe1 o 0 a 0 10\nGg1 o 0 a 0 2m\nRr o a 1k\nRs a 0 1k\n" in
  (match find nl "e1" with
  | Device.Vcvs { gain; _ } -> check_float "gain" 10. gain
  | _ -> Alcotest.fail "e1");
  match find nl "g1" with
  | Device.Vccs { gm; _ } -> check_float "gm" 2e-3 gm
  | _ -> Alcotest.fail "g1"

let test_mosfet_and_model () =
  let nl =
    ok
      "t\n\
       .model mynmos nmos vt0=0.6 kp=100u lambda=0.02\n\
       Mm1 d g 0 mynmos W=20u L=2u\n\
       Rr d g 1k\nRs g 0 1k\n"
  in
  match find nl "m1" with
  | Device.Mosfet { model; w; l; _ } ->
      check_float "vt0" 0.6 model.Mos_model.vt0;
      check_float "kp" 100e-6 model.Mos_model.kp;
      check_float "lambda" 0.02 model.Mos_model.lambda;
      Alcotest.(check bool) "polarity" true
        (model.Mos_model.polarity = Mos_model.Nmos);
      check_float "w" 20e-6 w;
      check_float "l" 2e-6 l
  | _ -> Alcotest.fail "m1"

let test_builtin_models () =
  let nl = ok "t\nMm1 d g 0 nmos1 W=10u L=1u\nRr d g 1k\nRs g 0 1k\n" in
  match find nl "m1" with
  | Device.Mosfet { model; _ } ->
      check_float "default vt0" 0.7 model.Mos_model.vt0
  | _ -> Alcotest.fail "m1"

let test_comments_and_continuation () =
  let nl =
    ok "t\n* a comment\nRr1 a\n+ 0\n+ 10k\n* another\nRr2 a 0 1k\n"
  in
  Alcotest.(check int) "two devices" 2 (Netlist.device_count nl);
  match find nl "r1" with
  | Device.Resistor { ohms; _ } -> check_float "joined card" 10e3 ohms
  | _ -> Alcotest.fail "r1"

(* ----------------------------------------------------------------- errors *)

let test_error_reporting () =
  let e = err "t\nRr1 a 0 1k\nXx1 a 0\n" in
  Alcotest.(check int) "error line" 3 e.Spice_parser.line;
  let e2 = err "t\nRr1 a 0 notanumber\n" in
  Alcotest.(check int) "bad number line" 2 e2.Spice_parser.line;
  let e3 = err "t\nMm1 d g 0 missingmodel W=1u L=1u\n" in
  Alcotest.(check int) "unknown model" 3 (e3.Spice_parser.line + 1);
  let e4 = err "t\nRr1 a 0 1k\n.weird\n" in
  Alcotest.(check int) "unknown directive" 3 e4.Spice_parser.line

let test_duplicate_detected () =
  let e = err "t\nRr1 a 0 1k\nRr1 a 0 2k\n" in
  Alcotest.(check int) "duplicate line" 3 e.Spice_parser.line

let test_unbalanced_parens () =
  let e = err "t\nVv1 a 0 sine(0, 1, 1k\n" in
  Alcotest.(check int) "line" 2 e.Spice_parser.line

(* -------------------------------------------------------------- roundtrip *)

let test_roundtrip_fixpoint () =
  List.iter
    (fun macro ->
      let nl = Macros.Macro.nominal_netlist macro in
      let deck = Netlist.to_spice nl in
      match Spice_parser.parse deck with
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s line %d: %s" macro.Macros.Macro.macro_name
               e.Spice_parser.line e.Spice_parser.message)
      | Ok nl2 ->
          Alcotest.(check string)
            (macro.Macros.Macro.macro_name ^ " print/parse fixpoint")
            deck
            (Netlist.to_spice nl2))
    [ Macros.Iv_converter.macro; Macros.Ota.macro; Macros.Sallen_key.macro ]

let test_parsed_deck_simulates () =
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let nl2 = ok (Netlist.to_spice nl) in
  let sys = Mna.build nl2 in
  let x = Dc.operating_point sys ~time:`Dc in
  check_float ~eps:1e-6 "same operating point" 2.49968
    (Float.round (Mna.voltage sys x "vout" *. 1e5) /. 1e5)

let prop_waveform_roundtrip =
  QCheck.Test.make ~name:"waveform print/parse roundtrip" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Numerics.Rng.create (Int64.of_int (seed + 13)) in
      let u lo hi = Numerics.Rng.uniform rng ~lo ~hi in
      let wave =
        match Numerics.Rng.int rng ~bound:3 with
        | 0 -> Waveform.Dc (u (-1e-3) 1e-3)
        | 1 ->
            Waveform.Step
              { base = u 0. 1.; elev = u 0.1 2.; delay = u 0. 1e-6;
                rise = u 1e-9 1e-7 }
        | _ ->
            Waveform.Sine
              { offset = u (-1.) 1.; ampl = u 0.1 2.; freq = u 1e3 1e6;
                phase = 0. }
      in
      let deck =
        Printf.sprintf "t\nVv1 a 0 %s\nRr a 0 1k\n"
          (Format.asprintf "%a" Waveform.pp wave)
      in
      match Spice_parser.parse deck with
      | Error _ -> false
      | Ok nl -> begin
          match Netlist.find nl "v1" with
          | Some (Device.Vsource { wave = parsed; _ }) ->
              (* compare by sampling within the first period: the printer
                 rounds to ~3 significant digits, so a sine's phase error
                 grows linearly with time — late samples would compare the
                 rounding, not the parser *)
              List.for_all
                (fun t ->
                  let a = Waveform.value wave t
                  and b = Waveform.value parsed t in
                  Float.abs (a -. b) <= 0.03 *. (1. +. Float.abs a))
                [ 0.; 1e-8; 1e-7; 3e-7; 1e-6 ]
          | Some _ | None -> false
        end)

let () =
  Alcotest.run "parser"
    [
      ( "cards",
        [
          Alcotest.test_case "title and .end" `Quick test_title_and_end;
          Alcotest.test_case "bare title" `Quick test_title_without_star;
          Alcotest.test_case "passives" `Quick test_passives;
          Alcotest.test_case "sources and waveforms" `Quick test_sources_and_waveforms;
          Alcotest.test_case "named waveform args" `Quick test_named_waveform_args;
          Alcotest.test_case "controlled sources" `Quick test_controlled_sources;
          Alcotest.test_case "mosfet and .model" `Quick test_mosfet_and_model;
          Alcotest.test_case "builtin models" `Quick test_builtin_models;
          Alcotest.test_case "comments and continuations" `Quick
            test_comments_and_continuation;
        ] );
      ( "errors",
        [
          Alcotest.test_case "line numbers" `Quick test_error_reporting;
          Alcotest.test_case "duplicates" `Quick test_duplicate_detected;
          Alcotest.test_case "unbalanced parens" `Quick test_unbalanced_parens;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "fixpoint on the macros" `Quick test_roundtrip_fixpoint;
          Alcotest.test_case "parsed deck simulates" `Quick test_parsed_deck_simulates;
          QCheck_alcotest.to_alcotest prop_waveform_roundtrip;
        ] );
    ]
