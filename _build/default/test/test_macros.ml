(* Tests for the process model and the macro designs. *)

open Circuit

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* ---------------------------------------------------------------- Process *)

let test_corners_count () =
  let cs = Macros.Process.corners () in
  (* 8 axes x 2 directions + 2 all-extreme corners *)
  Alcotest.(check int) "18 corners" 18 (List.length cs);
  let labels = List.map (fun c -> c.Macros.Process.label) cs in
  Alcotest.(check int) "labels unique" 18
    (List.length (List.sort_uniq String.compare labels))

let test_nominal_point () =
  let p = Macros.Process.nominal in
  check_float "no vt shift" 0. p.Macros.Process.dvt_n;
  check_float "res scale identity" 123. (Macros.Process.scale_res p 123.);
  check_float "cap scale identity" 1e-12 (Macros.Process.scale_cap p 1e-12)

let test_apply_variation () =
  let p = { Macros.Process.nominal with Macros.Process.dvt_n = 0.1; dkp_n = -0.2 } in
  let m = Macros.Process.apply_nmos p Mos_model.nmos_default in
  check_float "vt shifted" (0.7 *. 1.1) m.Mos_model.vt0;
  check_float "kp shifted" (120e-6 *. 0.8) m.Mos_model.kp

let test_apply_pmos_sign () =
  (* positive dvt_p increases |vt0| of the (negative) pmos threshold *)
  let p = { Macros.Process.nominal with Macros.Process.dvt_p = 0.1 } in
  let m = Macros.Process.apply_pmos p Mos_model.pmos_default in
  check_float "pmos vt more negative" (-0.88) m.Mos_model.vt0

let test_monte_carlo () =
  let rng = Numerics.Rng.create 3L in
  let points = Macros.Process.monte_carlo rng ~n:200 in
  Alcotest.(check int) "count" 200 (List.length points);
  (* 3-sigma tolerance: nearly all samples well inside 2x tolerance *)
  let outliers =
    List.filter
      (fun p -> Float.abs p.Macros.Process.dvt_n > 0.1)
      points
  in
  Alcotest.(check bool) "few outliers" true (List.length outliers < 5)

(* ----------------------------------------------------------- IV-converter *)

let iv_netlist = Macros.Macro.nominal_netlist Macros.Iv_converter.macro

let test_iv_validates () =
  match Macros.Macro.validate Macros.Iv_converter.macro with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_iv_structure () =
  let mosfets =
    List.filter
      (fun d -> match d with Device.Mosfet _ -> true | _ -> false)
      (Netlist.devices iv_netlist)
  in
  Alcotest.(check int) "10 transistors" 10 (List.length mosfets);
  Alcotest.(check int) "10 fault nodes" 10
    (List.length Macros.Iv_converter.fault_nodes);
  (* every fault node except ground is a real node *)
  let all = Netlist.all_nodes iv_netlist in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exists") true (List.mem n all))
    Macros.Iv_converter.fault_nodes

let test_iv_operating_point () =
  let sys = Mna.build iv_netlist in
  let report = Dc.solve sys ~time:`Dc in
  Alcotest.(check int) "no homotopy needed" 0 report.Dc.gmin_steps;
  let x = report.Dc.solution in
  let v n = Mna.voltage sys x n in
  (* virtual ground: the feedback forces iin ~ vref ~ vdd/2 *)
  check_float ~eps:2e-3 "vref at mid-rail" 2.5 (v "vref");
  Alcotest.(check bool) "virtual ground" true
    (Float.abs (v "iin" -. v "vref") < 5e-3);
  Alcotest.(check bool) "vout near mid-rail" true
    (Float.abs (v "vout" -. 2.5) < 0.05);
  (* every transistor saturated in the nominal design *)
  List.iter
    (fun (name, op) ->
      Alcotest.(check bool) (name ^ " saturated") true
        (op.Mos_model.region = `Saturation))
    (Mna.mosfet_operating_points sys ~x)

let test_iv_transimpedance () =
  let zt = Macros.Iv_converter.transimpedance () in
  (* closed loop: dVout/dIin ~ -Rf within 1 % *)
  Alcotest.(check bool)
    (Printf.sprintf "transimpedance %.1f ~ -Rf" zt)
    true
    (Float.abs (zt +. Macros.Iv_converter.feedback_resistance)
    < 0.01 *. Macros.Iv_converter.feedback_resistance)

let test_iv_linearity () =
  (* output tracks -Rf * Iin over the +/-50 uA input range *)
  let nl iin =
    Netlist.replace iv_netlist "iin_src"
      [
        Device.Isource
          { name = "iin_src"; from_node = "0"; to_node = "iin";
            wave = Waveform.Dc iin };
      ]
  in
  List.iter
    (fun iin ->
      let sys = Mna.build (nl iin) in
      let v = Mna.voltage sys (Dc.operating_point sys ~time:`Dc) "vout" in
      let expected = 2.4997 -. (iin *. 20e3) in
      Alcotest.(check bool)
        (Printf.sprintf "vout(%.0e) = %.4f ~ %.4f" iin v expected)
        true
        (Float.abs (v -. expected) < 0.01))
    [ -50e-6; -20e-6; 20e-6; 50e-6 ]

let test_iv_process_sensitivity () =
  (* an extreme corner moves the macro's response but keeps it functional *)
  let corner =
    List.find
      (fun c -> c.Macros.Process.label = "all+")
      (Macros.Process.corners ())
  in
  let nl = Macros.Iv_converter.build corner in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  Alcotest.(check bool) "still near mid-rail" true
    (Float.abs (Mna.voltage sys x "vout" -. 2.5) < 0.3)

let test_iv_dictionary () =
  let d = Macros.Macro.dictionary Macros.Iv_converter.macro in
  Alcotest.(check int) "55 faults" 55 (Faults.Dictionary.size d);
  let b, p = Faults.Dictionary.count_by_kind d in
  Alcotest.(check (pair int int)) "45+10" (45, 10) (b, p)

(* -------------------------------------------------------------------- OTA *)

let test_ota_validates () =
  match Macros.Macro.validate Macros.Ota.macro with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_ota_buffer () =
  let nl = Macros.Macro.nominal_netlist Macros.Ota.macro in
  let sys = Mna.build nl in
  let x = Dc.operating_point sys ~time:`Dc in
  (* unity-gain buffer: out ~ inp = 2.5 V within the offset budget *)
  Alcotest.(check bool) "buffers 2.5 V" true
    (Float.abs (Mna.voltage sys x "out" -. 2.5) < 0.05)

let test_ota_follows_input () =
  let nl = Macros.Macro.nominal_netlist Macros.Ota.macro in
  let stim v =
    Circuit.Netlist.replace nl "vin_src"
      [ Device.Vsource { name = "vin_src"; plus = "inp"; minus = "0";
                         wave = Waveform.Dc v } ]
  in
  List.iter
    (fun vin ->
      let sys = Mna.build (stim vin) in
      let out = Mna.voltage sys (Dc.operating_point sys ~time:`Dc) "out" in
      Alcotest.(check bool)
        (Printf.sprintf "out(%.1f) = %.3f" vin out)
        true
        (Float.abs (out -. vin) < 0.08))
    [ 2.0; 2.5; 3.0 ]

let () =
  Alcotest.run "macros"
    [
      ( "process",
        [
          Alcotest.test_case "corner count" `Quick test_corners_count;
          Alcotest.test_case "nominal point" `Quick test_nominal_point;
          Alcotest.test_case "nmos variation" `Quick test_apply_variation;
          Alcotest.test_case "pmos variation sign" `Quick test_apply_pmos_sign;
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo;
        ] );
      ( "iv_converter",
        [
          Alcotest.test_case "validates" `Quick test_iv_validates;
          Alcotest.test_case "structure (10 nodes / 10 fets)" `Quick test_iv_structure;
          Alcotest.test_case "operating point" `Quick test_iv_operating_point;
          Alcotest.test_case "transimpedance" `Quick test_iv_transimpedance;
          Alcotest.test_case "linearity" `Quick test_iv_linearity;
          Alcotest.test_case "process corner" `Quick test_iv_process_sensitivity;
          Alcotest.test_case "55-fault dictionary" `Quick test_iv_dictionary;
        ] );
      ( "ota",
        [
          Alcotest.test_case "validates" `Quick test_ota_validates;
          Alcotest.test_case "buffers mid-rail" `Quick test_ota_buffer;
          Alcotest.test_case "follows input" `Quick test_ota_follows_input;
        ] );
    ]
