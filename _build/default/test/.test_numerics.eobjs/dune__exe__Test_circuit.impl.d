test/test_circuit.ml: Ac Alcotest Array Circuit Complex Dc Device Float List Macros Mna Mos_model Netlist Noise Numerics Printf QCheck QCheck_alcotest Result String Tran Units Waveform
