test/test_compaction.mli:
