test/test_faults.ml: Alcotest Circuit Dc Device Dictionary Fault Faults Float Format Inject List Macros Mna Mos_model Netlist Option Printf QCheck QCheck_alcotest String Universe Waveform
