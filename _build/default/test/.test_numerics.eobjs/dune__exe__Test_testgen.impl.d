test/test_testgen.ml: Alcotest Array Circuit Evaluator Execute Experiments Faults Float Generate Lazy List Macros Printf Sensitivity String Test_config Test_param Testgen Tolerance Tps
