test/test_sigproc.ml: Alcotest Array Complex Float Int64 Numerics Printf QCheck QCheck_alcotest Sigproc
