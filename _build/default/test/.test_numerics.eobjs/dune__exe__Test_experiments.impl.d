test/test_experiments.ml: Alcotest Circuit Evaluator Execute Experiments Faults Lazy List Macros String Test_config Testgen
