test/test_parser.mli:
