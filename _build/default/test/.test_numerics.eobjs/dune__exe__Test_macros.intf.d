test/test_macros.mli:
