test/test_sigproc.mli:
