test/test_compaction.ml: Alcotest Array Baseline Cluster Collapse Compactor Coverage Engine Evaluator Experiments Faults Float Generate Lazy List Macros Printf Test_param Testgen Tolerance
