test/test_properties.ml: Ac Alcotest Array Circuit Complex Dc Device Float Gen Int64 List Mna Netlist Numerics Printf QCheck QCheck_alcotest Testgen Tran Waveform
