test/test_persistence.mli:
