test/test_parser.ml: Alcotest Circuit Dc Device Float Format Int64 List Macros Mna Mos_model Netlist Numerics Printf QCheck QCheck_alcotest Spice_parser Waveform
