test/test_integration.ml: Alcotest Baseline Compactor Coverage Engine Evaluator Execute Experiments Faults Generate Lazy List Macros Printf String Testgen Tolerance Tps
