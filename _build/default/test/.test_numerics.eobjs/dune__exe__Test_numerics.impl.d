test/test_numerics.ml: Alcotest Array Brent Cmat Complex Float Int64 Mat Numerics Powell Printf QCheck QCheck_alcotest Rng Stats Vec
