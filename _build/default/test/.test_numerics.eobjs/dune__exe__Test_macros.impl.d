test/test_macros.ml: Alcotest Circuit Dc Device Faults Float List Macros Mna Mos_model Netlist Numerics Printf String Waveform
