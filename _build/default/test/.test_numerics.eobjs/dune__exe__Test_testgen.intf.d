test/test_testgen.mli:
