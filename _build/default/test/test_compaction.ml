(* Tests for clustering, collapse, coverage, compaction and the baseline. *)

open Testgen

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

let params2 =
  [
    Test_param.create ~name:"x" ~units:"" ~lower:0. ~upper:100. ~seed:50.;
    Test_param.create ~name:"y" ~units:"" ~lower:0. ~upper:1. ~seed:0.5;
  ]

let item id x y = { Cluster.item_id = id; location = [| x; y |] }

(* ---------------------------------------------------------------- Cluster *)

let test_cluster_normalize () =
  let n = Cluster.normalize params2 [| 25.; 0.75 |] in
  Alcotest.(check (array (float 1e-12))) "normalized" [| 0.25; 0.75 |] n

let test_cluster_two_blobs () =
  let items =
    [
      item "a1" 10. 0.1; item "a2" 12. 0.12; item "a3" 11. 0.09;
      item "b1" 90. 0.9; item "b2" 88. 0.91;
    ]
  in
  let groups = Cluster.group ~params:params2 ~threshold:0.15 items in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let sizes = List.sort compare (List.map List.length groups) in
  Alcotest.(check (list int)) "sizes" [ 2; 3 ] sizes

let test_cluster_threshold_zero_groups_nothing () =
  let items = [ item "a" 10. 0.1; item "b" 30. 0.5; item "c" 70. 0.9 ] in
  let groups = Cluster.group ~params:params2 ~threshold:0.01 items in
  Alcotest.(check int) "all singletons" 3 (List.length groups)

let test_cluster_threshold_one_groups_everything () =
  let items = [ item "a" 10. 0.1; item "b" 30. 0.5; item "c" 70. 0.9 ] in
  let groups = Cluster.group ~params:params2 ~threshold:1.0 items in
  Alcotest.(check int) "one group" 1 (List.length groups)

let test_cluster_preserves_locations () =
  let items = [ item "a" 25. 0.25 ] in
  match Cluster.group ~params:params2 items with
  | [ [ it ] ] ->
      Alcotest.(check (array (float 1e-9))) "physical units kept" [| 25.; 0.25 |]
        it.Cluster.location
  | _ -> Alcotest.fail "unexpected shape"

let test_centroid () =
  let c = Cluster.centroid [ item "a" 0. 0.; item "b" 10. 1. ] in
  Alcotest.(check (array (float 1e-12))) "mean" [| 5.; 0.5 |] c;
  (try
     ignore (Cluster.centroid []);
     Alcotest.fail "empty centroid accepted"
   with Invalid_argument _ -> ())

let test_split () =
  let a, b =
    Cluster.split [ item "a" 0. 0.; item "b" 1. 0.; item "c" 100. 1. ]
  in
  let names g = List.map (fun it -> it.Cluster.item_id) g |> List.sort compare in
  (* the far point separates from the close pair *)
  let both = List.sort compare [ names a; names b ] in
  Alcotest.(check (list (list string))) "farthest pair split"
    [ [ "a"; "b" ]; [ "c" ] ] both

(* --------------------------------------------------- evaluation fixtures *)

let iv_target =
  Experiments.Setup.target_of_macro Macros.Iv_converter.macro
    Macros.Process.nominal

let mk_evaluator config =
  Evaluator.create config ~nominal:iv_target
    ~box_model:(Tolerance.floor_only config)

let ev1 = lazy (mk_evaluator Experiments.Iv_configs.config1)
let ev2 = lazy (mk_evaluator Experiments.Iv_configs.config2)

(* --------------------------------------------------------------- Collapse *)

let strong_member fid fault params ev =
  let s = Evaluator.sensitivity (Lazy.force ev) fault params in
  {
    Collapse.member_fault_id = fid;
    member_fault = fault;
    member_params = params;
    member_opt_sensitivity = s;
  }

let test_screen_accepts_identical () =
  let ev = Lazy.force ev1 in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let m = strong_member "f1" fault [| 10e-6 |] ev1 in
  match Collapse.screen ev ~delta:0.05 [ m ] [| 10e-6 |] with
  | Some [ (fid, s) ] ->
      Alcotest.(check string) "fault id" "f1" fid;
      check_float "sensitivity unchanged" m.Collapse.member_opt_sensitivity s
  | Some _ | None -> Alcotest.fail "screen must accept the member's own point"

let test_screen_rejects_bad_point () =
  (* a catastrophic fault detected strongly at lev=40u is much less visible
     at lev ~ 0 where no current flows: delta = 0 must reject the move to a
     clearly worse parameter point *)
  let ev = Lazy.force ev1 in
  let fault = Faults.Fault.bridge "iin" "vout" ~resistance:10e3 in
  let m = strong_member "f1" fault [| 40e-6 |] ev1 in
  match Collapse.screen ev ~delta:0. [ m ] [| 0.2e-6 |] with
  | None -> ()
  | Some _ ->
      (* acceptable only if the sensitivity really is no worse there *)
      let s_c = Evaluator.sensitivity ev fault [| 0.2e-6 |] in
      Alcotest.(check bool) "accepted only when not worse" true
        (s_c <= m.Collapse.member_opt_sensitivity +. 1e-9)

let test_collapse_config_groups () =
  let ev = Lazy.force ev2 in
  let f1 = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  let f2 = Faults.Fault.bridge "n2" "vout" ~resistance:10e3 in
  let members =
    [
      strong_member "bridge:n1-vout" f1 [| 1e-6; 20e-6 |] ev2;
      strong_member "bridge:n2-vout" f2 [| 1.5e-6; 21e-6 |] ev2;
    ]
  in
  let groups, stats = Collapse.collapse_config ev ~delta:0.3 members in
  Alcotest.(check bool) "at least one group" true (List.length groups >= 1);
  Alcotest.(check int) "all members kept"
    2
    (List.fold_left (fun n g -> n + List.length g.Collapse.members) 0 groups);
  Alcotest.(check bool) "proposals counted" true (stats.Collapse.proposals >= 1)

let test_collapse_delta_validation () =
  let ev = Lazy.force ev1 in
  (try
     ignore (Collapse.collapse_config ev ~delta:1.5 []);
     Alcotest.fail "delta > 1 accepted"
   with Invalid_argument _ -> ())

(* --------------------------------------------------------------- Coverage *)

let test_coverage () =
  let dict =
    Faults.Dictionary.of_faults
      [
        Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
        Faults.Fault.bridge "0" "vdd" ~resistance:10e3;  (* invisible *)
      ]
  in
  let tests =
    [
      { Coverage.test_label = "t1"; test_config_id = 1; test_params = [| 10e-6 |] };
    ]
  in
  let report = Coverage.evaluate ~evaluators:[ Lazy.force ev1 ] dict tests in
  Alcotest.(check int) "total" 2 report.Coverage.total;
  Alcotest.(check int) "covered" 1 report.Coverage.covered;
  check_float "percent" 50. (Coverage.percent report);
  Alcotest.(check (list string)) "missed" [ "bridge:0-vdd" ]
    (Coverage.missed report);
  Alcotest.(check (list string)) "essential" [ "t1" ]
    (Coverage.essential_tests report)

let test_coverage_unknown_config () =
  let dict =
    Faults.Dictionary.of_faults [ Faults.Fault.bridge "n1" "vout" ~resistance:10e3 ]
  in
  (try
     ignore
       (Coverage.evaluate ~evaluators:[ Lazy.force ev1 ] dict
          [ { Coverage.test_label = "t"; test_config_id = 9; test_params = [| 0. |] } ]);
     Alcotest.fail "unknown config accepted"
   with Invalid_argument _ -> ())

(* -------------------------------------------------- Compactor + Baseline *)

let small_dictionary =
  Faults.Dictionary.of_faults
    [
      Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
      Faults.Fault.bridge "n2" "vout" ~resistance:10e3;
      Faults.Fault.bridge "iin" "n1" ~resistance:10e3;
      Faults.Fault.pinhole "m6" ~r_shunt:2e3;
    ]

let small_run =
  lazy
    (Engine.run
       ~evaluators:[ Lazy.force ev1; Lazy.force ev2 ]
       small_dictionary)

let test_engine_run () =
  let run = Lazy.force small_run in
  Alcotest.(check int) "one result per fault" 4 (List.length run.Engine.results);
  let dist = Engine.distribution run in
  let total =
    List.fold_left
      (fun n (d : Engine.distribution_row) ->
        n + d.Engine.bridge_count + d.Engine.pinhole_count)
      0 dist
  in
  Alcotest.(check int) "distribution covers all faults" 4 total;
  Alcotest.(check bool) "simulations counted" true
    (run.Engine.total_fault_simulations > 0)

let test_engine_progress_callback () =
  let calls = ref [] in
  let dict =
    Faults.Dictionary.of_faults
      [
        Faults.Fault.bridge "n1" "vout" ~resistance:10e3;
        Faults.Fault.bridge "n2" "vout" ~resistance:10e3;
      ]
  in
  ignore
    (Engine.run
       ~progress:(fun ~done_ ~total ~fault_id ->
         calls := (done_, total, fault_id) :: !calls)
       ~evaluators:[ Lazy.force ev1 ] dict);
  Alcotest.(check int) "called per fault" 2 (List.length !calls);
  (match List.rev !calls with
  | (1, 2, "bridge:n1-vout") :: _ -> ()
  | _ -> Alcotest.fail "first progress call wrong")

let test_engine_critical_impacts () =
  let run = Lazy.force small_run in
  let impacts = Engine.critical_impacts run in
  List.iter
    (fun (fid, r) ->
      Alcotest.(check bool) (fid ^ " critical impact positive") true (r > 0.))
    impacts

let test_compactor () =
  let run = Lazy.force small_run in
  let evaluators = [ Lazy.force ev1; Lazy.force ev2 ] in
  let result = Compactor.compact ~delta:0.2 ~evaluators small_dictionary run in
  Alcotest.(check bool) "compact set not empty" true
    (result.Compactor.compact_tests <> []);
  Alcotest.(check bool) "no more tests than faults" true
    (List.length result.Compactor.compact_tests <= 4);
  Alcotest.(check bool) "ratio >= 1" true (Compactor.compaction_ratio result >= 1.);
  (* every fault detectable at dictionary impact stays covered *)
  let detectable =
    List.filter_map
      (fun r ->
        match r.Generate.outcome with
        | Generate.Unique { dictionary_sensitivity; _ }
          when dictionary_sensitivity < 0. -> Some r.Generate.fault_id
        | Generate.Unique _ | Generate.Undetectable _ -> None)
      run.Engine.results
  in
  let missed = Coverage.missed result.Compactor.coverage in
  Alcotest.(check bool) "at least one detectable fault in the fixture" true
    (detectable <> []);
  List.iter
    (fun fid ->
      Alcotest.(check bool) (fid ^ " still covered") false (List.mem fid missed))
    detectable

let test_members_of_run_carry_critical_impact () =
  let run = Lazy.force small_run in
  let members = Compactor.members_of_run run ~config_id:1 in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Collapse.member_fault_id ^ " optimal point is sensitive enough")
        true
        (m.Collapse.member_opt_sensitivity < 1.))
    members

let test_baseline () =
  let run = Lazy.force small_run in
  let evaluators = [ Lazy.force ev1; Lazy.force ev2 ] in
  let summary = Baseline.compare ~evaluators small_dictionary run in
  Alcotest.(check int) "total" 4 summary.Baseline.total;
  Alcotest.(check bool) "optimized >= seed coverage" true
    (summary.Baseline.optimized_covered >= summary.Baseline.seed_covered);
  Alcotest.(check int) "one comparison per fault" 4
    (List.length summary.Baseline.comparisons)

let test_baseline_critical_impact () =
  let evaluators = [ Lazy.force ev1 ] in
  let tests = Baseline.seed_tests [ Experiments.Iv_configs.config1 ] in
  let fault = Faults.Fault.bridge "n1" "vout" ~resistance:10e3 in
  match Baseline.critical_impact_of_tests ~evaluators ~tests fault () with
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "critical impact %.0f beyond dictionary" r)
        true (r > 10e3)
  | None -> Alcotest.fail "strong fault must have a seed critical impact"

let test_seed_tests () =
  let tests = Baseline.seed_tests Experiments.Iv_configs.all in
  Alcotest.(check int) "one per config" 5 (List.length tests);
  List.iter
    (fun (t : Coverage.test) ->
      Alcotest.(check bool) "params at seed" true
        (Array.length t.Coverage.test_params > 0))
    tests

let () =
  Alcotest.run "compaction"
    [
      ( "cluster",
        [
          Alcotest.test_case "normalize" `Quick test_cluster_normalize;
          Alcotest.test_case "two blobs" `Quick test_cluster_two_blobs;
          Alcotest.test_case "tight threshold" `Quick test_cluster_threshold_zero_groups_nothing;
          Alcotest.test_case "loose threshold" `Quick test_cluster_threshold_one_groups_everything;
          Alcotest.test_case "keeps physical units" `Quick test_cluster_preserves_locations;
          Alcotest.test_case "centroid" `Quick test_centroid;
          Alcotest.test_case "split" `Quick test_split;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "accepts own point" `Quick test_screen_accepts_identical;
          Alcotest.test_case "rejects worse point" `Quick test_screen_rejects_bad_point;
          Alcotest.test_case "collapse groups" `Quick test_collapse_config_groups;
          Alcotest.test_case "delta validation" `Quick test_collapse_delta_validation;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "evaluate" `Quick test_coverage;
          Alcotest.test_case "unknown config" `Quick test_coverage_unknown_config;
        ] );
      ( "engine",
        [
          Alcotest.test_case "small run" `Slow test_engine_run;
          Alcotest.test_case "progress callback" `Slow test_engine_progress_callback;
          Alcotest.test_case "critical impacts" `Slow test_engine_critical_impacts;
        ] );
      ( "compactor",
        [
          Alcotest.test_case "compact small run" `Slow test_compactor;
          Alcotest.test_case "members carry impact" `Slow test_members_of_run_carry_critical_impact;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "compare" `Slow test_baseline;
          Alcotest.test_case "critical impact" `Quick test_baseline_critical_impact;
          Alcotest.test_case "seed tests" `Quick test_seed_tests;
        ] );
    ]
