(* Tests for the signal-processing library. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

let sine ?(ampl = 1.) ?(phase = 0.) ~n ~cycles () =
  Array.init n (fun i ->
      ampl
      *. sin ((2. *. Float.pi *. cycles *. float_of_int i /. float_of_int n) +. phase))

(* --------------------------------------------------------------- Goertzel *)

let test_goertzel_pure_bin () =
  let n = 256 in
  let s = sine ~n ~cycles:8. () in
  check_float ~eps:1e-9 "amplitude at its bin" 1.
    (Sigproc.Goertzel.amplitude ~samples:s ~k:8);
  check_float ~eps:1e-6 "other bin empty" 0.
    (Sigproc.Goertzel.amplitude ~samples:s ~k:12)

let test_goertzel_dc_bin () =
  let s = Array.make 100 3. in
  check_float "dc bin" 3. (Sigproc.Goertzel.amplitude ~samples:s ~k:0)

let test_goertzel_amplitude_scaling () =
  let n = 512 in
  let s = sine ~ampl:0.25 ~n ~cycles:4. () in
  check_float ~eps:1e-9 "scaled amplitude" 0.25
    (Sigproc.Goertzel.amplitude ~samples:s ~k:4)

let test_goertzel_phase_invariance () =
  let n = 512 in
  let s = sine ~phase:1.1 ~n ~cycles:10. () in
  check_float ~eps:1e-9 "phase does not change amplitude" 1.
    (Sigproc.Goertzel.amplitude ~samples:s ~k:10)

let test_goertzel_amplitude_at () =
  let fs = 48_000. in
  let n = 480 in
  (* 1 kHz is bin 10 of a 10 ms window *)
  let s = Array.init n (fun i ->
      0.7 *. sin (2. *. Float.pi *. 1000. *. float_of_int i /. fs)) in
  check_float ~eps:1e-9 "amplitude_at 1kHz" 0.7
    (Sigproc.Goertzel.amplitude_at ~samples:s ~sample_rate:fs ~freq:1000.)

let test_goertzel_errors () =
  (try
     ignore (Sigproc.Goertzel.bin ~samples:[||] ~k:0);
     Alcotest.fail "empty accepted"
   with Invalid_argument _ -> ());
  let s = sine ~n:64 ~cycles:4. () in
  (try
     ignore (Sigproc.Goertzel.amplitude_at ~samples:s ~sample_rate:64. ~freq:40.);
     Alcotest.fail "above nyquist accepted"
   with Invalid_argument _ -> ())

let prop_goertzel_matches_dft =
  QCheck.Test.make ~name:"goertzel equals a direct DFT bin" ~count:50
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (k, seed) ->
      let n = 64 in
      let rng = Numerics.Rng.create (Int64.of_int (seed + 3)) in
      let s = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo:(-1.) ~hi:1.) in
      let direct =
        let re = ref 0. and im = ref 0. in
        for i = 0 to n - 1 do
          let w = 2. *. Float.pi *. float_of_int (k * i) /. float_of_int n in
          re := !re +. (s.(i) *. cos w);
          im := !im -. (s.(i) *. sin w)
        done;
        sqrt ((!re *. !re) +. (!im *. !im))
      in
      let g = Complex.norm (Sigproc.Goertzel.bin ~samples:s ~k) in
      Float.abs (direct -. g) < 1e-8 *. (1. +. direct))

(* -------------------------------------------------------------------- THD *)

let test_thd_known_mix () =
  let n = 1024 and fs = 102_400. and f0 = 1000. in
  let s = Array.init n (fun i ->
      let t = float_of_int i /. fs in
      sin (2. *. Float.pi *. f0 *. t)
      +. (0.03 *. sin (2. *. Float.pi *. 2. *. f0 *. t))
      +. (0.04 *. sin (2. *. Float.pi *. 3. *. f0 *. t))) in
  (* THD = sqrt(0.03^2 + 0.04^2) = 0.05 -> 5 % *)
  check_float ~eps:1e-6 "thd of 3-4-5 mix" 5.
    (Sigproc.Thd.thd_percent ~samples:s ~sample_rate:fs ~fundamental_hz:f0 ())

let test_thd_pure_sine () =
  let n = 512 and fs = 51_200. and f0 = 1000. in
  let s = Array.init n (fun i ->
      sin (2. *. Float.pi *. f0 *. float_of_int i /. fs)) in
  Alcotest.(check bool) "pure sine thd tiny" true
    (Sigproc.Thd.thd_percent ~samples:s ~sample_rate:fs ~fundamental_hz:f0 () < 1e-6)

let test_thd_analysis_fields () =
  let n = 1024 and fs = 102_400. and f0 = 1000. in
  let s = Array.init n (fun i ->
      let t = float_of_int i /. fs in
      (2. *. sin (2. *. Float.pi *. f0 *. t))
      +. (0.1 *. sin (2. *. Float.pi *. 5. *. f0 *. t))) in
  let a = Sigproc.Thd.analyze ~harmonics:5 ~samples:s ~sample_rate:fs
      ~fundamental_hz:f0 () in
  check_float ~eps:1e-6 "fundamental" 2. a.Sigproc.Thd.fundamental;
  Alcotest.(check int) "harmonic count" 4 (Array.length a.Sigproc.Thd.harmonics);
  check_float ~eps:1e-6 "h5" 0.1 a.Sigproc.Thd.harmonics.(3);
  check_float ~eps:1e-6 "thd" 5. a.Sigproc.Thd.thd_percent

let test_thd_skips_above_nyquist () =
  (* fs = 8 f0: harmonics 2 and 3 resolvable, 4 = nyquist and 5 skipped *)
  let n = 256 and fs = 8000. and f0 = 1000. in
  let s = Array.init n (fun i ->
      sin (2. *. Float.pi *. f0 *. float_of_int i /. fs)) in
  let a = Sigproc.Thd.analyze ~harmonics:5 ~samples:s ~sample_rate:fs
      ~fundamental_hz:f0 () in
  Alcotest.(check int) "only harmonics below nyquist" 2
    (Array.length a.Sigproc.Thd.harmonics)

(* ---------------------------------------------------------------- Metrics *)

let test_max_abs_delta () =
  check_float "max delta" 3.
    (Sigproc.Metrics.max_abs_delta [| 1.; 5.; 2. |] [| 1.; 2.; 3. |]);
  (try
     ignore (Sigproc.Metrics.max_abs_delta [| 1. |] [| 1.; 2. |]);
     Alcotest.fail "mismatch accepted"
   with Invalid_argument _ -> ())

let test_accumulate_rms_pp () =
  check_float "accumulate" 6. (Sigproc.Metrics.accumulate [| 1.; 2.; 3. |]);
  check_float "rms" (sqrt 2.) (Sigproc.Metrics.rms [| sqrt 2.; -.sqrt 2. |]);
  check_float "peak to peak" 7. (Sigproc.Metrics.peak_to_peak [| -3.; 4.; 0. |])

let test_settling_time () =
  let times = Array.init 10 float_of_int in
  let values = [| 0.; 0.5; 0.9; 1.2; 1.05; 0.99; 1.01; 1.0; 1.0; 1.0 |] in
  (match Sigproc.Metrics.settling_time ~times ~values ~target:1. ~band:0.05 with
  | Some t -> check_float "settles at t=5" 5. t
  | None -> Alcotest.fail "should settle");
  (match
     Sigproc.Metrics.settling_time ~times ~values:(Array.make 10 5.) ~target:1.
       ~band:0.05
   with
  | None -> ()
  | Some _ -> Alcotest.fail "never settles")

let test_decimate () =
  Alcotest.(check (array (float 1e-12))) "every 2" [| 0.; 2.; 4. |]
    (Sigproc.Metrics.decimate [| 0.; 1.; 2.; 3.; 4.; 5. |] ~every:2);
  Alcotest.(check (array (float 1e-12))) "every 1 is copy" [| 1.; 2. |]
    (Sigproc.Metrics.decimate [| 1.; 2. |] ~every:1)

let () =
  Alcotest.run "sigproc"
    [
      ( "goertzel",
        [
          Alcotest.test_case "pure bin" `Quick test_goertzel_pure_bin;
          Alcotest.test_case "dc bin" `Quick test_goertzel_dc_bin;
          Alcotest.test_case "amplitude scaling" `Quick test_goertzel_amplitude_scaling;
          Alcotest.test_case "phase invariance" `Quick test_goertzel_phase_invariance;
          Alcotest.test_case "amplitude_at" `Quick test_goertzel_amplitude_at;
          Alcotest.test_case "errors" `Quick test_goertzel_errors;
          QCheck_alcotest.to_alcotest prop_goertzel_matches_dft;
        ] );
      ( "thd",
        [
          Alcotest.test_case "known harmonic mix" `Quick test_thd_known_mix;
          Alcotest.test_case "pure sine" `Quick test_thd_pure_sine;
          Alcotest.test_case "analysis fields" `Quick test_thd_analysis_fields;
          Alcotest.test_case "nyquist clipping" `Quick test_thd_skips_above_nyquist;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "max_abs_delta" `Quick test_max_abs_delta;
          Alcotest.test_case "accumulate/rms/pp" `Quick test_accumulate_rms_pp;
          Alcotest.test_case "settling time" `Quick test_settling_time;
          Alcotest.test_case "decimate" `Quick test_decimate;
        ] );
    ]
