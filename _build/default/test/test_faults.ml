(* Tests for fault models, injection, universes and dictionaries. *)

open Faults

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs b)

let check_float ?eps msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.9g vs %.9g)" msg a b) true
    (feq ?eps a b)

(* ------------------------------------------------------------------ Fault *)

let test_bridge_normalization () =
  let f1 = Fault.bridge "vout" "n1" ~resistance:10e3 in
  let f2 = Fault.bridge "n1" "vout" ~resistance:10e3 in
  Alcotest.(check string) "same id" (Fault.id f1) (Fault.id f2);
  Alcotest.(check string) "sorted id" "bridge:n1-vout" (Fault.id f1);
  Alcotest.(check bool) "same site" true (Fault.equal_site f1 f2)

let test_fault_validation () =
  (try
     ignore (Fault.bridge "a" "a" ~resistance:1.);
     Alcotest.fail "identical nodes accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fault.bridge "a" "b" ~resistance:0.);
     Alcotest.fail "zero resistance accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fault.pinhole "m1" ~r_shunt:(-1.));
     Alcotest.fail "negative shunt accepted"
   with Invalid_argument _ -> ())

let test_impact_manipulation () =
  let f = Fault.bridge "a" "b" ~resistance:10e3 in
  check_float "impact" 10e3 (Fault.impact_resistance f);
  check_float "weaken x3" 30e3
    (Fault.impact_resistance (Fault.weaken f ~factor:3.));
  check_float "intensify x4" 2.5e3
    (Fault.impact_resistance (Fault.intensify f ~factor:4.));
  check_float "with_impact" 77.
    (Fault.impact_resistance (Fault.with_impact f 77.));
  (try
     ignore (Fault.weaken f ~factor:0.5);
     Alcotest.fail "weaken factor <= 1 accepted"
   with Invalid_argument _ -> ())

let test_kinds_and_describe () =
  let b = Fault.bridge "x" "y" ~resistance:1e3 in
  let p = Fault.pinhole "m1" ~r_shunt:2e3 in
  Alcotest.(check string) "bridge kind" "bridge" (Fault.kind_name b);
  Alcotest.(check string) "pinhole kind" "pinhole" (Fault.kind_name p);
  Alcotest.(check bool) "bridge describes nodes" true
    (String.length (Fault.describe b) > 0);
  Alcotest.(check bool) "different sites" false (Fault.equal_site b p)

(* ----------------------------------------------------------------- Inject *)

let simple_netlist () =
  let open Circuit in
  Netlist.add_all (Netlist.empty ~title:"dut")
    [
      Device.Vsource { name = "vdd"; plus = "vdd"; minus = "0"; wave = Waveform.Dc 5. };
      Device.Resistor { name = "rd"; a = "vdd"; b = "d"; ohms = 10e3 };
      Device.Mosfet { name = "m1"; drain = "d"; gate = "g"; source = "0";
                      model = Mos_model.nmos_default; w = 10e-6; l = 2e-6 };
      Device.Vsource { name = "vg"; plus = "g"; minus = "0"; wave = Waveform.Dc 2. };
    ]

let test_inject_bridge () =
  let nl = simple_netlist () in
  let faulty = Inject.apply nl (Fault.bridge "d" "g" ~resistance:5e3) in
  Alcotest.(check int) "one extra device" (Circuit.Netlist.device_count nl + 1)
    (Circuit.Netlist.device_count faulty);
  (match Circuit.Netlist.find faulty Inject.bridge_device_name with
  | Some (Circuit.Device.Resistor { ohms; _ }) -> check_float "bridge R" 5e3 ohms
  | Some _ | None -> Alcotest.fail "bridge resistor missing")

let test_inject_bridge_unknown_node () =
  let nl = simple_netlist () in
  (try
     ignore (Inject.apply nl (Fault.bridge "d" "nonexistent" ~resistance:1e3));
     Alcotest.fail "unknown node accepted"
   with Invalid_argument _ -> ())

let test_inject_pinhole_structure () =
  let nl = simple_netlist () in
  let faulty = Inject.apply nl (Fault.pinhole "m1" ~r_shunt:2e3) in
  (* one mosfet replaced by two mosfets + resistor *)
  Alcotest.(check int) "device count" (Circuit.Netlist.device_count nl + 2)
    (Circuit.Netlist.device_count faulty);
  Alcotest.(check bool) "original gone" false (Circuit.Netlist.mem faulty "m1");
  (match Circuit.Netlist.find faulty "m1_drainseg" with
  | Some (Circuit.Device.Mosfet { l; drain; _ }) ->
      check_float "drain segment is L/4" 0.5e-6 l;
      Alcotest.(check string) "keeps drain" "d" drain
  | Some _ | None -> Alcotest.fail "drain segment missing");
  (match Circuit.Netlist.find faulty "m1_srcseg" with
  | Some (Circuit.Device.Mosfet { l; source; _ }) ->
      check_float "source segment is 3L/4" 1.5e-6 l;
      Alcotest.(check string) "keeps source" "0" source
  | Some _ | None -> Alcotest.fail "source segment missing");
  (match Circuit.Netlist.find faulty "m1_pinhole" with
  | Some (Circuit.Device.Resistor { ohms; a; _ }) ->
      check_float "shunt value" 2e3 ohms;
      Alcotest.(check string) "shunt from gate" "g" a
  | Some _ | None -> Alcotest.fail "shunt missing")

let test_inject_pinhole_behaviour () =
  (* the pinhole must actually change the DC solution *)
  let open Circuit in
  let nl = simple_netlist () in
  let sys = Mna.build nl in
  let v_nom = Mna.voltage sys (Dc.operating_point sys ~time:`Dc) "d" in
  let faulty = Inject.apply nl (Fault.pinhole "m1" ~r_shunt:2e3) in
  let sysf = Mna.build faulty in
  let v_fault = Mna.voltage sysf (Dc.operating_point sysf ~time:`Dc) "d" in
  Alcotest.(check bool)
    (Printf.sprintf "pinhole shifts drain voltage (%.3f vs %.3f)" v_nom v_fault)
    true
    (Float.abs (v_nom -. v_fault) > 0.05)

let test_inject_pinhole_on_non_mosfet () =
  let nl = simple_netlist () in
  (try
     ignore (Inject.apply nl (Fault.pinhole "rd" ~r_shunt:1e3));
     Alcotest.fail "pinhole on resistor accepted"
   with Invalid_argument _ -> ())

let test_weak_bridge_negligible () =
  (* a 1 GOhm bridge is electrically invisible *)
  let open Circuit in
  let nl = simple_netlist () in
  let sys = Mna.build nl in
  let v_nom = Mna.voltage sys (Dc.operating_point sys ~time:`Dc) "d" in
  let faulty = Inject.apply nl (Fault.bridge "d" "g" ~resistance:1e9) in
  let sysf = Mna.build faulty in
  let v_fault = Mna.voltage sysf (Dc.operating_point sysf ~time:`Dc) "d" in
  Alcotest.(check bool) "negligible shift" true (Float.abs (v_nom -. v_fault) < 1e-3)

(* --------------------------------------------------------------- Universe *)

let test_universe_bridge_count () =
  let nodes = [ "a"; "b"; "c"; "d"; "e" ] in
  let bs = Universe.bridges ~nodes () in
  Alcotest.(check int) "C(5,2)" 10 (List.length bs);
  (* all distinct ids *)
  let ids = List.sort_uniq String.compare (List.map Fault.id bs) in
  Alcotest.(check int) "unique" 10 (List.length ids)

let test_universe_duplicate_nodes () =
  (try
     ignore (Universe.bridges ~nodes:[ "a"; "b"; "a" ] ());
     Alcotest.fail "duplicates accepted"
   with Invalid_argument _ -> ())

let test_universe_pinholes () =
  let nl = simple_netlist () in
  let ps = Universe.pinholes nl in
  Alcotest.(check int) "one per mosfet" 1 (List.length ps);
  match ps with
  | [ p ] ->
      check_float "default shunt" Universe.default_pinhole_resistance
        (Fault.impact_resistance p)
  | _ -> Alcotest.fail "unexpected"

let test_universe_exhaustive_counts () =
  (* the paper's numbers: 10 nodes, 10 mosfets -> 45 + 10 = 55 *)
  let nl = Macros.Macro.nominal_netlist Macros.Iv_converter.macro in
  let faults =
    Universe.exhaustive ~nodes:Macros.Iv_converter.fault_nodes nl
  in
  Alcotest.(check int) "55 faults" 55 (List.length faults);
  let bridges = List.filter (fun f -> Fault.kind f = `Bridge) faults in
  let pinholes = List.filter (fun f -> Fault.kind f = `Pinhole) faults in
  Alcotest.(check int) "45 bridges" 45 (List.length bridges);
  Alcotest.(check int) "10 pinholes" 10 (List.length pinholes);
  List.iter
    (fun f ->
      check_float "bridge initial impact 10k" 10e3 (Fault.impact_resistance f))
    bridges;
  List.iter
    (fun f ->
      check_float "pinhole initial impact 2k" 2e3 (Fault.impact_resistance f))
    pinholes

(* ------------------------------------------------------------- Dictionary *)

let test_dictionary () =
  let faults =
    [ Fault.bridge "a" "b" ~resistance:10e3; Fault.pinhole "m1" ~r_shunt:2e3 ]
  in
  let d = Dictionary.of_faults faults in
  Alcotest.(check int) "size" 2 (Dictionary.size d);
  let b, p = Dictionary.count_by_kind d in
  Alcotest.(check (pair int int)) "counts" (1, 1) (b, p);
  Alcotest.(check bool) "find" true
    (Option.is_some (Dictionary.find d "bridge:a-b"));
  Alcotest.(check bool) "find missing" true
    (Option.is_none (Dictionary.find d "bridge:x-y"));
  Alcotest.(check int) "take 1" 1 (Dictionary.size (Dictionary.take d 1));
  Alcotest.(check int) "take beyond" 2 (Dictionary.size (Dictionary.take d 10));
  let summary = Format.asprintf "%a" Dictionary.pp_summary d in
  Alcotest.(check string) "summary" "2 faults (1 bridges, 1 pinholes)" summary

let test_dictionary_duplicates () =
  (try
     ignore
       (Dictionary.of_faults
          [ Fault.bridge "a" "b" ~resistance:1e3;
            Fault.bridge "b" "a" ~resistance:9e9 ]);
     Alcotest.fail "duplicate site accepted"
   with Invalid_argument _ -> ())

let prop_bridge_pairs =
  QCheck.Test.make ~name:"bridge universe size is n(n-1)/2" ~count:20
    QCheck.(int_range 2 12)
    (fun n ->
      let nodes = List.init n (fun i -> Printf.sprintf "n%d" i) in
      List.length (Universe.bridges ~nodes ()) = n * (n - 1) / 2)

let () =
  Alcotest.run "faults"
    [
      ( "fault",
        [
          Alcotest.test_case "bridge normalization" `Quick test_bridge_normalization;
          Alcotest.test_case "validation" `Quick test_fault_validation;
          Alcotest.test_case "impact manipulation" `Quick test_impact_manipulation;
          Alcotest.test_case "kinds and describe" `Quick test_kinds_and_describe;
        ] );
      ( "inject",
        [
          Alcotest.test_case "bridge adds resistor" `Quick test_inject_bridge;
          Alcotest.test_case "bridge checks nodes" `Quick test_inject_bridge_unknown_node;
          Alcotest.test_case "pinhole structure (fig 7)" `Quick test_inject_pinhole_structure;
          Alcotest.test_case "pinhole changes behaviour" `Quick test_inject_pinhole_behaviour;
          Alcotest.test_case "pinhole only on mosfets" `Quick test_inject_pinhole_on_non_mosfet;
          Alcotest.test_case "weak bridge negligible" `Quick test_weak_bridge_negligible;
        ] );
      ( "universe",
        [
          Alcotest.test_case "bridge count" `Quick test_universe_bridge_count;
          Alcotest.test_case "duplicate nodes" `Quick test_universe_duplicate_nodes;
          Alcotest.test_case "pinholes" `Quick test_universe_pinholes;
          Alcotest.test_case "paper's 55 faults" `Quick test_universe_exhaustive_counts;
          QCheck_alcotest.to_alcotest prop_bridge_pairs;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "basics" `Quick test_dictionary;
          Alcotest.test_case "duplicates" `Quick test_dictionary_duplicates;
        ] );
    ]
