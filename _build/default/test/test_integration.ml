(* End-to-end integration tests: the full ATPG flow (generation -> impact
   convergence -> compaction -> coverage -> baseline) on a reduced
   dictionary, plus cross-cutting invariants from the paper. *)

open Testgen

(* shared reduced context: DC configurations only (fast), two real process
   corners, 2-point calibration lattice *)
let ctx =
  lazy
    (Experiments.Setup.create ~profile:Execute.fast_profile ~grid:2
       ~corners:
         [
           { Macros.Process.nominal with Macros.Process.label = "res+"; dres = 0.15 };
           { Macros.Process.nominal with Macros.Process.label = "res-"; dres = -0.15 };
           { Macros.Process.nominal with Macros.Process.label = "vt+"; dvt_n = 0.05; dvt_p = 0.05 };
           { Macros.Process.nominal with Macros.Process.label = "kp-"; dkp_n = -0.1; dkp_p = -0.1 };
         ]
       ~macro:Macros.Iv_converter.macro
       ~configs:[ Experiments.Iv_configs.config1; Experiments.Iv_configs.config2 ]
       ())

let fault_ids =
  [
    "bridge:n1-vout";
    "bridge:n2-vout";
    "bridge:iin-n1";
    "bridge:ntail-vout";
    "bridge:0-iin";
    "bridge:nbias-ntail";
    "pinhole:m1";
    "pinhole:m6";
  ]

let dictionary =
  lazy
    (let full = (Lazy.force ctx).Experiments.Setup.dictionary in
     Faults.Dictionary.of_faults
       (List.map
          (fun fid ->
            match Faults.Dictionary.find full fid with
            | Some e -> e.Faults.Dictionary.fault
            | None -> Alcotest.fail ("missing fault " ^ fid))
          fault_ids))

let engine_run =
  lazy
    (let c = Lazy.force ctx in
     Engine.run ~evaluators:c.Experiments.Setup.evaluators
       (Lazy.force dictionary))

(* ------------------------------------------------------------- generation *)

let test_every_fault_gets_a_result () =
  let run = Lazy.force engine_run in
  Alcotest.(check int) "all faults processed" (List.length fault_ids)
    (List.length run.Engine.results);
  List.iter2
    (fun fid r -> Alcotest.(check string) "order kept" fid r.Generate.fault_id)
    fault_ids run.Engine.results

let test_catastrophic_faults_detected () =
  let run = Lazy.force engine_run in
  List.iter
    (fun fid ->
      let r =
        List.find (fun r -> String.equal r.Generate.fault_id fid)
          run.Engine.results
      in
      match r.Generate.outcome with
      | Generate.Unique { dictionary_sensitivity; _ } ->
          Alcotest.(check bool)
            (fid ^ " detected at dictionary impact")
            true
            (dictionary_sensitivity < 0.)
      | Generate.Undetectable _ ->
          Alcotest.fail (fid ^ " must be detectable"))
    (* n2-vout is deliberately absent: the feedback loop regulates Vout
       straight through that bridge (the second stage drives the output
       via the bridge when the follower degrades), so it is genuinely
       invisible to DC configurations at any impact *)
    [ "bridge:n1-vout"; "pinhole:m6"; "pinhole:m1" ]

let test_critical_impact_ordering () =
  (* the critical impact of a unique outcome is the boundary where the
     winning test stops detecting: by construction it is weaker (larger R)
     than any impact at which all candidates still detected *)
  let run = Lazy.force engine_run in
  List.iter
    (fun r ->
      match r.Generate.outcome with
      | Generate.Unique { critical_impact; _ } ->
          let detecting_all =
            List.filter
              (fun s -> List.length s.Generate.detecting > 1)
              r.Generate.trace
          in
          List.iter
            (fun s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: critical %.3g >= multi-detect %.3g"
                   r.Generate.fault_id critical_impact s.Generate.impact)
                true
                (critical_impact >= s.Generate.impact *. 0.999))
            detecting_all
      | Generate.Undetectable _ -> ())
    run.Engine.results

let test_distribution_consistency () =
  let run = Lazy.force engine_run in
  let dist = Engine.distribution run in
  let total =
    List.fold_left
      (fun n (d : Engine.distribution_row) ->
        n + d.Engine.bridge_count + d.Engine.pinhole_count)
      0 dist
  in
  Alcotest.(check int) "every fault assigned to a config" (List.length fault_ids)
    total

(* -------------------------------------------------------------- compaction *)

let compaction =
  lazy
    (let c = Lazy.force ctx in
     Compactor.compact ~delta:0.15 ~evaluators:c.Experiments.Setup.evaluators
       (Lazy.force dictionary) (Lazy.force engine_run))

let test_compaction_reduces_tests () =
  let result = Lazy.force compaction in
  let n_compact = List.length result.Compactor.compact_tests in
  Alcotest.(check bool)
    (Printf.sprintf "%d compact <= %d original" n_compact
       result.Compactor.original_test_count)
    true
    (n_compact <= result.Compactor.original_test_count);
  Alcotest.(check bool) "ratio >= 1" true (Compactor.compaction_ratio result >= 1.)

let test_compaction_keeps_coverage () =
  (* the collapse screen guarantees every member fault stays detected by
     its group's collapsed test at the critical impact; at the (stronger)
     dictionary impact coverage must therefore be complete for all faults
     that were detectable in the first place *)
  let run = Lazy.force engine_run in
  let detectable =
    List.filter
      (fun r ->
        match r.Generate.outcome with
        | Generate.Unique { dictionary_sensitivity; _ } ->
            dictionary_sensitivity < 0.
        | Generate.Undetectable _ -> false)
      run.Engine.results
    |> List.map (fun r -> r.Generate.fault_id)
  in
  let result = Lazy.force compaction in
  let missed = Coverage.missed result.Compactor.coverage in
  List.iter
    (fun fid ->
      Alcotest.(check bool) (fid ^ " still covered after collapse") false
        (List.mem fid missed))
    detectable

let test_compaction_groups_partition_faults () =
  let result = Lazy.force compaction in
  let collapsed_ids =
    List.concat_map (fun ct -> ct.Compactor.ct_fault_ids)
      result.Compactor.compact_tests
    |> List.sort String.compare
  in
  (* every dictionary fault's test appears in exactly one group *)
  Alcotest.(check int) "partition" (List.length fault_ids)
    (List.length collapsed_ids);
  Alcotest.(check int) "original count covers all faults"
    (List.length fault_ids) result.Compactor.original_test_count;
  Alcotest.(check int) "no duplicates"
    (List.length collapsed_ids)
    (List.length (List.sort_uniq String.compare collapsed_ids))

(* ---------------------------------------------------------------- baseline *)

let test_baseline_never_beats_optimized () =
  let c = Lazy.force ctx in
  let summary =
    Baseline.compare ~evaluators:c.Experiments.Setup.evaluators
      (Lazy.force dictionary) (Lazy.force engine_run)
  in
  Alcotest.(check bool) "optimized coverage >= seed coverage" true
    (summary.Baseline.optimized_covered >= summary.Baseline.seed_covered);
  (* per-fault: the optimized critical impact is at least the seed one
     (modulo bisection resolution) *)
  List.iter
    (fun cmp ->
      match
        (cmp.Baseline.optimized_critical_impact, cmp.Baseline.seed_critical_impact)
      with
      | Some o, Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: optimized %.3g ~>= seed %.3g"
               cmp.Baseline.cmp_fault_id o s)
            true
            (o >= s *. 0.5)
      | (Some _ | None), _ -> ())
    summary.Baseline.comparisons

(* ------------------------------------------------------- soft-region claim *)

let test_soft_region_argmin_stability () =
  (* sec. 3.2: once the impact is weakened into the soft-fault region the
     tps landscape shape -- and the argmin -- stabilizes.  We start from an
     already-weakened model (the dictionary impact itself may sit in the
     hard region, exactly as the paper's Fig. 2 vs Figs. 3-4 shows). *)
  let c = Lazy.force ctx in
  let ev = Experiments.Setup.evaluator c 1 in
  let fault = Faults.Fault.bridge "0" "iin" ~resistance:40e3 in
  let r = Tps.classify_region ev fault ~grid:9 ~factors:[| 2.; 4. |] () in
  Alcotest.(check bool) "soft region" true (r.Tps.region = `Soft)

(* ----------------------------------------------------- THD pipeline sanity *)

let test_thd_pipeline_detects_dynamics_fault () =
  (* the iin-vref bridge is invisible to DC tests (virtual short) but the
     THD configuration sees it -- the paper's motivating example for
     having several configuration families *)
  let nominal =
    Experiments.Setup.target_of_macro Macros.Iv_converter.macro
      Macros.Process.nominal
  in
  let config = Experiments.Iv_configs.config3 in
  let ev =
    Evaluator.create ~profile:Execute.fast_profile config ~nominal
      ~box_model:(Tolerance.floor_only config)
  in
  let fault = Faults.Fault.bridge "iin" "vref" ~resistance:1e3 in
  let s_thd = Evaluator.sensitivity ev fault [| 20e-6; 50e3 |] in
  Alcotest.(check bool)
    (Printf.sprintf "THD detects iin-vref bridge (S=%.2f)" s_thd)
    true (s_thd < 0.);
  (* while the DC configuration stays blind *)
  let dc = Experiments.Iv_configs.config1 in
  let ev_dc =
    Evaluator.create dc ~nominal ~box_model:(Tolerance.floor_only dc)
  in
  let s_dc = Evaluator.sensitivity ev_dc fault [| 10e-6 |] in
  Alcotest.(check bool)
    (Printf.sprintf "DC misses iin-vref bridge (S=%.2f)" s_dc)
    true (s_dc > 0.)

let () =
  Alcotest.run "integration"
    [
      ( "generation",
        [
          Alcotest.test_case "all faults processed" `Slow test_every_fault_gets_a_result;
          Alcotest.test_case "catastrophic detected" `Slow test_catastrophic_faults_detected;
          Alcotest.test_case "critical impact ordering" `Slow test_critical_impact_ordering;
          Alcotest.test_case "distribution consistent" `Slow test_distribution_consistency;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "reduces tests" `Slow test_compaction_reduces_tests;
          Alcotest.test_case "keeps coverage" `Slow test_compaction_keeps_coverage;
          Alcotest.test_case "partitions faults" `Slow test_compaction_groups_partition_faults;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "optimized wins" `Slow test_baseline_never_beats_optimized;
        ] );
      ( "paper claims",
        [
          Alcotest.test_case "soft-region stability" `Slow test_soft_region_argmin_stability;
          Alcotest.test_case "THD catches dynamics fault" `Slow test_thd_pipeline_detects_dynamics_fault;
        ] );
    ]
